//! A minimal, dependency-free stand-in for the `serde` facade.
//!
//! The build environment is offline, so the real `serde` cannot be fetched. The workspace
//! only ever *serializes* experiment results to JSON, so this crate models serialization
//! as direct JSON emission: [`Serialize`] writes a JSON value into a `String`, and the
//! companion `serde_json` shim wraps that in the familiar `to_string` /
//! `to_string_pretty` entry points. [`Deserialize`] is a marker trait kept so the existing
//! `#[derive(Serialize, Deserialize)]` annotations compile unchanged; nothing in the
//! workspace parses JSON back.
//!
//! The derive macros live in the sibling `serde_derive` shim and are re-exported here,
//! mirroring upstream serde's layout.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// A type that can emit itself as a JSON value.
pub trait Serialize {
    /// Append this value's JSON representation to `out`.
    fn serialize_json(&self, out: &mut String);
}

/// Marker trait: the workspace never deserializes, but derives stay source-compatible.
pub trait Deserialize {}

/// Escape and append a string literal (with surrounding quotes).
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                use core::fmt::Write;
                let _ = write!(out, "{self}");
            }
        }
        impl Deserialize for $t {}
    )*};
}

int_impls!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize);

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}
impl Deserialize for bool {}

impl Serialize for f64 {
    fn serialize_json(&self, out: &mut String) {
        if self.is_finite() {
            // `{}` prints shortest-roundtrip for f64 and is valid JSON for finite values.
            out.push_str(&format!("{self}"));
        } else {
            // JSON has no Infinity / NaN; null is the conventional stand-in.
            out.push_str("null");
        }
    }
}
impl Deserialize for f64 {}

impl Serialize for f32 {
    fn serialize_json(&self, out: &mut String) {
        f64::from(*self).serialize_json(out);
    }
}
impl Deserialize for f32 {}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}
impl Deserialize for String {}

impl Serialize for char {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(&self.to_string(), out);
    }
}
impl Deserialize for char {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

fn write_seq<'a, T: Serialize + 'a>(items: impl Iterator<Item = &'a T>, out: &mut String) {
    out.push('[');
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        item.serialize_json(out);
    }
    out.push(']');
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {}

impl<K: core::fmt::Display, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize_json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(&k.to_string(), out);
            out.push(':');
            v.serialize_json(out);
        }
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::Serialize;

    fn json<T: Serialize>(v: T) -> String {
        let mut s = String::new();
        v.serialize_json(&mut s);
        s
    }

    #[test]
    fn primitives() {
        assert_eq!(json(3u32), "3");
        assert_eq!(json(-7i64), "-7");
        assert_eq!(json(1.5f64), "1.5");
        assert_eq!(json(f64::INFINITY), "null");
        assert_eq!(json(true), "true");
        assert_eq!(json("a\"b"), "\"a\\\"b\"");
    }

    #[test]
    fn containers() {
        assert_eq!(json(vec![1u8, 2, 3]), "[1,2,3]");
        assert_eq!(json(Option::<u8>::None), "null");
        assert_eq!(json(Some(4u8)), "4");
    }
}
