//! A minimal, dependency-free property-testing harness exposing the subset of the
//! `proptest` API used by this workspace: the `proptest!` macro over range strategies,
//! `ProptestConfig { cases }`, and `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from real proptest: inputs are sampled deterministically from a seed
//! derived from the test name (so failures reproduce across runs), and there is **no
//! shrinking** — a failing case panics with the sampled inputs visible in the assertion
//! message rather than a minimised counterexample.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
    /// Accepted for source compatibility; this harness never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, max_shrink_iters: 0 }
    }
}

/// Deterministic SplitMix64 generator driving input sampling.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from the test name, so every run samples the same cases.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A source of sampled values for one `arg in strategy` binding.
pub trait Strategy {
    /// The sampled value type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                (self.start as u128).wrapping_add((rng.next_u64() as u128) % span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (lo as u128).wrapping_add((rng.next_u64() as u128) % span) as $t
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let f = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + f * (self.end - self.start)
    }
}

/// Assert inside a property; panics with the usual `assert!` message on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($tok:tt)*) => { assert!($($tok)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tok:tt)*) => { assert_eq!($($tok)*) };
}

/// Declare property tests: each `fn name(arg in strategy, ...) { .. }` becomes a `#[test]`
/// that samples `cases` inputs and runs the body for each.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut proptest_rng = $crate::TestRng::deterministic(stringify!($name));
                for proptest_case in 0..config.cases {
                    let _ = proptest_case;
                    $( let $arg = $crate::Strategy::sample(&($strategy), &mut proptest_rng); )+
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $( $(#[$meta])* fn $name( $($arg in $strategy),+ ) $body )*
        }
    };
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestRng};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// Sampled values respect their range strategies.
        #[test]
        fn samples_stay_in_range(
            a in 0u64..100,
            b in 5usize..10,
            c in 0.0f64..1.0,
        ) {
            prop_assert!(a < 100);
            prop_assert!((5..10).contains(&b));
            prop_assert!((0.0..1.0).contains(&c));
            prop_assert_eq!(a, a);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
