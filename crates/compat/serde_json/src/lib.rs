//! JSON emission entry points over the serde shim: `to_string` and `to_string_pretty`.
//!
//! Serialization in the shim is direct JSON string emission, so these functions cannot
//! actually fail; they keep the upstream `Result` signature for source compatibility.

#![warn(missing_docs)]

use serde::Serialize;

/// Error type kept for signature compatibility; never constructed.
#[derive(Debug)]
pub struct Error(());

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json serialization error")
    }
}

impl std::error::Error for Error {}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Serialize `value` to an indented (2-space) JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(prettify(&to_string(value)?))
}

/// Re-indent a compact JSON document. Assumes the input is valid JSON (which emission
/// guarantees); strings and escapes are respected.
fn prettify(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut indent = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let push_newline = |out: &mut String, indent: usize| {
        out.push('\n');
        for _ in 0..indent {
            out.push_str("  ");
        }
    };
    for c in compact.chars() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                indent += 1;
                push_newline(&mut out, indent);
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                push_newline(&mut out, indent);
                out.push(c);
            }
            ',' => {
                out.push(c);
                push_newline(&mut out, indent);
            }
            ':' => {
                out.push_str(": ");
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_roundtrip_structurally() {
        let v = vec![1u32, 2, 3];
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n"));
        let squashed: String = pretty.chars().filter(|c| !c.is_whitespace()).collect();
        assert_eq!(squashed, "[1,2,3]");
    }

    #[test]
    fn strings_with_braces_are_not_reindented() {
        let s = "a{b}c";
        let pretty = to_string_pretty(&s).unwrap();
        assert_eq!(pretty, "\"a{b}c\"");
    }
}
