//! A minimal, dependency-free re-implementation of the subset of the `rand` crate API the
//! ssmcast workspace uses.
//!
//! The build environment for this repository is fully offline, so the real `rand` crate
//! cannot be fetched from a registry. Simulation code only needs a small, deterministic
//! slice of its API: [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], the
//! [`Rng`] extension methods (`gen`, `gen_range`, `gen_bool`, `sample_iter`), the
//! [`distributions::Standard`] distribution and [`seq::SliceRandom::shuffle`].
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through SplitMix64. It is
//! **not** bit-compatible with upstream `rand`'s StdRng (ChaCha12); nothing in this
//! workspace depends on the upstream stream, only on determinism and statistical quality.

#![warn(missing_docs)]

/// Low-level entropy source: everything else is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (the only seeding entry point used here).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named random number generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            // Expand the 64-bit seed into the 256-bit xoshiro state; SplitMix64 is the
            // expansion recommended by the xoshiro authors.
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Distributions usable with [`Rng::sample_iter`] and [`Rng::gen`].
pub mod distributions {
    use super::{Rng, RngCore};

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;

        /// An iterator of draws, consuming the generator.
        fn sample_iter<R>(self, rng: R) -> DistIter<T, Self, R>
        where
            Self: Sized,
            R: Rng,
        {
            DistIter { dist: self, rng, _marker: core::marker::PhantomData }
        }
    }

    /// The "natural" distribution of a type: uniform over all values for integers,
    /// uniform in `[0, 1)` for floats.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<u16> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u16 {
            (rng.next_u64() >> 48) as u16
        }
    }

    impl Distribution<usize> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 uniform bits in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }

    /// Iterator returned by [`Distribution::sample_iter`] / [`Rng::sample_iter`].
    pub struct DistIter<T, D, R> {
        pub(crate) dist: D,
        pub(crate) rng: R,
        pub(crate) _marker: core::marker::PhantomData<fn() -> T>,
    }

    impl<T, D: Distribution<T>, R: RngCore> Iterator for DistIter<T, D, R> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            Some(self.dist.sample(&mut self.rng))
        }
    }

    /// Uniform sampling from ranges (the `gen_range` machinery).
    pub mod uniform {
        use super::super::RngCore;
        use core::ops::{Range, RangeInclusive};

        /// A range that can be sampled uniformly.
        pub trait SampleRange<T> {
            /// Draw one value from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        impl SampleRange<f64> for Range<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                assert!(self.start < self.end, "cannot sample empty range");
                let f = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + f * (self.end - self.start)
            }
        }

        impl SampleRange<f64> for RangeInclusive<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                // Divide by 2^53 - 1 so the endpoint is reachable.
                let f = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
                lo + f * (hi - lo)
            }
        }

        impl SampleRange<f32> for Range<f32> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
                assert!(self.start < self.end, "cannot sample empty range");
                let f = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
                self.start + f * (self.end - self.start)
            }
        }

        macro_rules! int_range_impls {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "cannot sample empty range");
                        let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                        let v = (rng.next_u64() as u128) % span;
                        (self.start as i128 + v as i128) as $t
                    }
                }

                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "cannot sample empty range");
                        let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                        if span == 0 {
                            // Full-width inclusive range: every value is valid.
                            return rng.next_u64() as $t;
                        }
                        let v = (rng.next_u64() as u128) % span;
                        (lo as i128 + v as i128) as $t
                    }
                }
            )*};
        }

        int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Extension methods on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[i])
            }
        }
    }
}

/// Convenience extension methods available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value from the [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Draw a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// A Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        self.gen::<f64>() < p
    }

    /// An infinite iterator of draws from `dist`, consuming the generator.
    fn sample_iter<T, D>(self, dist: D) -> distributions::DistIter<T, D, Self>
    where
        D: distributions::Distribution<T>,
        Self: Sized,
    {
        dist.sample_iter(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a: u64 = StdRng::seed_from_u64(1).gen();
        let b: u64 = StdRng::seed_from_u64(2).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn unit_floats_are_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_range(10.0..20.0);
            assert!((10.0..20.0).contains(&x));
            let y = rng.gen_range(5u32..8);
            assert!((5..8).contains(&y));
            let z = rng.gen_range(0u16..=3);
            assert!(z <= 3);
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle should not be the identity");
    }

    #[test]
    fn sample_iter_streams_values() {
        let rng = StdRng::seed_from_u64(9);
        let v: Vec<u32> = rng.sample_iter(super::distributions::Standard).take(8).collect();
        assert_eq!(v.len(), 8);
    }
}
