//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the serde shim.
//!
//! The offline build cannot use `syn`/`quote`, so this macro parses the item's token
//! stream directly. It supports exactly the shapes the workspace uses:
//!
//! * structs with named fields,
//! * tuple structs (arity 1 serializes as the transparent inner value, arity ≥ 2 as an
//!   array),
//! * enums whose variants are unit or tuple variants (unit → `"Variant"`, tuple →
//!   `{"Variant": value}` / `{"Variant": [values...]}`),
//!
//! matching upstream serde's externally-tagged default representation. Generic types and
//! named-field enum variants are rejected with a compile-time panic.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

type TokIter = Peekable<proc_macro::token_stream::IntoIter>;

/// The parsed shape of the deriving item.
enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
    Enum(Vec<(String, usize)>),
}

fn skip_attributes(it: &mut TokIter) {
    loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next();
                // Optional `!` for inner attributes (not expected, but harmless).
                if let Some(TokenTree::Punct(p)) = it.peek() {
                    if p.as_char() == '!' {
                        it.next();
                    }
                }
                match it.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    other => panic!("serde shim derive: malformed attribute near {other:?}"),
                }
            }
            _ => break,
        }
    }
}

fn skip_visibility(it: &mut TokIter) {
    if let Some(TokenTree::Ident(id)) = it.peek() {
        if id.to_string() == "pub" {
            it.next();
            if let Some(TokenTree::Group(g)) = it.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    it.next();
                }
            }
        }
    }
}

fn expect_ident(it: &mut TokIter, what: &str) -> String {
    match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected {what}, found {other:?}"),
    }
}

/// Consume tokens of a type expression until a top-level comma (tracking `<`/`>` depth).
fn skip_type(it: &mut TokIter) {
    let mut depth: i64 = 0;
    while let Some(tok) = it.peek() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return,
            _ => {}
        }
        it.next();
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut it: TokIter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attributes(&mut it);
        skip_visibility(&mut it);
        match it.next() {
            None => break,
            Some(TokenTree::Ident(id)) => {
                fields.push(id.to_string());
                match it.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => panic!("serde shim derive: expected ':' after field, got {other:?}"),
                }
                skip_type(&mut it);
                // Consume the separating comma if present.
                if let Some(TokenTree::Punct(p)) = it.peek() {
                    if p.as_char() == ',' {
                        it.next();
                    }
                }
            }
            Some(other) => panic!("serde shim derive: unexpected token in fields: {other:?}"),
        }
    }
    fields
}

/// Count top-level comma-separated entries in a parenthesised field list.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth: i64 = 0;
    let mut commas = 0usize;
    let mut any = false;
    let mut trailing_comma = false;
    for tok in stream {
        any = true;
        trailing_comma = false;
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                commas += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    if !any {
        0
    } else if trailing_comma {
        commas
    } else {
        commas + 1
    }
}

fn parse_enum_variants(stream: TokenStream) -> Vec<(String, usize)> {
    let mut it: TokIter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut it);
        match it.next() {
            None => break,
            Some(TokenTree::Ident(id)) => {
                let name = id.to_string();
                let mut arity = 0usize;
                match it.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        arity = count_tuple_fields(g.stream());
                        it.next();
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        panic!(
                            "serde shim derive: named-field enum variants are unsupported ({name})"
                        );
                    }
                    _ => {}
                }
                // Skip an explicit discriminant `= expr`.
                if let Some(TokenTree::Punct(p)) = it.peek() {
                    if p.as_char() == '=' {
                        it.next();
                        let mut depth: i64 = 0;
                        while let Some(tok) = it.peek() {
                            match tok {
                                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                                _ => {}
                            }
                            it.next();
                        }
                    }
                }
                if let Some(TokenTree::Punct(p)) = it.peek() {
                    if p.as_char() == ',' {
                        it.next();
                    }
                }
                variants.push((name, arity));
            }
            Some(other) => panic!("serde shim derive: unexpected token in enum body: {other:?}"),
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> (String, Shape) {
    let mut it: TokIter = input.into_iter().peekable();
    skip_attributes(&mut it);
    skip_visibility(&mut it);
    let kw = expect_ident(&mut it, "`struct` or `enum`");
    let name = expect_ident(&mut it, "item name");
    if let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic types are unsupported ({name})");
        }
    }
    let shape = match (kw.as_str(), it.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::Named(parse_named_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::Tuple(count_tuple_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => Shape::Unit,
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::Enum(parse_enum_variants(g.stream()))
        }
        (kw, other) => panic!("serde shim derive: unsupported item `{kw}` near {other:?}"),
    };
    (name, shape)
}

/// Render `s` as a Rust string-literal expression.
fn lit(s: &str) -> String {
    format!("{s:?}")
}

fn serialize_body(name: &str, shape: &Shape) -> String {
    let mut b = String::new();
    match shape {
        Shape::Named(fields) => {
            b.push_str("out.push('{');");
            for (i, f) in fields.iter().enumerate() {
                if i > 0 {
                    b.push_str("out.push(',');");
                }
                b.push_str(&format!("out.push_str({});", lit(&format!("\"{f}\":"))));
                b.push_str(&format!("::serde::Serialize::serialize_json(&self.{f}, out);"));
            }
            b.push_str("out.push('}');");
        }
        Shape::Tuple(1) => {
            b.push_str("::serde::Serialize::serialize_json(&self.0, out);");
        }
        Shape::Tuple(n) => {
            b.push_str("out.push('[');");
            for i in 0..*n {
                if i > 0 {
                    b.push_str("out.push(',');");
                }
                b.push_str(&format!("::serde::Serialize::serialize_json(&self.{i}, out);"));
            }
            b.push_str("out.push(']');");
        }
        Shape::Unit => {
            b.push_str("out.push_str(\"null\");");
        }
        Shape::Enum(variants) => {
            b.push_str("match self {");
            for (v, arity) in variants {
                if *arity == 0 {
                    b.push_str(&format!(
                        "{name}::{v} => out.push_str({}),",
                        lit(&format!("\"{v}\""))
                    ));
                } else {
                    let binds: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                    b.push_str(&format!("{name}::{v}({}) => {{", binds.join(", ")));
                    b.push_str(&format!("out.push_str({});", lit(&format!("{{\"{v}\":"))));
                    if *arity == 1 {
                        b.push_str("::serde::Serialize::serialize_json(f0, out);");
                    } else {
                        b.push_str("out.push('[');");
                        for (i, bind) in binds.iter().enumerate() {
                            if i > 0 {
                                b.push_str("out.push(',');");
                            }
                            b.push_str(&format!(
                                "::serde::Serialize::serialize_json({bind}, out);"
                            ));
                        }
                        b.push_str("out.push(']');");
                    }
                    b.push_str("out.push('}'); },");
                }
            }
            b.push('}');
        }
    }
    b
}

/// Derive JSON emission for a struct or enum (see the crate docs for the representation).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = serialize_body(&name, &shape);
    format!(
        "impl ::serde::Serialize for {name} {{ \
             fn serialize_json(&self, out: &mut ::std::string::String) {{ {body} }} \
         }}"
    )
    .parse()
    .expect("serde shim derive: generated invalid Rust")
}

/// Derive the marker trait; the workspace never actually deserializes.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, _shape) = parse_item(input);
    format!("impl ::serde::Deserialize for {name} {{ }}")
        .parse()
        .expect("serde shim derive: generated invalid Rust")
}
