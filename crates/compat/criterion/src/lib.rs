//! A small, dependency-free benchmark harness exposing the subset of the `criterion` API
//! used by the `ssmcast-bench` targets (`Criterion::bench_function`, benchmark groups
//! with `sample_size`, `black_box`, and the `criterion_group!` / `criterion_main!`
//! macros).
//!
//! Timing methodology: each benchmark is warmed up once, then run for `sample_size`
//! samples; each sample times a batch sized so one batch takes ≳ 10 ms. Mean, minimum and
//! maximum per-iteration wall time are printed. This is deliberately simpler than real
//! criterion (no outlier analysis, no HTML reports) but keeps `cargo bench` functional in
//! an offline build.
//!
//! Passing `--quick` on the bench binary's command line (e.g.
//! `cargo bench --bench microbench -- --quick`) clamps every benchmark to 2 samples and a
//! 1 ms batch target — a smoke mode for CI that proves the benches compile and run
//! without paying for statistically meaningful timings. Quick mode additionally writes a
//! machine-readable `BENCH_<binary>.json` (override the path with the
//! `BENCH_JSON_PATH` env var) with per-bench mean/min/max nanoseconds and the run
//! configuration, so CI can archive bench trajectories as artifacts.

#![warn(missing_docs)]

use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// True if `--quick` was passed to the bench binary (CI smoke mode).
fn quick_mode() -> bool {
    static QUICK: OnceLock<bool> = OnceLock::new();
    *QUICK.get_or_init(|| std::env::args().skip(1).any(|a| a == "--quick"))
}

/// True if the bench binary is running in `--quick` CI smoke mode. Bench targets can
/// use this to gate exhaustive variants that contribute nothing to a smoke run.
pub fn is_quick() -> bool {
    quick_mode()
}

/// Peak resident set size of this process so far, bytes, read from
/// `/proc/self/status` `VmHWM` (Linux only; `None` elsewhere or on parse failure).
/// The kernel's high-water mark is monotone: sampling it before and after a bench
/// shows whether that bench pushed the peak, not how much it currently holds.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// One finished benchmark's timings, queued for the JSON report.
struct BenchRecord {
    name: String,
    samples: usize,
    batch: u64,
    mean_ns: u128,
    min_ns: u128,
    max_ns: u128,
    /// Process peak RSS before the bench ran, bytes (0 when unreadable).
    rss_before_bytes: u64,
    /// Process peak RSS after the bench ran, bytes (0 when unreadable). A bench that
    /// raised the high-water mark shows `rss_after > rss_before`; the delta bounds the
    /// bench's own footprint from below.
    rss_after_bytes: u64,
}

fn results() -> &'static Mutex<Vec<BenchRecord>> {
    static RESULTS: OnceLock<Mutex<Vec<BenchRecord>>> = OnceLock::new();
    RESULTS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Minimal JSON string escape for benchmark names (code-controlled, but correct anyway).
fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Render the recorded benchmarks as a JSON report string.
fn render_json_report() -> String {
    let records = results().lock().expect("bench results poisoned");
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"quick\": {},\n", quick_mode()));
    out.push_str("  \"config\": {");
    // `exhaustive_variants_skipped` notes that bench targets gate their exhaustive
    // variants (e.g. brute-force physics re-runs) behind full mode via `is_quick()`:
    // a quick report that lacks those rows is complete, not truncated.
    out.push_str(&format!(
        "\"batch_target_ms\": {}, \"max_samples_in_quick\": 2, \
         \"exhaustive_variants_skipped\": {}",
        if quick_mode() { 1 } else { 10 },
        quick_mode()
    ));
    out.push_str("},\n  \"benches\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"samples\": {}, \"batch\": {}, \"mean_ns\": {}, \
             \"min_ns\": {}, \"max_ns\": {}, \"rss_before_bytes\": {}, \
             \"rss_after_bytes\": {}}}{}\n",
            escape(&r.name),
            r.samples,
            r.batch,
            r.mean_ns,
            r.min_ns,
            r.max_ns,
            r.rss_before_bytes,
            r.rss_after_bytes,
            if i + 1 == records.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// In `--quick` mode, write the machine-readable report next to the working directory
/// (default `BENCH_<binary>.json`, overridable via `BENCH_JSON_PATH`). Called by
/// [`criterion_main!`] after every group ran; a no-op outside quick mode.
pub fn write_json_report() {
    if !quick_mode() {
        return;
    }
    let path = std::env::var("BENCH_JSON_PATH").unwrap_or_else(|_| {
        let binary = std::env::args()
            .next()
            .as_deref()
            .and_then(|p| {
                std::path::Path::new(p).file_stem().map(|s| s.to_string_lossy().into_owned())
            })
            .map(|stem| stem.split('-').next().unwrap_or("bench").to_string())
            .unwrap_or_else(|| "bench".to_string());
        format!("BENCH_{binary}.json")
    });
    let report = render_json_report();
    match std::fs::write(&path, &report) {
        Ok(()) => eprintln!("bench report written to {path}"),
        Err(e) => eprintln!("bench report NOT written to {path}: {e}"),
    }
}

/// Re-export of the standard black box.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run one named benchmark with the default sample count.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, 10, f);
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.to_string(), sample_size: 10 }
    }
}

/// A group of related benchmarks sharing a name prefix and sample count.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Set the measurement time. Accepted for API compatibility; the shim sizes batches
    /// automatically.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark inside this group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_benchmark(&full, self.sample_size, f);
        self
    }

    /// Finish the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code under test.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    batch: u64,
}

impl Bencher {
    /// Measure `f`, collecting `sample_size` timed samples.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up and batch sizing: grow the batch until one batch takes >= 10 ms
        // (1 ms in `--quick` smoke mode).
        let target =
            if quick_mode() { Duration::from_millis(1) } else { Duration::from_millis(10) };
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= target || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        self.batch = batch;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(start.elapsed() / batch as u32);
        }
    }
}

fn run_benchmark<F>(name: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let sample_size = if quick_mode() { sample_size.min(2) } else { sample_size };
    let rss_before = peak_rss_bytes().unwrap_or(0);
    let mut b = Bencher { samples: Vec::new(), sample_size, batch: 0 };
    f(&mut b);
    let rss_after = peak_rss_bytes().unwrap_or(0);
    if b.samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let n = b.samples.len() as u32;
    let mean: Duration = b.samples.iter().sum::<Duration>() / n;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    let max = b.samples.iter().max().copied().unwrap_or_default();
    println!("{name:<50} time: [{min:>12.3?} {mean:>12.3?} {max:>12.3?}]  ({n} samples)");
    results().lock().expect("bench results poisoned").push(BenchRecord {
        name: name.to_string(),
        samples: b.samples.len(),
        batch: b.batch,
        mean_ns: mean.as_nanos(),
        min_ns: min.as_nanos(),
        max_ns: max.as_nanos(),
        rss_before_bytes: rss_before,
        rss_after_bytes: rss_after,
    });
}

/// Collect benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let _ = $config;
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Produce a `main` that runs the given groups (and, in `--quick` mode, writes the
/// machine-readable JSON report once every group has run).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_json_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }

    #[test]
    fn finished_benchmarks_land_in_the_json_report() {
        let mut c = Criterion::default();
        c.bench_function("shim/json\"quoted\"", |b| b.iter(|| black_box(2 + 2)));
        let report = render_json_report();
        assert!(report.contains("\"name\": \"shim/json\\\"quoted\\\"\""), "{report}");
        assert!(report.contains("\"mean_ns\": "));
        assert!(report.contains("\"benches\": ["));
        // The report is structurally valid enough for jq: balanced braces/brackets.
        assert_eq!(report.matches('[').count(), report.matches(']').count());
    }

    #[test]
    fn rss_fields_ride_along_in_the_report() {
        let mut c = Criterion::default();
        c.bench_function("shim/rss", |b| b.iter(|| black_box(vec![0u8; 4096].len())));
        let report = render_json_report();
        assert!(report.contains("\"rss_before_bytes\": "), "{report}");
        assert!(report.contains("\"rss_after_bytes\": "), "{report}");
        // On Linux the high-water mark is readable and monotone.
        if let Some(rss) = peak_rss_bytes() {
            assert!(rss > 0);
            assert!(peak_rss_bytes().unwrap() >= rss, "VmHWM never shrinks");
        }
    }

    #[test]
    fn json_escape_handles_control_characters() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny"), "x\\u000ay");
    }
}
