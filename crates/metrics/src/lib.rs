//! # ssmcast-metrics — summary statistics for the experiment harness
//!
//! The paper's figures plot mean values over several mobility scenarios. This crate turns
//! per-run measurements into summary statistics (mean, standard deviation, confidence
//! intervals) and series of (x, y) points ready to be printed as the paper's figures.

#![warn(missing_docs)]

pub mod convergence;
pub mod engine;
pub mod group;
pub mod lifetime;
pub mod mac;
pub mod series;
pub mod silence;
pub mod stats;
pub mod streaming;

pub use convergence::ConvergenceStats;
pub use engine::EngineStats;
pub use group::GroupStats;
pub use lifetime::{LifetimeStats, RESIDUAL_HISTOGRAM_BINS};
pub use mac::MacStats;
pub use series::{Series, SeriesPoint};
pub use silence::{SessionSilence, SilenceStats};
pub use stats::{energy_per_delivered_byte_uj, SummaryStats};
pub use streaming::{
    CurveRing, FixedBinHistogram, MetricsConfig, MetricsMode, P2Quantile, SeqDedup,
    StreamingConfig, StreamingStats, WindowCell, WindowLedger,
};
