//! Summary statistics over repeated measurements.

use serde::{Deserialize, Serialize};

/// Mean / spread summary of a set of samples (one per scenario repetition).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SummaryStats {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 for fewer than two samples).
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Half-width of the ~95 % confidence interval on the mean (normal approximation).
    pub ci95: f64,
}

impl SummaryStats {
    /// Summarise a slice of samples. Returns a zeroed summary for an empty slice.
    pub fn from_samples(samples: &[f64]) -> Self {
        let n = samples.len();
        if n == 0 {
            return SummaryStats { n: 0, mean: 0.0, std_dev: 0.0, min: 0.0, max: 0.0, ci95: 0.0 };
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let std_dev = var.sqrt();
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let ci95 = if n > 1 { 1.96 * std_dev / (n as f64).sqrt() } else { 0.0 };
        SummaryStats { n, mean, std_dev, min, max, ci95 }
    }

    /// The mean, or `None` if there were no samples.
    pub fn mean_opt(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.mean)
        }
    }
}

/// Convenience: the mean of a slice (0 for an empty slice).
pub fn mean(samples: &[f64]) -> f64 {
    SummaryStats::from_samples(samples).mean
}

/// Energy per *delivered byte* in microjoules — the payload-normalised twin of
/// energy-per-delivered-packet, comparable across packet sizes.
///
/// Delivered bytes are estimated as `delivered_packets × mean transmitted data packet
/// size` (`data_bytes_tx / data_packets_tx`): the report counts deliveries in packets,
/// and every copy of a data packet has the source's payload size. Returns 0 when
/// nothing was delivered or no data was transmitted, mirroring
/// `energy_per_delivered_mj`'s zero-delivery convention.
pub fn energy_per_delivered_byte_uj(
    total_energy_j: f64,
    delivered_packets: u64,
    data_bytes_tx: u64,
    data_packets_tx: u64,
) -> f64 {
    if delivered_packets == 0 || data_packets_tx == 0 || data_bytes_tx == 0 {
        return 0.0;
    }
    let mean_packet_bytes = data_bytes_tx as f64 / data_packets_tx as f64;
    let delivered_bytes = delivered_packets as f64 * mean_packet_bytes;
    total_energy_j * 1e6 / delivered_bytes
}

/// Relative change from `baseline` to `value` (e.g. energy savings): `(baseline - value) /
/// baseline`. Returns 0 when the baseline is 0.
pub fn relative_improvement(baseline: f64, value: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        (baseline - value) / baseline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_samples() {
        let s = SummaryStats::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.138089935299395).abs() < 1e-9);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!(s.ci95 > 0.0);
    }

    #[test]
    fn degenerate_inputs() {
        let empty = SummaryStats::from_samples(&[]);
        assert_eq!(empty.n, 0);
        assert_eq!(empty.mean_opt(), None);
        let single = SummaryStats::from_samples(&[3.5]);
        assert_eq!(single.mean, 3.5);
        assert_eq!(single.std_dev, 0.0);
        assert_eq!(single.ci95, 0.0);
        assert_eq!(single.mean_opt(), Some(3.5));
    }

    #[test]
    fn energy_per_delivered_byte_normalises_by_payload() {
        // 2 J over 10 delivered packets of 500 bytes each (5000 tx bytes / 10 tx
        // packets): 2e6 µJ / 5000 bytes = 400 µJ per byte.
        let uj = energy_per_delivered_byte_uj(2.0, 10, 5_000, 10);
        assert!((uj - 400.0).abs() < 1e-9);
        // Zero-delivery and zero-traffic runs read as 0, not NaN/inf.
        assert_eq!(energy_per_delivered_byte_uj(2.0, 0, 5_000, 10), 0.0);
        assert_eq!(energy_per_delivered_byte_uj(2.0, 10, 0, 0), 0.0);
    }

    #[test]
    fn relative_improvement_basics() {
        assert!((relative_improvement(10.0, 8.0) - 0.2).abs() < 1e-12);
        assert!((relative_improvement(10.0, 12.0) + 0.2).abs() < 1e-12);
        assert_eq!(relative_improvement(0.0, 5.0), 0.0);
    }

    #[test]
    fn mean_helper_matches_summary() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }
}
