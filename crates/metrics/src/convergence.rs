//! Convergence statistics: how fast (and at what cost) a protocol re-establishes a
//! legitimate state after an injected fault.
//!
//! The paper's headline claim is *self-stabilization*: after arbitrary transient faults
//! the SS-SPST family converges back to a correct energy-aware multicast tree. This
//! module holds the measurement side of that claim — a [`ConvergenceStats`] block that a
//! stabilization probe fills in while a faulted simulation runs, and that the simulator
//! embeds into its per-run report. The quantities mirror what the self-stabilization
//! literature treats as first class: convergence (recovery) time per fault episode, and
//! the communication and energy spent *during* stabilization.

use serde::{Deserialize, Serialize};

/// Convergence measurements accumulated over one simulation run.
///
/// A *fault episode* opens when a fault is injected while no earlier episode is still
/// open, and closes at the first probe epoch at which the legitimacy predicate holds
/// again. Several fault events at the same instant (a corruption burst) therefore count
/// as one episode. `faults_injected` counts raw fault events; `recovered` /
/// `unrecovered` count episodes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceStats {
    /// Interval between legitimacy probes, seconds (recovery times quantise to it).
    pub probe_epoch_s: f64,
    /// Number of probe epochs evaluated.
    pub epochs_probed: u64,
    /// Number of probe epochs at which the legitimacy predicate held.
    pub epochs_legitimate: u64,
    /// First simulated time at which the predicate held (initial convergence), if ever.
    pub first_legitimate_s: Option<f64>,
    /// Raw fault events injected (each corrupted node, crash, blackout or drain is one).
    pub faults_injected: u64,
    /// Fault episodes after which legitimacy was re-established before the run ended.
    pub recovered: u64,
    /// Fault episodes still unrecovered when the run ended.
    pub unrecovered: u64,
    /// Total observed-open time of unrecovered episodes, seconds (each contributes
    /// `run end − episode start`): the censored lower bound on their true recovery
    /// times, used when charting recovery alongside recovered episodes.
    pub unrecovered_open_s: f64,
    /// Mean recovery time over recovered episodes, seconds (0 if none recovered).
    pub mean_recovery_s: f64,
    /// Worst recovery time over recovered episodes, seconds (0 if none recovered).
    pub max_recovery_s: f64,
    /// Control packets transmitted network-wide while episodes were open.
    pub control_packets_during_recovery: u64,
    /// Data packet transmissions network-wide while episodes were open.
    pub data_packets_during_recovery: u64,
    /// Energy consumed network-wide while episodes were open, joules.
    pub energy_during_recovery_j: f64,
}

impl ConvergenceStats {
    /// A zeroed block for a probe that observed nothing yet.
    pub fn empty(probe_epoch_s: f64) -> Self {
        ConvergenceStats {
            probe_epoch_s,
            epochs_probed: 0,
            epochs_legitimate: 0,
            first_legitimate_s: None,
            faults_injected: 0,
            recovered: 0,
            unrecovered: 0,
            unrecovered_open_s: 0.0,
            mean_recovery_s: 0.0,
            max_recovery_s: 0.0,
            control_packets_during_recovery: 0,
            data_packets_during_recovery: 0,
            energy_during_recovery_j: 0.0,
        }
    }

    /// Fraction of probed epochs at which the system was legitimate (0 if never probed).
    pub fn legitimacy_ratio(&self) -> f64 {
        if self.epochs_probed == 0 {
            0.0
        } else {
            self.epochs_legitimate as f64 / self.epochs_probed as f64
        }
    }

    /// True if every fault episode recovered before the run ended.
    pub fn fully_recovered(&self) -> bool {
        self.unrecovered == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_block_is_all_zeroes() {
        let c = ConvergenceStats::empty(0.5);
        assert_eq!(c.probe_epoch_s, 0.5);
        assert_eq!(c.epochs_probed, 0);
        assert_eq!(c.legitimacy_ratio(), 0.0);
        assert_eq!(c.first_legitimate_s, None);
        assert!(c.fully_recovered());
    }

    #[test]
    fn legitimacy_ratio_is_a_fraction() {
        let mut c = ConvergenceStats::empty(1.0);
        c.epochs_probed = 10;
        c.epochs_legitimate = 7;
        assert!((c.legitimacy_ratio() - 0.7).abs() < 1e-12);
        c.unrecovered = 1;
        assert!(!c.fully_recovered());
    }
}
