//! Engine-level observability: what the event loop itself did during a run.
//!
//! Protocol metrics describe the simulated network; [`EngineStats`] describes the
//! simulator — how many events it processed, how fast, how deep its queues ran, and (on
//! the sharded engine) how evenly the spatial partition spread the load and how many
//! synchronization windows the shards marched through. The block is opt-in
//! (`EngineConfig::with_stats`) and absent from serialized reports when off, so default
//! reports stay byte-identical; events/s is wall-clock derived and therefore **not**
//! deterministic — equivalence tests must run with stats off.

use serde::{Deserialize, Serialize};

/// Event-loop measurements for one simulation run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Shard (worker-thread) count; 0 for the sequential engine.
    pub shards: u32,
    /// Events processed across all shards.
    pub events_processed: u64,
    /// Events processed per wall-clock second (0 when the run took no measurable time).
    /// Wall-clock derived: reproducible runs still report different rates.
    pub events_per_sec: f64,
    /// Largest pending-event count observed in any single queue.
    pub peak_queue_depth: u64,
    /// Events processed by each shard (one entry, index 0, for the sequential engine).
    pub shard_event_counts: Vec<u64>,
    /// Load imbalance: max over shards of events processed, divided by the mean
    /// (1.0 = perfectly balanced; 1.0 for the sequential engine).
    pub imbalance_ratio: f64,
    /// Synchronization windows the sharded engine stepped through (0 for sequential).
    pub sync_rounds: u64,
}

impl EngineStats {
    /// Assemble a block from per-shard event counts and wall-clock duration.
    pub fn from_counts(
        shards: u32,
        shard_event_counts: Vec<u64>,
        peak_queue_depth: u64,
        sync_rounds: u64,
        wall_secs: f64,
    ) -> Self {
        let events_processed: u64 = shard_event_counts.iter().sum();
        let events_per_sec =
            if wall_secs > 0.0 { events_processed as f64 / wall_secs } else { 0.0 };
        let imbalance_ratio = if shard_event_counts.is_empty() || events_processed == 0 {
            1.0
        } else {
            let max = *shard_event_counts.iter().max().expect("non-empty") as f64;
            let mean = events_processed as f64 / shard_event_counts.len() as f64;
            max / mean
        };
        EngineStats {
            shards,
            events_processed,
            events_per_sec,
            peak_queue_depth,
            shard_event_counts,
            imbalance_ratio,
            sync_rounds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_counts_derives_totals_and_imbalance() {
        let s = EngineStats::from_counts(4, vec![100, 300, 100, 100], 42, 7, 2.0);
        assert_eq!(s.events_processed, 600);
        assert_eq!(s.events_per_sec, 300.0);
        assert_eq!(s.peak_queue_depth, 42);
        assert_eq!(s.sync_rounds, 7);
        assert!((s.imbalance_ratio - 2.0).abs() < 1e-12, "300 / 150 mean");
    }

    #[test]
    fn degenerate_inputs_stay_finite() {
        let s = EngineStats::from_counts(0, vec![0], 0, 0, 0.0);
        assert_eq!(s.events_per_sec, 0.0);
        assert_eq!(s.imbalance_ratio, 1.0);
        let empty = EngineStats::from_counts(0, vec![], 0, 0, 1.0);
        assert_eq!(empty.imbalance_ratio, 1.0);
    }
}
