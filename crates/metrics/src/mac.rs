//! Medium-access statistics: what happened between "the protocol asked to broadcast"
//! and "the frame hit the air".
//!
//! The paper's energy and convergence figures assume an idealized broadcast medium; the
//! simulator's pluggable MAC layer (`ssmcast-manet::mac`) makes channel access explicit —
//! random jitter, CSMA contention, or self-stabilizing TDMA — and this block reports what
//! the chosen policy did to the traffic: how long frames waited for the channel, how many
//! were dropped at the retry cap, how loaded the air was, and (for TDMA) how long the
//! slot schedule took to converge to collision-freedom.

use serde::{Deserialize, Serialize};

/// MAC-layer measurements accumulated over one simulation run.
///
/// `frames_requested` counts broadcast requests that reached the MAC (crashed, depleted
/// and blacked-out senders are filtered out before the MAC sees them); every request ends
/// as exactly one transmission (`frames_sent`) or one drop (`mac_drops`). Collision
/// figures come from the capture-effect channel and count *receptions*, not
/// transmissions: one transmission can collide at several receivers.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MacStats {
    /// The MAC policy that produced these numbers (`"random-jitter"`, `"csma"`,
    /// `"ss-tdma"`).
    pub policy: String,
    /// Broadcast requests handed to the MAC policy.
    pub frames_requested: u64,
    /// Frames that actually hit the air.
    pub frames_sent: u64,
    /// Frames abandoned by the MAC (CSMA retry cap exceeded).
    pub mac_drops: u64,
    /// Access deferrals: each time a pending frame was postponed (busy channel, backoff
    /// in progress, waiting for an owned TDMA slot).
    pub deferrals: u64,
    /// Mean delay from broadcast request to transmission start over sent frames,
    /// milliseconds.
    pub mean_access_delay_ms: f64,
    /// Aggregate transmit airtime divided by the run duration. This sums airtime over
    /// all transmitters, so spatial reuse can push it above 1.0.
    pub airtime_utilization: f64,
    /// Frame receptions registered at the collision channel.
    pub receptions: u64,
    /// Receptions lost to a collision (capture effect: the later overlapping frame).
    pub collisions: u64,
    /// `collisions / receptions` (0 when nothing was received).
    pub collision_rate: f64,
    /// TDMA slot conflicts detected from overheard transmissions and piggybacked claim
    /// tables (0 for other policies).
    pub slot_conflicts: u64,
    /// TDMA slot re-draws performed to resolve conflicts (0 for other policies).
    pub slot_redraws: u64,
    /// Time of the last TDMA slot re-draw, seconds — once the schedule has converged to
    /// collision-freedom no further re-draws happen, so this bounds the convergence
    /// time. `None` when no re-draw was ever needed (or the policy is not TDMA).
    pub slot_last_redraw_s: Option<f64>,
}

impl MacStats {
    /// A zeroed block for the named policy.
    pub fn empty(policy: &str) -> Self {
        MacStats {
            policy: policy.to_string(),
            frames_requested: 0,
            frames_sent: 0,
            mac_drops: 0,
            deferrals: 0,
            mean_access_delay_ms: 0.0,
            airtime_utilization: 0.0,
            receptions: 0,
            collisions: 0,
            collision_rate: 0.0,
            slot_conflicts: 0,
            slot_redraws: 0,
            slot_last_redraw_s: None,
        }
    }

    /// Fraction of MAC-handled frames that were dropped instead of sent (0 when the MAC
    /// saw no traffic).
    pub fn drop_ratio(&self) -> f64 {
        if self.frames_requested == 0 {
            0.0
        } else {
            self.mac_drops as f64 / self.frames_requested as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_block_is_all_zeroes() {
        let m = MacStats::empty("csma");
        assert_eq!(m.policy, "csma");
        assert_eq!(m.frames_requested, 0);
        assert_eq!(m.collision_rate, 0.0);
        assert_eq!(m.slot_last_redraw_s, None);
        assert_eq!(m.drop_ratio(), 0.0);
    }

    #[test]
    fn drop_ratio_is_a_fraction() {
        let mut m = MacStats::empty("csma");
        m.frames_requested = 20;
        m.frames_sent = 15;
        m.mac_drops = 5;
        assert!((m.drop_ratio() - 0.25).abs() < 1e-12);
    }
}
