//! Silent-stabilization statistics: control bytes-on-air split by stabilization phase.
//!
//! Self-stabilizing protocols that beacon forever pay control overhead even when the
//! network is already legitimate. With beacon suppression enabled
//! (`ssmcast-manet`'s `SilenceConfig`), the runtime buckets every control transmission
//! into the *steady-state* phase (the session's legitimacy predicate currently holds)
//! or the *recovery* phase (a fault opened a convergence episode that has not closed
//! yet). The split makes the suppression claim falsifiable: steady-state bytes must
//! collapse while recovery bytes — the traffic that actually repairs the tree — stay.

use serde::{Deserialize, Serialize};

/// Control traffic of one multicast session, split by stabilization phase.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SessionSilence {
    /// Control packets transmitted while the session's legitimacy predicate held.
    pub steady_control_packets: u64,
    /// Control bytes-on-air transmitted while the legitimacy predicate held.
    pub steady_control_bytes: u64,
    /// Control packets transmitted inside an open convergence episode.
    pub recovery_control_packets: u64,
    /// Control bytes-on-air transmitted inside an open convergence episode.
    pub recovery_control_bytes: u64,
}

impl SessionSilence {
    /// A zeroed per-session block.
    pub fn empty() -> Self {
        SessionSilence {
            steady_control_packets: 0,
            steady_control_bytes: 0,
            recovery_control_packets: 0,
            recovery_control_bytes: 0,
        }
    }
}

/// Phase-split control-traffic accounting over one simulation run.
///
/// Attached to a report only when beacon suppression is configured; its aggregate
/// counters always sum to the run's total control packets/bytes, so the split loses
/// nothing relative to the classic `control_packets` / `control_bytes` columns.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SilenceStats {
    /// Control packets transmitted in the steady-state phase, network-wide.
    pub steady_control_packets: u64,
    /// Control bytes-on-air in the steady-state phase, network-wide.
    pub steady_control_bytes: u64,
    /// Control packets transmitted during recovery episodes, network-wide.
    pub recovery_control_packets: u64,
    /// Control bytes-on-air during recovery episodes, network-wide.
    pub recovery_control_bytes: u64,
    /// The same split per multicast session, in session order.
    pub sessions: Vec<SessionSilence>,
}

impl SilenceStats {
    /// Assemble the aggregate block from per-session splits.
    pub fn from_sessions(sessions: Vec<SessionSilence>) -> Self {
        let mut total = SessionSilence::empty();
        for s in &sessions {
            total.steady_control_packets += s.steady_control_packets;
            total.steady_control_bytes += s.steady_control_bytes;
            total.recovery_control_packets += s.recovery_control_packets;
            total.recovery_control_bytes += s.recovery_control_bytes;
        }
        SilenceStats {
            steady_control_packets: total.steady_control_packets,
            steady_control_bytes: total.steady_control_bytes,
            recovery_control_packets: total.recovery_control_packets,
            recovery_control_bytes: total.recovery_control_bytes,
            sessions,
        }
    }

    /// Total control packets across both phases.
    pub fn total_control_packets(&self) -> u64 {
        self.steady_control_packets + self.recovery_control_packets
    }

    /// Total control bytes across both phases.
    pub fn total_control_bytes(&self) -> u64 {
        self.steady_control_bytes + self.recovery_control_bytes
    }

    /// Share of control bytes spent while the network was already legitimate
    /// (0 when no control traffic was recorded).
    pub fn steady_byte_share(&self) -> f64 {
        let total = self.total_control_bytes();
        if total == 0 {
            0.0
        } else {
            self.steady_control_bytes as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_sum_the_sessions() {
        let a = SessionSilence {
            steady_control_packets: 10,
            steady_control_bytes: 240,
            recovery_control_packets: 2,
            recovery_control_bytes: 48,
        };
        let b = SessionSilence {
            steady_control_packets: 5,
            steady_control_bytes: 120,
            recovery_control_packets: 0,
            recovery_control_bytes: 0,
        };
        let stats = SilenceStats::from_sessions(vec![a, b]);
        assert_eq!(stats.steady_control_packets, 15);
        assert_eq!(stats.steady_control_bytes, 360);
        assert_eq!(stats.recovery_control_packets, 2);
        assert_eq!(stats.recovery_control_bytes, 48);
        assert_eq!(stats.total_control_packets(), 17);
        assert_eq!(stats.total_control_bytes(), 408);
        assert!((stats.steady_byte_share() - 360.0 / 408.0).abs() < 1e-12);
        assert_eq!(stats.sessions.len(), 2);
    }

    #[test]
    fn empty_split_has_zero_share() {
        let stats = SilenceStats::from_sessions(vec![SessionSilence::empty()]);
        assert_eq!(stats.total_control_bytes(), 0);
        assert_eq!(stats.steady_byte_share(), 0.0);
    }
}
