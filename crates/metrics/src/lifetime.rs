//! Network-lifetime statistics: how long a constrained-battery network keeps serving.
//!
//! The paper's evaluation runs on effectively unlimited batteries, so its energy story
//! ends at joules-per-packet. Under a finite energy budget the interesting quantity is
//! *lifetime*: when does the first node die, how does the alive population decay, and
//! how much service (delivery ratio) the network sustains while it shrinks — the
//! first-class metrics of the duty-cycle-aware and minimum-energy multicast literature.
//! [`LifetimeStats`] is the per-run block the simulator fills in whenever lifetime
//! tracking is active (finite battery capacity, or continuous idle/sleep drain); runs
//! without either serialize the block as entirely absent, keeping them byte-identical
//! to pre-lifecycle builds.

use serde::{Deserialize, Serialize};

/// Number of bins in [`LifetimeStats::residual_energy_histogram`].
pub const RESIDUAL_HISTOGRAM_BINS: usize = 10;

/// Lifetime measurements accumulated over one simulation run.
///
/// The curves are sampled at a fixed epoch ([`Self::sample_epoch_s`]); entry `k`
/// describes the state at simulated time `(k + 1) × sample_epoch_s`. A node is *dead*
/// once its battery is depleted — battery death is permanent (unlike an injected crash,
/// which may rejoin) and flows through the same liveness guards as a crash: a dead node
/// neither transmits, nor receives, nor appears in probe alive-sets.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LifetimeStats {
    /// Interval between lifetime samples, seconds.
    pub sample_epoch_s: f64,
    /// Simulated time at which the first node died (time-to-first-death), if any did.
    pub first_death_s: Option<f64>,
    /// Nodes whose batteries were depleted by the end of the run.
    pub deaths: u64,
    /// Nodes still battery-alive at the end of the run.
    pub alive_final: u64,
    /// Battery-alive node count at each sample epoch.
    pub alive_curve: Vec<u64>,
    /// Cumulative delivery ratio (delivered / expected so far) at each sample epoch.
    pub delivery_ratio_curve: Vec<f64>,
    /// Histogram of per-node residual energy as a fraction of capacity, over
    /// [`RESIDUAL_HISTOGRAM_BINS`] equal bins of `[0, 1]` (bin 0 = nearly empty).
    /// Empty for unlimited batteries (residual fractions are undefined).
    pub residual_energy_histogram: Vec<u64>,
    /// Mean residual energy across nodes at the end of the run, joules (0 for
    /// unlimited batteries).
    pub mean_residual_j: f64,
    /// Smallest residual energy across nodes at the end of the run, joules (0 for
    /// unlimited batteries).
    pub min_residual_j: f64,
    /// Total energy drained by idle listening across all nodes, joules.
    pub idle_energy_j: f64,
    /// Total energy drained while radios slept, joules.
    pub sleep_energy_j: f64,
    /// Total energy removed by fault-injected drain spikes, joules.
    pub drained_j: f64,
}

impl LifetimeStats {
    /// A zeroed block for a run that tracked nothing yet.
    pub fn empty(sample_epoch_s: f64, n_nodes: u64) -> Self {
        LifetimeStats {
            sample_epoch_s,
            first_death_s: None,
            deaths: 0,
            alive_final: n_nodes,
            alive_curve: Vec::new(),
            delivery_ratio_curve: Vec::new(),
            residual_energy_histogram: Vec::new(),
            mean_residual_j: 0.0,
            min_residual_j: 0.0,
            idle_energy_j: 0.0,
            sleep_energy_j: 0.0,
            drained_j: 0.0,
        }
    }

    /// Total continuous (non-packet) drain: idle listening plus sleep current, joules.
    pub fn continuous_drain_j(&self) -> f64 {
        self.idle_energy_j + self.sleep_energy_j
    }

    /// True if every node survived the run.
    pub fn all_alive(&self) -> bool {
        self.deaths == 0
    }

    /// Time-to-first-death, censored at `run_end_s` when no node died: the y value the
    /// lifetime figures chart (higher is better; a protocol that kills nobody scores
    /// the full run length).
    pub fn time_to_first_death_s(&self, run_end_s: f64) -> f64 {
        self.first_death_s.unwrap_or(run_end_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_block_reports_everyone_alive() {
        let l = LifetimeStats::empty(1.0, 50);
        assert!(l.all_alive());
        assert_eq!(l.alive_final, 50);
        assert_eq!(l.first_death_s, None);
        assert_eq!(l.time_to_first_death_s(180.0), 180.0, "censored at run end");
        assert_eq!(l.continuous_drain_j(), 0.0);
    }

    #[test]
    fn first_death_wins_over_censoring() {
        let mut l = LifetimeStats::empty(0.5, 10);
        l.first_death_s = Some(42.5);
        l.deaths = 3;
        l.alive_final = 7;
        assert!(!l.all_alive());
        assert_eq!(l.time_to_first_death_s(180.0), 42.5);
    }

    #[test]
    fn serializes_with_the_curves() {
        let mut l = LifetimeStats::empty(1.0, 3);
        l.alive_curve = vec![3, 2];
        l.delivery_ratio_curve = vec![1.0, 0.5];
        let mut out = String::new();
        serde::Serialize::serialize_json(&l, &mut out);
        assert!(out.starts_with("{\"sample_epoch_s\":1,"));
        assert!(out.contains("\"alive_curve\":[3,2]"));
        assert!(out.contains("\"first_death_s\":null"));
    }
}
