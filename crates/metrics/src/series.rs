//! (x, y) series: one line on one of the paper's figures.

use crate::stats::SummaryStats;
use serde::{Deserialize, Serialize};

/// One point of a figure line: an x value (velocity, beacon interval, group size) and the
/// summarised y value over repetitions.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// The swept parameter value.
    pub x: f64,
    /// Summary of the measured metric at this x.
    pub y: SummaryStats,
}

/// A named line on a figure (one protocol).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Line label (protocol name).
    pub label: String,
    /// Points, in increasing x order.
    pub points: Vec<SeriesPoint>,
}

impl Series {
    /// Create an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series { label: label.into(), points: Vec::new() }
    }

    /// Add a point from raw samples.
    pub fn push_samples(&mut self, x: f64, samples: &[f64]) {
        self.points.push(SeriesPoint { x, y: SummaryStats::from_samples(samples) });
        self.points.sort_by(|a, b| a.x.partial_cmp(&b.x).unwrap());
    }

    /// The y mean at a given x, if present.
    pub fn mean_at(&self, x: f64) -> Option<f64> {
        self.points.iter().find(|p| (p.x - x).abs() < 1e-9).map(|p| p.y.mean)
    }

    /// True if the series means are (weakly) monotonically decreasing in x.
    pub fn is_decreasing(&self) -> bool {
        self.points.windows(2).all(|w| w[1].y.mean <= w[0].y.mean + 1e-12)
    }

    /// True if the series means are (weakly) monotonically increasing in x.
    pub fn is_increasing(&self) -> bool {
        self.points.windows(2).all(|w| w[1].y.mean >= w[0].y.mean - 1e-12)
    }

    /// Average of the means over all points (useful for "who wins overall" checks).
    pub fn overall_mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|p| p.y.mean).sum::<f64>() / self.points.len() as f64
    }

    /// Render as a compact gnuplot-style text block (x, mean, ci95 per line).
    pub fn to_text(&self) -> String {
        let mut out = format!("# {}\n", self.label);
        for p in &self.points {
            out.push_str(&format!("{:10.3} {:12.5} {:12.5}\n", p.x, p.y.mean, p.y.ci95));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_stay_sorted_by_x() {
        let mut s = Series::new("SS-SPST-E");
        s.push_samples(5.0, &[0.8, 0.82]);
        s.push_samples(1.0, &[0.9, 0.92]);
        s.push_samples(10.0, &[0.7]);
        let xs: Vec<f64> = s.points.iter().map(|p| p.x).collect();
        assert_eq!(xs, vec![1.0, 5.0, 10.0]);
        assert!(s.is_decreasing());
        assert!(!s.is_increasing());
    }

    #[test]
    fn mean_lookup_and_overall() {
        let mut s = Series::new("ODMRP");
        s.push_samples(10.0, &[2.0, 4.0]);
        s.push_samples(20.0, &[6.0]);
        assert_eq!(s.mean_at(10.0), Some(3.0));
        assert_eq!(s.mean_at(15.0), None);
        assert!((s.overall_mean() - 4.5).abs() < 1e-12);
        assert!(s.is_increasing());
    }

    #[test]
    fn text_rendering_contains_label_and_rows() {
        let mut s = Series::new("MAODV");
        s.push_samples(1.0, &[0.5]);
        let txt = s.to_text();
        assert!(txt.starts_with("# MAODV"));
        assert_eq!(txt.lines().count(), 2);
    }
}
