//! Memory-bounded streaming metric sketches.
//!
//! The report layer historically stored one record per packet (latency samples,
//! delivery sets) and one sample per epoch (alive/delivery curves), so report
//! memory grew O(events) and capped run length long before the engine did. This
//! module provides the fixed-budget replacements:
//!
//! * [`FixedBinHistogram`] — integer-count latency histogram with an exact,
//!   commutative merge and a deterministic ceil-rank quantile that is within one
//!   bin width of the exact order statistic.
//! * [`P2Quantile`] — the classic P² single-quantile estimator (Jain & Chlamtac
//!   1985). O(1) memory but order-*dependent*, so reports never use it for
//!   shard-merged values; it is kept for online single-stream estimation and
//!   cross-validated against the histogram in tests.
//! * [`CurveRing`] — a bounded curve buffer that downsamples by merging adjacent
//!   sample pairs (keeping the later sample, correct for cumulative/monotone
//!   curves) whenever the budget fills; the effective sampling stride doubles at
//!   each merge level.
//! * [`WindowLedger`] — per-window expected/delivered counters over a block tree
//!   that coarsens by merging adjacent windows when the block budget fills. The
//!   final coarsening level is a function of the *content* only (the smallest
//!   level whose distinct block count fits the budget), so any insertion or
//!   shard-merge order converges to the same blocks — the property that makes
//!   streaming reports shard-count invariant.
//! * [`SeqDedup`] — per-receiver circular sequence-number bitmaps replacing the
//!   O(deliveries) `HashSet<(seq, node)>`; memory is O(nodes), not O(events).
//!
//! All sketches merge with integer arithmetic in any order (or, for `SeqDedup`,
//! over node-disjoint pieces), which is what keeps the sharded engine's streaming
//! reports byte-identical across shard counts.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How the report layer accumulates per-packet and per-epoch observations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetricsMode {
    /// Store-everything accumulation: exact per-packet records and unbounded
    /// per-epoch curves. Byte-identical to the historical behaviour.
    Exact,
    /// Fixed-budget sketches: memory is bounded by [`StreamingConfig`], not by
    /// event count. Scalar metrics (PDR, mean latency, energy totals,
    /// time-to-first-death) remain bit-equal to `Exact`; quantiles come from
    /// the histogram (within one bin width) and curves are downsampled.
    Streaming,
}

/// Budgets for the streaming sketches. All bounds are configuration, so report
/// memory is O(budgets + nodes) regardless of horizon or traffic volume.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct StreamingConfig {
    /// Latency histogram bin width in milliseconds.
    pub latency_bin_width_ms: f64,
    /// Number of latency histogram bins (delays beyond the range land in a
    /// dedicated overflow counter; the exact maximum is always tracked).
    pub latency_bins: u32,
    /// Maximum number of availability-window blocks retained per trace.
    pub window_budget: u32,
    /// Maximum number of points retained per lifetime curve.
    pub curve_budget: u32,
    /// Per-receiver duplicate-detection window in sequence numbers (rounded up
    /// to a power of two, minimum 64).
    pub dedup_window: u32,
}

impl Default for StreamingConfig {
    fn default() -> Self {
        StreamingConfig {
            latency_bin_width_ms: 2.0,
            latency_bins: 512,
            window_budget: 512,
            curve_budget: 512,
            dedup_window: 1024,
        }
    }
}

/// Report-accumulation knob carried by `Scenario`/`SimSetup`. The default is
/// [`MetricsMode::Exact`], which keeps every existing run byte-identical.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MetricsConfig {
    /// Accumulation mode.
    pub mode: MetricsMode,
    /// Sketch budgets, used only when `mode` is [`MetricsMode::Streaming`].
    pub streaming: StreamingConfig,
}

impl Default for MetricsConfig {
    fn default() -> Self {
        MetricsConfig::exact()
    }
}

impl MetricsConfig {
    /// Exact (store-everything) accumulation — the historical default.
    pub fn exact() -> Self {
        MetricsConfig { mode: MetricsMode::Exact, streaming: StreamingConfig::default() }
    }

    /// Streaming accumulation with default budgets.
    pub fn streaming() -> Self {
        MetricsConfig { mode: MetricsMode::Streaming, streaming: StreamingConfig::default() }
    }

    /// Streaming accumulation with explicit budgets.
    pub fn with_streaming(cfg: StreamingConfig) -> Self {
        MetricsConfig { mode: MetricsMode::Streaming, streaming: cfg }
    }

    /// True when the streaming sketches are active.
    pub fn is_streaming(&self) -> bool {
        self.mode == MetricsMode::Streaming
    }
}

/// Summary of the streaming sketches attached to a report produced in
/// [`MetricsMode::Streaming`]. Quantiles are computed from the (shard-)merged
/// histogram, never from an order-dependent estimator, so they are identical
/// for any shard count.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct StreamingStats {
    /// Latency histogram bin width (ms); quantiles are exact to within one bin.
    pub latency_bin_width_ms: f64,
    /// Median delivery latency (ms) from the merged histogram.
    pub latency_p50_ms: f64,
    /// 95th-percentile delivery latency (ms) from the merged histogram.
    pub latency_p95_ms: f64,
    /// Exact maximum delivery latency (ms).
    pub latency_max_ms: f64,
    /// Deliveries whose latency exceeded the histogram range.
    pub latency_overflow: u64,
    /// Availability-ledger coarsening level (windows per block = 2^level).
    pub window_level: u32,
    /// Availability-ledger blocks retained after merging.
    pub window_blocks: u64,
    /// Approximate report-layer bytes held by the merged traces (data-size
    /// lower bound; excludes allocator/hash overhead).
    pub report_bytes: u64,
}

/// Fixed-width integer-count histogram with an exact commutative merge.
///
/// `quantile_ns` uses the ceil-rank convention (the rank-`⌈q·n⌉` order
/// statistic) with deterministic within-bin linear interpolation, clamped to
/// the exact tracked maximum, so the result is always within one bin width of
/// the exact order statistic.
#[derive(Clone, Debug, PartialEq)]
pub struct FixedBinHistogram {
    bin_width_ns: u64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
    max_ns: u64,
}

impl FixedBinHistogram {
    /// A histogram with `bins` bins of `bin_width_ns` nanoseconds each.
    pub fn new(bin_width_ns: u64, bins: u32) -> Self {
        FixedBinHistogram {
            bin_width_ns: bin_width_ns.max(1),
            counts: vec![0; bins.max(1) as usize],
            overflow: 0,
            total: 0,
            max_ns: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, ns: u64) {
        let bin = (ns / self.bin_width_ns) as usize;
        match self.counts.get_mut(bin) {
            Some(c) => *c += 1,
            None => self.overflow += 1,
        }
        self.total += 1;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Merge another histogram of identical shape. Integer sums, so merges
    /// commute and associate exactly.
    pub fn absorb(&mut self, other: &FixedBinHistogram) {
        assert_eq!(self.bin_width_ns, other.bin_width_ns, "histogram bin widths must match");
        assert_eq!(self.counts.len(), other.counts.len(), "histogram bin counts must match");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.total += other.total;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Number of samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Samples beyond the binned range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Exact maximum recorded sample.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Bin width in nanoseconds.
    pub fn bin_width_ns(&self) -> u64 {
        self.bin_width_ns
    }

    /// The `q`-quantile in nanoseconds (ceil-rank, interpolated within the
    /// bin, clamped to the exact maximum). Overflowed ranks report the maximum.
    pub fn quantile_ns(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cum + c;
            if rank <= next {
                let lo = (i as u64 * self.bin_width_ns) as f64;
                let frac = (rank - cum) as f64 / c as f64;
                return (lo + frac * self.bin_width_ns as f64).min(self.max_ns as f64);
            }
            cum = next;
        }
        self.max_ns as f64
    }

    /// Approximate bytes held (data-size lower bound).
    pub fn mem_bytes(&self) -> u64 {
        self.counts.len() as u64 * 8 + 40
    }
}

/// The P² single-quantile estimator (Jain & Chlamtac 1985): five markers
/// tracking the min, the target quantile, the two intermediate quantiles and
/// the max, adjusted by piecewise-parabolic interpolation. O(1) memory, but the
/// estimate depends on arrival order, so shard-merged report values never use
/// it — it exists for online single-stream estimation.
#[derive(Clone, Debug)]
pub struct P2Quantile {
    q: f64,
    heights: [f64; 5],
    positions: [f64; 5],
    desired: [f64; 5],
    increments: [f64; 5],
    count: u64,
}

impl P2Quantile {
    /// An estimator for the `q`-quantile (`0 < q < 1`).
    pub fn new(q: f64) -> Self {
        let q = q.clamp(1e-9, 1.0 - 1e-9);
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [0.0; 5],
            desired: [0.0; 5],
            increments: [0.0; 5],
            count: 0,
        }
    }

    /// Feed one observation.
    pub fn observe(&mut self, x: f64) {
        if self.count < 5 {
            self.heights[self.count as usize] = x;
            self.count += 1;
            if self.count == 5 {
                self.heights.sort_by(f64::total_cmp);
                self.positions = [1.0, 2.0, 3.0, 4.0, 5.0];
                let q = self.q;
                self.desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0];
                self.increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0];
            }
            return;
        }
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            // heights[0] <= x < heights[4], so a bracketing cell exists.
            (0..4).find(|&i| x >= self.heights[i] && x < self.heights[i + 1]).unwrap_or(3)
        };
        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(&self.increments) {
            *d += inc;
        }
        self.count += 1;
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let above = self.positions[i + 1] - self.positions[i];
            let below = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && above > 1.0) || (d <= -1.0 && below < -1.0) {
                let d = d.signum();
                let h = self.parabolic(i, d);
                let h = if self.heights[i - 1] < h && h < self.heights[i + 1] {
                    h
                } else {
                    self.linear(i, d)
                };
                self.heights[i] = h;
                self.positions[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let p = &self.positions;
        let h = &self.heights;
        h[i] + d / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + d) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - d) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current estimate (exact while fewer than five observations).
    pub fn value(&self) -> f64 {
        match self.count {
            0 => 0.0,
            n if n < 5 => {
                let mut seen = self.heights;
                let seen = &mut seen[..n as usize];
                seen.sort_by(f64::total_cmp);
                let rank = ((self.q * n as f64).ceil() as u64).clamp(1, n);
                seen[(rank - 1) as usize]
            }
            _ => self.heights[2],
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }
}

/// Bounded curve buffer. While within budget it stores every pushed sample;
/// when the budget fills it merges adjacent sample pairs keeping the *later*
/// sample of each (the right law for cumulative/monotone curves such as alive
/// counts and delivery ratios) and doubles the sampling stride. With an
/// unbounded budget it is byte-identical to a plain `Vec`.
#[derive(Clone, Debug, PartialEq)]
pub struct CurveRing<T> {
    budget: usize,
    level: u32,
    raw: u64,
    samples: Vec<T>,
}

impl<T: Copy> CurveRing<T> {
    /// An unbounded ring: stores every sample exactly (level stays 0).
    pub fn unbounded() -> Self {
        Self::with_budget(usize::MAX)
    }

    /// A bounded ring holding at most `budget` points (forced even, minimum 2).
    pub fn with_budget(budget: usize) -> Self {
        let budget = if budget == usize::MAX { budget } else { budget.max(2) & !1 };
        CurveRing { budget, level: 0, raw: 0, samples: Vec::new() }
    }

    /// Push the next raw sample. At level `L` only every `2^L`-th raw sample is
    /// committed; a commit that fills the budget halves the buffer (keeping the
    /// later sample of each adjacent pair) and increments the level.
    pub fn push(&mut self, v: T) {
        self.raw += 1;
        let stride = 1u64 << self.level.min(63);
        if !self.raw.is_multiple_of(stride) {
            return;
        }
        self.samples.push(v);
        if self.samples.len() >= self.budget {
            let mut w = 0;
            let mut r = 1;
            while r < self.samples.len() {
                self.samples[w] = self.samples[r];
                w += 1;
                r += 2;
            }
            self.samples.truncate(w);
            self.level = (self.level + 1).min(63);
        }
    }

    /// The committed samples; sample `i` is the raw sample at index
    /// `(i + 1) * stride()` (1-based) of the pushed sequence.
    pub fn samples(&self) -> &[T] {
        &self.samples
    }

    /// Raw samples represented per committed point.
    pub fn stride(&self) -> u64 {
        1u64 << self.level.min(63)
    }

    /// Number of budget-halving merges performed.
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Total raw samples pushed.
    pub fn raw_len(&self) -> u64 {
        self.raw
    }

    /// Committed samples currently held.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no sample has been committed yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// One availability block: deliveries expected and observed for a (possibly
/// coarsened) run of adjacent windows.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WindowCell {
    /// Deliveries expected in the block.
    pub expected: u64,
    /// Deliveries observed in the block.
    pub delivered: u64,
}

/// Per-window expected/delivered counters with a fixed block budget.
///
/// Blocks are keyed by `window >> level`. When the budget is exceeded the level
/// increments and adjacent blocks merge by integer sums. The final level is
/// `min { L : |{window >> L}| <= budget }`, a function of the recorded content
/// only — every insertion order, and every partition into [`absorb`]-merged
/// pieces, converges to the same blocks. This makes streaming unavailability
/// shard-count invariant. With an unbounded budget (see [`WindowLedger::exact`])
/// the level stays 0 and the ledger is exactly the historical per-window maps.
///
/// [`absorb`]: WindowLedger::absorb
#[derive(Clone, Debug, PartialEq)]
pub struct WindowLedger {
    budget: usize,
    level: u32,
    blocks: BTreeMap<u64, WindowCell>,
}

impl WindowLedger {
    /// An unbounded ledger: one block per window, never coarsens.
    pub fn exact() -> Self {
        WindowLedger { budget: usize::MAX, level: 0, blocks: BTreeMap::new() }
    }

    /// A ledger holding at most `budget` blocks (minimum 1).
    pub fn bounded(budget: usize) -> Self {
        WindowLedger { budget: budget.max(1), level: 0, blocks: BTreeMap::new() }
    }

    /// Add expected deliveries for a window.
    pub fn add_expected(&mut self, window: u64, n: u64) {
        self.blocks.entry(window >> self.level).or_default().expected += n;
        self.coarsen_to_budget();
    }

    /// Add observed deliveries for a window.
    pub fn add_delivered(&mut self, window: u64, n: u64) {
        self.blocks.entry(window >> self.level).or_default().delivered += n;
        self.coarsen_to_budget();
    }

    fn coarsen_once(&mut self) {
        self.level += 1;
        let old = std::mem::take(&mut self.blocks);
        for (k, cell) in old {
            let e = self.blocks.entry(k >> 1).or_default();
            e.expected += cell.expected;
            e.delivered += cell.delivered;
        }
    }

    fn coarsen_to_budget(&mut self) {
        while self.blocks.len() > self.budget {
            self.coarsen_once();
        }
    }

    /// Merge another ledger (same budget). Pieces are aligned to the maximum
    /// level, summed, then coarsened back under budget; because the final level
    /// depends only on the merged content, any merge order yields identical
    /// blocks.
    pub fn absorb(&mut self, other: &WindowLedger) {
        debug_assert_eq!(self.budget, other.budget, "ledger budgets must match");
        let target = self.level.max(other.level);
        while self.level < target {
            self.coarsen_once();
        }
        let shift = target - other.level;
        for (k, cell) in &other.blocks {
            let e = self.blocks.entry(k >> shift).or_default();
            e.expected += cell.expected;
            e.delivered += cell.delivered;
        }
        self.coarsen_to_budget();
    }

    /// Fraction of blocks with expected deliveries where observed deliveries
    /// fell below `threshold` × expected; 1.0 when no block expected anything.
    pub fn unavailability(&self, threshold: f64) -> f64 {
        let mut windows = 0u64;
        let mut bad = 0u64;
        for cell in self.blocks.values() {
            if cell.expected == 0 {
                continue;
            }
            windows += 1;
            if (cell.delivered as f64) < threshold * cell.expected as f64 {
                bad += 1;
            }
        }
        if windows == 0 {
            1.0
        } else {
            bad as f64 / windows as f64
        }
    }

    /// Current coarsening level (windows per block = `2^level`).
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Blocks currently held.
    pub fn blocks_len(&self) -> usize {
        self.blocks.len()
    }

    /// Iterate over `(block_key, cell)` pairs in key order.
    pub fn blocks(&self) -> impl Iterator<Item = (u64, WindowCell)> + '_ {
        self.blocks.iter().map(|(k, c)| (*k, *c))
    }

    /// Approximate bytes held (data-size lower bound).
    pub fn mem_bytes(&self) -> u64 {
        self.blocks.len() as u64 * 40 + 32
    }
}

/// Per-receiver duplicate detection over a circular sequence-number window.
///
/// Replaces the exact `HashSet<(seq, node)>` (O(deliveries)) with one bitmap of
/// `window` sequence slots per receiving node (O(nodes)). Sequence numbers more
/// than `window` behind the newest seen for a node are conservatively counted
/// as duplicates. Pieces merged with [`absorb`] must be node-disjoint, which the
/// sharded engine guarantees (each node is owned by exactly one shard).
///
/// [`absorb`]: SeqDedup::absorb
#[derive(Clone, Debug, PartialEq)]
pub struct SeqDedup {
    window: u64,
    nodes: BTreeMap<u32, NodeWindow>,
}

#[derive(Clone, Debug, PartialEq)]
struct NodeWindow {
    base: u64,
    bits: Vec<u64>,
}

impl SeqDedup {
    /// A deduper with a `window`-sequence horizon per node (rounded up to a
    /// power of two, minimum 64).
    pub fn new(window: u32) -> Self {
        SeqDedup { window: u64::from(window.max(64)).next_power_of_two(), nodes: BTreeMap::new() }
    }

    /// Record `(node, seq)`; returns `true` when the pair is new.
    pub fn insert(&mut self, node: u32, seq: u64) -> bool {
        let w = self.window;
        let words = (w / 64) as usize;
        let nw = self.nodes.entry(node).or_insert_with(|| NodeWindow {
            base: seq.saturating_add(1).saturating_sub(w),
            bits: vec![0; words],
        });
        if seq < nw.base {
            // Lapsed out of the window: conservatively a duplicate.
            return false;
        }
        if seq >= nw.base + w {
            // Slide the window forward, clearing slots that now map to the
            // not-yet-seen sequences taking their place. Amortized O(1): the
            // total slots cleared over a run is bounded by the largest seq.
            let new_base = seq + 1 - w;
            if new_base - nw.base >= w {
                nw.bits.iter_mut().for_each(|b| *b = 0);
            } else {
                for s in nw.base..new_base {
                    let ix = (s % w) as usize;
                    nw.bits[ix / 64] &= !(1u64 << (ix % 64));
                }
            }
            nw.base = new_base;
        }
        let ix = (seq % w) as usize;
        let mask = 1u64 << (ix % 64);
        if nw.bits[ix / 64] & mask != 0 {
            false
        } else {
            nw.bits[ix / 64] |= mask;
            true
        }
    }

    /// Merge a node-disjoint piece (panics on overlap — overlapping pieces
    /// would mean two shards both recorded deliveries for one node, which the
    /// ownership partition rules out).
    pub fn absorb(&mut self, other: &SeqDedup) {
        debug_assert_eq!(self.window, other.window, "dedup windows must match");
        for (node, nw) in &other.nodes {
            assert!(
                self.nodes.insert(*node, nw.clone()).is_none(),
                "SeqDedup::absorb requires node-disjoint pieces"
            );
        }
    }

    /// Number of receiving nodes tracked.
    pub fn nodes_tracked(&self) -> usize {
        self.nodes.len()
    }

    /// Approximate bytes held (data-size lower bound).
    pub fn mem_bytes(&self) -> u64 {
        self.nodes.len() as u64 * (self.window / 8 + 24) + 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic 64-bit LCG (Knuth MMIX constants) — no wall-clock entropy.
    struct Lcg(u64);

    impl Lcg {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }

        fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn config_defaults_to_exact() {
        let cfg = MetricsConfig::default();
        assert_eq!(cfg.mode, MetricsMode::Exact);
        assert!(!cfg.is_streaming());
        assert!(MetricsConfig::streaming().is_streaming());
    }

    #[test]
    fn histogram_quantile_within_one_bin_width() {
        let mut rng = Lcg(7);
        let mut hist = FixedBinHistogram::new(1_000, 256);
        let mut samples: Vec<u64> = Vec::new();
        for _ in 0..10_000 {
            let v = rng.next_u64() % 250_000;
            hist.record(v);
            samples.push(v);
        }
        samples.sort_unstable();
        for q in [0.5, 0.95, 0.99] {
            let exact = exact_quantile(&samples, q) as f64;
            let est = hist.quantile_ns(q);
            assert!(
                (est - exact).abs() <= hist.bin_width_ns() as f64,
                "q={q}: est {est} vs exact {exact}"
            );
        }
        assert_eq!(hist.max_ns(), *samples.last().unwrap());
        assert_eq!(hist.overflow(), 0);
    }

    #[test]
    fn histogram_overflow_reports_exact_max() {
        let mut hist = FixedBinHistogram::new(10, 4);
        hist.record(5);
        hist.record(1_000);
        assert_eq!(hist.overflow(), 1);
        assert_eq!(hist.max_ns(), 1_000);
        assert_eq!(hist.quantile_ns(1.0), 1_000.0);
    }

    #[test]
    fn histogram_merge_is_exact_and_order_free() {
        let mut rng = Lcg(42);
        let mut whole = FixedBinHistogram::new(500, 128);
        let mut a = FixedBinHistogram::new(500, 128);
        let mut b = FixedBinHistogram::new(500, 128);
        for i in 0..5_000 {
            let v = rng.next_u64() % 100_000;
            whole.record(v);
            if i % 3 == 0 {
                a.record(v)
            } else {
                b.record(v)
            }
        }
        let mut ab = a.clone();
        ab.absorb(&b);
        let mut ba = b.clone();
        ba.absorb(&a);
        assert_eq!(ab, whole);
        assert_eq!(ba, whole);
    }

    #[test]
    fn p2_tracks_quantiles_of_uniform_stream() {
        for (q, seed) in [(0.5, 1u64), (0.95, 2)] {
            let mut rng = Lcg(seed);
            let mut est = P2Quantile::new(q);
            let mut samples = Vec::new();
            for _ in 0..20_000 {
                let x = rng.next_f64();
                est.observe(x);
                samples.push(x);
            }
            samples.sort_by(f64::total_cmp);
            let exact =
                samples[((q * samples.len() as f64).ceil() as usize - 1).min(samples.len() - 1)];
            assert!(
                (est.value() - exact).abs() < 0.02,
                "q={q}: p2 {} vs exact {exact}",
                est.value()
            );
        }
    }

    #[test]
    fn p2_is_exact_below_five_samples() {
        let mut est = P2Quantile::new(0.5);
        assert_eq!(est.value(), 0.0);
        for x in [3.0, 1.0, 2.0] {
            est.observe(x);
        }
        assert_eq!(est.value(), 2.0);
    }

    #[test]
    fn curve_ring_unbounded_matches_plain_vec() {
        let mut ring = CurveRing::unbounded();
        let vals: Vec<u64> = (0..1_000).collect();
        for &v in &vals {
            ring.push(v);
        }
        assert_eq!(ring.samples(), &vals[..]);
        assert_eq!(ring.level(), 0);
        assert_eq!(ring.stride(), 1);
    }

    #[test]
    fn curve_ring_downsamples_keeping_later_samples() {
        let mut ring = CurveRing::with_budget(4);
        for v in 1..=8u64 {
            ring.push(v);
        }
        // Budget 4: after 8 pushes the ring has merged twice; sample i is the
        // raw sample at 1-based index (i + 1) * stride.
        assert_eq!(ring.samples(), &[4, 8]);
        assert_eq!(ring.stride(), 4);
        assert_eq!(ring.level(), 2);
        assert_eq!(ring.raw_len(), 8);
    }

    #[test]
    fn curve_ring_stays_within_budget() {
        let mut ring = CurveRing::with_budget(16);
        for v in 0..100_000u64 {
            ring.push(v);
            assert!(ring.len() <= 16);
        }
        // Every committed sample is a real raw sample from the stream.
        let stride = ring.stride();
        for (i, &s) in ring.samples().iter().enumerate() {
            assert_eq!(s, (i as u64 + 1) * stride - 1);
        }
    }

    #[test]
    fn window_ledger_exact_matches_naive_counts() {
        let mut ledger = WindowLedger::exact();
        let events = [(0u64, 4u64, 4u64), (1, 4, 1), (5, 2, 2), (9, 3, 0)];
        for &(w, exp, del) in &events {
            ledger.add_expected(w, exp);
            ledger.add_delivered(w, del);
        }
        assert_eq!(ledger.level(), 0);
        assert_eq!(ledger.blocks_len(), 4);
        // Bad windows under threshold 0.9: window 1 (1/4) and window 9 (0/3).
        assert!((ledger.unavailability(0.9) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn window_ledger_coarsens_to_content_determined_level() {
        // 64 distinct windows, budget 16: level must be exactly
        // min { L : ceil-distinct(64 windows >> L) <= 16 } = 2.
        let mut ledger = WindowLedger::bounded(16);
        for w in 0..64u64 {
            ledger.add_expected(w, 1);
        }
        assert_eq!(ledger.level(), 2);
        assert_eq!(ledger.blocks_len(), 16);
    }

    #[test]
    fn window_ledger_merge_is_order_and_partition_invariant() {
        let mut rng = Lcg(9);
        let events: Vec<(u64, u64, u64)> = (0..500)
            .map(|_| (rng.next_u64() % 300, 1 + rng.next_u64() % 5, rng.next_u64() % 5))
            .collect();

        let build = |evs: &[(u64, u64, u64)]| {
            let mut l = WindowLedger::bounded(32);
            for &(w, exp, del) in evs {
                l.add_expected(w, exp);
                l.add_delivered(w, del);
            }
            l
        };

        let sequential = build(&events);

        // Reversed insertion order.
        let reversed: Vec<_> = events.iter().rev().copied().collect();
        assert_eq!(build(&reversed), sequential);

        // Partitioned into 1, 2 and 8 pieces merged in arbitrary orders.
        for pieces in [2usize, 8] {
            let mut parts: Vec<Vec<(u64, u64, u64)>> = vec![Vec::new(); pieces];
            for (i, ev) in events.iter().enumerate() {
                parts[i % pieces].push(*ev);
            }
            let mut merged = build(&parts[0]);
            for part in parts[1..].iter().rev() {
                merged.absorb(&build(part));
            }
            assert_eq!(merged, sequential, "{pieces}-way merge must match sequential");
        }
    }

    #[test]
    fn seq_dedup_detects_duplicates_within_window() {
        let mut d = SeqDedup::new(64);
        assert!(d.insert(3, 10));
        assert!(!d.insert(3, 10));
        assert!(d.insert(3, 11));
        assert!(d.insert(4, 10), "per-node windows are independent");
        assert_eq!(d.nodes_tracked(), 2);
    }

    #[test]
    fn seq_dedup_slides_and_lapsed_seqs_count_as_duplicates() {
        let mut d = SeqDedup::new(64);
        assert!(d.insert(0, 0));
        assert!(d.insert(0, 200), "far jump slides the window");
        assert!(!d.insert(0, 0), "lapsed sequence is conservatively a duplicate");
        assert!(d.insert(0, 150), "still inside the slid window");
        assert!(!d.insert(0, 150));
        // Slots vacated by the slide are clean: a sequence reusing slot
        // 200 % 64 == 8's old position must not be mistaken for seen.
        assert!(d.insert(0, 196));
    }

    #[test]
    fn seq_dedup_absorbs_disjoint_pieces() {
        let mut a = SeqDedup::new(128);
        let mut b = SeqDedup::new(128);
        a.insert(0, 7);
        b.insert(1, 7);
        a.absorb(&b);
        assert_eq!(a.nodes_tracked(), 2);
        assert!(!a.insert(1, 7), "absorbed state detects duplicates");
    }

    #[test]
    #[should_panic(expected = "node-disjoint")]
    fn seq_dedup_rejects_overlapping_pieces() {
        let mut a = SeqDedup::new(128);
        let mut b = SeqDedup::new(128);
        a.insert(0, 1);
        b.insert(0, 2);
        a.absorb(&b);
    }
}
