//! Sweep result types ([`SweepCell`], [`Metric`], [`to_series`]) and the legacy [`sweep`]
//! compatibility shim over [`crate::Experiment`].

use crate::scenario::{ProtocolKind, Scenario};
use serde::{Deserialize, Serialize};
use ssmcast_manet::SimReport;
use ssmcast_metrics::Series;

/// The metric plotted on a figure's y axis.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Metric {
    /// Packet delivery ratio.
    Pdr,
    /// Unavailability ratio.
    Unavailability,
    /// Energy per delivered packet, millijoules.
    EnergyPerPacketMj,
    /// Energy per delivered *byte*, microjoules — the payload-normalised twin of
    /// [`Metric::EnergyPerPacketMj`], comparable across packet-size sweeps. Derived
    /// from existing report fields (total energy, delivered count, mean transmitted
    /// data packet size), so the report schema is unchanged.
    EnergyPerByteUj,
    /// Control bytes per delivered data byte.
    ControlOverhead,
    /// Average end-to-end delay, milliseconds.
    DelayMs,
    /// Mean recovery time after an injected fault episode, seconds. Episodes still
    /// unrecovered at the end of the run contribute their observed-open duration
    /// (run end − episode start) — a censored lower bound on their true recovery time —
    /// so a protocol that never recovers charts as slow, not as instantaneous. 0 only
    /// for fault-free runs.
    MeanRecoveryS,
    /// Fraction of fault episodes left unrecovered at the end of the run (1.0 when a
    /// protocol never recovers; 0 for fault-free runs).
    UnrecoveredRatio,
    /// Time until the first node's battery depleted, seconds — the network-lifetime
    /// headline number (higher is better). Runs in which no node died are censored at
    /// the run duration, so a protocol that kills nobody scores the full run length;
    /// unlimited-battery runs (no lifetime block) report the run duration too.
    TimeToFirstDeathS,
    /// Fraction of receptions lost to channel collisions, from the report's `MacStats`
    /// block. 0 for runs whose MAC policy reports no stats (the byte-identical default).
    CollisionRate,
    /// Control bytes-on-air spent while the session's legitimacy predicate held, from
    /// the report's `SilenceStats` block. Runs without the block (suppression off)
    /// report their *total* control bytes — for an always-on protocol every control
    /// byte is steady-state spend, so the two axes are directly comparable.
    SteadyControlBytes,
}

impl Metric {
    /// Extract the metric from one run report.
    pub fn extract(self, report: &SimReport) -> f64 {
        match self {
            Metric::Pdr => report.pdr,
            Metric::Unavailability => report.unavailability_ratio,
            Metric::EnergyPerPacketMj => report.energy_per_delivered_mj,
            Metric::EnergyPerByteUj => ssmcast_metrics::energy_per_delivered_byte_uj(
                report.total_energy_j,
                report.delivered,
                report.data_bytes_tx,
                report.data_packets_tx,
            ),
            Metric::ControlOverhead => report.control_bytes_per_data_byte,
            Metric::DelayMs => report.avg_delay_ms,
            Metric::MeanRecoveryS => report.convergence.as_ref().map_or(0.0, |c| {
                let episodes = c.recovered + c.unrecovered;
                if episodes == 0 {
                    return 0.0;
                }
                // Unrecovered episodes are censored at their observed-open duration — a
                // lower bound on their true recovery time that keeps never-recovering
                // protocols from charting as instantly convergent.
                (c.mean_recovery_s * c.recovered as f64 + c.unrecovered_open_s) / episodes as f64
            }),
            Metric::UnrecoveredRatio => report.convergence.as_ref().map_or(0.0, |c| {
                let episodes = c.recovered + c.unrecovered;
                if episodes == 0 {
                    0.0
                } else {
                    c.unrecovered as f64 / episodes as f64
                }
            }),
            Metric::TimeToFirstDeathS => report
                .lifetime
                .as_ref()
                .map_or(report.duration_s, |l| l.time_to_first_death_s(report.duration_s)),
            Metric::CollisionRate => report.mac.as_ref().map_or(0.0, |m| m.collision_rate),
            Metric::SteadyControlBytes => report
                .silence
                .as_ref()
                .map_or(report.control_bytes as f64, |s| s.steady_control_bytes as f64),
        }
    }

    /// Axis label used in tables and CSV headers.
    pub fn label(self) -> &'static str {
        match self {
            Metric::Pdr => "Packet Delivery Ratio",
            Metric::Unavailability => "Unavailability Ratio",
            Metric::EnergyPerPacketMj => "Energy per Packet Delivered (mJ)",
            Metric::EnergyPerByteUj => "Energy per Byte Delivered (uJ)",
            Metric::ControlOverhead => "Control Bytes per Data Byte Delivered",
            Metric::DelayMs => "Average Delay (ms)",
            Metric::MeanRecoveryS => "Mean Recovery Time after Fault (s)",
            Metric::UnrecoveredRatio => "Unrecovered Fault Episodes (ratio)",
            Metric::TimeToFirstDeathS => "Time to First Node Death (s)",
            Metric::CollisionRate => "Collision Rate (collided / receptions)",
            Metric::SteadyControlBytes => "Steady-State Control Bytes on Air",
        }
    }
}

/// One cell of a sweep: a swept value, a protocol, and the reports of every repetition.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepCell {
    /// Swept parameter value.
    pub x: f64,
    /// Protocol that produced the reports.
    pub protocol: String,
    /// One report per repetition.
    pub reports: Vec<SimReport>,
}

/// Compatibility shim: run a sweep grid and collect every cell.
///
/// For every x in `xs`, apply `configure(x)` to a copy of `base`, and run every protocol
/// `reps` times. Delegates to [`crate::Experiment`], which runs cells on a thread pool,
/// indexes results directly by `(x, protocol)` and derives collision-free per-run seeds;
/// prefer building an [`crate::Experiment`] directly (it can also *stream* cells through
/// a [`crate::RunSink`] instead of materialising the grid).
pub fn sweep<F>(
    base: &Scenario,
    xs: &[f64],
    protocols: &[ProtocolKind],
    reps: usize,
    configure: F,
) -> Vec<SweepCell>
where
    F: Fn(&mut Scenario, f64) + Sync,
{
    if reps == 0 {
        // Legacy behaviour: a zero-repetition sweep does no work and yields the grid
        // shape with empty report lists (the builder itself clamps to ≥ 1).
        return xs
            .iter()
            .flat_map(|&x| {
                protocols.iter().map(move |p| SweepCell {
                    x,
                    protocol: p.name().to_string(),
                    reports: Vec::new(),
                })
            })
            .collect();
    }
    crate::Experiment::new(*base)
        .protocol_kinds(protocols)
        .sweep_with(xs.to_vec(), configure)
        .reps(reps)
        .run()
}

/// Summarise sweep cells into one [`Series`] per protocol for the given metric.
pub fn to_series(cells: &[SweepCell], metric: Metric) -> Vec<Series> {
    let mut labels: Vec<String> = Vec::new();
    for c in cells {
        if !labels.contains(&c.protocol) {
            labels.push(c.protocol.clone());
        }
    }
    labels
        .into_iter()
        .map(|label| {
            let mut series = Series::new(label.clone());
            for c in cells.iter().filter(|c| c.protocol == label) {
                let samples: Vec<f64> = c.reports.iter().map(|r| metric.extract(r)).collect();
                series.push_samples(c.x, &samples);
            }
            series
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_protocol;
    use ssmcast_core::MetricKind;

    #[test]
    fn metric_extraction_reads_the_right_field() {
        let mut s = Scenario::quick_test();
        s.duration_s = 25.0;
        s.n_nodes = 15;
        s.group_size = 6;
        let report = run_protocol(&s, ProtocolKind::Flooding.to_protocol().as_ref());
        assert_eq!(Metric::Pdr.extract(&report), report.pdr);
        assert_eq!(Metric::DelayMs.extract(&report), report.avg_delay_ms);
        assert_eq!(Metric::EnergyPerPacketMj.extract(&report), report.energy_per_delivered_mj);
        // Per-byte energy is the per-packet figure divided by the mean data packet
        // size (mJ → µJ is ×1000, bytes in the denominator).
        let mean_bytes = report.data_bytes_tx as f64 / report.data_packets_tx as f64;
        let per_byte = Metric::EnergyPerByteUj.extract(&report);
        assert!(per_byte > 0.0);
        assert!((per_byte - report.energy_per_delivered_mj * 1000.0 / mean_bytes).abs() < 1e-9);
        assert!(!Metric::ControlOverhead.label().is_empty());
        // No MacStats block (default policy) reads as a zero collision rate …
        assert!(report.mac.is_none());
        assert_eq!(Metric::CollisionRate.extract(&report), 0.0);
        // … while a stats-reporting policy exposes the channel's ratio.
        let noisy = run_protocol(
            &s.with_mac(ssmcast_manet::MacConfig::default().with_stats()),
            ProtocolKind::Flooding.to_protocol().as_ref(),
        );
        let mac = noisy.mac.as_ref().expect("stats-reporting MAC attaches a block");
        assert_eq!(Metric::CollisionRate.extract(&noisy), mac.collision_rate);
        assert!(!Metric::CollisionRate.label().is_empty());
    }

    #[test]
    fn zero_repetitions_runs_nothing_but_keeps_the_grid_shape() {
        let base = Scenario::quick_test();
        let protocols = [ProtocolKind::Flooding, ProtocolKind::Odmrp];
        let cells = sweep(&base, &[1.0, 5.0], &protocols, 0, |s, v| s.max_speed_mps = v);
        assert_eq!(cells.len(), 4);
        assert!(cells.iter().all(|c| c.reports.is_empty()));
    }

    #[test]
    fn sweep_produces_one_cell_per_x_and_protocol() {
        let mut base = Scenario::quick_test();
        base.duration_s = 20.0;
        base.n_nodes = 12;
        base.group_size = 5;
        let protocols = [ProtocolKind::SsSpst(MetricKind::Hop), ProtocolKind::Flooding];
        let cells = sweep(&base, &[1.0, 10.0], &protocols, 1, |s, v| s.max_speed_mps = v);
        assert_eq!(cells.len(), 4);
        assert!(cells.iter().all(|c| c.reports.len() == 1));
        let series = to_series(&cells, Metric::Pdr);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].points.len(), 2);
    }
}
