//! Parameter sweeps: run many (x, protocol, repetition) cells, in parallel, and summarise
//! them into figure series.

use crate::runner::run_scenario;
use crate::scenario::{ProtocolKind, Scenario};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use ssmcast_dessim::SeedSequence;
use ssmcast_manet::SimReport;
use ssmcast_metrics::Series;

/// The metric plotted on a figure's y axis.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Metric {
    /// Packet delivery ratio.
    Pdr,
    /// Unavailability ratio.
    Unavailability,
    /// Energy per delivered packet, millijoules.
    EnergyPerPacketMj,
    /// Control bytes per delivered data byte.
    ControlOverhead,
    /// Average end-to-end delay, milliseconds.
    DelayMs,
}

impl Metric {
    /// Extract the metric from one run report.
    pub fn extract(self, report: &SimReport) -> f64 {
        match self {
            Metric::Pdr => report.pdr,
            Metric::Unavailability => report.unavailability_ratio,
            Metric::EnergyPerPacketMj => report.energy_per_delivered_mj,
            Metric::ControlOverhead => report.control_bytes_per_data_byte,
            Metric::DelayMs => report.avg_delay_ms,
        }
    }

    /// Axis label used in tables and CSV headers.
    pub fn label(self) -> &'static str {
        match self {
            Metric::Pdr => "Packet Delivery Ratio",
            Metric::Unavailability => "Unavailability Ratio",
            Metric::EnergyPerPacketMj => "Energy per Packet Delivered (mJ)",
            Metric::ControlOverhead => "Control Bytes per Data Byte Delivered",
            Metric::DelayMs => "Average Delay (ms)",
        }
    }
}

/// One cell of a sweep: a swept value, a protocol, and the reports of every repetition.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepCell {
    /// Swept parameter value.
    pub x: f64,
    /// Protocol that produced the reports.
    pub protocol: String,
    /// One report per repetition.
    pub reports: Vec<SimReport>,
}

/// Run a sweep: for every x in `xs`, apply `configure(x)` to a copy of `base`, and run
/// every protocol `reps` times. Cells are independent and run on the rayon thread pool.
pub fn sweep<F>(
    base: &Scenario,
    xs: &[f64],
    protocols: &[ProtocolKind],
    reps: usize,
    configure: F,
) -> Vec<SweepCell>
where
    F: Fn(&mut Scenario, f64) + Sync,
{
    // Materialise every (x, protocol, rep) job, run them in parallel, then regroup.
    let jobs: Vec<(usize, usize, usize)> = (0..xs.len())
        .flat_map(|xi| {
            (0..protocols.len()).flat_map(move |pi| (0..reps).map(move |r| (xi, pi, r)))
        })
        .collect();
    let reports: Vec<(usize, usize, SimReport)> = jobs
        .par_iter()
        .map(|&(xi, pi, rep)| {
            let mut s = *base;
            configure(&mut s, xs[xi]);
            s.seed = SeedSequence::new(base.seed)
                .child(rep as u64)
                .master()
                .wrapping_add(xi as u64); // repetitions differ, x points differ
            (xi, pi, run_scenario(&s, protocols[pi]))
        })
        .collect();

    let mut cells: Vec<SweepCell> = Vec::with_capacity(xs.len() * protocols.len());
    for (xi, &x) in xs.iter().enumerate() {
        for (pi, p) in protocols.iter().enumerate() {
            let r: Vec<SimReport> = reports
                .iter()
                .filter(|(rxi, rpi, _)| *rxi == xi && *rpi == pi)
                .map(|(_, _, rep)| rep.clone())
                .collect();
            cells.push(SweepCell { x, protocol: p.name().to_string(), reports: r });
        }
    }
    cells
}

/// Summarise sweep cells into one [`Series`] per protocol for the given metric.
pub fn to_series(cells: &[SweepCell], metric: Metric) -> Vec<Series> {
    let mut labels: Vec<String> = Vec::new();
    for c in cells {
        if !labels.contains(&c.protocol) {
            labels.push(c.protocol.clone());
        }
    }
    labels
        .into_iter()
        .map(|label| {
            let mut series = Series::new(label.clone());
            for c in cells.iter().filter(|c| c.protocol == label) {
                let samples: Vec<f64> = c.reports.iter().map(|r| metric.extract(r)).collect();
                series.push_samples(c.x, &samples);
            }
            series
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmcast_core::MetricKind;

    #[test]
    fn metric_extraction_reads_the_right_field() {
        let mut s = Scenario::quick_test();
        s.duration_s = 25.0;
        s.n_nodes = 15;
        s.group_size = 6;
        let report = run_scenario(&s, ProtocolKind::Flooding);
        assert_eq!(Metric::Pdr.extract(&report), report.pdr);
        assert_eq!(Metric::DelayMs.extract(&report), report.avg_delay_ms);
        assert_eq!(Metric::EnergyPerPacketMj.extract(&report), report.energy_per_delivered_mj);
        assert!(!Metric::ControlOverhead.label().is_empty());
    }

    #[test]
    fn sweep_produces_one_cell_per_x_and_protocol() {
        let mut base = Scenario::quick_test();
        base.duration_s = 20.0;
        base.n_nodes = 12;
        base.group_size = 5;
        let protocols = [ProtocolKind::SsSpst(MetricKind::Hop), ProtocolKind::Flooding];
        let cells = sweep(&base, &[1.0, 10.0], &protocols, 1, |s, v| s.max_speed_mps = v);
        assert_eq!(cells.len(), 4);
        assert!(cells.iter().all(|c| c.reports.len() == 1));
        let series = to_series(&cells, Metric::Pdr);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].points.len(), 2);
    }
}
