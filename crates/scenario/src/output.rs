//! Rendering figure results as CSV, JSON and markdown tables.

use crate::presets::FigureResult;
use ssmcast_metrics::Series;
use std::io::Write;
use std::path::Path;

/// Render one figure's series as CSV: `x, <protocol1>, <protocol2>, ...` (mean values).
pub fn series_to_csv(series: &[Series]) -> String {
    let mut out = String::from("x");
    for s in series {
        out.push(',');
        out.push_str(&s.label);
    }
    out.push('\n');
    let xs: Vec<f64> =
        series.first().map(|s| s.points.iter().map(|p| p.x).collect()).unwrap_or_default();
    for &x in &xs {
        out.push_str(&format!("{x}"));
        for s in series {
            match s.mean_at(x) {
                Some(v) => out.push_str(&format!(",{v:.6}")),
                None => out.push(','),
            }
        }
        out.push('\n');
    }
    out
}

/// Render one figure's series as a GitHub-flavoured markdown table.
pub fn series_to_markdown(title: &str, x_label: &str, series: &[Series]) -> String {
    let mut out = format!("### {title}\n\n| {x_label} ");
    for s in series {
        out.push_str(&format!("| {} ", s.label));
    }
    out.push_str("|\n|---");
    for _ in series {
        out.push_str("|---");
    }
    out.push_str("|\n");
    let xs: Vec<f64> =
        series.first().map(|s| s.points.iter().map(|p| p.x).collect()).unwrap_or_default();
    for &x in &xs {
        out.push_str(&format!("| {x} "));
        for s in series {
            match s.mean_at(x) {
                Some(v) => out.push_str(&format!("| {v:.4} ")),
                None => out.push_str("| — "),
            }
        }
        out.push_str("|\n");
    }
    out
}

/// Render a figure result as a human-readable text block (title, metric, table).
pub fn figure_to_text(result: &FigureResult) -> String {
    let x_label = result.spec.swept.x_label();
    let mut out = format!(
        "{} — {} [{}]\n",
        result.spec.id.short_name(),
        result.spec.title,
        result.spec.metric.label()
    );
    out.push_str(&series_to_markdown(result.spec.title, x_label, &result.series));
    out
}

/// Write a figure result to `<dir>/<figNN>.csv` and `<dir>/<figNN>.json`.
pub fn write_figure_files(result: &FigureResult, dir: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let csv = series_to_csv(&result.series);
    let mut f = std::fs::File::create(dir.join(format!("{}.csv", result.spec.id.short_name())))?;
    f.write_all(csv.as_bytes())?;
    let json = serde_json::to_string_pretty(&result.series)
        .unwrap_or_else(|e| format!("{{\"error\": \"{e}\"}}"));
    let mut f = std::fs::File::create(dir.join(format!("{}.json", result.spec.id.short_name())))?;
    f.write_all(json.as_bytes())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_series() -> Vec<Series> {
        let mut a = Series::new("SS-SPST");
        a.push_samples(1.0, &[0.9]);
        a.push_samples(5.0, &[0.8]);
        let mut b = Series::new("SS-SPST-E");
        b.push_samples(1.0, &[0.85]);
        b.push_samples(5.0, &[0.75]);
        vec![a, b]
    }

    #[test]
    fn csv_has_header_and_one_row_per_x() {
        let csv = series_to_csv(&sample_series());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,SS-SPST,SS-SPST-E");
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("1,0.9"));
    }

    #[test]
    fn markdown_table_is_well_formed() {
        let md = series_to_markdown("PDR vs velocity", "Velocity (m/s)", &sample_series());
        assert!(md.contains("### PDR vs velocity"));
        assert!(md.contains("| Velocity (m/s) | SS-SPST | SS-SPST-E |"));
        assert_eq!(md.matches('\n').count(), 6);
    }

    #[test]
    fn empty_series_render_without_panicking() {
        assert_eq!(series_to_csv(&[]), "x\n");
        let md = series_to_markdown("t", "x", &[]);
        assert!(md.contains("### t"));
    }
}
