//! The experiment builder: a declarative description of a (protocol × swept-parameter ×
//! repetition) grid, executed on a thread pool with results streamed through a
//! [`RunSink`].
//!
//! This replaces the old `sweep` / `run_repetitions` free functions. The differences that
//! matter at production scale:
//!
//! * **Streaming** — each [`SweepCell`] is pushed to the sink the moment its last
//!   repetition finishes *and* every earlier cell has been emitted, so progress, CSV and
//!   JSON output are live and deterministic. Sinks never need the grid to be resident;
//!   the engine itself buffers only the out-of-order completion window (jobs are
//!   dispatched in grid order, so the window is typically a handful of cells — though a
//!   pathologically slow first cell can grow it).
//! * **Direct indexing** — parallel results land in `(xi, pi)`-indexed slots; the old
//!   implementation re-scanned the full result vector once per cell (O(cells²·reps)).
//! * **Collision-free seeding** — the run for repetition `r` at column `xi` uses the
//!   nested derivation `SeedSequence::new(seed).child(r).child(xi)`. The old
//!   `child(r).master() + xi` arithmetic could collide across `(r, xi)` pairs.
//!
//! ```
//! use ssmcast_scenario::{Experiment, MemorySink, ProtocolKind, Scenario, SweptParameter};
//!
//! let mut base = Scenario::quick_test();
//! base.duration_s = 20.0;
//! base.n_nodes = 10;
//! let cells = Experiment::new(base)
//!     .protocol_kinds(&[ProtocolKind::Flooding])
//!     .sweep(SweptParameter::Velocity, [1.0, 10.0])
//!     .reps(1)
//!     .run();
//! assert_eq!(cells.len(), 2);
//! ```

use crate::protocol::{Protocol, ProtocolRegistry, UnknownProtocol};
use crate::runner::run_protocol;
use crate::scenario::{ProtocolKind, Scenario};
use crate::sink::{CellInfo, MemorySink, RunSink};
use crate::sweep::SweepCell;
use crate::SweptParameter;
use ssmcast_dessim::SeedSequence;
use ssmcast_manet::SimReport;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

/// Derive the master seed for repetition `rep` of sweep column `xi`.
///
/// Nested children keep the whole grid collision-free (see the module docs); exposed so
/// tests and external tooling can reproduce any single run of a sweep.
pub fn derive_cell_seed(master: u64, rep: usize, xi: usize) -> u64 {
    SeedSequence::new(master).child(rep as u64).child(xi as u64).master()
}

/// A declarative experiment: base scenario, protocols, swept parameter and repetitions.
///
/// Build with the fluent methods, then call [`Experiment::run`] (collect everything) or
/// [`Experiment::run_with_sink`] (stream cells). Construction is cheap; nothing runs
/// until then.
pub struct Experiment {
    base: Scenario,
    protocols: Vec<Arc<dyn Protocol>>,
    /// One entry per sweep column: the swept value and the configured scenario.
    columns: Option<Vec<(f64, Scenario)>>,
    reps: usize,
    threads: Option<usize>,
}

impl Experiment {
    /// Start an experiment from a base scenario.
    pub fn new(base: Scenario) -> Self {
        Experiment { base, protocols: Vec::new(), columns: None, reps: 1, threads: None }
    }

    /// Add one protocol.
    pub fn protocol(mut self, protocol: Arc<dyn Protocol>) -> Self {
        self.protocols.push(protocol);
        self
    }

    /// Add several protocols.
    pub fn protocols<I>(mut self, protocols: I) -> Self
    where
        I: IntoIterator<Item = Arc<dyn Protocol>>,
    {
        self.protocols.extend(protocols);
        self
    }

    /// Add built-in protocols by kind (convenience over [`ProtocolKind::to_protocol`]).
    pub fn protocol_kinds(self, kinds: &[ProtocolKind]) -> Self {
        self.protocols(kinds.iter().map(|k| k.to_protocol()))
    }

    /// Add registered protocols by name, failing on the first unknown name.
    pub fn protocols_by_name(
        mut self,
        registry: &ProtocolRegistry,
        names: &[&str],
    ) -> Result<Self, UnknownProtocol> {
        for name in names {
            self.protocols.push(registry.get(name)?);
        }
        Ok(self)
    }

    /// Sweep `parameter` over `xs` (each column is the base scenario with the parameter
    /// applied). Calling any sweep method again replaces the previous sweep.
    pub fn sweep(self, parameter: SweptParameter, xs: impl Into<Vec<f64>>) -> Self {
        self.sweep_with(xs, move |scenario, x| parameter.apply(scenario, x))
    }

    /// Sweep with an arbitrary configuration function — the fully general form for
    /// parameters outside [`SweptParameter`].
    pub fn sweep_with<F>(mut self, xs: impl Into<Vec<f64>>, configure: F) -> Self
    where
        F: Fn(&mut Scenario, f64),
    {
        let columns = xs
            .into()
            .into_iter()
            .map(|x| {
                let mut scenario = self.base;
                configure(&mut scenario, x);
                (x, scenario)
            })
            .collect();
        self.columns = Some(columns);
        self
    }

    /// Override the radio medium configuration (position-cache epoch, neighbour-query
    /// mode) for every run in the grid, including columns from an earlier
    /// [`Experiment::sweep`] call.
    pub fn medium(mut self, medium: ssmcast_manet::MediumConfig) -> Self {
        self.base.medium = medium;
        if let Some(columns) = &mut self.columns {
            for (_, scenario) in columns.iter_mut() {
                scenario.medium = medium;
            }
        }
        self
    }

    /// Override the fault-injection spec for every run in the grid, including columns
    /// from an earlier [`Experiment::sweep`] call. Every protocol in every cell then
    /// faces the *same* seeded fault schedule (per repetition), and each report carries
    /// a `ConvergenceStats` block from the stabilization probe.
    ///
    /// Because the override reaches every column, do **not** combine it with a
    /// [`crate::SweptParameter::FaultBursts`] sweep (it would overwrite the per-column
    /// burst counts) — set the base scenario's `faults` before that sweep instead.
    pub fn faults(mut self, faults: ssmcast_manet::FaultPlanSpec) -> Self {
        self.base.faults = faults;
        if let Some(columns) = &mut self.columns {
            for (_, scenario) in columns.iter_mut() {
                scenario.faults = faults;
            }
        }
        self
    }

    /// Override the event-loop engine for every run in the grid, including columns from
    /// an earlier [`Experiment::sweep`] call. The default sequential engine reproduces
    /// earlier builds byte for byte; [`ssmcast_manet::EngineConfig::sharded`] runs each
    /// cell on the region-parallel engine (shard-count invariant results).
    pub fn engine(mut self, engine: ssmcast_manet::EngineConfig) -> Self {
        self.base.engine = engine;
        if let Some(columns) = &mut self.columns {
            for (_, scenario) in columns.iter_mut() {
                scenario.engine = engine;
            }
        }
        self
    }

    /// Number of repetitions per cell (at least 1; each gets a derived seed).
    pub fn reps(mut self, reps: usize) -> Self {
        self.reps = reps.max(1);
        self
    }

    /// Cap the worker thread count (default: available parallelism). Results are
    /// identical for any thread count; this only bounds resource use.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Run the grid, streaming each completed cell through `sink`; nothing is retained.
    pub fn run_with_sink(self, sink: &mut dyn RunSink) {
        let base = self.base;
        let columns = self.columns.unwrap_or_else(|| vec![(0.0, base)]);
        let protocols = self.protocols;
        let reps = self.reps;
        let n_p = protocols.len();
        let total_cells = columns.len() * n_p;
        let total_jobs = total_cells * reps;
        if total_jobs == 0 {
            sink.finish();
            return;
        }
        let threads = self
            .threads
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
            .clamp(1, total_jobs);

        let next_job = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, usize, SimReport)>();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let tx = tx.clone();
                let next_job = &next_job;
                let columns = &columns;
                let protocols = &protocols;
                scope.spawn(move || loop {
                    let job = next_job.fetch_add(1, Ordering::Relaxed);
                    if job >= total_jobs {
                        break;
                    }
                    let rep = job % reps;
                    let cell = job / reps;
                    let pi = cell % n_p;
                    let xi = cell / n_p;
                    let (_, mut scenario) = columns[xi];
                    scenario.seed = derive_cell_seed(scenario.seed, rep, xi);
                    let report = run_protocol(&scenario, protocols[pi].as_ref());
                    if tx.send((cell, rep, report)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);

            // Collector: reports land in (cell, rep)-indexed slots; a cell is emitted as
            // soon as it completes *and* every earlier cell has been emitted, so sinks
            // see deterministic grid order while the grid is still running. Slot vectors
            // are allocated lazily on a cell's first report, so resident memory tracks
            // the in-flight window rather than the whole grid.
            let mut slots: Vec<Vec<Option<SimReport>>> =
                (0..total_cells).map(|_| Vec::new()).collect();
            let mut filled = vec![0usize; total_cells];
            let mut ready: Vec<Option<SweepCell>> = (0..total_cells).map(|_| None).collect();
            let mut next_emit = 0usize;
            for (cell, rep, report) in rx {
                if slots[cell].is_empty() {
                    slots[cell] = vec![None; reps];
                }
                debug_assert!(slots[cell][rep].is_none(), "job ran twice");
                slots[cell][rep] = Some(report);
                filled[cell] += 1;
                if filled[cell] < reps {
                    continue;
                }
                let reports: Vec<SimReport> =
                    slots[cell].iter_mut().map(|slot| slot.take().expect("filled")).collect();
                let xi = cell / n_p;
                let pi = cell % n_p;
                ready[cell] = Some(SweepCell {
                    x: columns[xi].0,
                    protocol: protocols[pi].name().to_string(),
                    reports,
                });
                while next_emit < total_cells {
                    match ready[next_emit].take() {
                        Some(done) => {
                            let info = CellInfo {
                                cell_index: next_emit,
                                total_cells,
                                xi: next_emit / n_p,
                                pi: next_emit % n_p,
                            };
                            sink.on_cell(&info, &done);
                            next_emit += 1;
                        }
                        None => break,
                    }
                }
            }
        });
        sink.finish();
    }

    /// Run the grid and collect every cell (a [`MemorySink`] under the hood).
    pub fn run(self) -> Vec<SweepCell> {
        let mut sink = MemorySink::new();
        self.run_with_sink(&mut sink);
        sink.into_cells()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CsvStreamSink;
    use std::collections::HashSet;

    fn small_base() -> Scenario {
        let mut s = Scenario::quick_test();
        s.duration_s = 20.0;
        s.n_nodes = 12;
        s.group_size = 5;
        s
    }

    #[test]
    fn grid_seeds_are_distinct_across_reps_and_columns() {
        // Regression for the old `child(rep).master().wrapping_add(xi)` derivation,
        // which could collide across (rep, xi) pairs.
        let mut seen = HashSet::new();
        // 0x61c8864680b583eb is the adversarial master that collapsed the pre-fix
        // multiplicative `SeedSequence::child` derivation.
        for master in [0u64, 1, 0x55_5357, 0x61c8_8646_80b5_83eb, u64::MAX] {
            for rep in 0..20 {
                for xi in 0..20 {
                    seen.insert((master, derive_cell_seed(master, rep, xi)));
                }
            }
        }
        assert_eq!(seen.len(), 5 * 20 * 20, "derived grid seeds must never collide");
    }

    #[test]
    fn experiment_matches_manually_seeded_runs() {
        // The builder is plumbing, not physics: each cell must equal running the
        // configured scenario directly with the documented derived seed.
        let base = small_base();
        let xs = [1.0, 10.0];
        let cells = Experiment::new(base)
            .protocol_kinds(&[ProtocolKind::Flooding])
            .sweep(SweptParameter::Velocity, xs)
            .reps(2)
            .run();
        assert_eq!(cells.len(), 2);
        for (xi, cell) in cells.iter().enumerate() {
            assert_eq!(cell.reports.len(), 2);
            for (rep, report) in cell.reports.iter().enumerate() {
                let mut manual = base;
                manual.max_speed_mps = xs[xi];
                manual.seed = derive_cell_seed(base.seed, rep, xi);
                let expected = run_protocol(&manual, ProtocolKind::Flooding.to_protocol().as_ref());
                assert_eq!(*report, expected, "cell xi={xi} rep={rep} diverged");
            }
        }
    }

    #[test]
    fn cells_stream_in_grid_order_with_progress_info() {
        struct OrderCheck {
            seen: Vec<CellInfo>,
            finished: bool,
        }
        impl RunSink for OrderCheck {
            fn on_cell(&mut self, info: &CellInfo, cell: &SweepCell) {
                assert_eq!(info.cell_index, self.seen.len());
                assert!(!cell.reports.is_empty());
                self.seen.push(*info);
            }
            fn finish(&mut self) {
                self.finished = true;
            }
        }
        let mut sink = OrderCheck { seen: Vec::new(), finished: false };
        Experiment::new(small_base())
            .protocol_kinds(&[ProtocolKind::Flooding, ProtocolKind::Odmrp])
            .sweep(SweptParameter::Velocity, [1.0, 5.0, 10.0])
            .run_with_sink(&mut sink);
        assert!(sink.finished);
        assert_eq!(sink.seen.len(), 6);
        assert_eq!(sink.seen[0], CellInfo { cell_index: 0, total_cells: 6, xi: 0, pi: 0 });
        assert_eq!(sink.seen[5], CellInfo { cell_index: 5, total_cells: 6, xi: 2, pi: 1 });
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let build = || {
            Experiment::new(small_base())
                .protocol_kinds(&[ProtocolKind::Flooding])
                .sweep(SweptParameter::Velocity, [1.0, 10.0])
                .reps(2)
        };
        let serial = build().threads(1).run();
        let parallel = build().threads(8).run();
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.reports, b.reports);
        }
    }

    #[test]
    fn medium_override_reaches_every_cell_and_preserves_results() {
        use ssmcast_manet::MediumConfig;
        // Grid vs brute-force neighbour queries must not change a single report, even
        // when the override is applied after the sweep columns were built.
        let run = |medium: MediumConfig| {
            Experiment::new(small_base())
                .protocol_kinds(&[ProtocolKind::Flooding])
                .sweep(SweptParameter::Velocity, [1.0, 10.0])
                .medium(medium)
                .reps(2)
                .run()
        };
        let grid = run(MediumConfig::grid());
        let brute = run(MediumConfig::brute_force());
        assert_eq!(grid.len(), brute.len());
        for (g, b) in grid.iter().zip(&brute) {
            assert_eq!(g.reports, b.reports);
        }
    }

    #[test]
    fn registry_names_drive_an_experiment() {
        let registry = ProtocolRegistry::with_builtins();
        let cells = Experiment::new(small_base())
            .protocols_by_name(&registry, &["Flooding"])
            .expect("builtin name")
            .run();
        assert_eq!(cells.len(), 1, "no sweep means a single column");
        assert_eq!(cells[0].protocol, "Flooding");
        let err =
            Experiment::new(small_base()).protocols_by_name(&registry, &["Flooding", "nope"]).err();
        assert_eq!(err, Some(UnknownProtocol("nope".into())));
    }

    #[test]
    fn no_protocols_streams_nothing_but_finishes() {
        let mut sink = CsvStreamSink::new(Vec::new());
        Experiment::new(small_base()).run_with_sink(&mut sink);
        assert!(sink.into_inner().is_empty(), "no cells, not even a header");
    }
}
