//! Pluggable protocol construction: the [`Protocol`] factory trait, a closure-based
//! adapter for per-node agent construction, and the name-keyed [`ProtocolRegistry`].
//!
//! Before this module existed, adding a protocol meant editing a central `match` over
//! [`ProtocolKind`]. Now a protocol is anything that can take a scenario plus the prebuilt
//! simulation ingredients and produce a report; the registry maps figure-legend names
//! ("SS-SPST-E", "ODMRP", ...) to factories, and [`ProtocolKind`] is a thin convenience
//! layer over the same machinery.

use crate::scenario::{ProtocolKind, Scenario};
use ssmcast_baselines::{FloodingAgent, MaodvAgent, MinEnergyAgent, OdmrpAgent};
use ssmcast_core::{
    min_energy_tree, MetricKind, MetricParams, MulticastTopology, SsMstAgent, SsMstConfig,
    SsSpstAgent, SsSpstConfig, StabilizationProbe,
};
use ssmcast_dessim::{SimDuration, SimTime};
use ssmcast_manet::{
    BoxedMobility, DutySchedule, NetworkSim, NodeId, ProtocolAgent, SimReport, SimSetup,
    TopologySnapshot,
};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A multicast protocol, packaged for the experiment harness.
///
/// `run` receives the scenario plus the already-built [`SimSetup`] and mobility processes
/// (so every protocol in a comparison sees *identical* roles, traffic and trajectories)
/// and returns the per-run report. Implementations are type-erased: the harness never
/// needs to know the concrete agent type, so new protocols register without touching any
/// central dispatch.
pub trait Protocol: Send + Sync {
    /// Display name matching the paper's figure legends (also the registry key).
    fn name(&self) -> &str;

    /// Run `scenario` and return the report.
    fn run(&self, scenario: &Scenario, setup: SimSetup, mobility: Vec<BoxedMobility>) -> SimReport;
}

type RunFn = Box<dyn Fn(&Scenario, SimSetup, Vec<BoxedMobility>) -> SimReport + Send + Sync>;

/// A [`Protocol`] built from a per-node agent constructor.
///
/// The constructor receives the scenario and the node id, so heterogeneous deployments
/// (different parameters — or different agents — per node) are first-class: see
/// [`FnProtocol::from_agent_fn`].
pub struct FnProtocol {
    name: String,
    run: RunFn,
}

impl FnProtocol {
    /// Wrap a per-node agent constructor into a protocol.
    ///
    /// `make_agent(scenario, node)` is called once per (session, node) pair —
    /// session-major, nodes in id order — so each node runs one independent protocol
    /// instance per concurrent multicast session, and a deployment can still mix
    /// configurations across nodes (e.g. a low-power tier with a shorter beacon
    /// interval) inside the standard harness.
    ///
    /// When the scenario configures faults *or group dynamics* (several sessions,
    /// membership churn), the run is driven through a [`StabilizationProbe`]
    /// (legitimacy probed every `faults.probe_epoch_s` seconds, per session) and the
    /// report carries `ConvergenceStats` blocks; plain fault-free single-group
    /// scenarios take the unprobed path and stay byte-identical to pre-fault builds.
    pub fn from_agent_fn<A, F>(name: impl Into<String>, make_agent: F) -> Self
    where
        A: ProtocolAgent + 'static,
        F: Fn(&Scenario, NodeId) -> A + Send + Sync + 'static,
    {
        let run: RunFn =
            Box::new(move |scenario: &Scenario, setup: SimSetup, mobility: Vec<BoxedMobility>| {
                let mut agents: Vec<A> = Vec::with_capacity(setup.n_sessions() * scenario.n_nodes);
                for _session in 0..setup.n_sessions() {
                    for i in 0..scenario.n_nodes {
                        agents.push(make_agent(scenario, NodeId(i as u32)));
                    }
                }
                run_sim(scenario, setup, mobility, agents)
            });
        FnProtocol { name: name.into(), run }
    }
}

impl Protocol for FnProtocol {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&self, scenario: &Scenario, setup: SimSetup, mobility: Vec<BoxedMobility>) -> SimReport {
        (self.run)(scenario, setup, mobility)
    }
}

impl fmt::Debug for FnProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FnProtocol").field("name", &self.name).finish_non_exhaustive()
    }
}

/// Drive a fully-built simulation through the same probed/unprobed branch
/// [`FnProtocol::from_agent_fn`] uses, so custom [`Protocol`] impls report convergence
/// stats under faults and group dynamics exactly like closure-built ones.
fn run_sim<A: ProtocolAgent + 'static>(
    scenario: &Scenario,
    setup: SimSetup,
    mobility: Vec<BoxedMobility>,
    agents: Vec<A>,
) -> SimReport {
    let horizon = SimDuration::from_secs_f64(scenario.duration_s);
    let mut sim = NetworkSim::new(setup, mobility, agents);
    if scenario.faults.has_faults() || scenario.has_group_dynamics() {
        let epoch = SimDuration::from_secs_f64(scenario.faults.probe_epoch_s.max(0.05));
        let mut probe = StabilizationProbe::new(epoch);
        sim.run_probed(horizon, &mut probe)
    } else {
        sim.run(horizon)
    }
}

/// MEM-Tree and DCA-Forward: minimum-energy multicast from a centralized BIP tree.
///
/// Unlike the closure-built protocols, agent construction here is *session-aware*: the
/// factory snapshots every node's position at t = 0, builds one BIP minimum-energy tree
/// per session from that session's role table ([`min_energy_tree`]), prunes it to the
/// forwarding set, and hands each (session, node) agent its parent and forwarding
/// children with snapshot distances. With `duty_aware` set, agents additionally share
/// the run's materialised [`DutySchedule`] (rebuilt from the same seeds the runtime
/// uses, so the two views agree exactly) and defer forwards into receivers' wake
/// windows.
struct MinEnergyProtocol {
    name: &'static str,
    duty_aware: bool,
}

impl Protocol for MinEnergyProtocol {
    fn name(&self) -> &str {
        self.name
    }

    fn run(
        &self,
        scenario: &Scenario,
        setup: SimSetup,
        mut mobility: Vec<BoxedMobility>,
    ) -> SimReport {
        let n = setup.n_nodes;
        let positions =
            mobility.iter_mut().map(|m| m.position_at(SimTime::ZERO)).collect::<Vec<_>>();
        let snap = TopologySnapshot::new(positions, setup.radio.max_range_m);
        let params = MetricParams {
            energy: scenario.radio.energy,
            data_packet_bytes: scenario.packet_size_bytes,
        };
        let duty = self.duty_aware.then(|| {
            Arc::new(DutySchedule::from_seeds(&setup.lifecycle.duty_cycle, n, &setup.seeds))
        });
        let mut agents = Vec::with_capacity(setup.n_sessions() * n);
        for sess in &setup.sessions {
            let topo = MulticastTopology::for_session(&snap, &sess.roles);
            let tree = min_energy_tree(&topo, &params);
            let forwarding = tree.forwarding_set(&topo);
            for i in 0..n {
                let v = NodeId(i as u32);
                let children: Vec<(NodeId, f64)> = tree
                    .children(v)
                    .into_iter()
                    .filter(|c| forwarding[c.index()])
                    .filter_map(|c| topo.distance(v, c).map(|d| (c, d)))
                    .collect();
                agents.push(match &duty {
                    Some(d) => MinEnergyAgent::dca_forward(tree.parent(v), children, Arc::clone(d)),
                    None => MinEnergyAgent::mem_tree(tree.parent(v), children),
                });
            }
        }
        run_sim(scenario, setup, mobility, agents)
    }
}

/// The SS-SPST configuration a scenario implies (beacon interval + energy pricing).
fn ss_spst_config(scenario: &Scenario, kind: MetricKind) -> SsSpstConfig {
    SsSpstConfig {
        params: MetricParams {
            energy: scenario.radio.energy,
            data_packet_bytes: scenario.packet_size_bytes,
        },
        silence: scenario.silence,
        ..SsSpstConfig::with_beacon_interval(
            kind,
            SimDuration::from_secs_f64(scenario.beacon_interval_s),
        )
    }
}

impl ProtocolKind {
    /// The factory implementing this protocol kind — the bridge from the closed enum to
    /// the open [`Protocol`] world.
    pub fn to_protocol(self) -> Arc<dyn Protocol> {
        match self {
            ProtocolKind::SsSpst(kind) => Arc::new(FnProtocol::from_agent_fn(
                kind.protocol_name(),
                move |scenario: &Scenario, _node| SsSpstAgent::new(ss_spst_config(scenario, kind)),
            )),
            ProtocolKind::SsMst => {
                Arc::new(FnProtocol::from_agent_fn("SS-MST", |scenario: &Scenario, _node| {
                    SsMstAgent::new(SsMstConfig {
                        silence: scenario.silence,
                        ..SsMstConfig::with_beacon_interval(SimDuration::from_secs_f64(
                            scenario.beacon_interval_s,
                        ))
                    })
                }))
            }
            ProtocolKind::Maodv => {
                Arc::new(FnProtocol::from_agent_fn("MAODV", |_, _| MaodvAgent::with_defaults()))
            }
            ProtocolKind::Odmrp => {
                Arc::new(FnProtocol::from_agent_fn("ODMRP", |_, _| OdmrpAgent::with_defaults()))
            }
            ProtocolKind::Flooding => {
                Arc::new(FnProtocol::from_agent_fn("Flooding", |_, _| FloodingAgent::new()))
            }
            ProtocolKind::MemTree => {
                Arc::new(MinEnergyProtocol { name: "MEM-Tree", duty_aware: false })
            }
            ProtocolKind::DcaForward => {
                Arc::new(MinEnergyProtocol { name: "DCA-Forward", duty_aware: true })
            }
        }
    }

    /// Every built-in protocol kind (the four SS-SPST variants, SS-MST, and the
    /// baselines).
    pub fn all_builtin() -> Vec<ProtocolKind> {
        let mut kinds: Vec<ProtocolKind> =
            MetricKind::ALL.iter().map(|&k| ProtocolKind::SsSpst(k)).collect();
        kinds.extend([
            ProtocolKind::SsMst,
            ProtocolKind::Maodv,
            ProtocolKind::Odmrp,
            ProtocolKind::Flooding,
            ProtocolKind::MemTree,
            ProtocolKind::DcaForward,
        ]);
        kinds
    }
}

/// Error returned when a registry lookup by name fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownProtocol(pub String);

impl fmt::Display for UnknownProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown protocol {:?}", self.0)
    }
}

impl std::error::Error for UnknownProtocol {}

/// A name-keyed collection of protocol factories.
///
/// Lookup keys are the factories' own [`Protocol::name`]s, so names round-trip:
/// `registry.lookup(p.name())` returns a factory producing `p`'s protocol.
#[derive(Clone, Default)]
pub struct ProtocolRegistry {
    entries: BTreeMap<String, Arc<dyn Protocol>>,
}

impl ProtocolRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry pre-populated with every built-in protocol: the four SS-SPST variants,
    /// MAODV, ODMRP and blind flooding, keyed by their figure-legend names.
    pub fn with_builtins() -> Self {
        let mut registry = Self::new();
        for kind in ProtocolKind::all_builtin() {
            registry.register(kind.to_protocol());
        }
        registry
    }

    /// Register a protocol under its own name; returns the factory it displaced, if any.
    pub fn register(&mut self, protocol: Arc<dyn Protocol>) -> Option<Arc<dyn Protocol>> {
        self.entries.insert(protocol.name().to_string(), protocol)
    }

    /// Register a per-node agent constructor under `name` (see
    /// [`FnProtocol::from_agent_fn`]).
    pub fn register_agent_fn<A, F>(&mut self, name: impl Into<String>, make_agent: F)
    where
        A: ProtocolAgent + 'static,
        F: Fn(&Scenario, NodeId) -> A + Send + Sync + 'static,
    {
        self.register(Arc::new(FnProtocol::from_agent_fn(name, make_agent)));
    }

    /// The factory registered under `name`, if any.
    pub fn lookup(&self, name: &str) -> Option<Arc<dyn Protocol>> {
        self.entries.get(name).cloned()
    }

    /// Like [`Self::lookup`], but with a descriptive error for experiment plumbing.
    pub fn get(&self, name: &str) -> Result<Arc<dyn Protocol>, UnknownProtocol> {
        self.lookup(name).ok_or_else(|| UnknownProtocol(name.to_string()))
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.entries.keys().map(String::as_str).collect()
    }

    /// Number of registered protocols.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Debug for ProtocolRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("ProtocolRegistry").field(&self.names()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_protocol;

    #[test]
    fn builtin_names_round_trip_through_the_registry() {
        let registry = ProtocolRegistry::with_builtins();
        assert_eq!(
            registry.len(),
            10,
            "4 SS-SPST variants + SS-MST + MAODV + ODMRP + Flooding + MEM-Tree + DCA-Forward"
        );
        for kind in ProtocolKind::all_builtin() {
            let p = kind.to_protocol();
            let found = registry
                .lookup(p.name())
                .unwrap_or_else(|| panic!("{} missing from the builtin registry", p.name()));
            assert_eq!(found.name(), p.name());
        }
        assert!(registry.lookup("no-such-protocol").is_none());
        assert_eq!(
            registry.get("no-such-protocol").err(),
            Some(UnknownProtocol("no-such-protocol".into()))
        );
    }

    #[test]
    fn registry_runs_a_protocol_end_to_end() {
        let registry = ProtocolRegistry::with_builtins();
        let mut s = Scenario::quick_test();
        s.duration_s = 20.0;
        s.n_nodes = 12;
        s.group_size = 5;
        let flooding = registry.lookup("Flooding").expect("builtin");
        let report = run_protocol(&s, flooding.as_ref());
        assert_eq!(report.protocol, "Flooding");
        assert!(report.generated > 0);
    }

    #[test]
    fn heterogeneous_agent_construction_is_first_class() {
        use ssmcast_core::MetricKind;
        // Odd nodes run a 1 s beacon interval, even nodes the scenario default: a
        // two-tier deployment expressed as one protocol.
        let mut registry = ProtocolRegistry::new();
        registry.register_agent_fn("SS-SPST-E/two-tier", |scenario: &Scenario, node| {
            let mut config = ss_spst_config(scenario, MetricKind::EnergyAware);
            if node.0 % 2 == 1 {
                config.beacon_interval = SimDuration::from_secs(1);
            }
            SsSpstAgent::new(config)
        });
        let mut s = Scenario::quick_test();
        s.duration_s = 20.0;
        s.n_nodes = 10;
        s.group_size = 4;
        let p = registry.lookup("SS-SPST-E/two-tier").expect("registered");
        let report = run_protocol(&s, p.as_ref());
        assert!(report.control_packets > 0);
    }

    #[test]
    fn mem_tree_runs_end_to_end_and_delivers() {
        let mut s = Scenario::quick_test();
        s.duration_s = 30.0;
        s.n_nodes = 16;
        s.group_size = 6;
        s.mobility = crate::scenario::MobilityKind::StaticGrid;
        let report = run_protocol(&s, ProtocolKind::MemTree.to_protocol().as_ref());
        assert_eq!(report.protocol, "MEM-Tree");
        assert!(report.pdr > 0.9, "static tree on a static grid delivers: pdr = {}", report.pdr);
        assert_eq!(report.control_packets, 0, "a centralized tree needs no control traffic");
    }

    #[test]
    fn dca_forward_out_delivers_schedule_blind_protocols_under_duty_cycling() {
        // Awake fraction 0.25: a schedule-blind forwarder loses ~3/4 of its deliveries
        // to sleeping radios, while DCA-Forward defers each child's copy into that
        // child's wake window. This is the tentpole's acceptance claim in miniature
        // (the full sweep is FigMinEnergy).
        let mut s = Scenario::quick_test();
        s.duration_s = 40.0;
        s.n_nodes = 16;
        s.group_size = 6;
        s.mobility = crate::scenario::MobilityKind::StaticGrid;
        s.lifecycle = s
            .lifecycle
            .with_duty_cycle(SimDuration::from_secs(1), 0.25)
            .with_tx_power_control(true)
            .with_duty_aware_pricing(true);
        let dca = run_protocol(&s, ProtocolKind::DcaForward.to_protocol().as_ref());
        let mem = run_protocol(&s, ProtocolKind::MemTree.to_protocol().as_ref());
        let ss_e = run_protocol(
            &s,
            ProtocolKind::SsSpst(ssmcast_core::MetricKind::EnergyAware).to_protocol().as_ref(),
        );
        assert!(
            dca.pdr > mem.pdr,
            "wake-window deferral beats schedule-blind tree forwarding: {} vs {}",
            dca.pdr,
            mem.pdr
        );
        assert!(
            dca.pdr > ss_e.pdr,
            "wake-window deferral beats SS-SPST-E under sleep: {} vs {}",
            dca.pdr,
            ss_e.pdr
        );
    }

    #[test]
    fn custom_registration_displaces_and_coexists() {
        let mut registry = ProtocolRegistry::with_builtins();
        let displaced = registry.register(ProtocolKind::Flooding.to_protocol());
        assert!(displaced.is_some(), "re-registering a name returns the old factory");
        assert_eq!(registry.len(), 10);
        assert_eq!(
            registry.names(),
            vec![
                "DCA-Forward",
                "Flooding",
                "MAODV",
                "MEM-Tree",
                "ODMRP",
                "SS-MST",
                "SS-SPST",
                "SS-SPST-E",
                "SS-SPST-F",
                "SS-SPST-T"
            ]
        );
    }
}
