//! Building and running one scenario: roles, mobility, setup, and protocol execution.
//!
//! The primary entry point is [`run_protocol`], which wires a [`crate::Protocol`] into
//! the scenario's deterministic setup. Grid execution (protocols × x-values ×
//! repetitions) lives in the [`crate::Experiment`] builder.

use crate::protocol::Protocol;
use crate::scenario::{MobilityKind, Scenario};
use rand::seq::SliceRandom;
use rand::Rng;
use ssmcast_dessim::{SeedSequence, SimDuration, SimTime};
use ssmcast_manet::{
    grid_positions, Area, BoxedMobility, FaultPlan, GaussMarkov, GaussMarkovConfig, GroupId,
    GroupRole, MembershipChange, MembershipEvent, NodeId, RandomWaypoint, SessionSetup, SimReport,
    SimSetup, Stationary, TrafficConfig, WaypointConfig,
};

/// Assign group roles for session 0: node 0 is the source; `receiver_count` further
/// members are drawn uniformly (but deterministically for the scenario seed) from the
/// remaining nodes. Kept as the historical single-group entry point — it is exactly
/// [`assign_session_roles`] with `session == 0`, byte-compatible with pre-multi-group
/// builds.
pub fn assign_roles(scenario: &Scenario, seeds: &SeedSequence) -> Vec<GroupRole> {
    assign_session_roles(scenario, seeds, 0)
}

/// Assign group roles for one session of a (possibly multi-group) scenario. Session `g`
/// is sourced at node `g % n_nodes`; its members are drawn from the remaining nodes with
/// a per-session seed stream, so sessions overlap organically (a node may be a member of
/// several groups and the source of one of them). Session 0 draws from the same stream
/// the single-group harness always used, keeping legacy runs byte-identical.
pub fn assign_session_roles(
    scenario: &Scenario,
    seeds: &SeedSequence,
    session: usize,
) -> Vec<GroupRole> {
    let n = scenario.n_nodes;
    let source = session % n.max(1);
    let mut roles = vec![GroupRole::NonMember; n];
    roles[source] = GroupRole::Source;
    let mut candidates: Vec<usize> = (0..n).filter(|&i| i != source).collect();
    let mut rng = if session == 0 {
        seeds.stream("membership")
    } else {
        seeds.indexed_stream("membership", session as u64)
    };
    candidates.shuffle(&mut rng);
    for &idx in candidates.iter().take(scenario.receiver_count()) {
        roles[idx] = GroupRole::Member;
    }
    roles
}

/// Materialise one session's membership-churn schedule from the scenario's
/// `member_churn_rate`: `round(rate × traffic window)` events at seeded uniform times,
/// each toggling a seeded non-source node (members leave, non-members join). The walk
/// tracks the evolving member set, so every event is effectual when applied in order.
/// Deterministic per `(scenario, seeds, session)`.
pub fn build_churn(
    scenario: &Scenario,
    seeds: &SeedSequence,
    session: usize,
    roles: &[GroupRole],
) -> Vec<MembershipEvent> {
    let window = (scenario.duration_s - scenario.warmup_s).max(0.0);
    let count = (scenario.member_churn_rate.max(0.0) * window).round() as usize;
    if count == 0 || scenario.n_nodes < 2 {
        return Vec::new();
    }
    let mut rng = seeds.indexed_stream("churn", session as u64);
    let mut times: Vec<f64> =
        (0..count).map(|_| rng.gen_range(scenario.warmup_s..=scenario.duration_s)).collect();
    times.sort_by(f64::total_cmp);
    let source = roles.iter().position(|r| r.is_source()).unwrap_or(0);
    let mut member: Vec<bool> = roles.iter().map(|r| matches!(r, GroupRole::Member)).collect();
    let mut events = Vec::with_capacity(count);
    for t in times {
        // Draw a non-source node; toggling keeps the schedule valid by construction.
        let mut node = rng.gen_range(0..scenario.n_nodes - 1);
        if node >= source {
            node += 1;
        }
        let change = if member[node] { MembershipChange::Leave } else { MembershipChange::Join };
        member[node] = !member[node];
        events.push(MembershipEvent {
            at: SimTime::from_secs_f64(t),
            node: NodeId(node as u32),
            change,
        });
    }
    events
}

/// Build one mobility process per node according to the scenario's [`MobilityKind`].
///
/// Every model draws from the same `"mobility"` seed streams, so switching models leaves
/// all other randomness (membership, traffic, loss) untouched — protocol comparisons
/// across mobility regimes stay paired.
pub fn build_mobility(scenario: &Scenario, seeds: &SeedSequence) -> Vec<BoxedMobility> {
    let area = Area::square(scenario.area_side_m);
    let n = scenario.n_nodes as u64;
    match scenario.mobility {
        MobilityKind::RandomWaypoint => {
            let cfg = WaypointConfig {
                area,
                min_speed: scenario.min_speed_mps,
                max_speed: scenario.max_speed_mps,
                pause_secs: scenario.pause_secs,
            };
            (0..n)
                .map(|i| {
                    Box::new(RandomWaypoint::with_random_start(
                        cfg,
                        seeds.indexed_stream("mobility", i),
                    )) as BoxedMobility
                })
                .collect()
        }
        MobilityKind::GaussMarkov => {
            // Match random waypoint's long-run mean speed so velocity sweeps stay
            // comparable across models.
            let mean = 0.5 * (scenario.min_speed_mps + scenario.max_speed_mps.max(0.0));
            let cfg = GaussMarkovConfig::with_mean_speed(area, mean, scenario.max_speed_mps);
            (0..n)
                .map(|i| {
                    Box::new(GaussMarkov::with_random_start(
                        cfg,
                        seeds.indexed_stream("mobility", i),
                    )) as BoxedMobility
                })
                .collect()
        }
        MobilityKind::StaticGrid => grid_positions(area, scenario.n_nodes)
            .into_iter()
            .map(|p| Box::new(Stationary::new(p)) as BoxedMobility)
            .collect(),
    }
}

/// Build the [`SimSetup`] shared by every protocol for this scenario: one
/// [`SessionSetup`] per group (roles, CBR flow, churn schedule), all derived from the
/// scenario's seed sequence so every protocol in a comparison faces identical sessions.
pub fn build_setup(scenario: &Scenario, seeds: SeedSequence) -> SimSetup {
    let stop = SimTime::from_secs_f64(scenario.duration_s);
    let n_groups = scenario.n_groups.max(1);
    let sessions: Vec<SessionSetup> = (0..n_groups)
        .map(|g| {
            let roles = assign_session_roles(scenario, &seeds, g);
            let churn = build_churn(scenario, &seeds, g, &roles);
            let traffic = TrafficConfig {
                group: GroupId(g as u16),
                source: NodeId((g % scenario.n_nodes.max(1)) as u32),
                data_rate_bps: scenario.data_rate_bps,
                packet_size_bytes: scenario.packet_size_bytes,
                start: SimTime::from_secs_f64(scenario.warmup_s),
                stop,
            };
            SessionSetup::new(traffic, roles).with_churn(churn)
        })
        .collect();
    SimSetup {
        radio: scenario.radio,
        sessions,
        n_nodes: scenario.n_nodes,
        battery_capacity_j: scenario.battery_capacity_j,
        lifecycle: scenario.lifecycle,
        unavailability_window: SimDuration::from_secs(1),
        availability_threshold: 0.95,
        // The schedule is materialised from the scenario's spec with the scenario's own
        // seed stream: same (scenario, seed) ⇒ same fault events, for every protocol.
        faults: FaultPlan::from_spec(&scenario.faults, scenario.n_nodes, &seeds),
        mac: scenario.mac,
        seeds,
        medium: scenario.medium,
        engine: scenario.engine,
        silence: scenario.silence,
        metrics: scenario.metrics,
        harvest: scenario.harvest,
    }
}

/// Run `scenario` under `protocol`: builds the deterministic setup and mobility for the
/// scenario's seed and hands them to the protocol factory. This is the primitive every
/// higher layer ([`crate::Experiment`], the compat shims) bottoms out in.
pub fn run_protocol(scenario: &Scenario, protocol: &dyn Protocol) -> SimReport {
    let seeds = SeedSequence::new(scenario.seed);
    let setup = build_setup(scenario, seeds);
    let mobility = build_mobility(scenario, &seeds);
    protocol.run(scenario, setup, mobility)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ProtocolRegistry;
    use crate::scenario::ProtocolKind;
    use ssmcast_core::MetricKind;

    #[test]
    fn roles_have_one_source_and_the_requested_receivers() {
        let s = Scenario::quick_test();
        let seeds = SeedSequence::new(s.seed);
        let roles = assign_roles(&s, &seeds);
        assert_eq!(roles.iter().filter(|r| matches!(r, GroupRole::Source)).count(), 1);
        assert_eq!(
            roles.iter().filter(|r| matches!(r, GroupRole::Member)).count(),
            s.receiver_count()
        );
        // Deterministic for a fixed seed.
        assert_eq!(roles, assign_roles(&s, &seeds));
    }

    #[test]
    fn session_zero_roles_match_the_legacy_single_group_draw() {
        let s = Scenario::quick_test();
        let seeds = SeedSequence::new(s.seed);
        assert_eq!(assign_roles(&s, &seeds), assign_session_roles(&s, &seeds, 0));
    }

    #[test]
    fn later_sessions_get_their_own_sources_and_member_draws() {
        let s = Scenario::quick_test();
        let seeds = SeedSequence::new(s.seed);
        let r0 = assign_session_roles(&s, &seeds, 0);
        let r1 = assign_session_roles(&s, &seeds, 1);
        let r2 = assign_session_roles(&s, &seeds, 2);
        assert!(matches!(r1[1], GroupRole::Source), "session 1 is sourced at node 1");
        assert!(matches!(r2[2], GroupRole::Source));
        for (g, roles) in [(0, &r0), (1, &r1), (2, &r2)] {
            assert_eq!(
                roles.iter().filter(|r| matches!(r, GroupRole::Source)).count(),
                1,
                "session {g}"
            );
            assert_eq!(
                roles.iter().filter(|r| matches!(r, GroupRole::Member)).count(),
                s.receiver_count(),
                "session {g}"
            );
        }
        assert_ne!(r0, r1, "independent seeded draws");
        // Deterministic per (seed, session).
        assert_eq!(r1, assign_session_roles(&s, &seeds, 1));
    }

    #[test]
    fn churn_schedules_are_seeded_sorted_and_spare_the_source() {
        let mut s = Scenario::quick_test();
        s.member_churn_rate = 0.5;
        s.duration_s = 60.0;
        s.warmup_s = 10.0;
        let seeds = SeedSequence::new(11);
        let roles = assign_session_roles(&s, &seeds, 0);
        let churn = build_churn(&s, &seeds, 0, &roles);
        assert_eq!(churn.len(), 25, "round(0.5 × 50 s window)");
        let source = NodeId(0);
        let mut member: Vec<bool> = roles.iter().map(|r| matches!(r, GroupRole::Member)).collect();
        let mut last = SimTime::ZERO;
        for ev in &churn {
            assert!(ev.at >= last, "events sorted by time");
            last = ev.at;
            assert_ne!(ev.node, source, "the source never churns");
            // Every event is effectual when replayed in order.
            match ev.change {
                ssmcast_manet::MembershipChange::Join => {
                    assert!(!member[ev.node.index()], "join targets a non-member");
                    member[ev.node.index()] = true;
                }
                ssmcast_manet::MembershipChange::Leave => {
                    assert!(member[ev.node.index()], "leave targets a member");
                    member[ev.node.index()] = false;
                }
            }
        }
        assert_eq!(churn, build_churn(&s, &seeds, 0, &roles), "deterministic per seed");
        assert_ne!(churn, build_churn(&s, &seeds, 1, &roles), "per-session streams differ");
        // Rate zero means no churn at all.
        let mut quiet = s;
        quiet.member_churn_rate = 0.0;
        assert!(build_churn(&quiet, &seeds, 0, &roles).is_empty());
    }

    #[test]
    fn multi_group_setup_builds_one_session_per_group() {
        let mut s = Scenario::quick_test();
        s.n_groups = 3;
        s.member_churn_rate = 0.2;
        let setup = build_setup(&s, SeedSequence::new(s.seed));
        assert_eq!(setup.n_sessions(), 3);
        assert_eq!(setup.n_nodes, s.n_nodes);
        assert!(setup.has_group_dynamics());
        for (g, session) in setup.sessions.iter().enumerate() {
            assert_eq!(session.traffic.group, GroupId(g as u16));
            assert_eq!(session.traffic.source, NodeId(g as u32));
            assert!(matches!(session.roles[g], GroupRole::Source));
            assert!(!session.churn.is_empty(), "session {g} churns");
        }
    }

    #[test]
    fn the_experiment_engine_matches_a_directly_seeded_run_protocol_call() {
        let mut s = Scenario::quick_test();
        s.duration_s = 20.0;
        s.n_nodes = 12;
        s.group_size = 5;
        let mut manual = s;
        manual.seed = crate::derive_cell_seed(s.seed, 0, 0);
        let direct = run_protocol(&manual, ProtocolKind::Flooding.to_protocol().as_ref());
        let cells = crate::Experiment::new(s).protocol_kinds(&[ProtocolKind::Flooding]).run();
        let engine = cells.into_iter().next().and_then(|c| c.reports.into_iter().next());
        assert_eq!(engine.as_ref(), Some(&direct));
    }

    #[test]
    fn mobility_is_one_process_per_node_for_every_kind() {
        let mut s = Scenario::quick_test();
        let seeds = SeedSequence::new(1);
        for kind in MobilityKind::ALL {
            s.mobility = kind;
            assert_eq!(build_mobility(&s, &seeds).len(), s.n_nodes, "{}", kind.name());
        }
    }

    #[test]
    fn every_mobility_kind_stays_inside_the_deployment_area() {
        let mut s = Scenario::quick_test();
        s.max_speed_mps = 20.0;
        let area = Area::square(s.area_side_m);
        let seeds = SeedSequence::new(7);
        for kind in MobilityKind::ALL {
            s.mobility = kind;
            let mut mobility = build_mobility(&s, &seeds);
            for (i, m) in mobility.iter_mut().enumerate() {
                let mut t = SimTime::ZERO;
                // Query a long horizon (≈ 30 simulated minutes) at coarse steps.
                for _ in 0..1000 {
                    let p = m.position_at(t);
                    assert!(area.contains(&p), "{} node {i}: {p:?} escaped the area", kind.name());
                    t += SimDuration::from_millis(1_873);
                }
            }
        }
    }

    #[test]
    fn static_grid_nodes_do_not_move() {
        let s = Scenario::quick_test().with_mobility(MobilityKind::StaticGrid);
        let seeds = SeedSequence::new(3);
        let mut mobility = build_mobility(&s, &seeds);
        for m in mobility.iter_mut() {
            let p0 = m.position_at(SimTime::ZERO);
            assert_eq!(p0, m.position_at(SimTime::from_secs(1800)));
        }
    }

    #[test]
    fn quick_scenario_runs_under_every_protocol() {
        let mut s = Scenario::quick_test();
        s.duration_s = 30.0;
        s.n_nodes = 20;
        s.group_size = 8;
        let registry = ProtocolRegistry::with_builtins();
        for name in registry.names() {
            let protocol = registry.lookup(name).expect("listed name resolves");
            let report = run_protocol(&s, protocol.as_ref());
            assert!(report.generated > 100, "{name}: CBR must generate traffic");
            assert!(report.pdr >= 0.0 && report.pdr <= 1.0);
            assert!(report.total_energy_j > 0.0, "{name}: someone must transmit");
            assert_eq!(report.protocol, name);
        }
    }

    #[test]
    fn gauss_markov_scenario_runs_end_to_end() {
        let mut s = Scenario::quick_test().with_mobility(MobilityKind::GaussMarkov);
        s.duration_s = 30.0;
        s.n_nodes = 20;
        s.group_size = 8;
        let protocol = ProtocolKind::SsSpst(MetricKind::EnergyAware).to_protocol();
        let report = run_protocol(&s, protocol.as_ref());
        assert!(report.generated > 100);
        assert!(report.pdr > 0.0, "a connected-ish 20-node field should deliver something");
    }

    #[test]
    fn runs_are_reproducible_for_a_seed() {
        let mut s = Scenario::quick_test();
        s.duration_s = 25.0;
        s.n_nodes = 15;
        let protocol = ProtocolKind::SsSpst(MetricKind::EnergyAware).to_protocol();
        let a = run_protocol(&s, protocol.as_ref());
        let b = run_protocol(&s, protocol.as_ref());
        assert_eq!(a, b);
    }

    #[test]
    fn repetitions_use_distinct_seeds() {
        let mut s = Scenario::quick_test();
        s.duration_s = 25.0;
        s.n_nodes = 15;
        let cells = crate::Experiment::new(s).protocol_kinds(&[ProtocolKind::Odmrp]).reps(2).run();
        let reports = cells.into_iter().next().map(|c| c.reports).unwrap_or_default();
        assert_eq!(reports.len(), 2);
        assert_ne!(reports[0], reports[1], "different repetitions see different mobility");
    }
}
