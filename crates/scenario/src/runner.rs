//! Building and running one scenario: roles, mobility, setup, and protocol execution.
//!
//! The primary entry point is [`run_protocol`], which wires a [`crate::Protocol`] into
//! the scenario's deterministic setup. [`run_scenario`] and [`run_repetitions`] remain as
//! thin compatibility shims over the [`crate::Experiment`] machinery for callers that
//! still speak [`ProtocolKind`].

use crate::protocol::Protocol;
use crate::scenario::{MobilityKind, ProtocolKind, Scenario};
use rand::seq::SliceRandom;
use ssmcast_dessim::{SeedSequence, SimDuration, SimTime};
use ssmcast_manet::{
    grid_positions, Area, BoxedMobility, FaultPlan, GaussMarkov, GaussMarkovConfig, GroupRole,
    NodeId, RandomWaypoint, SimReport, SimSetup, Stationary, TrafficConfig, WaypointConfig,
};

/// Assign group roles: node 0 is the source; `receiver_count` further members are drawn
/// uniformly (but deterministically for the scenario seed) from the remaining nodes.
pub fn assign_roles(scenario: &Scenario, seeds: &SeedSequence) -> Vec<GroupRole> {
    let mut roles = vec![GroupRole::NonMember; scenario.n_nodes];
    roles[0] = GroupRole::Source;
    let mut candidates: Vec<usize> = (1..scenario.n_nodes).collect();
    let mut rng = seeds.stream("membership");
    candidates.shuffle(&mut rng);
    for &idx in candidates.iter().take(scenario.receiver_count()) {
        roles[idx] = GroupRole::Member;
    }
    roles
}

/// Build one mobility process per node according to the scenario's [`MobilityKind`].
///
/// Every model draws from the same `"mobility"` seed streams, so switching models leaves
/// all other randomness (membership, traffic, loss) untouched — protocol comparisons
/// across mobility regimes stay paired.
pub fn build_mobility(scenario: &Scenario, seeds: &SeedSequence) -> Vec<BoxedMobility> {
    let area = Area::square(scenario.area_side_m);
    let n = scenario.n_nodes as u64;
    match scenario.mobility {
        MobilityKind::RandomWaypoint => {
            let cfg = WaypointConfig {
                area,
                min_speed: scenario.min_speed_mps,
                max_speed: scenario.max_speed_mps,
                pause_secs: scenario.pause_secs,
            };
            (0..n)
                .map(|i| {
                    Box::new(RandomWaypoint::with_random_start(
                        cfg,
                        seeds.indexed_stream("mobility", i),
                    )) as BoxedMobility
                })
                .collect()
        }
        MobilityKind::GaussMarkov => {
            // Match random waypoint's long-run mean speed so velocity sweeps stay
            // comparable across models.
            let mean = 0.5 * (scenario.min_speed_mps + scenario.max_speed_mps.max(0.0));
            let cfg = GaussMarkovConfig::with_mean_speed(area, mean, scenario.max_speed_mps);
            (0..n)
                .map(|i| {
                    Box::new(GaussMarkov::with_random_start(
                        cfg,
                        seeds.indexed_stream("mobility", i),
                    )) as BoxedMobility
                })
                .collect()
        }
        MobilityKind::StaticGrid => grid_positions(area, scenario.n_nodes)
            .into_iter()
            .map(|p| Box::new(Stationary::new(p)) as BoxedMobility)
            .collect(),
    }
}

/// Build the [`SimSetup`] shared by every protocol for this scenario.
pub fn build_setup(scenario: &Scenario, seeds: SeedSequence) -> SimSetup {
    let stop = SimTime::from_secs_f64(scenario.duration_s);
    let traffic = TrafficConfig {
        group: Default::default(),
        source: NodeId(0),
        data_rate_bps: scenario.data_rate_bps,
        packet_size_bytes: scenario.packet_size_bytes,
        start: SimTime::from_secs_f64(scenario.warmup_s),
        stop,
    };
    SimSetup {
        radio: scenario.radio,
        traffic,
        roles: assign_roles(scenario, &seeds),
        battery_capacity_j: scenario.battery_capacity_j,
        unavailability_window: SimDuration::from_secs(1),
        availability_threshold: 0.95,
        // The schedule is materialised from the scenario's spec with the scenario's own
        // seed stream: same (scenario, seed) ⇒ same fault events, for every protocol.
        faults: FaultPlan::from_spec(&scenario.faults, scenario.n_nodes, &seeds),
        seeds,
        medium: scenario.medium,
    }
}

/// Run `scenario` under `protocol`: builds the deterministic setup and mobility for the
/// scenario's seed and hands them to the protocol factory. This is the primitive every
/// higher layer ([`crate::Experiment`], the compat shims) bottoms out in.
pub fn run_protocol(scenario: &Scenario, protocol: &dyn Protocol) -> SimReport {
    let seeds = SeedSequence::new(scenario.seed);
    let setup = build_setup(scenario, seeds);
    let mobility = build_mobility(scenario, &seeds);
    protocol.run(scenario, setup, mobility)
}

/// Compatibility shim: run `scenario` under a built-in protocol kind.
///
/// Equivalent to `run_protocol(scenario, kind.to_protocol().as_ref())`; prefer
/// [`run_protocol`] (or [`crate::Experiment`]) for new code.
pub fn run_scenario(scenario: &Scenario, protocol: ProtocolKind) -> SimReport {
    run_protocol(scenario, protocol.to_protocol().as_ref())
}

/// Compatibility shim: run the same scenario `reps` times with derived seeds.
///
/// New code should use [`crate::Experiment`] with [`crate::Experiment::reps`], which is
/// what this delegates to (a single-column grid). Unlike the builder — which clamps to
/// at least one repetition — this shim preserves the legacy `reps == 0` behaviour of
/// running nothing.
pub fn run_repetitions(scenario: &Scenario, protocol: ProtocolKind, reps: usize) -> Vec<SimReport> {
    if reps == 0 {
        return Vec::new();
    }
    let cells = crate::Experiment::new(*scenario).protocol_kinds(&[protocol]).reps(reps).run();
    cells.into_iter().next().map(|c| c.reports).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ProtocolRegistry;
    use ssmcast_core::MetricKind;

    #[test]
    fn roles_have_one_source_and_the_requested_receivers() {
        let s = Scenario::quick_test();
        let seeds = SeedSequence::new(s.seed);
        let roles = assign_roles(&s, &seeds);
        assert_eq!(roles.iter().filter(|r| matches!(r, GroupRole::Source)).count(), 1);
        assert_eq!(
            roles.iter().filter(|r| matches!(r, GroupRole::Member)).count(),
            s.receiver_count()
        );
        // Deterministic for a fixed seed.
        assert_eq!(roles, assign_roles(&s, &seeds));
    }

    #[test]
    fn mobility_is_one_process_per_node_for_every_kind() {
        let mut s = Scenario::quick_test();
        let seeds = SeedSequence::new(1);
        for kind in MobilityKind::ALL {
            s.mobility = kind;
            assert_eq!(build_mobility(&s, &seeds).len(), s.n_nodes, "{}", kind.name());
        }
    }

    #[test]
    fn every_mobility_kind_stays_inside_the_deployment_area() {
        let mut s = Scenario::quick_test();
        s.max_speed_mps = 20.0;
        let area = Area::square(s.area_side_m);
        let seeds = SeedSequence::new(7);
        for kind in MobilityKind::ALL {
            s.mobility = kind;
            let mut mobility = build_mobility(&s, &seeds);
            for (i, m) in mobility.iter_mut().enumerate() {
                let mut t = SimTime::ZERO;
                // Query a long horizon (≈ 30 simulated minutes) at coarse steps.
                for _ in 0..1000 {
                    let p = m.position_at(t);
                    assert!(area.contains(&p), "{} node {i}: {p:?} escaped the area", kind.name());
                    t += SimDuration::from_millis(1_873);
                }
            }
        }
    }

    #[test]
    fn static_grid_nodes_do_not_move() {
        let s = Scenario::quick_test().with_mobility(MobilityKind::StaticGrid);
        let seeds = SeedSequence::new(3);
        let mut mobility = build_mobility(&s, &seeds);
        for m in mobility.iter_mut() {
            let p0 = m.position_at(SimTime::ZERO);
            assert_eq!(p0, m.position_at(SimTime::from_secs(1800)));
        }
    }

    #[test]
    fn quick_scenario_runs_under_every_protocol() {
        let mut s = Scenario::quick_test();
        s.duration_s = 30.0;
        s.n_nodes = 20;
        s.group_size = 8;
        let registry = ProtocolRegistry::with_builtins();
        for name in registry.names() {
            let protocol = registry.lookup(name).expect("listed name resolves");
            let report = run_protocol(&s, protocol.as_ref());
            assert!(report.generated > 100, "{name}: CBR must generate traffic");
            assert!(report.pdr >= 0.0 && report.pdr <= 1.0);
            assert!(report.total_energy_j > 0.0, "{name}: someone must transmit");
            assert_eq!(report.protocol, name);
        }
    }

    #[test]
    fn gauss_markov_scenario_runs_end_to_end() {
        let mut s = Scenario::quick_test().with_mobility(MobilityKind::GaussMarkov);
        s.duration_s = 30.0;
        s.n_nodes = 20;
        s.group_size = 8;
        let report = run_scenario(&s, ProtocolKind::SsSpst(MetricKind::EnergyAware));
        assert!(report.generated > 100);
        assert!(report.pdr > 0.0, "a connected-ish 20-node field should deliver something");
    }

    #[test]
    fn runs_are_reproducible_for_a_seed() {
        let mut s = Scenario::quick_test();
        s.duration_s = 25.0;
        s.n_nodes = 15;
        let a = run_scenario(&s, ProtocolKind::SsSpst(MetricKind::EnergyAware));
        let b = run_scenario(&s, ProtocolKind::SsSpst(MetricKind::EnergyAware));
        assert_eq!(a, b);
    }

    #[test]
    fn repetitions_use_distinct_seeds() {
        let mut s = Scenario::quick_test();
        s.duration_s = 25.0;
        s.n_nodes = 15;
        let reports = run_repetitions(&s, ProtocolKind::Odmrp, 2);
        assert_eq!(reports.len(), 2);
        assert_ne!(reports[0], reports[1], "different repetitions see different mobility");
    }
}
