//! Running one scenario under one protocol.

use crate::scenario::{ProtocolKind, Scenario};
use rand::seq::SliceRandom;
use ssmcast_baselines::{FloodingAgent, MaodvAgent, OdmrpAgent};
use ssmcast_core::{MetricParams, SsSpstAgent, SsSpstConfig};
use ssmcast_dessim::{SeedSequence, SimDuration, SimTime};
use ssmcast_manet::{
    BoxedMobility, GroupRole, NodeId, ProtocolAgent, RandomWaypoint, SimReport, SimSetup,
    TrafficConfig, WaypointConfig,
};
use ssmcast_manet::{Area, NetworkSim};

/// Assign group roles: node 0 is the source; `receiver_count` further members are drawn
/// uniformly (but deterministically for the scenario seed) from the remaining nodes.
pub fn assign_roles(scenario: &Scenario, seeds: &SeedSequence) -> Vec<GroupRole> {
    let mut roles = vec![GroupRole::NonMember; scenario.n_nodes];
    roles[0] = GroupRole::Source;
    let mut candidates: Vec<usize> = (1..scenario.n_nodes).collect();
    let mut rng = seeds.stream("membership");
    candidates.shuffle(&mut rng);
    for &idx in candidates.iter().take(scenario.receiver_count()) {
        roles[idx] = GroupRole::Member;
    }
    roles
}

/// Build one random-waypoint mobility process per node.
pub fn build_mobility(scenario: &Scenario, seeds: &SeedSequence) -> Vec<BoxedMobility> {
    let cfg = WaypointConfig {
        area: Area::square(scenario.area_side_m),
        min_speed: scenario.min_speed_mps,
        max_speed: scenario.max_speed_mps,
        pause_secs: scenario.pause_secs,
    };
    (0..scenario.n_nodes as u64)
        .map(|i| {
            Box::new(RandomWaypoint::with_random_start(cfg, seeds.indexed_stream("mobility", i)))
                as BoxedMobility
        })
        .collect()
}

/// Build the [`SimSetup`] shared by every protocol for this scenario.
pub fn build_setup(scenario: &Scenario, seeds: SeedSequence) -> SimSetup {
    let stop = SimTime::from_secs_f64(scenario.duration_s);
    let traffic = TrafficConfig {
        group: Default::default(),
        source: NodeId(0),
        data_rate_bps: scenario.data_rate_bps,
        packet_size_bytes: scenario.packet_size_bytes,
        start: SimTime::from_secs_f64(scenario.warmup_s),
        stop,
    };
    SimSetup {
        radio: scenario.radio,
        traffic,
        roles: assign_roles(scenario, &seeds),
        battery_capacity_j: f64::INFINITY,
        unavailability_window: SimDuration::from_secs(1),
        availability_threshold: 0.95,
        seeds,
    }
}

fn run_with<A, F>(scenario: &Scenario, seeds: SeedSequence, make_agent: F) -> SimReport
where
    A: ProtocolAgent,
    F: Fn(usize) -> A,
{
    let setup = build_setup(scenario, seeds);
    let mobility = build_mobility(scenario, &seeds);
    let agents = (0..scenario.n_nodes).map(make_agent).collect();
    let mut sim = NetworkSim::new(setup, mobility, agents);
    sim.run(SimDuration::from_secs_f64(scenario.duration_s))
}

/// Run `scenario` under `protocol` and return the per-run report.
pub fn run_scenario(scenario: &Scenario, protocol: ProtocolKind) -> SimReport {
    let seeds = SeedSequence::new(scenario.seed);
    match protocol {
        ProtocolKind::SsSpst(kind) => {
            let config = SsSpstConfig {
                params: MetricParams {
                    energy: scenario.radio.energy,
                    data_packet_bytes: scenario.packet_size_bytes,
                },
                ..SsSpstConfig::with_beacon_interval(
                    kind,
                    SimDuration::from_secs_f64(scenario.beacon_interval_s),
                )
            };
            run_with(scenario, seeds, |_| SsSpstAgent::new(config))
        }
        ProtocolKind::Maodv => run_with(scenario, seeds, |_| MaodvAgent::with_defaults()),
        ProtocolKind::Odmrp => run_with(scenario, seeds, |_| OdmrpAgent::with_defaults()),
        ProtocolKind::Flooding => run_with(scenario, seeds, |_| FloodingAgent::new()),
    }
}

/// Run the same scenario `reps` times with derived seeds and return every report.
pub fn run_repetitions(scenario: &Scenario, protocol: ProtocolKind, reps: usize) -> Vec<SimReport> {
    (0..reps)
        .map(|r| {
            let mut s = *scenario;
            s.seed = SeedSequence::new(scenario.seed).child(r as u64).master();
            run_scenario(&s, protocol)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmcast_core::MetricKind;

    #[test]
    fn roles_have_one_source_and_the_requested_receivers() {
        let s = Scenario::quick_test();
        let seeds = SeedSequence::new(s.seed);
        let roles = assign_roles(&s, &seeds);
        assert_eq!(roles.iter().filter(|r| matches!(r, GroupRole::Source)).count(), 1);
        assert_eq!(
            roles.iter().filter(|r| matches!(r, GroupRole::Member)).count(),
            s.receiver_count()
        );
        // Deterministic for a fixed seed.
        assert_eq!(roles, assign_roles(&s, &seeds));
    }

    #[test]
    fn mobility_is_one_process_per_node() {
        let s = Scenario::quick_test();
        let seeds = SeedSequence::new(1);
        assert_eq!(build_mobility(&s, &seeds).len(), s.n_nodes);
    }

    #[test]
    fn quick_scenario_runs_under_every_protocol() {
        let mut s = Scenario::quick_test();
        s.duration_s = 30.0;
        s.n_nodes = 20;
        s.group_size = 8;
        for protocol in [
            ProtocolKind::SsSpst(MetricKind::EnergyAware),
            ProtocolKind::SsSpst(MetricKind::Hop),
            ProtocolKind::Maodv,
            ProtocolKind::Odmrp,
            ProtocolKind::Flooding,
        ] {
            let report = run_scenario(&s, protocol);
            assert!(report.generated > 100, "{}: CBR must generate traffic", protocol.name());
            assert!(report.pdr >= 0.0 && report.pdr <= 1.0);
            assert!(report.total_energy_j > 0.0, "{}: someone must transmit", protocol.name());
            assert_eq!(report.protocol, protocol.name());
        }
    }

    #[test]
    fn runs_are_reproducible_for_a_seed() {
        let mut s = Scenario::quick_test();
        s.duration_s = 25.0;
        s.n_nodes = 15;
        let a = run_scenario(&s, ProtocolKind::SsSpst(MetricKind::EnergyAware));
        let b = run_scenario(&s, ProtocolKind::SsSpst(MetricKind::EnergyAware));
        assert_eq!(a, b);
    }

    #[test]
    fn repetitions_use_distinct_seeds() {
        let mut s = Scenario::quick_test();
        s.duration_s = 25.0;
        s.n_nodes = 15;
        let reports = run_repetitions(&s, ProtocolKind::Odmrp, 2);
        assert_eq!(reports.len(), 2);
        assert_ne!(reports[0], reports[1], "different repetitions see different mobility");
    }
}
