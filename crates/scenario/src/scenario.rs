//! Scenario definitions: everything that parameterises one simulation run.

use serde::{Deserialize, Serialize};
use ssmcast_core::MetricKind;
use ssmcast_dessim::SimDuration;
use ssmcast_manet::{
    EngineConfig, FaultPlanSpec, HarvestConfig, LifecycleConfig, MacConfig, MediumConfig,
    RadioConfig, SilenceConfig,
};
use ssmcast_metrics::MetricsConfig;

/// Which multicast protocol to run on a scenario.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// One of the SS-SPST family, selected by its cost metric.
    SsSpst(MetricKind),
    /// Self-stabilizing minimum-bottleneck spanning tree (loop-free construction in
    /// the style of Blin et al.), sharing the SS-SPST beacon machinery.
    SsMst,
    /// Multicast AODV (tree-based, on-demand).
    Maodv,
    /// ODMRP (mesh-based, on-demand).
    Odmrp,
    /// Blind flooding (reference only; not in the paper's figures).
    Flooding,
    /// MEM-Tree: centralized minimum-energy multicast tree (BIP greedy over the t = 0
    /// topology snapshot), forwarded without repair — the lower-bound energy baseline.
    MemTree,
    /// DCA-Forward: MEM-Tree forwarding made duty-cycle-aware — transmissions are
    /// deferred into downstream receivers' scheduled wake windows.
    DcaForward,
}

impl ProtocolKind {
    /// Display name matching the paper's figure legends.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::SsSpst(kind) => kind.protocol_name(),
            ProtocolKind::SsMst => "SS-MST",
            ProtocolKind::Maodv => "MAODV",
            ProtocolKind::Odmrp => "ODMRP",
            ProtocolKind::Flooding => "Flooding",
            ProtocolKind::MemTree => "MEM-Tree",
            ProtocolKind::DcaForward => "DCA-Forward",
        }
    }

    /// The four SS-SPST variants compared in Figures 7–9.
    pub fn ss_variants() -> [ProtocolKind; 4] {
        [
            ProtocolKind::SsSpst(MetricKind::Hop),
            ProtocolKind::SsSpst(MetricKind::TxLink),
            ProtocolKind::SsSpst(MetricKind::Farthest),
            ProtocolKind::SsSpst(MetricKind::EnergyAware),
        ]
    }

    /// The four protocols compared in Figures 12–16.
    pub fn paper_four() -> [ProtocolKind; 4] {
        [
            ProtocolKind::Maodv,
            ProtocolKind::SsSpst(MetricKind::Hop),
            ProtocolKind::SsSpst(MetricKind::EnergyAware),
            ProtocolKind::Odmrp,
        ]
    }

    /// SS-SPST and SS-SPST-E, compared in the beacon-interval study (Figures 10–11).
    pub fn beacon_pair() -> [ProtocolKind; 2] {
        [ProtocolKind::SsSpst(MetricKind::Hop), ProtocolKind::SsSpst(MetricKind::EnergyAware)]
    }
}

/// Which mobility model drives node trajectories in a scenario.
///
/// The paper evaluates random waypoint only; the plugin enum opens the same experiment
/// grid to other motion regimes (see `EXPERIMENTS.md`). New models plug in here and in
/// [`crate::runner::build_mobility`] without touching any protocol code.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, Serialize, Deserialize)]
pub enum MobilityKind {
    /// Random waypoint with the Yoon/Noble non-zero minimum-speed fix (the paper's model).
    RandomWaypoint,
    /// Gauss–Markov: temporally correlated speed and heading. Sustained drift stresses
    /// tree repair differently from waypoint's stop-and-turn motion.
    GaussMarkov,
    /// No motion: nodes on a centred grid. The degenerate regular topology used for
    /// stress and correctness scenarios.
    StaticGrid,
}

impl MobilityKind {
    /// Every built-in mobility model.
    pub const ALL: [MobilityKind; 3] =
        [MobilityKind::RandomWaypoint, MobilityKind::GaussMarkov, MobilityKind::StaticGrid];

    /// Display name used in tables and file names.
    pub fn name(self) -> &'static str {
        match self {
            MobilityKind::RandomWaypoint => "random-waypoint",
            MobilityKind::GaussMarkov => "gauss-markov",
            MobilityKind::StaticGrid => "static-grid",
        }
    }
}

/// One simulation scenario: the paper's Section 6 settings, all overridable.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Scenario {
    /// Number of nodes (paper: 50).
    pub n_nodes: usize,
    /// Side of the square deployment area in metres (paper: 750).
    pub area_side_m: f64,
    /// Maximum random-waypoint speed, m/s (paper sweeps 1–20).
    pub max_speed_mps: f64,
    /// Minimum random-waypoint speed, m/s (> 0 per the Yoon/Noble fix).
    pub min_speed_mps: f64,
    /// Pause time at each waypoint, seconds.
    pub pause_secs: f64,
    /// Multicast group size including the source (paper sweeps 10–50, default 20).
    /// Every session of a multi-group scenario uses this size.
    pub group_size: usize,
    /// Number of concurrent multicast sessions sharing the medium (paper: 1). Session
    /// `g` is sourced at node `g % n_nodes` with its own seeded member draw; see
    /// [`crate::runner::assign_session_roles`].
    pub n_groups: usize,
    /// Membership churn: expected join/leave events per second per session, drawn
    /// (seeded) over the traffic window. 0 (the default) reproduces the paper's static
    /// memberships; any positive rate makes the harness probe legitimacy and attach
    /// per-group blocks to reports.
    pub member_churn_rate: f64,
    /// Beacon interval for the SS-SPST family, seconds (paper: 2).
    pub beacon_interval_s: f64,
    /// Simulated duration, seconds (paper: 1800; the harness default is shorter so a full
    /// figure regenerates in minutes — see EXPERIMENTS.md).
    pub duration_s: f64,
    /// Traffic warm-up before the CBR source starts, seconds.
    pub warmup_s: f64,
    /// CBR source rate, bits/s (paper: 64 kbps).
    pub data_rate_bps: f64,
    /// CBR packet size, bytes.
    pub packet_size_bytes: u32,
    /// Radio and energy configuration.
    pub radio: RadioConfig,
    /// Battery capacity per node, joules. The paper's experiments model no depletion
    /// (`f64::INFINITY`, the default); set a finite capacity for network-lifetime
    /// studies and to make [`Self::faults`] battery-drain spikes physically meaningful.
    /// A drained battery is a permanent node death, and any finite capacity attaches a
    /// `LifetimeStats` block to the run report.
    pub battery_capacity_j: f64,
    /// Energy-lifecycle knobs: radio duty-cycling, continuous idle/sleep drain and
    /// distance-based TX power control. [`LifecycleConfig::off`] (the default)
    /// reproduces the paper's always-on, flat-TX-cost model byte for byte.
    pub lifecycle: LifecycleConfig,
    /// Mobility model plugged into [`crate::runner::build_mobility`].
    pub mobility: MobilityKind,
    /// Radio medium layer: position-cache epoch and neighbour-query mode. The default
    /// (exact positions, grid index) reproduces the brute-force physics byte for byte;
    /// a non-zero epoch trades position fidelity for large-n throughput.
    pub medium: MediumConfig,
    /// Fault-injection knobs. [`FaultPlanSpec::none`] (the default) runs fault-free and
    /// byte-identical to pre-fault builds; any configured fault makes the harness run a
    /// stabilization probe and attach a `ConvergenceStats` block to the report.
    pub faults: FaultPlanSpec,
    /// Medium-access policy beneath the multicast protocols. The default (the legacy
    /// uniform random jitter with stats reporting off) reproduces pre-MAC reports byte
    /// for byte; CSMA and self-stabilizing TDMA attach a `MacStats` block.
    pub mac: MacConfig,
    /// Event-loop engine: the default sequential loop reproduces earlier builds byte
    /// for byte; [`EngineConfig::sharded`] runs the region-parallel engine, whose
    /// reports are invariant in the shard count.
    pub engine: EngineConfig,
    /// Adaptive beacon suppression ("silent stabilization") for the self-stabilizing
    /// tree protocols. [`SilenceConfig::off`] (the default) keeps the classic cadence
    /// and wire format byte for byte; enabling it attaches a `SilenceStats` block
    /// splitting control bytes into steady-state and recovery traffic per session.
    pub silence: SilenceConfig,
    /// Report accumulation: exact store-everything tracking ([`MetricsConfig::exact`],
    /// the default, byte-identical to earlier builds) or memory-bounded streaming
    /// sketches whose footprint is set by configured bin budgets, not by event count
    /// — the mode for week-long, large-n lifetime runs.
    pub metrics: MetricsConfig,
    /// Energy-harvesting node model. [`HarvestConfig::off`] (the default) keeps
    /// battery depletion permanent; enabling it gives each node a seeded harvest rate
    /// and a harvest-until-threshold wake, turning depletion into power cycling
    /// (on either engine — sharded runs stay byte-identical to sequential).
    pub harvest: HarvestConfig,
    /// Master seed; repetitions derive child seeds from it.
    pub seed: u64,
}

impl Scenario {
    /// The paper's simulation model with a harness-friendly duration (180 s instead of
    /// 1800 s). Multiply `duration_s` by 10 to match the paper exactly.
    pub fn paper_default() -> Self {
        Scenario {
            n_nodes: 50,
            area_side_m: 750.0,
            max_speed_mps: 5.0,
            min_speed_mps: 0.1,
            pause_secs: 0.0,
            group_size: 20,
            n_groups: 1,
            member_churn_rate: 0.0,
            beacon_interval_s: 2.0,
            duration_s: 180.0,
            warmup_s: 10.0,
            data_rate_bps: 64_000.0,
            packet_size_bytes: 512,
            radio: RadioConfig::default(),
            battery_capacity_j: f64::INFINITY,
            lifecycle: LifecycleConfig::off(),
            mobility: MobilityKind::RandomWaypoint,
            medium: MediumConfig::default(),
            faults: FaultPlanSpec::none(),
            mac: MacConfig::default(),
            engine: EngineConfig::default(),
            silence: SilenceConfig::off(),
            metrics: MetricsConfig::default(),
            harvest: HarvestConfig::off(),
            seed: 0x55_5357,
        }
    }

    /// The same scenario under a different mobility model.
    pub fn with_mobility(mut self, mobility: MobilityKind) -> Self {
        self.mobility = mobility;
        self
    }

    /// The same scenario under a different radio medium configuration.
    pub fn with_medium(mut self, medium: MediumConfig) -> Self {
        self.medium = medium;
        self
    }

    /// The same scenario under a fault-injection plan.
    pub fn with_faults(mut self, faults: FaultPlanSpec) -> Self {
        self.faults = faults;
        self
    }

    /// The same scenario under a different medium-access policy.
    pub fn with_mac(mut self, mac: MacConfig) -> Self {
        self.mac = mac;
        self
    }

    /// The same scenario under a different event-loop engine.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// The same scenario on the sharded engine with `shards` worker threads.
    pub fn with_shards(mut self, shards: u32) -> Self {
        self.engine = EngineConfig { shards: shards.max(1), ..self.engine };
        self
    }

    /// The same scenario under an adaptive beacon-suppression policy.
    pub fn with_silence(mut self, silence: SilenceConfig) -> Self {
        self.silence = silence;
        self
    }

    /// The same scenario under a different report-accumulation mode.
    pub fn with_metrics(mut self, metrics: MetricsConfig) -> Self {
        self.metrics = metrics;
        self
    }

    /// The same scenario with memory-bounded streaming report accumulation (default
    /// sketch budgets; see [`MetricsConfig::streaming`]).
    pub fn with_streaming_metrics(self) -> Self {
        self.with_metrics(MetricsConfig::streaming())
    }

    /// The same scenario under an energy-harvesting node model.
    pub fn with_harvest(mut self, harvest: HarvestConfig) -> Self {
        self.harvest = harvest;
        self
    }

    /// The same scenario with `n` concurrent multicast sessions (clamped to ≥ 1).
    pub fn with_groups(mut self, n: usize) -> Self {
        self.n_groups = n.max(1);
        self
    }

    /// The same scenario with membership churn at `rate` join/leave events per second
    /// per session (clamped to ≥ 0).
    pub fn with_churn_rate(mut self, rate: f64) -> Self {
        self.member_churn_rate = rate.max(0.0);
        self
    }

    /// The same scenario with every node starting on a `capacity_j`-joule battery.
    pub fn with_battery_capacity(mut self, capacity_j: f64) -> Self {
        self.battery_capacity_j = capacity_j.max(0.0);
        self
    }

    /// The same scenario under a radio duty-cycle schedule: awake for `awake_fraction`
    /// of every `period_s` seconds (seeded per-node phases; sleeping radios miss
    /// deliveries).
    pub fn with_duty_cycle(mut self, period_s: f64, awake_fraction: f64) -> Self {
        self.lifecycle =
            self.lifecycle.with_duty_cycle(SimDuration::from_secs_f64(period_s), awake_fraction);
        self
    }

    /// The same scenario with continuous idle-listen / sleep drain, watts.
    pub fn with_idle_power(mut self, idle_listen_w: f64, sleep_w: f64) -> Self {
        self.lifecycle = self.lifecycle.with_idle_power(idle_listen_w, sleep_w);
        self
    }

    /// The same scenario with distance-based TX power control switched on or off
    /// (transmissions priced by their farthest actual receiver instead of the
    /// requested range).
    pub fn with_tx_power_control(mut self, enabled: bool) -> Self {
        self.lifecycle = self.lifecycle.with_tx_power_control(enabled);
        self
    }

    /// True when the scenario has several sessions or churns memberships — the runs
    /// whose reports carry per-group blocks and a legitimacy probe.
    pub fn has_group_dynamics(&self) -> bool {
        self.n_groups > 1 || self.member_churn_rate > 0.0
    }

    /// A small, fast scenario for unit/integration tests: fewer nodes, shorter run.
    pub fn quick_test() -> Self {
        Scenario { n_nodes: 25, duration_s: 60.0, group_size: 10, ..Self::paper_default() }
    }

    /// Number of group members excluding the source.
    pub fn receiver_count(&self) -> usize {
        self.group_size.saturating_sub(1).min(self.n_nodes.saturating_sub(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_figure_legends() {
        assert_eq!(ProtocolKind::SsSpst(MetricKind::EnergyAware).name(), "SS-SPST-E");
        assert_eq!(ProtocolKind::SsMst.name(), "SS-MST");
        assert_eq!(ProtocolKind::Odmrp.name(), "ODMRP");
        assert_eq!(ProtocolKind::Maodv.name(), "MAODV");
        let names: Vec<_> = ProtocolKind::paper_four().iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["MAODV", "SS-SPST", "SS-SPST-E", "ODMRP"]);
        assert_eq!(ProtocolKind::ss_variants().len(), 4);
        assert_eq!(ProtocolKind::beacon_pair().len(), 2);
    }

    #[test]
    fn paper_defaults_match_section6() {
        let s = Scenario::paper_default();
        assert_eq!(s.n_nodes, 50);
        assert_eq!(s.area_side_m, 750.0);
        assert_eq!(s.data_rate_bps, 64_000.0);
        assert_eq!(s.beacon_interval_s, 2.0);
        assert!(s.min_speed_mps > 0.0, "Yoon/Noble fix");
        assert_eq!(s.receiver_count(), 19);
    }

    #[test]
    fn medium_defaults_to_exact_grid_and_is_overridable() {
        use ssmcast_dessim::SimDuration;
        use ssmcast_manet::NeighborQuery;
        let s = Scenario::paper_default();
        assert_eq!(s.medium, MediumConfig::default());
        assert!(s.medium.position_epoch.is_zero(), "exact physics by default");
        assert_eq!(s.medium.neighbor_query, NeighborQuery::Grid);
        let tuned =
            s.with_medium(MediumConfig::brute_force().with_epoch(SimDuration::from_millis(100)));
        assert_eq!(tuned.medium.neighbor_query, NeighborQuery::BruteForce);
        assert_eq!(tuned.medium.position_epoch, SimDuration::from_millis(100));
    }

    #[test]
    fn mobility_defaults_to_the_papers_model() {
        assert_eq!(Scenario::paper_default().mobility, MobilityKind::RandomWaypoint);
        let s = Scenario::paper_default().with_mobility(MobilityKind::GaussMarkov);
        assert_eq!(s.mobility, MobilityKind::GaussMarkov);
        assert_eq!(MobilityKind::ALL.len(), 3);
        assert_eq!(MobilityKind::StaticGrid.name(), "static-grid");
    }

    #[test]
    fn group_and_churn_knobs_default_off_and_compose() {
        let s = Scenario::paper_default();
        assert_eq!(s.n_groups, 1);
        assert_eq!(s.member_churn_rate, 0.0);
        assert!(!s.has_group_dynamics());
        let multi = s.with_groups(3).with_churn_rate(0.5);
        assert_eq!(multi.n_groups, 3);
        assert_eq!(multi.member_churn_rate, 0.5);
        assert!(multi.has_group_dynamics());
        assert!(s.with_churn_rate(0.1).has_group_dynamics(), "churn alone counts");
        assert_eq!(s.with_groups(0).n_groups, 1, "clamped to at least one session");
        assert_eq!(s.with_churn_rate(-2.0).member_churn_rate, 0.0);
    }

    #[test]
    fn lifecycle_knobs_default_off_and_compose() {
        let s = Scenario::paper_default();
        assert_eq!(s.lifecycle, LifecycleConfig::off());
        assert!(s.battery_capacity_j.is_infinite());
        let tuned = s
            .with_battery_capacity(25.0)
            .with_duty_cycle(0.5, 0.6)
            .with_idle_power(1e-3, 1e-5)
            .with_tx_power_control(true);
        assert_eq!(tuned.battery_capacity_j, 25.0);
        assert!(tuned.lifecycle.duty_cycle.is_on());
        assert_eq!(tuned.lifecycle.duty_cycle.awake_fraction, 0.6);
        assert!(tuned.lifecycle.has_continuous_drain());
        assert!(tuned.lifecycle.tx_power_control);
        assert_eq!(s.with_battery_capacity(-3.0).battery_capacity_j, 0.0, "clamped");
    }

    #[test]
    fn mac_defaults_to_the_legacy_jitter_and_is_overridable() {
        use ssmcast_manet::MacKind;
        let s = Scenario::paper_default();
        assert_eq!(s.mac, MacConfig::default());
        assert_eq!(s.mac.kind, MacKind::RandomJitter);
        assert!(!s.mac.reports_stats(), "default runs stay byte-identical to pre-MAC reports");
        let tuned = s.with_mac(MacConfig::ss_tdma());
        assert_eq!(tuned.mac.kind, MacKind::SsTdma);
        assert!(tuned.mac.reports_stats());
    }

    #[test]
    fn silence_defaults_off_and_is_overridable() {
        let s = Scenario::paper_default();
        assert_eq!(s.silence, SilenceConfig::off());
        assert!(!s.silence.enabled, "default runs keep the classic cadence byte for byte");
        let tuned = s.with_silence(SilenceConfig::on().with_max_interval_factor(16.0));
        assert!(tuned.silence.enabled);
        assert_eq!(tuned.silence.max_interval_factor, 16.0);
    }

    #[test]
    fn metrics_and_harvest_default_off_and_are_overridable() {
        use ssmcast_metrics::MetricsMode;
        let s = Scenario::paper_default();
        assert_eq!(s.metrics, MetricsConfig::exact(), "exact reports by default");
        assert!(!s.metrics.is_streaming());
        assert_eq!(s.harvest, HarvestConfig::off());
        assert!(!s.harvest.enabled, "depletion stays permanent by default");
        let tuned = s.with_streaming_metrics().with_harvest(HarvestConfig::on(0.01, 0.05, 0.25));
        assert!(tuned.metrics.is_streaming());
        assert_eq!(tuned.metrics.mode, MetricsMode::Streaming);
        assert!(tuned.harvest.enabled);
        assert_eq!(tuned.harvest.wake_fraction, 0.25);
    }

    #[test]
    fn receiver_count_is_clamped() {
        let mut s = Scenario::quick_test();
        s.group_size = 100;
        assert_eq!(s.receiver_count(), s.n_nodes - 1);
        s.group_size = 0;
        assert_eq!(s.receiver_count(), 0);
    }
}
