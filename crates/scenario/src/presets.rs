//! Per-figure experiment presets: one entry for every figure in the paper's evaluation
//! (Figures 7–16). Each preset knows its swept parameter, its x values, the protocols on
//! the plot and the y metric, so the bench harness and the examples can regenerate any
//! figure with one call.

use crate::experiment::Experiment;
use crate::runner::run_protocol;
use crate::scenario::{MobilityKind, ProtocolKind, Scenario};
use crate::sink::{MemorySink, RunSink, TeeSink};
use crate::sweep::{to_series, Metric, SweepCell};
use serde::{Deserialize, Serialize};
use ssmcast_core::MetricKind;
use ssmcast_manet::{MacConfig, SilenceConfig};
use ssmcast_metrics::Series;

/// Which parameter a figure sweeps.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum SweptParameter {
    /// Maximum node velocity in m/s.
    Velocity,
    /// Beacon interval in seconds.
    BeaconInterval,
    /// Multicast group size (members including the source).
    GroupSize,
    /// Number of state-corruption bursts injected per run (fault sweep; x = 0 runs
    /// fault-free). Burst times and targets are seeded per repetition.
    FaultBursts,
    /// Number of concurrent multicast sessions sharing the medium (x is rounded and
    /// clamped to ≥ 1).
    GroupCount,
    /// Membership churn rate: expected join/leave events per second per session.
    MemberChurnRate,
    /// Per-node battery capacity in joules (clamped to ≥ 0; a drained battery is a
    /// permanent node death, so this sweeps network lifetime).
    BatteryCapacity,
    /// Radio duty cycle: the awake fraction of each schedule period, in `(0, 1]`
    /// (1.0 = always awake; sleeping radios miss deliveries).
    DutyCycle,
    /// Medium-access policy, encoded on the x axis: 0 = random jitter (stats on),
    /// 1 = CSMA, 2 = self-stabilizing TDMA (rounded and clamped).
    MacKind,
    /// Offered load: the CBR source rate in kbit/s per session (clamped to ≥ 0).
    TrafficLoad,
    /// Beacon-suppression backoff cap, as a multiple of the base beacon interval
    /// (clamped to ≥ 1; suppression is switched on with the default schedule). x = 1
    /// keeps the always-on cadence with phase accounting enabled — the baseline column.
    SuppressionBackoff,
}

impl SweptParameter {
    /// Apply a swept value to a scenario — the hook [`Experiment::sweep`] uses.
    pub fn apply(self, scenario: &mut Scenario, x: f64) {
        match self {
            SweptParameter::Velocity => scenario.max_speed_mps = x,
            SweptParameter::BeaconInterval => scenario.beacon_interval_s = x,
            SweptParameter::GroupSize => scenario.group_size = x.round() as usize,
            SweptParameter::FaultBursts => {
                scenario.faults.corruption_bursts = x.round().max(0.0) as u32;
                if scenario.faults.corruption_fraction <= 0.0 {
                    scenario.faults.corruption_fraction = 0.3;
                }
                // Inject inside the traffic window so recovery is observable, leaving
                // the last fifth of the run as headroom for the slowest protocols.
                // Short runs (duration close to the warm-up) clamp the window into the
                // run's first half rather than inverting it past the horizon.
                let start = (scenario.warmup_s + 5.0).min(scenario.duration_s * 0.5);
                scenario.faults.window_start_s = start;
                scenario.faults.window_end_s = (scenario.duration_s * 0.8).max(start);
            }
            SweptParameter::GroupCount => {
                scenario.n_groups = (x.round().max(1.0)) as usize;
            }
            SweptParameter::MemberChurnRate => {
                scenario.member_churn_rate = x.max(0.0);
            }
            SweptParameter::BatteryCapacity => {
                scenario.battery_capacity_j = x.max(0.0);
            }
            SweptParameter::DutyCycle => {
                let period = scenario.lifecycle.duty_cycle.period;
                scenario.lifecycle = scenario.lifecycle.with_duty_cycle(period, x.clamp(0.01, 1.0));
            }
            SweptParameter::MacKind => {
                // Stats on even for the jitter column, so the collision-rate metric
                // reads a MacStats block for all three policies.
                scenario.mac = match x.round().max(0.0) as u32 {
                    0 => MacConfig::default().with_stats(),
                    1 => MacConfig::csma(),
                    _ => MacConfig::ss_tdma(),
                };
            }
            SweptParameter::TrafficLoad => {
                scenario.data_rate_bps = (x * 1000.0).max(0.0);
            }
            SweptParameter::SuppressionBackoff => {
                scenario.silence = SilenceConfig::on().with_max_interval_factor(x);
            }
        }
    }

    /// Axis label for tables and CSV headers.
    pub fn x_label(self) -> &'static str {
        match self {
            SweptParameter::Velocity => "Velocity (m/s)",
            SweptParameter::BeaconInterval => "Beacon interval (s)",
            SweptParameter::GroupSize => "Group size",
            SweptParameter::FaultBursts => "Corruption bursts per run",
            SweptParameter::GroupCount => "Concurrent multicast sessions",
            SweptParameter::MemberChurnRate => "Membership churn (events/s per session)",
            SweptParameter::BatteryCapacity => "Battery capacity (J)",
            SweptParameter::DutyCycle => "Radio duty cycle (awake fraction)",
            SweptParameter::MacKind => "MAC policy (0 = jitter, 1 = CSMA, 2 = SS-TDMA)",
            SweptParameter::TrafficLoad => "Offered load (kbit/s per source)",
            SweptParameter::SuppressionBackoff => "Suppression backoff cap (x beacon interval)",
        }
    }
}

/// Identifier of a figure in the paper's evaluation section.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, Serialize, Deserialize)]
pub enum FigureId {
    /// PDR vs velocity, SS-SPST variants.
    Fig7,
    /// Unavailability ratio vs velocity, SS-SPST variants.
    Fig8,
    /// Energy per packet vs velocity, SS-SPST variants.
    Fig9,
    /// PDR vs beacon interval, SS-SPST vs SS-SPST-E.
    Fig10,
    /// Energy per packet vs beacon interval, SS-SPST vs SS-SPST-E.
    Fig11,
    /// PDR vs group size, four protocols.
    Fig12,
    /// Control overhead vs group size, four protocols.
    Fig13,
    /// PDR vs velocity, four protocols.
    Fig14,
    /// Average delay vs group size, four protocols.
    Fig15,
    /// Energy per packet vs velocity, four protocols.
    Fig16,
    /// Convergence time vs corruption-burst count, SS-SPST variants + baselines. Not a
    /// figure of the paper — it measures the paper's *claim* (self-stabilization) the
    /// way the related self-stabilization literature does, as recovery time and
    /// communication-during-stabilization under a seeded fault schedule.
    FigFaults,
    /// PDR vs concurrent session count under membership churn, four protocols. Not a
    /// figure of the paper — it opens the multi-group workload dimension its
    /// single-group evaluation leaves out (cf. the multi-group settings of Han et al.'s
    /// all-to-all multicasting and Leone & Schiller's dynamic-network TDMA).
    FigGroups,
    /// Time-to-first-death vs battery capacity under idle drain and distance-based TX
    /// power control — the network-lifetime workload. Not a figure of the paper (its
    /// batteries never deplete); it charts the consequence its energy-per-packet
    /// curves predict, the way the duty-cycle-aware minimum-energy multicast
    /// literature does: an energy-aware tree keeps the first node alive longest, blind
    /// flooding kills it first.
    FigLifetime,
    /// Collision rate vs MAC policy at elevated offered load, four protocols. Not a
    /// figure of the paper (its medium is contention-free) — it prices the idealized
    /// broadcast assumption by swapping the channel-access layer beneath the same
    /// protocols: blind jitter vs carrier sensing vs Leone & Schiller-style
    /// self-stabilizing TDMA.
    FigMac,
    /// Steady-state control bytes-on-air vs suppression backoff cap, the three
    /// self-stabilizing tree protocols. Not a figure of the paper (its protocols
    /// beacon forever) — it measures the silent-stabilization claim of Devismes,
    /// Masuzawa & Tixeuil: once the legitimacy predicate holds, control traffic
    /// should collapse toward the heartbeat floor while recovery traffic is spared.
    FigSilence,
    /// Delivery ratio vs radio duty cycle: the minimum-energy baselines against
    /// flooding and SS-SPST-E. Not a figure of the paper (its radios never sleep) —
    /// it measures the claim of the duty-cycle-aware minimum-energy multicast
    /// literature (Han et al.): a forwarder that knows downstream wake schedules and
    /// defers into them (DCA-Forward) keeps delivering where schedule-blind
    /// transmissions are lost to sleeping radios.
    FigMinEnergy,
}

impl FigureId {
    /// All evaluation figures in order.
    pub const ALL: [FigureId; 16] = [
        FigureId::Fig7,
        FigureId::Fig8,
        FigureId::Fig9,
        FigureId::Fig10,
        FigureId::Fig11,
        FigureId::Fig12,
        FigureId::Fig13,
        FigureId::Fig14,
        FigureId::Fig15,
        FigureId::Fig16,
        FigureId::FigFaults,
        FigureId::FigGroups,
        FigureId::FigLifetime,
        FigureId::FigMac,
        FigureId::FigSilence,
        FigureId::FigMinEnergy,
    ];

    /// The preset describing how to regenerate this figure.
    pub fn spec(self) -> FigureSpec {
        let velocity_xs = vec![1.0, 5.0, 10.0, 15.0, 20.0];
        let beacon_xs = vec![1.0, 2.0, 3.0, 4.0];
        let group_xs = vec![10.0, 20.0, 30.0, 40.0, 50.0];
        match self {
            FigureId::Fig7 => FigureSpec {
                id: self,
                title: "Packet Delivery Ratio as a Function of Mobility",
                swept: SweptParameter::Velocity,
                xs: velocity_xs,
                protocols: ProtocolKind::ss_variants().to_vec(),
                metric: Metric::Pdr,
            },
            FigureId::Fig8 => FigureSpec {
                id: self,
                title: "Unavailability Ratio as a Function of Velocity",
                swept: SweptParameter::Velocity,
                xs: velocity_xs,
                protocols: ProtocolKind::ss_variants().to_vec(),
                metric: Metric::Unavailability,
            },
            FigureId::Fig9 => FigureSpec {
                id: self,
                title: "Energy Consumption per Packet Delivered",
                swept: SweptParameter::Velocity,
                xs: velocity_xs,
                protocols: ProtocolKind::ss_variants().to_vec(),
                metric: Metric::EnergyPerPacketMj,
            },
            FigureId::Fig10 => FigureSpec {
                id: self,
                title: "Packet Delivery Ratio as a Function of Beacon Interval",
                swept: SweptParameter::BeaconInterval,
                xs: beacon_xs,
                protocols: ProtocolKind::beacon_pair().to_vec(),
                metric: Metric::Pdr,
            },
            FigureId::Fig11 => FigureSpec {
                id: self,
                title: "Energy Consumption per Packet Delivered as a Function of Beacon Interval",
                swept: SweptParameter::BeaconInterval,
                xs: beacon_xs,
                protocols: ProtocolKind::beacon_pair().to_vec(),
                metric: Metric::EnergyPerPacketMj,
            },
            FigureId::Fig12 => FigureSpec {
                id: self,
                title: "Packet Delivery Ratio as a Function of Multicast Group Size",
                swept: SweptParameter::GroupSize,
                xs: group_xs,
                protocols: ProtocolKind::paper_four().to_vec(),
                metric: Metric::Pdr,
            },
            FigureId::Fig13 => FigureSpec {
                id: self,
                title: "Control Overhead as a Function of Multicast Group Size",
                swept: SweptParameter::GroupSize,
                xs: group_xs,
                protocols: ProtocolKind::paper_four().to_vec(),
                metric: Metric::ControlOverhead,
            },
            FigureId::Fig14 => FigureSpec {
                id: self,
                title: "Packet Delivery Ratio as a Function of Velocity",
                swept: SweptParameter::Velocity,
                xs: velocity_xs,
                protocols: ProtocolKind::paper_four().to_vec(),
                metric: Metric::Pdr,
            },
            FigureId::Fig15 => FigureSpec {
                id: self,
                title: "Average Delay per Node",
                swept: SweptParameter::GroupSize,
                xs: group_xs,
                protocols: ProtocolKind::paper_four().to_vec(),
                metric: Metric::DelayMs,
            },
            FigureId::Fig16 => FigureSpec {
                id: self,
                title: "Energy Consumed per Packet Delivered as a Function of Velocity",
                swept: SweptParameter::Velocity,
                xs: velocity_xs,
                protocols: ProtocolKind::paper_four().to_vec(),
                metric: Metric::EnergyPerPacketMj,
            },
            FigureId::FigFaults => FigureSpec {
                id: self,
                title: "Convergence Time as a Function of Injected Corruption Bursts",
                swept: SweptParameter::FaultBursts,
                xs: vec![1.0, 2.0, 4.0, 8.0],
                protocols: ProtocolKind::paper_four().to_vec(),
                metric: Metric::MeanRecoveryS,
            },
            FigureId::FigGroups => FigureSpec {
                id: self,
                title: "Packet Delivery Ratio as a Function of Concurrent Sessions",
                swept: SweptParameter::GroupCount,
                xs: vec![1.0, 2.0, 3.0, 4.0],
                protocols: ProtocolKind::paper_four().to_vec(),
                metric: Metric::Pdr,
            },
            FigureId::FigLifetime => FigureSpec {
                id: self,
                title: "Time to First Node Death as a Function of Battery Capacity",
                swept: SweptParameter::BatteryCapacity,
                xs: vec![5.0, 10.0, 20.0, 40.0],
                protocols: vec![
                    ProtocolKind::Flooding,
                    ProtocolKind::SsSpst(MetricKind::Hop),
                    ProtocolKind::SsSpst(MetricKind::EnergyAware),
                    ProtocolKind::MemTree,
                    ProtocolKind::DcaForward,
                ],
                metric: Metric::TimeToFirstDeathS,
            },
            FigureId::FigMac => FigureSpec {
                id: self,
                title: "Collision Rate as a Function of MAC Policy",
                swept: SweptParameter::MacKind,
                xs: vec![0.0, 1.0, 2.0],
                protocols: ProtocolKind::paper_four().to_vec(),
                metric: Metric::CollisionRate,
            },
            FigureId::FigSilence => FigureSpec {
                id: self,
                title: "Steady-State Control Bytes as a Function of Suppression Backoff Cap",
                swept: SweptParameter::SuppressionBackoff,
                xs: vec![1.0, 2.0, 4.0, 8.0, 16.0],
                protocols: vec![
                    ProtocolKind::SsSpst(MetricKind::Hop),
                    ProtocolKind::SsSpst(MetricKind::EnergyAware),
                    ProtocolKind::SsMst,
                ],
                metric: Metric::SteadyControlBytes,
            },
            FigureId::FigMinEnergy => FigureSpec {
                id: self,
                title: "Packet Delivery Ratio as a Function of Radio Duty Cycle",
                swept: SweptParameter::DutyCycle,
                xs: vec![0.1, 0.25, 0.5, 1.0],
                protocols: vec![
                    ProtocolKind::Flooding,
                    ProtocolKind::SsSpst(MetricKind::EnergyAware),
                    ProtocolKind::MemTree,
                    ProtocolKind::DcaForward,
                ],
                metric: Metric::Pdr,
            },
        }
    }

    /// Short name ("fig07", ...) for file names.
    pub fn short_name(self) -> &'static str {
        match self {
            FigureId::Fig7 => "fig07",
            FigureId::Fig8 => "fig08",
            FigureId::Fig9 => "fig09",
            FigureId::Fig10 => "fig10",
            FigureId::Fig11 => "fig11",
            FigureId::Fig12 => "fig12",
            FigureId::Fig13 => "fig13",
            FigureId::Fig14 => "fig14",
            FigureId::Fig15 => "fig15",
            FigureId::Fig16 => "fig16",
            FigureId::FigFaults => "fig_faults",
            FigureId::FigGroups => "fig_groups",
            FigureId::FigLifetime => "fig_lifetime",
            FigureId::FigMac => "fig_mac",
            FigureId::FigSilence => "fig_silence",
            FigureId::FigMinEnergy => "fig_min_energy",
        }
    }
}

/// Everything needed to regenerate one figure.
#[derive(Clone, Debug, Serialize)]
pub struct FigureSpec {
    /// Which figure this is.
    pub id: FigureId,
    /// The paper's figure title.
    pub title: &'static str,
    /// The swept parameter.
    pub swept: SweptParameter,
    /// The x values to sweep.
    pub xs: Vec<f64>,
    /// The protocols on the plot.
    pub protocols: Vec<ProtocolKind>,
    /// The y metric.
    pub metric: Metric,
}

/// Base scenario for a figure, applying the paper's fixed parameters for that figure
/// (e.g. velocity fixed at 5 m/s for the beacon-interval study, 1 m/s for the group-size
/// study).
pub fn base_scenario_for(spec: &FigureSpec) -> Scenario {
    let mut s = Scenario::paper_default();
    match spec.swept {
        SweptParameter::Velocity => {
            s.group_size = 20;
            s.beacon_interval_s = 2.0;
        }
        SweptParameter::BeaconInterval => {
            s.max_speed_mps = 5.0;
            s.group_size = 20;
        }
        SweptParameter::GroupSize => {
            // Figures 12/13/15 fix node speed at 1 m/s.
            s.max_speed_mps = 1.0;
            s.beacon_interval_s = 2.0;
        }
        SweptParameter::FaultBursts => {
            // Slow mobility so recovery time measures stabilization, not tree churn.
            s.max_speed_mps = 1.0;
            s.beacon_interval_s = 2.0;
            s.faults.corruption_fraction = 0.3;
        }
        SweptParameter::GroupCount => {
            // Slow mobility (as in the group-size study) with moderate churn, so the
            // sweep prices concurrent-session contention plus membership dynamics.
            s.max_speed_mps = 1.0;
            s.beacon_interval_s = 2.0;
            s.member_churn_rate = 0.05;
        }
        SweptParameter::MemberChurnRate => {
            // Two sessions so churn interacts with cross-session contention.
            s.max_speed_mps = 1.0;
            s.beacon_interval_s = 2.0;
            s.n_groups = 2;
        }
        SweptParameter::BatteryCapacity => {
            // The network-lifetime study: slow mobility (deaths should come from
            // energy discipline, not partition luck), distance-based TX power control
            // so short-link trees actually pay less per hop, a small idle-listen
            // current so a radio that merely stays on also spends its budget, and a
            // moderate battery (the sweep overrides it per column).
            s.max_speed_mps = 1.0;
            s.beacon_interval_s = 2.0;
            s.battery_capacity_j = 10.0;
            s.lifecycle = s.lifecycle.with_tx_power_control(true).with_idle_power(2e-3, 1e-4);
        }
        SweptParameter::DutyCycle => {
            // The duty-cycle study (minimum-energy baselines): a static grid, as in
            // the duty-cycle-aware minimum-energy multicast literature — the
            // centralized BIP tree is built from the t = 0 snapshot and must not rot
            // under mobility while the sweep measures *scheduling*, not repair. TX
            // power control with duty-aware pricing on, so a deferring forwarder
            // prices each batch at its farthest awake receiver.
            s.mobility = MobilityKind::StaticGrid;
            s.max_speed_mps = 1.0;
            s.beacon_interval_s = 2.0;
            s.lifecycle = s
                .lifecycle
                .with_tx_power_control(true)
                .with_idle_power(2e-3, 1e-4)
                .with_duty_aware_pricing(true);
        }
        SweptParameter::MacKind => {
            // Slow mobility (contention, not partition luck, should drive losses) and
            // double the paper's offered load so channel-access discipline is visible.
            s.max_speed_mps = 1.0;
            s.beacon_interval_s = 2.0;
            s.data_rate_bps = 128_000.0;
        }
        SweptParameter::TrafficLoad => {
            // Per-column load with carrier sensing on, so a load sweep prices
            // contention rather than pure loss-draw luck.
            s.max_speed_mps = 1.0;
            s.beacon_interval_s = 2.0;
            s.mac = MacConfig::csma();
        }
        SweptParameter::SuppressionBackoff => {
            // Static topology, fault-free: the steady-state byte split should price
            // the protocols' own beacon cadence, not mobility-induced repair traffic
            // (every neighbour change is legitimate evidence that snaps the backoff).
            s.mobility = MobilityKind::StaticGrid;
            s.max_speed_mps = 1.0;
            s.beacon_interval_s = 2.0;
        }
    }
    s
}

/// The raw result of regenerating one figure.
#[derive(Clone, Debug, Serialize)]
pub struct FigureResult {
    /// The preset that was run.
    pub spec: FigureSpec,
    /// The per-cell reports (kept for CSV / JSON export).
    pub cells: Vec<SweepCell>,
    /// One series per protocol, the figure's lines.
    pub series: Vec<Series>,
}

/// Regenerate one figure. `scale` shrinks the run length so the same code serves quick
/// smoke tests (`scale ≈ 0.2`), the bench harness (`scale ≈ 1`) and paper-fidelity runs
/// (`scale = 10`, i.e. 1800 simulated seconds). See `EXPERIMENTS.md` for the mapping.
pub fn run_figure(id: FigureId, scale: f64, reps: usize) -> FigureResult {
    let mut null = crate::sink::NullSink;
    run_figure_with_sink(id, scale, reps, &mut null)
}

/// Regenerate one figure under an explicit radio medium configuration (position-cache
/// epoch + neighbour-query mode). With the default [`MediumConfig`] this is identical to
/// [`run_figure`]; a coarse position epoch trades fidelity for throughput on large
/// sweeps.
pub fn run_figure_with_medium(
    id: FigureId,
    scale: f64,
    reps: usize,
    medium: ssmcast_manet::MediumConfig,
) -> FigureResult {
    let mut null = crate::sink::NullSink;
    run_figure_inner(id, scale, reps, Some(medium), &mut null)
}

/// Regenerate one figure while streaming every completed cell through `sink` (progress
/// lines, incremental CSV/JSON, ...). The figure's own summary still needs the full grid,
/// which is collected alongside the stream.
pub fn run_figure_with_sink(
    id: FigureId,
    scale: f64,
    reps: usize,
    sink: &mut dyn RunSink,
) -> FigureResult {
    run_figure_inner(id, scale, reps, None, sink)
}

fn run_figure_inner(
    id: FigureId,
    scale: f64,
    reps: usize,
    medium: Option<ssmcast_manet::MediumConfig>,
    sink: &mut dyn RunSink,
) -> FigureResult {
    let spec = id.spec();
    let mut base = base_scenario_for(&spec);
    base.duration_s = (base.duration_s * scale).max(30.0);
    if let Some(medium) = medium {
        base.medium = medium;
    }
    let mut memory = MemorySink::new();
    {
        let mut tee = TeeSink::new(vec![&mut memory, sink]);
        Experiment::new(base)
            .protocol_kinds(&spec.protocols)
            .sweep(spec.swept, spec.xs.clone())
            .reps(reps.max(1))
            .run_with_sink(&mut tee);
    }
    let cells = memory.into_cells();
    let series = to_series(&cells, spec.metric);
    FigureResult { spec, cells, series }
}

/// Run a single cell of a figure (used by the Criterion timing benchmarks).
pub fn run_single_cell(
    id: FigureId,
    x: f64,
    protocol: ProtocolKind,
    scale: f64,
) -> ssmcast_manet::SimReport {
    let spec = id.spec();
    let mut base = base_scenario_for(&spec);
    base.duration_s = (base.duration_s * scale).max(30.0);
    spec.swept.apply(&mut base, x);
    run_protocol(&base, protocol.to_protocol().as_ref())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_id_all_lists_every_variant_exactly_once() {
        // The match is the guard: adding a FigureId variant without extending it is a
        // compile error, and N_VARIANTS then forces ALL to grow with it.
        const N_VARIANTS: usize = 16;
        fn ordinal(id: FigureId) -> usize {
            match id {
                FigureId::Fig7 => 0,
                FigureId::Fig8 => 1,
                FigureId::Fig9 => 2,
                FigureId::Fig10 => 3,
                FigureId::Fig11 => 4,
                FigureId::Fig12 => 5,
                FigureId::Fig13 => 6,
                FigureId::Fig14 => 7,
                FigureId::Fig15 => 8,
                FigureId::Fig16 => 9,
                FigureId::FigFaults => 10,
                FigureId::FigGroups => 11,
                FigureId::FigLifetime => 12,
                FigureId::FigMac => 13,
                FigureId::FigSilence => 14,
                FigureId::FigMinEnergy => 15,
            }
        }
        assert_eq!(FigureId::ALL.len(), N_VARIANTS, "ALL drifted from the enum");
        let mut seen = [false; N_VARIANTS];
        for id in FigureId::ALL {
            let i = ordinal(id);
            assert!(!seen[i], "{id:?} listed twice in FigureId::ALL");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "FigureId::ALL misses a variant");
    }

    #[test]
    fn mac_preset_sweeps_the_three_policies_under_load() {
        use ssmcast_manet::MacKind;
        let spec = FigureId::FigMac.spec();
        assert_eq!(spec.swept, SweptParameter::MacKind);
        assert_eq!(spec.metric, Metric::CollisionRate);
        assert_eq!(spec.xs, vec![0.0, 1.0, 2.0]);
        let base = base_scenario_for(&spec);
        assert!(base.data_rate_bps > Scenario::paper_default().data_rate_bps, "elevated load");
        let mut s = base;
        SweptParameter::MacKind.apply(&mut s, 0.0);
        assert_eq!(s.mac.kind, MacKind::RandomJitter);
        assert!(s.mac.reports_stats(), "the jitter column must still report stats");
        SweptParameter::MacKind.apply(&mut s, 1.0);
        assert_eq!(s.mac.kind, MacKind::Csma);
        SweptParameter::MacKind.apply(&mut s, 2.0);
        assert_eq!(s.mac.kind, MacKind::SsTdma);
        SweptParameter::TrafficLoad.apply(&mut s, 256.0);
        assert_eq!(s.data_rate_bps, 256_000.0, "kbit/s on the axis, bit/s in the scenario");
        assert_eq!(FigureId::FigMac.short_name(), "fig_mac");
    }

    #[test]
    fn every_figure_has_a_complete_spec() {
        for id in FigureId::ALL {
            let spec = id.spec();
            assert!(!spec.xs.is_empty());
            assert!(spec.protocols.len() >= 2);
            assert!(!spec.title.is_empty());
            assert!(id.short_name().starts_with("fig"));
            let base = base_scenario_for(&spec);
            assert_eq!(base.n_nodes, 50);
        }
    }

    #[test]
    fn silence_preset_sweeps_the_backoff_cap_on_a_static_topology() {
        let spec = FigureId::FigSilence.spec();
        assert_eq!(spec.swept, SweptParameter::SuppressionBackoff);
        assert_eq!(spec.metric, Metric::SteadyControlBytes);
        assert_eq!(spec.xs, vec![1.0, 2.0, 4.0, 8.0, 16.0]);
        assert_eq!(spec.protocols.len(), 3, "the three self-stabilizing tree protocols");
        assert!(spec.protocols.contains(&ProtocolKind::SsMst));
        let base = base_scenario_for(&spec);
        assert_eq!(base.mobility, MobilityKind::StaticGrid);
        assert!(!base.silence.enabled, "the sweep itself switches suppression on per column");
        let mut s = base;
        SweptParameter::SuppressionBackoff.apply(&mut s, 16.0);
        assert!(s.silence.enabled);
        assert_eq!(s.silence.max_interval_factor, 16.0);
        SweptParameter::SuppressionBackoff.apply(&mut s, 0.25);
        assert_eq!(s.silence.max_interval_factor, 1.0, "cap clamps to the base cadence");
        assert_eq!(FigureId::FigSilence.short_name(), "fig_silence");
    }

    #[test]
    fn min_energy_preset_sweeps_duty_cycle_on_a_static_grid() {
        let spec = FigureId::FigMinEnergy.spec();
        assert_eq!(spec.swept, SweptParameter::DutyCycle);
        assert_eq!(spec.metric, Metric::Pdr);
        assert_eq!(spec.xs, vec![0.1, 0.25, 0.5, 1.0]);
        assert!(spec.protocols.contains(&ProtocolKind::MemTree));
        assert!(spec.protocols.contains(&ProtocolKind::DcaForward));
        assert!(spec.protocols.contains(&ProtocolKind::Flooding), "schedule-blind yardstick");
        let base = base_scenario_for(&spec);
        assert_eq!(base.mobility, MobilityKind::StaticGrid, "BIP trees must not rot");
        assert!(base.lifecycle.tx_power_control);
        assert!(base.lifecycle.duty_aware_pricing);
        let mut s = base;
        SweptParameter::DutyCycle.apply(&mut s, 0.25);
        assert!(s.lifecycle.duty_cycle.is_on());
        assert_eq!(FigureId::FigMinEnergy.short_name(), "fig_min_energy");
    }

    #[test]
    fn group_size_figures_fix_velocity_at_1mps() {
        let spec = FigureId::Fig12.spec();
        assert_eq!(base_scenario_for(&spec).max_speed_mps, 1.0);
        let spec = FigureId::Fig15.spec();
        assert_eq!(base_scenario_for(&spec).max_speed_mps, 1.0);
    }

    #[test]
    fn beacon_interval_figures_fix_velocity_at_5mps() {
        let spec = FigureId::Fig10.spec();
        assert_eq!(base_scenario_for(&spec).max_speed_mps, 5.0);
        assert_eq!(spec.protocols.len(), 2);
    }

    #[test]
    fn apply_sets_the_right_field() {
        let mut s = Scenario::paper_default();
        SweptParameter::Velocity.apply(&mut s, 15.0);
        assert_eq!(s.max_speed_mps, 15.0);
        SweptParameter::BeaconInterval.apply(&mut s, 3.0);
        assert_eq!(s.beacon_interval_s, 3.0);
        SweptParameter::GroupSize.apply(&mut s, 40.0);
        assert_eq!(s.group_size, 40);
        assert_eq!(SweptParameter::GroupSize.x_label(), "Group size");
        SweptParameter::BatteryCapacity.apply(&mut s, 12.5);
        assert_eq!(s.battery_capacity_j, 12.5);
        SweptParameter::DutyCycle.apply(&mut s, 0.4);
        assert_eq!(s.lifecycle.duty_cycle.awake_fraction, 0.4);
        assert!(s.lifecycle.duty_cycle.is_on());
        SweptParameter::DutyCycle.apply(&mut s, 7.0);
        assert_eq!(s.lifecycle.duty_cycle.awake_fraction, 1.0, "clamped into (0, 1]");
    }

    #[test]
    fn lifetime_preset_constrains_batteries_and_prices_tx_by_distance() {
        let spec = FigureId::FigLifetime.spec();
        assert_eq!(spec.swept, SweptParameter::BatteryCapacity);
        assert_eq!(spec.metric, Metric::TimeToFirstDeathS);
        assert_eq!(
            spec.protocols.len(),
            5,
            "flooding + hop tree + the three energy strategies (E, MEM-Tree, DCA-Forward)"
        );
        assert!(spec.protocols.contains(&ProtocolKind::MemTree));
        assert!(spec.protocols.contains(&ProtocolKind::DcaForward));
        let base = base_scenario_for(&spec);
        assert!(base.battery_capacity_j.is_finite());
        assert!(base.lifecycle.tx_power_control);
        assert!(base.lifecycle.has_continuous_drain());
        assert_eq!(FigureId::FigLifetime.short_name(), "fig_lifetime");
    }
}
