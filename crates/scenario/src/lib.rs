//! # ssmcast-scenario — workloads, runner, sweeps and the paper's experiment presets
//!
//! This crate is the experiment harness:
//!
//! * [`scenario`] — the paper's Section-6 simulation model as a [`scenario::Scenario`]
//!   value (50 nodes, 750 m × 750 m, random waypoint, 64 kbps CBR) plus the
//!   [`scenario::ProtocolKind`] selector.
//! * [`runner`] — build roles, mobility and agents for a scenario and run it to a
//!   [`ssmcast_manet::SimReport`].
//! * [`sweep`] — parallel parameter sweeps (rayon) summarised into
//!   [`ssmcast_metrics::Series`].
//! * [`presets`] — one [`presets::FigureId`] per evaluation figure (7–16) with the exact
//!   swept parameter, x values, protocols and metric; [`presets::run_figure`] regenerates
//!   any of them.
//! * [`output`] — CSV / JSON / markdown rendering of figure results.

#![warn(missing_docs)]

pub mod output;
pub mod presets;
pub mod runner;
pub mod scenario;
pub mod sweep;

pub use output::{figure_to_text, series_to_csv, series_to_markdown, write_figure_files};
pub use presets::{
    base_scenario_for, run_figure, run_single_cell, FigureId, FigureResult, FigureSpec,
    SweptParameter,
};
pub use runner::{assign_roles, build_mobility, build_setup, run_repetitions, run_scenario};
pub use scenario::{ProtocolKind, Scenario};
pub use sweep::{sweep, to_series, Metric, SweepCell};
