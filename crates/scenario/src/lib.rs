//! # ssmcast-scenario — workloads, protocol registry, experiments and run sinks
//!
//! This crate is the experiment harness:
//!
//! * [`scenario`] — the paper's Section-6 simulation model as a [`scenario::Scenario`]
//!   value (50 nodes, 750 m × 750 m, 64 kbps CBR), the [`scenario::MobilityKind`]
//!   mobility plugin selector (random waypoint, Gauss–Markov, static grid) and the
//!   [`scenario::ProtocolKind`] convenience enum.
//! * [`protocol`] — the open half of the protocol API: the [`protocol::Protocol`]
//!   factory trait (type-erased `run(&Scenario, SimSetup, Vec<BoxedMobility>)`),
//!   closure-based per-node agent construction, and the name-keyed
//!   [`protocol::ProtocolRegistry`].
//! * [`runner`] — build roles, mobility and setup for a scenario and run one protocol to
//!   a [`ssmcast_manet::SimReport`].
//! * [`experiment`] — the [`experiment::Experiment`] builder: a (protocol × x × rep)
//!   grid executed on a thread pool, streaming each completed cell through a
//!   [`sink::RunSink`].
//! * [`sink`] — streaming consumers: in-memory, progress lines, incremental CSV and JSON
//!   Lines, and fan-out.
//! * [`sweep`] — the sweep result types and metric extractors, plus legacy shims.
//! * [`presets`] — one [`presets::FigureId`] per evaluation figure (7–16) with the exact
//!   swept parameter, x values, protocols and metric; [`presets::run_figure`] regenerates
//!   any of them (see `EXPERIMENTS.md`).
//! * [`output`] — CSV / JSON / markdown rendering of completed figure results.

#![warn(missing_docs)]

pub mod experiment;
pub mod output;
pub mod presets;
pub mod protocol;
pub mod runner;
pub mod scenario;
pub mod sink;
pub mod sweep;

pub use experiment::{derive_cell_seed, Experiment};
pub use output::{figure_to_text, series_to_csv, series_to_markdown, write_figure_files};
pub use presets::{
    base_scenario_for, run_figure, run_figure_with_medium, run_figure_with_sink, run_single_cell,
    FigureId, FigureResult, FigureSpec, SweptParameter,
};
pub use protocol::{FnProtocol, Protocol, ProtocolRegistry, UnknownProtocol};
pub use runner::{
    assign_roles, assign_session_roles, build_churn, build_mobility, build_setup, run_protocol,
};
pub use scenario::{MobilityKind, ProtocolKind, Scenario};
pub use sink::{
    CellInfo, CsvStreamSink, JsonLinesSink, MemorySink, NullSink, ProgressSink, RunSink, TeeSink,
};
pub use ssmcast_manet::{
    CsmaConfig, DutyCycleConfig, FaultPlanSpec, HarvestConfig, LifecycleConfig, MacConfig, MacKind,
    TdmaConfig,
};
pub use ssmcast_metrics::{MetricsConfig, MetricsMode, StreamingConfig};
pub use sweep::{sweep, to_series, Metric, SweepCell};
