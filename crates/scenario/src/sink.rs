//! Streaming consumers for experiment results.
//!
//! An [`crate::experiment::Experiment`] pushes every completed [`SweepCell`] through a
//! [`RunSink`] the moment all of the cell's repetitions finish, instead of materialising
//! the whole grid in memory first. That unlocks long production-scale sweeps: progress is
//! visible while the run is in flight, partial results survive an interrupted run, and a
//! line-oriented sink holds no per-grid state at all (the engine buffers only its
//! out-of-order completion window; see `experiment`).
//!
//! Cells arrive in grid order (x-major, then protocol), so line-oriented sinks produce
//! deterministic output regardless of worker scheduling.

use crate::sweep::SweepCell;
use std::io::Write;

/// Grid coordinates and progress counters for one completed cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CellInfo {
    /// Index of this cell in emission (grid) order, starting at 0.
    pub cell_index: usize,
    /// Total number of cells the experiment will emit.
    pub total_cells: usize,
    /// Index into the experiment's swept values.
    pub xi: usize,
    /// Index into the experiment's protocol list.
    pub pi: usize,
}

/// A consumer of completed sweep cells.
pub trait RunSink {
    /// Called once per cell, in grid order, as soon as all its repetitions complete.
    fn on_cell(&mut self, info: &CellInfo, cell: &SweepCell);

    /// Called once after the last cell (flush buffers, print summaries, ...).
    fn finish(&mut self) {}
}

/// Discards everything. Useful as a default and in tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl RunSink for NullSink {
    fn on_cell(&mut self, _info: &CellInfo, _cell: &SweepCell) {}
}

/// Collects cells in memory — the adapter between the streaming engine and callers that
/// do want the whole grid (e.g. to summarise it into figure series).
#[derive(Clone, Debug, Default)]
pub struct MemorySink {
    cells: Vec<SweepCell>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The cells collected so far.
    pub fn cells(&self) -> &[SweepCell] {
        &self.cells
    }

    /// Consume the sink and return the collected cells.
    pub fn into_cells(self) -> Vec<SweepCell> {
        self.cells
    }
}

impl RunSink for MemorySink {
    fn on_cell(&mut self, _info: &CellInfo, cell: &SweepCell) {
        self.cells.push(cell.clone());
    }
}

/// Human-readable one-line-per-cell progress, e.g. for stderr during long sweeps.
pub struct ProgressSink<W: Write> {
    out: W,
}

impl<W: Write> ProgressSink<W> {
    /// Report progress to `out`.
    pub fn new(out: W) -> Self {
        ProgressSink { out }
    }

    /// Consume the sink and return the writer (e.g. to inspect an in-memory buffer).
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl ProgressSink<std::io::Stderr> {
    /// Progress to standard error — the common case alongside stdout result tables.
    pub fn stderr() -> Self {
        ProgressSink { out: std::io::stderr() }
    }
}

impl<W: Write> RunSink for ProgressSink<W> {
    fn on_cell(&mut self, info: &CellInfo, cell: &SweepCell) {
        let mean_pdr = if cell.reports.is_empty() {
            0.0
        } else {
            cell.reports.iter().map(|r| r.pdr).sum::<f64>() / cell.reports.len() as f64
        };
        let _ = writeln!(
            self.out,
            "[{}/{}] {} @ x={}: pdr={:.3} ({} rep{})",
            info.cell_index + 1,
            info.total_cells,
            cell.protocol,
            cell.x,
            mean_pdr,
            cell.reports.len(),
            if cell.reports.len() == 1 { "" } else { "s" },
        );
    }

    fn finish(&mut self) {
        let _ = self.out.flush();
    }
}

/// Quote a CSV field per RFC 4180 when it contains a delimiter, quote or newline.
/// Registry protocol names are user-chosen, so they cannot be trusted to be bare.
fn csv_field(value: &str) -> String {
    if value.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", value.replace('"', "\"\""))
    } else {
        value.to_string()
    }
}

/// Streams one CSV row per repetition: `x,protocol,rep,pdr,unavailability,
/// energy_per_packet_mj,control_overhead,delay_ms,faults,recovered,unrecovered,
/// mean_recovery_s,recovery_energy_j,groups,joins,leaves`. The convergence columns are
/// zero for fault-free runs (no probe ran); the trailing group columns report the
/// session count and total membership churn (`1,0,0` for plain single-group runs,
/// which carry no per-group breakdown). The header is written before the first row, so
/// partial files from interrupted runs are still loadable.
///
/// Write failures do not abort the experiment (the simulation results still reach any
/// other sinks in a tee), but they are not silent either: the first error is kept and
/// reported by [`CsvStreamSink::error`], and every failure is logged to stderr once.
///
/// Rows accumulate in an internal [`std::io::BufWriter`] and reach the underlying
/// writer once per completed cell: a multi-repetition cell costs one syscall, not one
/// per row — the per-row small writes were a syscall hot path on long sweeps.
pub struct CsvStreamSink<W: Write> {
    out: std::io::BufWriter<W>,
    wrote_header: bool,
    error: Option<std::io::Error>,
}

impl<W: Write> CsvStreamSink<W> {
    /// Stream CSV rows to `out`.
    pub fn new(out: W) -> Self {
        CsvStreamSink { out: std::io::BufWriter::new(out), wrote_header: false, error: None }
    }

    /// The first write error encountered, if any. A long sweep whose disk filled up
    /// mid-run surfaces here rather than masquerading as a complete file.
    pub fn error(&self) -> Option<&std::io::Error> {
        self.error.as_ref()
    }

    /// Consume the sink and return the writer (e.g. to inspect an in-memory buffer).
    /// Rows not yet flushed by [`RunSink::on_cell`] / [`RunSink::finish`] are dropped
    /// — call `finish` first, as the experiment driver does.
    pub fn into_inner(self) -> W {
        self.out.into_parts().0
    }

    fn record(&mut self, result: std::io::Result<()>) {
        if let Err(e) = result {
            if self.error.is_none() {
                eprintln!("CsvStreamSink: write failed, subsequent rows may be lost: {e}");
                self.error = Some(e);
            }
        }
    }
}

impl<W: Write> RunSink for CsvStreamSink<W> {
    fn on_cell(&mut self, _info: &CellInfo, cell: &SweepCell) {
        if !self.wrote_header {
            self.wrote_header = true;
            let header = writeln!(
                self.out,
                "x,protocol,rep,pdr,unavailability,energy_per_packet_mj,control_overhead,\
                 delay_ms,faults,recovered,unrecovered,mean_recovery_s,recovery_energy_j,\
                 groups,joins,leaves"
            );
            self.record(header);
        }
        for (rep, r) in cell.reports.iter().enumerate() {
            let (faults, recovered, unrecovered, mean_recovery_s, recovery_energy_j) =
                match &r.convergence {
                    Some(c) => (
                        c.faults_injected,
                        c.recovered,
                        c.unrecovered,
                        c.mean_recovery_s,
                        c.energy_during_recovery_j,
                    ),
                    None => (0, 0, 0, 0.0, 0.0),
                };
            let (groups, joins, leaves) = match &r.groups {
                Some(g) => (
                    g.len() as u64,
                    g.iter().map(|b| b.joins).sum::<u64>(),
                    g.iter().map(|b| b.leaves).sum::<u64>(),
                ),
                None => (1, 0, 0),
            };
            let row = writeln!(
                self.out,
                "{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{},{},{},{:.6},{:.6},{},{},{}",
                cell.x,
                csv_field(&cell.protocol),
                rep,
                r.pdr,
                r.unavailability_ratio,
                r.energy_per_delivered_mj,
                r.control_bytes_per_data_byte,
                r.avg_delay_ms,
                faults,
                recovered,
                unrecovered,
                mean_recovery_s,
                recovery_energy_j,
                groups,
                joins,
                leaves,
            );
            self.record(row);
        }
        // Flush per cell (cells are seconds apart): an interrupted run must still leave
        // every completed cell on disk — that is the point of streaming. This drains
        // the internal buffer and flushes the underlying writer in one go.
        let flushed = self.out.flush();
        self.record(flushed);
    }

    fn finish(&mut self) {
        let flushed = self.out.flush();
        self.record(flushed);
    }
}

/// Streams one JSON object per cell (JSON Lines): each line is a full [`SweepCell`]
/// including every repetition's report — the machine-readable counterpart of
/// [`CsvStreamSink`], with the same error-reporting and per-cell buffering contract.
pub struct JsonLinesSink<W: Write> {
    out: std::io::BufWriter<W>,
    error: Option<std::io::Error>,
}

impl<W: Write> JsonLinesSink<W> {
    /// Stream JSON lines to `out`.
    pub fn new(out: W) -> Self {
        JsonLinesSink { out: std::io::BufWriter::new(out), error: None }
    }

    /// The first write error encountered, if any.
    pub fn error(&self) -> Option<&std::io::Error> {
        self.error.as_ref()
    }

    /// Consume the sink and return the writer. Lines not yet flushed are dropped —
    /// call [`RunSink::finish`] first, as the experiment driver does.
    pub fn into_inner(self) -> W {
        self.out.into_parts().0
    }

    fn record(&mut self, result: std::io::Result<()>) {
        if let Err(e) = result {
            if self.error.is_none() {
                eprintln!("JsonLinesSink: write failed, subsequent cells may be lost: {e}");
                self.error = Some(e);
            }
        }
    }
}

impl<W: Write> RunSink for JsonLinesSink<W> {
    fn on_cell(&mut self, _info: &CellInfo, cell: &SweepCell) {
        if let Ok(line) = serde_json::to_string(cell) {
            let row = writeln!(self.out, "{line}");
            self.record(row);
        }
        // Same durability contract as the CSV sink: completed cells survive interrupts.
        let flushed = self.out.flush();
        self.record(flushed);
    }

    fn finish(&mut self) {
        let flushed = self.out.flush();
        self.record(flushed);
    }
}

/// Fans every cell out to several sinks (e.g. memory + progress + CSV at once).
pub struct TeeSink<'a> {
    sinks: Vec<&'a mut dyn RunSink>,
}

impl<'a> TeeSink<'a> {
    /// Combine `sinks`; cells are forwarded in the given order.
    pub fn new(sinks: Vec<&'a mut dyn RunSink>) -> Self {
        TeeSink { sinks }
    }
}

impl RunSink for TeeSink<'_> {
    fn on_cell(&mut self, info: &CellInfo, cell: &SweepCell) {
        for sink in &mut self.sinks {
            sink.on_cell(info, cell);
        }
    }

    fn finish(&mut self) {
        for sink in &mut self.sinks {
            sink.finish();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmcast_manet::SimReport;

    fn cell(x: f64, protocol: &str, pdr: f64) -> SweepCell {
        let report = SimReport {
            protocol: protocol.to_string(),
            duration_s: 1.0,
            generated: 10,
            expected_deliveries: 10,
            delivered: (10.0 * pdr) as u64,
            duplicate_deliveries: 0,
            pdr,
            avg_delay_ms: 5.0,
            total_energy_j: 1.0,
            overhear_energy_j: 0.1,
            energy_per_delivered_mj: 2.0,
            control_packets: 3,
            control_bytes: 96,
            data_packets_tx: 12,
            data_bytes_tx: 6144,
            control_bytes_per_data_byte: 0.015,
            unavailability_ratio: 1.0 - pdr,
            collisions: 0,
            convergence: None,
            groups: None,
            lifetime: None,
            mac: None,
            silence: None,
            engine: None,
            streaming: None,
        };
        SweepCell { x, protocol: protocol.to_string(), reports: vec![report] }
    }

    fn info(i: usize) -> CellInfo {
        CellInfo { cell_index: i, total_cells: 2, xi: i, pi: 0 }
    }

    #[test]
    fn memory_sink_collects_in_order() {
        let mut sink = MemorySink::new();
        sink.on_cell(&info(0), &cell(1.0, "A", 0.9));
        sink.on_cell(&info(1), &cell(5.0, "A", 0.8));
        sink.finish();
        assert_eq!(sink.cells().len(), 2);
        assert_eq!(sink.cells()[0].x, 1.0);
        assert_eq!(sink.into_cells()[1].x, 5.0);
    }

    #[test]
    fn csv_sink_streams_header_then_rows() {
        let mut sink = CsvStreamSink::new(Vec::new());
        sink.on_cell(&info(0), &cell(1.0, "ODMRP", 0.9));
        sink.on_cell(&info(1), &cell(5.0, "ODMRP", 0.8));
        sink.finish();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("x,protocol,rep,pdr"));
        assert!(lines[1].starts_with("1,ODMRP,0,0.9"));
        assert!(lines[2].starts_with("5,ODMRP,0,0.8"));
    }

    #[test]
    fn csv_sink_quotes_protocol_names_that_need_it() {
        let mut sink = CsvStreamSink::new(Vec::new());
        sink.on_cell(&info(0), &cell(1.0, "SS-SPST, tuned \"v2\"", 0.9));
        sink.finish();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let row = text.lines().nth(1).unwrap();
        assert!(
            row.starts_with("1,\"SS-SPST, tuned \"\"v2\"\"\",0,"),
            "protocol field must be RFC 4180-quoted, got: {row}"
        );
        // A plain name stays unquoted.
        assert_eq!(csv_field("ODMRP"), "ODMRP");
    }

    #[test]
    fn csv_sink_quotes_embedded_newlines_and_carriage_returns() {
        let mut sink = CsvStreamSink::new(Vec::new());
        sink.on_cell(&info(0), &cell(1.0, "line1\nline2", 0.5));
        sink.on_cell(&info(1), &cell(2.0, "cr\rhere", 0.5));
        sink.finish();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert!(
            text.contains("\"line1\nline2\""),
            "newline-bearing field must be quoted verbatim, got: {text:?}"
        );
        assert!(text.contains("\"cr\rhere\""), "carriage return must be quoted: {text:?}");
        // RFC 4180: the quoted newline does not terminate the record — splitting on
        // unquoted record boundaries yields header + 2 rows.
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a\nb"), "\"a\nb\"");
        assert_eq!(csv_field("q\"q"), "\"q\"\"q\"");
    }

    /// A writer that accepts the first `line_budget` complete lines, then reports a
    /// full disk — the shape of a long sweep dying mid-grid.
    struct FailAfter {
        inner: Vec<u8>,
        line_budget: usize,
        flushes: usize,
    }

    impl std::io::Write for FailAfter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            let lines = self.inner.iter().filter(|&&b| b == b'\n').count();
            if lines >= self.line_budget {
                return Err(std::io::Error::new(std::io::ErrorKind::StorageFull, "disk full"));
            }
            self.inner.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            self.flushes += 1;
            Ok(())
        }
    }

    #[test]
    fn mid_grid_write_failure_preserves_completed_rows_and_surfaces_the_error() {
        // Header + first cell's row fit the budget; the second cell hits the full disk.
        let mut sink =
            CsvStreamSink::new(FailAfter { inner: Vec::new(), line_budget: 2, flushes: 0 });
        sink.on_cell(&info(0), &cell(1.0, "ODMRP", 0.9));
        assert!(sink.error().is_none(), "the first cell fits on disk");
        sink.on_cell(&info(1), &cell(5.0, "ODMRP", 0.8));
        assert!(sink.error().is_some(), "the second cell's failure must surface");
        sink.finish();
        let out = sink.into_inner();
        // The buffered sink reaches the writer once per completed cell: the surviving
        // first cell was flushed through; the failing second never drains its buffer.
        assert!(out.flushes >= 1, "every completed cell is flushed, not buffered");
        let text = String::from_utf8(out.inner).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "header + the completed first row survive: {text:?}");
        assert!(lines[0].starts_with("x,protocol,rep,pdr"));
        assert!(lines[1].starts_with("1,ODMRP,0,0.9"));
    }

    #[test]
    fn convergence_columns_default_to_zero_and_carry_probe_results() {
        use ssmcast_metrics::ConvergenceStats;
        let mut sink = CsvStreamSink::new(Vec::new());
        let plain = cell(1.0, "A", 0.9);
        let mut faulted = cell(2.0, "A", 0.8);
        let mut stats = ConvergenceStats::empty(0.5);
        stats.faults_injected = 4;
        stats.recovered = 1;
        stats.unrecovered = 1;
        stats.mean_recovery_s = 3.25;
        stats.energy_during_recovery_j = 0.125;
        faulted.reports[0].convergence = Some(stats);
        sink.on_cell(&info(0), &plain);
        sink.on_cell(&info(1), &faulted);
        sink.finish();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].ends_with("mean_recovery_s,recovery_energy_j,groups,joins,leaves"));
        assert!(
            lines[1].ends_with(",0,0,0,0.000000,0.000000,1,0,0"),
            "fault-free row: {}",
            lines[1]
        );
        assert!(lines[2].ends_with(",4,1,1,3.250000,0.125000,1,0,0"), "probed row: {}", lines[2]);
    }

    #[test]
    fn write_failures_are_recorded_not_swallowed() {
        struct FullDisk;
        impl std::io::Write for FullDisk {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(std::io::ErrorKind::StorageFull, "disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut csv = CsvStreamSink::new(FullDisk);
        assert!(csv.error().is_none());
        csv.on_cell(&info(0), &cell(1.0, "ODMRP", 0.9));
        csv.finish();
        assert!(csv.error().is_some(), "a failed CSV write must surface");
        let mut jsonl = JsonLinesSink::new(FullDisk);
        jsonl.on_cell(&info(0), &cell(1.0, "ODMRP", 0.9));
        assert!(jsonl.error().is_some(), "a failed JSONL write must surface");
    }

    #[test]
    fn json_lines_sink_emits_one_object_per_cell() {
        let mut sink = JsonLinesSink::new(Vec::new());
        sink.on_cell(&info(0), &cell(1.0, "MAODV", 0.75));
        sink.finish();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("\"protocol\":\"MAODV\""));
        assert!(text.trim_end().starts_with('{') && text.trim_end().ends_with('}'));
    }

    #[test]
    fn progress_and_tee_fan_out() {
        let mut mem = MemorySink::new();
        let mut progress = ProgressSink::new(Vec::new());
        {
            let mut tee = TeeSink::new(vec![&mut mem, &mut progress]);
            tee.on_cell(&info(0), &cell(1.0, "Flooding", 1.0));
            tee.finish();
        }
        assert_eq!(mem.cells().len(), 1);
        let text = String::from_utf8(progress.out).unwrap();
        assert!(text.contains("[1/2] Flooding @ x=1"));
    }
}
