//! Beacon messages: the proactive control traffic of the SS-SPST family.
//!
//! Every node periodically broadcasts its link and node characteristics; neighbours use
//! them to price the cost of joining the sender (Section 3 of the paper). SS-SPST-E
//! additionally advertises the distances of its non-group neighbours so that candidates
//! can estimate discard energy — this is the "additional information in its beacon packet"
//! that gives SS-SPST-E a slightly higher control-byte overhead (Figure 13).

use crate::metric::MetricKind;
use ssmcast_manet::{NodeId, Vec2};

/// The contents of one beacon.
#[derive(Clone, Debug, PartialEq)]
pub struct Beacon {
    /// Sender's position at transmission time (stands in for the link characteristics a
    /// real radio would measure; receivers derive the link distance from it).
    pub position: Vec2,
    /// Sender's accumulated cost variable `l_v`.
    pub cost: f64,
    /// Sender's hop count `h_v`.
    pub hop: u32,
    /// Sender's current parent.
    pub parent: Option<NodeId>,
    /// True if the sender is a group member.
    pub member: bool,
    /// Bottom-up pruning flag: true if the sender's subtree contains a group member.
    pub has_downstream_member: bool,
    /// Distances from the sender to its current tree children, with their ids so a
    /// candidate child can exclude itself when pricing a (re-)join.
    pub children: Vec<(NodeId, f64)>,
    /// Distances from the sender to its non-member, non-tree neighbours (potential
    /// overhearers). Only advertised by SS-SPST-E.
    pub non_member_neighbor_distances: Vec<f64>,
    /// Upper bound, in seconds, on the time until the sender's next beacon. Under
    /// adaptive beacon suppression a quiet node backs its cadence off, and receivers
    /// must scale their staleness expiry by this advertised bound instead of falsely
    /// expiring a correctly silent neighbour. Suppression-off senders advertise their
    /// fixed beacon interval, and the field rides the wire only when suppression is
    /// enabled (see [`Beacon::advertised_wire_size`]).
    pub next_beacon_s: f64,
}

impl Beacon {
    /// Size of this beacon on the wire, in bytes, for control-overhead accounting.
    ///
    /// * common header: sender id, position, cost, hop, parent, flags ≈ 24 bytes;
    /// * node-based metrics additionally list children (3 bytes each);
    /// * SS-SPST-E additionally lists overhearer distances (2 bytes each).
    pub fn wire_size(&self, kind: MetricKind) -> u32 {
        let base = 24u32;
        match kind {
            MetricKind::Hop | MetricKind::TxLink => base,
            MetricKind::Farthest => base + 3 * self.children.len() as u32,
            MetricKind::EnergyAware => {
                base + 3 * self.children.len() as u32
                    + 2 * self.non_member_neighbor_distances.len() as u32
            }
        }
    }

    /// Bytes the advertised next-beacon bound adds to the wire format when beacon
    /// suppression is enabled.
    pub const BOUND_FIELD_BYTES: u32 = 4;

    /// Wire size including the next-beacon bound when `advertise_bound` is set.
    /// Suppression-off runs never advertise, so their beacons keep the classic
    /// [`Beacon::wire_size`] byte for byte.
    pub fn advertised_wire_size(&self, kind: MetricKind, advertise_bound: bool) -> u32 {
        self.wire_size(kind) + if advertise_bound { Self::BOUND_FIELD_BYTES } else { 0 }
    }

    /// Distance to the farthest advertised child, excluding `exclude` (the evaluating
    /// node, when it is already one of the sender's children).
    pub fn farthest_child_excluding(&self, exclude: NodeId) -> f64 {
        self.children.iter().filter(|(c, _)| *c != exclude).map(|(_, d)| *d).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beacon() -> Beacon {
        Beacon {
            position: Vec2::new(1.0, 2.0),
            cost: 3.5,
            hop: 2,
            parent: Some(NodeId(7)),
            member: true,
            has_downstream_member: true,
            children: vec![(NodeId(3), 80.0), (NodeId(4), 120.0)],
            non_member_neighbor_distances: vec![60.0, 90.0, 140.0],
            next_beacon_s: 2.0,
        }
    }

    #[test]
    fn wire_size_grows_with_metric_richness() {
        let b = beacon();
        let hop = b.wire_size(MetricKind::Hop);
        let t = b.wire_size(MetricKind::TxLink);
        let f = b.wire_size(MetricKind::Farthest);
        let e = b.wire_size(MetricKind::EnergyAware);
        assert_eq!(hop, t);
        assert!(f > hop, "node-based beacons carry child lists");
        assert!(e > f, "SS-SPST-E beacons carry overhearer info (Figure 13)");
        assert_eq!(f, 24 + 6);
        assert_eq!(e, 24 + 6 + 6);
    }

    #[test]
    fn next_beacon_bound_costs_bytes_only_when_advertised() {
        let b = beacon();
        for kind in MetricKind::ALL {
            assert_eq!(b.advertised_wire_size(kind, false), b.wire_size(kind));
            assert_eq!(
                b.advertised_wire_size(kind, true),
                b.wire_size(kind) + Beacon::BOUND_FIELD_BYTES
            );
        }
    }

    #[test]
    fn farthest_child_excludes_the_asker() {
        let b = beacon();
        assert_eq!(b.farthest_child_excluding(NodeId(9)), 120.0);
        assert_eq!(b.farthest_child_excluding(NodeId(4)), 80.0);
        let empty = Beacon { children: vec![], ..beacon() };
        assert_eq!(empty.farthest_child_excluding(NodeId(0)), 0.0);
    }
}
