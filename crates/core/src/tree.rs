//! Multicast tree representation, validation and costing.

use crate::graph::MulticastTopology;
use crate::metric::{node_cost, MetricKind, MetricParams};
use ssmcast_manet::NodeId;

/// A (candidate) multicast tree given by per-node parent pointers.
///
/// The source has no parent. Nodes whose parent is `None` and that are not the source are
/// *disconnected* (legal mid-stabilization, illegal in a legitimate state on a connected
/// graph).
#[derive(Clone, Debug, PartialEq)]
pub struct MulticastTree {
    source: NodeId,
    parent: Vec<Option<NodeId>>,
}

impl MulticastTree {
    /// Build a tree from parent pointers.
    pub fn new(source: NodeId, parent: Vec<Option<NodeId>>) -> Self {
        assert!(source.index() < parent.len(), "source must exist");
        MulticastTree { source, parent }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The multicast source (tree root).
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Parent of `v` (None for the source or disconnected nodes).
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.parent[v.index()]
    }

    /// Children of `v`, in node-id order.
    pub fn children(&self, v: NodeId) -> Vec<NodeId> {
        (0..self.parent.len() as u32)
            .map(NodeId)
            .filter(|&c| self.parent[c.index()] == Some(v))
            .collect()
    }

    /// Hop depth of `v` (0 for the source); `None` if `v` does not reach the source
    /// (disconnected or caught in a parent-pointer cycle).
    pub fn depth(&self, v: NodeId) -> Option<u32> {
        let mut cur = v;
        let mut hops = 0u32;
        loop {
            if cur == self.source {
                return Some(hops);
            }
            let p = self.parent[cur.index()]?;
            hops += 1;
            if hops as usize > self.parent.len() {
                return None; // cycle
            }
            cur = p;
        }
    }

    /// Maximum depth over all connected nodes.
    pub fn max_depth(&self) -> u32 {
        (0..self.parent.len() as u32).filter_map(|v| self.depth(NodeId(v))).max().unwrap_or(0)
    }

    /// Nodes that reach the source through parent pointers (the source included).
    pub fn connected_nodes(&self) -> Vec<NodeId> {
        (0..self.parent.len() as u32).map(NodeId).filter(|&v| self.depth(v).is_some()).collect()
    }

    /// True if every node reaches the source and there are no cycles — the structural part
    /// of the paper's legitimate-state predicate.
    pub fn is_spanning(&self) -> bool {
        self.connected_nodes().len() == self.parent.len()
    }

    /// True if the parent pointers contain a cycle (count-to-infinity symptom).
    pub fn has_cycle(&self) -> bool {
        (0..self.parent.len() as u32).any(|v| {
            let v = NodeId(v);
            self.depth(v).is_none() && {
                // Distinguish "disconnected chain ending in None" from a real cycle by
                // walking with a step budget: a chain ends at a parentless node.
                let mut cur = v;
                let mut steps = 0;
                loop {
                    match self.parent[cur.index()] {
                        None => break false,
                        Some(p) => {
                            cur = p;
                            steps += 1;
                            if cur == self.source {
                                break false;
                            }
                            if steps > self.parent.len() {
                                break true;
                            }
                        }
                    }
                }
            }
        })
    }

    /// All tree edges as (parent, child, distance) using the topology's distances.
    /// Edges whose endpoints are not adjacent in the topology get `None` (a stale edge).
    pub fn edges<'a>(
        &'a self,
        topo: &'a MulticastTopology,
    ) -> impl Iterator<Item = (NodeId, NodeId, Option<f64>)> + 'a {
        (0..self.parent.len() as u32).filter_map(move |v| {
            let v = NodeId(v);
            self.parent[v.index()].map(|p| (p, v, topo.distance(p, v)))
        })
    }

    /// The set of nodes that must forward data: nodes whose subtree contains a group
    /// member. This is the paper's bottom-up pruning flag, computed globally.
    pub fn forwarding_set(&self, topo: &MulticastTopology) -> Vec<bool> {
        let n = self.parent.len();
        let mut flag = vec![false; n];
        for v in 0..n as u32 {
            let v = NodeId(v);
            if !topo.is_member(v) || self.depth(v).is_none() {
                continue;
            }
            // Mark v and all its ancestors.
            let mut cur = v;
            loop {
                if flag[cur.index()] {
                    break;
                }
                flag[cur.index()] = true;
                match self.parent[cur.index()] {
                    Some(p) => cur = p,
                    None => break,
                }
            }
        }
        flag
    }

    /// Per-node distances to children, restricted to children that still are neighbours in
    /// `topo` (a moved-away child contributes nothing — the link is broken).
    fn child_distances(&self, topo: &MulticastTopology, v: NodeId) -> Vec<f64> {
        self.children(v).into_iter().filter_map(|c| topo.distance(v, c)).collect()
    }

    /// Total tree cost: the sum over nodes of the metric's *node cost* (equation 2 / 4),
    /// restricted to nodes that actually forward data (the pruned tree).
    pub fn total_cost(
        &self,
        kind: MetricKind,
        params: &MetricParams,
        topo: &MulticastTopology,
    ) -> f64 {
        let forwarding = self.forwarding_set(topo);
        let mut total = 0.0;
        for v in topo.nodes() {
            if !forwarding[v.index()] {
                continue;
            }
            let child_dists: Vec<f64> = self
                .children(v)
                .into_iter()
                .filter(|c| forwarding[c.index()])
                .filter_map(|c| topo.distance(v, c))
                .collect();
            let tree_neighbors = child_dists.len() + usize::from(self.parent(v).is_some());
            let far = child_dists.iter().copied().fold(0.0, f64::max);
            let non_member: Vec<f64> = topo
                .neighbors(v)
                .iter()
                .filter(|(u, _)| {
                    !topo.is_member(*u) && self.parent(*u) != Some(v) && self.parent(v) != Some(*u)
                })
                .map(|(_, d)| *d)
                .filter(|&d| d <= far)
                .collect();
            total += node_cost(kind, params, &child_dists, tree_neighbors, &non_member);
        }
        total
    }

    /// Per-data-packet energy actually expended by the whole network if one packet flows
    /// down the (pruned) tree: every forwarder transmits to its farthest forwarding child,
    /// every forwarding child receives, and every neighbour inside a transmitter's range
    /// overhears. This is the "ground truth" the metrics approximate.
    pub fn per_packet_energy(&self, params: &MetricParams, topo: &MulticastTopology) -> f64 {
        let forwarding = self.forwarding_set(topo);
        let mut total = 0.0;
        for v in topo.nodes() {
            if !forwarding[v.index()] {
                continue;
            }
            let child_dists = self
                .children(v)
                .into_iter()
                .filter(|c| forwarding[c.index()])
                .filter_map(|c| topo.distance(v, c))
                .collect::<Vec<_>>();
            if child_dists.is_empty() {
                continue;
            }
            let far = child_dists.iter().copied().fold(0.0, f64::max);
            total += params.tx(far);
            // Every neighbour within the transmission range receives the packet, whether it
            // wanted it or not.
            let receivers = topo.neighbors(v).iter().filter(|(_, d)| *d <= far).count();
            total += receivers as f64 * params.rx();
        }
        total
    }

    /// The child distances of `v` (public helper for agents and tests).
    pub fn child_distances_in(&self, topo: &MulticastTopology, v: NodeId) -> Vec<f64> {
        self.child_distances(topo, v)
    }

    /// The bottleneck cost of the tree: the longest single link among its edges still
    /// present in the topology — the minimax objective SS-MST stabilizes. Stale edges
    /// (endpoints no longer adjacent) are skipped.
    pub fn bottleneck_cost(&self, topo: &MulticastTopology) -> f64 {
        self.edges(topo).filter_map(|(_, _, d)| d).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path 0 - 1 - 2 - 3, plus a long chord 0 - 3.
    fn topo() -> MulticastTopology {
        MulticastTopology::from_edges(
            4,
            &[(0, 1, 100.0), (1, 2, 100.0), (2, 3, 100.0), (0, 3, 240.0)],
            NodeId(0),
            vec![true, false, false, true],
        )
    }

    #[test]
    fn children_depth_and_spanning() {
        let t = MulticastTree::new(
            NodeId(0),
            vec![None, Some(NodeId(0)), Some(NodeId(1)), Some(NodeId(2))],
        );
        assert_eq!(t.children(NodeId(0)), vec![NodeId(1)]);
        assert_eq!(t.children(NodeId(2)), vec![NodeId(3)]);
        assert_eq!(t.depth(NodeId(0)), Some(0));
        assert_eq!(t.depth(NodeId(3)), Some(3));
        assert_eq!(t.max_depth(), 3);
        assert!(t.is_spanning());
        assert!(!t.has_cycle());
    }

    #[test]
    fn cycles_are_detected_and_break_depth() {
        let t = MulticastTree::new(
            NodeId(0),
            vec![None, Some(NodeId(2)), Some(NodeId(1)), Some(NodeId(0))],
        );
        assert_eq!(t.depth(NodeId(1)), None);
        assert!(t.has_cycle());
        assert!(!t.is_spanning());
    }

    #[test]
    fn disconnected_node_is_not_a_cycle() {
        let t = MulticastTree::new(NodeId(0), vec![None, None, Some(NodeId(1)), Some(NodeId(0))]);
        assert!(!t.has_cycle());
        assert!(!t.is_spanning());
        assert_eq!(t.depth(NodeId(2)), None);
        assert_eq!(t.connected_nodes(), vec![NodeId(0), NodeId(3)]);
    }

    #[test]
    fn forwarding_set_prunes_memberless_branches() {
        let topo = topo();
        // Chain tree: 0 -> 1 -> 2 -> 3. Members: 0 and 3, so everyone forwards.
        let chain = MulticastTree::new(
            NodeId(0),
            vec![None, Some(NodeId(0)), Some(NodeId(1)), Some(NodeId(2))],
        );
        assert_eq!(chain.forwarding_set(&topo), vec![true, true, true, true]);
        // Star-ish tree: 3 hangs directly off 0; the 1-2 branch has no members and is pruned.
        let star = MulticastTree::new(
            NodeId(0),
            vec![None, Some(NodeId(0)), Some(NodeId(1)), Some(NodeId(0))],
        );
        assert_eq!(star.forwarding_set(&topo), vec![true, false, false, true]);
    }

    #[test]
    fn total_cost_prefers_short_links_for_energy_metrics() {
        let topo = topo();
        let params = MetricParams::default();
        let chain = MulticastTree::new(
            NodeId(0),
            vec![None, Some(NodeId(0)), Some(NodeId(1)), Some(NodeId(2))],
        );
        let direct = MulticastTree::new(
            NodeId(0),
            vec![None, Some(NodeId(0)), Some(NodeId(1)), Some(NodeId(0))],
        );
        // Hop metric prefers the direct (shallow) tree; energy metrics prefer the chain of
        // short links over one 240 m transmission.
        let chain_e = chain.total_cost(MetricKind::TxLink, &params, &topo);
        let direct_e = direct.total_cost(MetricKind::TxLink, &params, &topo);
        assert!(
            chain_e < direct_e,
            "3×100 m links are cheaper than one 240 m link: {chain_e} vs {direct_e}"
        );
        assert!(chain.max_depth() > direct.max_depth());
    }

    #[test]
    fn per_packet_energy_counts_overhearing() {
        let topo = topo();
        let params = MetricParams::default();
        let chain = MulticastTree::new(
            NodeId(0),
            vec![None, Some(NodeId(0)), Some(NodeId(1)), Some(NodeId(2))],
        );
        let e = chain.per_packet_energy(&params, &topo);
        // Three transmissions at 100 m plus at least three receptions.
        assert!(e > 3.0 * params.tx(100.0));
    }

    #[test]
    fn bottleneck_cost_is_the_longest_tree_link() {
        let topo = topo();
        let chain = MulticastTree::new(
            NodeId(0),
            vec![None, Some(NodeId(0)), Some(NodeId(1)), Some(NodeId(2))],
        );
        assert_eq!(chain.bottleneck_cost(&topo), 100.0);
        let direct = MulticastTree::new(
            NodeId(0),
            vec![None, Some(NodeId(0)), Some(NodeId(1)), Some(NodeId(0))],
        );
        assert_eq!(direct.bottleneck_cost(&topo), 240.0, "the 0-3 chord dominates");
        assert!(chain.bottleneck_cost(&topo) < direct.bottleneck_cost(&topo));
    }

    #[test]
    fn stale_edges_surface_as_none() {
        let topo = topo();
        // Parent pointer 2 -> 0 is not an edge of the topology.
        let t = MulticastTree::new(
            NodeId(0),
            vec![None, Some(NodeId(0)), Some(NodeId(0)), Some(NodeId(2))],
        );
        let stale: Vec<_> = t.edges(&topo).filter(|(_, _, d)| d.is_none()).collect();
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].1, NodeId(2));
    }
}
