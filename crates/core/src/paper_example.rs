//! The worked example of the paper's Section 2–4 (Figures 1–6).
//!
//! Figure 1 shows a 10-node network with node 0 as the multicast source and edge labels
//! giving inter-node distances. The published figure does not list the adjacency
//! explicitly, so the edge set below is reconstructed from the figure's edge labels and
//! the narrative of Examples 1–5 (which edges appear in which stabilized tree, which node
//! is whose costliest neighbour, and which nodes overhear node 4's transmissions). Each
//! label from the figure is used exactly once. Tests assert the *qualitative* claims of
//! the examples rather than pixel-exact figure edges.

use crate::graph::MulticastTopology;
use crate::metric::{MetricKind, MetricParams};
use crate::sync_model::SyncModel;
use crate::tree::MulticastTree;
use ssmcast_manet::NodeId;

/// Edge list of the Figure-1 topology: `(u, v, distance in metres)`.
pub const FIGURE1_EDGES: [(u32, u32, f64); 13] = [
    (0, 1, 120.10),
    (0, 7, 120.02),
    (0, 3, 200.03),
    (1, 6, 120.06),
    (1, 4, 120.04),
    (6, 5, 120.56),
    (6, 3, 120.36),
    (4, 5, 120.45),
    (4, 3, 120.34),
    (4, 8, 75.48),
    (4, 9, 75.49),
    (7, 3, 75.37),
    (7, 2, 75.27),
];

/// Group membership used in the example: node 0 is the source; nodes 2, 3 and 5 are
/// receivers; 8 and 9 (the nodes the paper singles out as overhearers of node 4) and the
/// pure relays 1, 4, 6, 7 are non-members.
pub const FIGURE1_MEMBERS: [bool; 10] =
    [true, false, true, true, false, true, false, false, false, false];

/// The multicast source in the example.
pub const FIGURE1_SOURCE: NodeId = NodeId(0);

/// Build the Figure-1 topology.
pub fn figure1_topology() -> MulticastTopology {
    MulticastTopology::from_edges(10, &FIGURE1_EDGES, FIGURE1_SOURCE, FIGURE1_MEMBERS.to_vec())
}

/// Outcome of stabilizing one metric on the Figure-1 topology.
#[derive(Clone, Debug)]
pub struct ExampleResult {
    /// Which metric was stabilized.
    pub kind: MetricKind,
    /// Rounds needed to stabilize from the initial (disconnected) state.
    pub rounds: usize,
    /// The stabilized tree.
    pub tree: MulticastTree,
    /// Total tree cost under the metric that built it.
    pub own_cost: f64,
    /// Network-wide energy one data packet costs on the pruned tree (transmissions,
    /// receptions and overhearing) — the ground truth all metrics approximate.
    pub per_packet_energy: f64,
}

/// Stabilize the Figure-1 topology under `kind` and report the result.
pub fn run_example(kind: MetricKind, params: &MetricParams) -> ExampleResult {
    let topo = figure1_topology();
    let mut model = SyncModel::new(topo.clone(), kind, *params);
    let rounds = model
        .run_to_stabilization(10 * topo.len())
        .expect("the example topology stabilizes for every metric");
    let tree = model.tree();
    let own_cost = tree.total_cost(kind, params, &topo);
    let per_packet_energy = tree.per_packet_energy(params, &topo);
    ExampleResult { kind, rounds, tree, own_cost, per_packet_energy }
}

/// Run all four metrics (Figures 2, 3, 4 and 6) with the default parameters.
pub fn run_all_examples() -> Vec<ExampleResult> {
    let params = MetricParams::default();
    MetricKind::ALL.iter().map(|&k| run_example(k, &params)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_matches_the_figure() {
        let t = figure1_topology();
        assert_eq!(t.len(), 10);
        assert!(t.is_connected());
        assert_eq!(t.member_count(), 4, "source plus three receivers");
        assert_eq!(t.distance(NodeId(0), NodeId(3)), Some(200.03));
        assert_eq!(t.distance(NodeId(4), NodeId(8)), Some(75.48));
        // Node 4's non-member neighbours are the relay 1 and the overhearers 8 and 9
        // (its other neighbours, 3 and 5, are group members).
        assert_eq!(t.non_member_neighbor_count(NodeId(4)), 3);
    }

    #[test]
    fn all_metrics_stabilize_to_spanning_trees() {
        for r in run_all_examples() {
            assert!(r.tree.is_spanning(), "{:?} did not span", r.kind);
            assert!(!r.tree.has_cycle());
            assert!(r.rounds >= 2, "{:?} needs at least two rounds", r.kind);
        }
    }

    #[test]
    fn example1_hop_tree_uses_the_direct_long_link() {
        let r = run_example(MetricKind::Hop, &MetricParams::default());
        // Example 1/Figure 2: minimising hops, node 3 attaches straight to the source over
        // the 200 m link and the tree is as shallow as possible.
        assert_eq!(r.tree.parent(NodeId(3)), Some(NodeId(0)));
        let topo = figure1_topology();
        let bfs = topo.hops_from_source();
        for v in topo.nodes() {
            assert_eq!(r.tree.depth(v), bfs[v.index()], "hop tree is a BFS tree");
        }
    }

    #[test]
    fn example2_txlink_tree_relays_node3_through_node7() {
        let r = run_example(MetricKind::TxLink, &MetricParams::default());
        // Example 2/Figure 3: it is more energy efficient for node 3 to make node 7 its
        // parent instead of node 0 (75 m instead of 200 m).
        assert_eq!(r.tree.parent(NodeId(3)), Some(NodeId(7)));
        // And stabilization takes at least as long as the plain hop metric.
        let hop = run_example(MetricKind::Hop, &MetricParams::default());
        assert!(
            r.rounds >= hop.rounds,
            "energy metric needs extra round(s): {} vs {}",
            r.rounds,
            hop.rounds
        );
    }

    #[test]
    fn example3_farthest_metric_departs_from_the_link_metric() {
        let params = MetricParams::default();
        let f = run_example(MetricKind::Farthest, &params);
        let hop = run_example(MetricKind::Hop, &params);
        // The node-based metric never attaches node 3 over the expensive 200 m direct link.
        assert_ne!(f.tree.parent(NodeId(3)), Some(NodeId(0)));
        // Exploiting the wireless multicast advantage, the F tree costs no more energy per
        // delivered packet than the hop tree.
        assert!(f.per_packet_energy <= hop.per_packet_energy + 1e-12);
    }

    #[test]
    fn example5_energy_aware_tree_is_cheapest_overall() {
        let params = MetricParams::default();
        let results = run_all_examples();
        let e = results.iter().find(|r| r.kind == MetricKind::EnergyAware).unwrap();
        let hop = results.iter().find(|r| r.kind == MetricKind::Hop).unwrap();
        // The E metric minimises what the network actually spends per packet (including
        // discard energy): it must beat the hop tree and be no worse than any other metric.
        assert!(e.per_packet_energy < hop.per_packet_energy);
        for r in &results {
            assert!(
                e.per_packet_energy <= r.per_packet_energy + 1e-9,
                "SS-SPST-E ({}) must not be beaten by {:?} ({})",
                e.per_packet_energy,
                r.kind,
                r.per_packet_energy
            );
        }
        // Under its own cost measure the E tree is also at least as good as the F tree.
        let topo = figure1_topology();
        let f = results.iter().find(|r| r.kind == MetricKind::Farthest).unwrap();
        let e_cost_of_f = f.tree.total_cost(MetricKind::EnergyAware, &params, &topo);
        assert!(e.own_cost <= e_cost_of_f + 1e-9);
    }

    #[test]
    fn stabilization_round_ordering_matches_the_narrative() {
        // Examples 1–3: SS-SPST takes the fewest rounds; the energy metrics need at least
        // as many because tree-structure changes re-trigger cost adjustments.
        let results = run_all_examples();
        let rounds: std::collections::HashMap<_, _> =
            results.iter().map(|r| (r.kind, r.rounds)).collect();
        assert!(rounds[&MetricKind::TxLink] >= rounds[&MetricKind::Hop]);
        assert!(rounds[&MetricKind::Farthest] >= rounds[&MetricKind::Hop]);
        assert!(rounds[&MetricKind::EnergyAware] >= rounds[&MetricKind::Hop]);
    }
}
