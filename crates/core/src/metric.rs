//! The cost metrics of the SS-SPST family.
//!
//! The paper derives four metrics (Section 4):
//!
//! * **Hop** — the original SS-SPST: minimise hop count from the source.
//! * **TxLink (SS-SPST-T)** — assign each link its transmission energy and minimise the
//!   sum along the path (equation 1).
//! * **Farthest (SS-SPST-F)** — a node-based metric: a node pays the transmission energy
//!   needed to reach its *costliest* tree neighbour plus one reception per tree neighbour
//!   (equation 2). This exploits the wireless multicast advantage: one transmission covers
//!   all children.
//! * **EnergyAware (SS-SPST-E)** — the paper's contribution: the Farthest metric plus the
//!   *discard energy* wasted by non-group neighbours that overhear the transmission
//!   (equations 3 and 4).
//!
//! During stabilization each node `v` estimates, for every candidate parent `u`, the
//! *overhead* `C(u, v)` that attaching `v` under `u` adds to the tree, and minimises the
//! accumulated overhead `l(u) + C(u, v)` along the path to the source (Section 5).

use serde::{Deserialize, Serialize};
use ssmcast_manet::EnergyModel;

/// Which cost metric an SS-SPST instance uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, Serialize, Deserialize)]
pub enum MetricKind {
    /// Hop count (plain SS-SPST).
    Hop,
    /// Per-link transmission energy (SS-SPST-T).
    TxLink,
    /// Costliest-neighbour node energy (SS-SPST-F).
    Farthest,
    /// Costliest-neighbour node energy plus discard/overhearing energy (SS-SPST-E).
    EnergyAware,
}

impl MetricKind {
    /// All four variants, in the order the paper introduces them.
    pub const ALL: [MetricKind; 4] =
        [MetricKind::Hop, MetricKind::TxLink, MetricKind::Farthest, MetricKind::EnergyAware];

    /// The protocol name used in the paper's figures.
    pub fn protocol_name(self) -> &'static str {
        match self {
            MetricKind::Hop => "SS-SPST",
            MetricKind::TxLink => "SS-SPST-T",
            MetricKind::Farthest => "SS-SPST-F",
            MetricKind::EnergyAware => "SS-SPST-E",
        }
    }

    /// True for the metrics that price energy (everything but hop count).
    pub fn is_energy_based(self) -> bool {
        !matches!(self, MetricKind::Hop)
    }

    /// True for the node-based metrics (F and E).
    pub fn is_node_based(self) -> bool {
        matches!(self, MetricKind::Farthest | MetricKind::EnergyAware)
    }
}

/// Parameters shared by every energy metric: the radio energy model and the data packet
/// size the tree will carry (costs are per data packet).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MetricParams {
    /// Radio energy model.
    pub energy: EnergyModel,
    /// Data packet size in bytes used to price transmissions.
    pub data_packet_bytes: u32,
}

impl Default for MetricParams {
    fn default() -> Self {
        MetricParams { energy: EnergyModel::default(), data_packet_bytes: 512 }
    }
}

impl MetricParams {
    /// Transmission energy (joules per data packet) to cover `distance_m`.
    pub fn tx(&self, distance_m: f64) -> f64 {
        self.energy.tx_energy(distance_m, self.data_packet_bytes)
    }

    /// Reception energy (joules per data packet); the paper's `E_rcv`.
    pub fn rx(&self) -> f64 {
        self.energy.rx_energy(self.data_packet_bytes)
    }
}

/// Everything a node needs to know about a candidate parent `u` to price joining it.
///
/// The synchronous model fills this in from global knowledge; the event-driven agent fills
/// it in from `u`'s beacons.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ParentView {
    /// `u`'s advertised accumulated cost `l(u)`.
    pub cost: f64,
    /// `u`'s advertised hop count.
    pub hop: u32,
    /// Distance from `u` to each of its *current* children, excluding the evaluating node
    /// itself if it is already a child of `u`.
    pub child_distances: Vec<f64>,
    /// Distances from `u` to its non-group neighbours that are not its tree neighbours
    /// (potential overhearers). Only used by [`MetricKind::EnergyAware`].
    pub non_member_neighbor_distances: Vec<f64>,
}

impl ParentView {
    /// Distance to `u`'s farthest current child (0 if it has none).
    pub fn farthest_child(&self) -> f64 {
        self.child_distances.iter().copied().fold(0.0, f64::max)
    }

    /// Number of overhearers within `range_m` of `u`.
    pub fn overhearers_within(&self, range_m: f64) -> usize {
        self.non_member_neighbor_distances.iter().filter(|&&d| d <= range_m).count()
    }
}

/// The overhead `C(u, v)` of node `v` (at `distance_m` from `u`) joining candidate parent
/// `u`, under the given metric. This is the quantity the guarded commands minimise.
pub fn join_overhead(
    kind: MetricKind,
    params: &MetricParams,
    parent: &ParentView,
    distance_m: f64,
) -> f64 {
    match kind {
        MetricKind::Hop => 1.0,
        MetricKind::TxLink => params.tx(distance_m),
        MetricKind::Farthest => {
            let old_far = parent.farthest_child();
            let new_far = old_far.max(distance_m);
            let delta_tx = params.tx(new_far) - params.tx(old_far);
            delta_tx + params.rx()
        }
        MetricKind::EnergyAware => {
            let old_far = parent.farthest_child();
            let new_far = old_far.max(distance_m);
            let delta_tx = params.tx(new_far) - params.tx(old_far);
            // Joining may grow u's transmission range, dragging more non-group neighbours
            // into overhearing; each pays one reception per data packet.
            let old_overhear = parent.overhearers_within(old_far);
            let new_overhear = parent.overhearers_within(new_far);
            let delta_discard = (new_overhear - old_overhear) as f64 * params.rx();
            delta_tx + params.rx() + delta_discard
        }
    }
}

/// Accumulated path cost of joining `u`: `l(u) + C(u, v)`.
pub fn cost_via(
    kind: MetricKind,
    params: &MetricParams,
    parent: &ParentView,
    distance_m: f64,
) -> f64 {
    parent.cost + join_overhead(kind, params, parent, distance_m)
}

/// The *node cost* of a tree node (equations 2 and 4): what `v` itself spends per data
/// packet given its children and, for SS-SPST-E, the overhearers inside its range.
///
/// * `child_distances` — distances from `v` to each of its tree children.
/// * `tree_neighbor_count` — children plus the parent (the paper's `k`).
/// * `non_member_neighbor_distances` — distances from `v` to its non-group, non-tree
///   neighbours.
pub fn node_cost(
    kind: MetricKind,
    params: &MetricParams,
    child_distances: &[f64],
    tree_neighbor_count: usize,
    non_member_neighbor_distances: &[f64],
) -> f64 {
    let far = child_distances.iter().copied().fold(0.0, f64::max);
    let tx = if child_distances.is_empty() { 0.0 } else { params.tx(far) };
    match kind {
        MetricKind::Hop => child_distances.len() as f64,
        MetricKind::TxLink => child_distances.iter().map(|&d| params.tx(d)).sum(),
        MetricKind::Farthest => tx + tree_neighbor_count as f64 * params.rx(),
        MetricKind::EnergyAware => {
            let discard = non_member_neighbor_distances.iter().filter(|&&d| d <= far).count()
                as f64
                * params.rx();
            tx + tree_neighbor_count as f64 * params.rx() + discard
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> MetricParams {
        MetricParams::default()
    }

    #[test]
    fn protocol_names_match_paper() {
        assert_eq!(MetricKind::Hop.protocol_name(), "SS-SPST");
        assert_eq!(MetricKind::TxLink.protocol_name(), "SS-SPST-T");
        assert_eq!(MetricKind::Farthest.protocol_name(), "SS-SPST-F");
        assert_eq!(MetricKind::EnergyAware.protocol_name(), "SS-SPST-E");
        assert!(MetricKind::EnergyAware.is_energy_based());
        assert!(MetricKind::EnergyAware.is_node_based());
        assert!(!MetricKind::TxLink.is_node_based());
    }

    #[test]
    fn hop_overhead_is_one() {
        let pv = ParentView { cost: 3.0, hop: 3, ..Default::default() };
        assert_eq!(join_overhead(MetricKind::Hop, &params(), &pv, 500.0), 1.0);
        assert_eq!(cost_via(MetricKind::Hop, &params(), &pv, 500.0), 4.0);
    }

    #[test]
    fn txlink_overhead_equals_link_energy() {
        let pv = ParentView::default();
        let p = params();
        let c = join_overhead(MetricKind::TxLink, &p, &pv, 100.0);
        assert!((c - p.tx(100.0)).abs() < 1e-15);
    }

    #[test]
    fn farthest_overhead_is_cheap_inside_existing_range() {
        let p = params();
        // u already reaches a child at 200 m; joining at 100 m costs only one reception.
        let pv =
            ParentView { cost: 0.0, hop: 1, child_distances: vec![200.0], ..Default::default() };
        let inside = join_overhead(MetricKind::Farthest, &p, &pv, 100.0);
        assert!((inside - p.rx()).abs() < 1e-15);
        // Joining beyond the current range pays the marginal transmission energy.
        let outside = join_overhead(MetricKind::Farthest, &p, &pv, 250.0);
        assert!((outside - (p.tx(250.0) - p.tx(200.0) + p.rx())).abs() < 1e-15);
        assert!(outside > inside);
    }

    #[test]
    fn energy_aware_penalises_overhearers() {
        let p = params();
        // Candidate A: no non-group neighbours. Candidate B: three potential overhearers
        // that a range increase to 150 m would wake up. Same geometry otherwise.
        let a = ParentView { cost: 1.0, hop: 1, child_distances: vec![50.0], ..Default::default() };
        let b = ParentView {
            cost: 1.0,
            hop: 1,
            child_distances: vec![50.0],
            non_member_neighbor_distances: vec![60.0, 80.0, 100.0],
        };
        let ca = cost_via(MetricKind::EnergyAware, &p, &a, 150.0);
        let cb = cost_via(MetricKind::EnergyAware, &p, &b, 150.0);
        assert!((cb - ca - 3.0 * p.rx()).abs() < 1e-12, "three new overhearers cost 3 receptions");
        // Under the F metric the two candidates are indistinguishable (Figure 5's point).
        let fa = cost_via(MetricKind::Farthest, &p, &a, 150.0);
        let fb = cost_via(MetricKind::Farthest, &p, &b, 150.0);
        assert_eq!(fa, fb);
    }

    #[test]
    fn energy_aware_ignores_overhearers_already_in_range() {
        let p = params();
        // Overhearers inside the existing range are already paying; joining closer than
        // the current farthest child adds no discard energy.
        let pv = ParentView {
            cost: 0.0,
            hop: 1,
            child_distances: vec![200.0],
            non_member_neighbor_distances: vec![50.0, 100.0],
        };
        let c_e = join_overhead(MetricKind::EnergyAware, &p, &pv, 150.0);
        let c_f = join_overhead(MetricKind::Farthest, &p, &pv, 150.0);
        assert!((c_e - c_f).abs() < 1e-15);
    }

    #[test]
    fn node_cost_matches_equations() {
        let p = params();
        // Leaf node: no children, one tree neighbour (its parent).
        let leaf_f = node_cost(MetricKind::Farthest, &p, &[], 1, &[]);
        assert!((leaf_f - p.rx()).abs() < 1e-15);
        // Interior node: two children at 100 and 150 m, parent, one overhearer at 120 m.
        let f = node_cost(MetricKind::Farthest, &p, &[100.0, 150.0], 3, &[120.0]);
        assert!((f - (p.tx(150.0) + 3.0 * p.rx())).abs() < 1e-15);
        let e = node_cost(MetricKind::EnergyAware, &p, &[100.0, 150.0], 3, &[120.0]);
        assert!((e - (f + p.rx())).abs() < 1e-15, "the 120 m overhearer is inside the 150 m range");
        // An overhearer outside the transmission range costs nothing.
        let e_far = node_cost(MetricKind::EnergyAware, &p, &[100.0, 150.0], 3, &[200.0]);
        assert!((e_far - f).abs() < 1e-15);
        // Hop / TxLink node costs.
        assert_eq!(node_cost(MetricKind::Hop, &p, &[100.0, 150.0], 3, &[]), 2.0);
        let t = node_cost(MetricKind::TxLink, &p, &[100.0, 150.0], 3, &[]);
        assert!((t - (p.tx(100.0) + p.tx(150.0))).abs() < 1e-15);
    }

    #[test]
    fn parent_view_helpers() {
        let pv = ParentView {
            cost: 0.0,
            hop: 0,
            child_distances: vec![10.0, 80.0, 40.0],
            non_member_neighbor_distances: vec![30.0, 90.0],
        };
        assert_eq!(pv.farthest_child(), 80.0);
        assert_eq!(pv.overhearers_within(50.0), 1);
        assert_eq!(pv.overhearers_within(100.0), 2);
    }
}
