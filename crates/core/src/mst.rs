//! Event-driven self-stabilizing minimum(-bottleneck) spanning tree multicast.
//!
//! A loop-free SS-MST construction in the style of Blin, Potop-Butucaru, Rovedakis and
//! Tixeuil: every node tracks the *bottleneck* cost of its path to the source — the
//! longest single link on the path — and greedily re-parents onto the neighbour that
//! minimises it. The guarded command is the minimax analogue of SS-SPST's additive
//! shortest path: `cost(v) = max(cost(parent), |v, parent|)`. Loop freedom comes from
//! three guards: a node never adopts a neighbour that currently claims it as parent,
//! hops stay bounded by the network size, and parent switches pay the same hysteresis
//! margin as SS-SPST so the tree does not flap between equal-bottleneck paths.
//!
//! The agent reuses the SS-SPST wire format ([`Beacon`] / [`SsSpstPayload`]) and the
//! adaptive beacon-suppression machinery, so it drops into the same experiment harness
//! and the same silence sweeps as the SS-SPST variants.

use crate::agent::{SilenceState, SsSpstPayload};
use crate::beacon::Beacon;
use crate::metric::MetricKind;
use ssmcast_dessim::{SimDuration, SimTime};
use ssmcast_manet::{
    DataTag, Disposition, NodeCtx, NodeId, Packet, ProtocolAgent, SilenceConfig, Vec2,
};
use std::collections::{HashMap, HashSet};

/// Timer class used for the periodic beacon (same slot as SS-SPST's).
const TIMER_BEACON: u64 = 1;

/// Configuration of an [`SsMstAgent`].
#[derive(Clone, Copy, Debug)]
pub struct SsMstConfig {
    /// Beacon interval (defaults to the paper's 2 s).
    pub beacon_interval: SimDuration,
    /// A neighbour is dropped after this many beacon intervals of silence.
    pub neighbor_timeout_intervals: f64,
    /// Data transmissions reach the farthest forwarding child scaled by this margin.
    pub range_margin: f64,
    /// Relative bottleneck improvement required before abandoning a valid parent.
    pub switch_margin: f64,
    /// Adaptive beacon suppression; off by default.
    pub silence: SilenceConfig,
}

impl SsMstConfig {
    /// Defaults matching the SS-SPST harness settings.
    pub fn paper_default() -> Self {
        SsMstConfig {
            beacon_interval: SimDuration::from_secs(2),
            neighbor_timeout_intervals: 2.5,
            range_margin: 1.10,
            switch_margin: 0.05,
            silence: SilenceConfig::off(),
        }
    }

    /// Same defaults with a custom beacon interval.
    pub fn with_beacon_interval(interval: SimDuration) -> Self {
        SsMstConfig { beacon_interval: interval, ..Self::paper_default() }
    }
}

/// What this node last heard from one neighbour.
#[derive(Clone, Debug)]
struct MstNeighbor {
    distance: f64,
    cost: f64,
    hop: u32,
    has_downstream_member: bool,
    parent_is_me: bool,
    member: bool,
    last_heard: SimTime,
    timeout: SimDuration,
}

/// The per-node SS-MST protocol state machine.
#[derive(Debug)]
pub struct SsMstAgent {
    config: SsMstConfig,
    cost: f64,
    hop: u32,
    parent: Option<NodeId>,
    infinity_cost: f64,
    max_hops: u32,
    has_downstream_member: bool,
    neighbors: HashMap<NodeId, MstNeighbor>,
    seen_data: HashSet<u64>,
    parent_changes: u64,
    beacons_sent: u64,
    silence: SilenceState,
}

impl SsMstAgent {
    /// Create an agent with the given configuration.
    pub fn new(config: SsMstConfig) -> Self {
        SsMstAgent {
            config,
            cost: f64::INFINITY,
            hop: u32::MAX,
            parent: None,
            infinity_cost: f64::INFINITY,
            max_hops: u32::MAX,
            has_downstream_member: false,
            neighbors: HashMap::new(),
            seen_data: HashSet::new(),
            parent_changes: 0,
            beacons_sent: 0,
            silence: SilenceState::default(),
        }
    }

    /// Current parent (None while disconnected or at the source).
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// Current bottleneck cost: the longest link on this node's path to the source.
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// Current hop count.
    pub fn hop(&self) -> u32 {
        self.hop
    }

    /// Number of parent switches (tree churn indicator).
    pub fn parent_changes(&self) -> u64 {
        self.parent_changes
    }

    /// Number of beacons transmitted.
    pub fn beacons_sent(&self) -> u64 {
        self.beacons_sent
    }

    fn initialise_bounds(&mut self, ctx: &NodeCtx<'_, SsSpstPayload>) {
        self.max_hops = ctx.n_nodes.max(1) as u32;
        // Legitimate bottleneck costs are single link lengths, bounded by the radio.
        self.infinity_cost = ctx.radio.max_range_m + 1.0;
        if self.cost.is_infinite() {
            self.cost = self.infinity_cost;
            self.hop = self.max_hops;
        }
    }

    /// Staleness bound for a neighbour that just advertised `b` (see
    /// [`crate::agent::SsSpstAgent`]'s identical rule).
    fn timeout_for(&self, b: &Beacon) -> SimDuration {
        let base = if self.config.silence.enabled {
            let interval_s = self.config.beacon_interval.as_secs_f64();
            SimDuration::from_secs_f64(b.next_beacon_s.max(interval_s))
        } else {
            self.config.beacon_interval
        };
        base.mul_f64(self.config.neighbor_timeout_intervals)
    }

    fn expire_neighbors(&mut self, now: SimTime) -> bool {
        let before = self.neighbors.len();
        self.neighbors.retain(|_, e| now.saturating_since(e.last_heard) <= e.timeout);
        self.neighbors.len() != before
    }

    fn locally_legitimate(&self, ctx: &NodeCtx<'_, SsSpstPayload>) -> bool {
        if ctx.is_source() {
            return true;
        }
        match self.parent {
            Some(p) => self.neighbors.contains_key(&p) && self.cost < self.infinity_cost,
            None => false,
        }
    }

    /// Re-evaluate the minimax guarded commands against the neighbour table.
    fn stabilize(&mut self, ctx: &NodeCtx<'_, SsSpstPayload>) {
        if ctx.is_source() {
            self.cost = 0.0;
            self.hop = 0;
            self.parent = None;
            return;
        }
        let mut best: Option<(NodeId, f64, u32)> = None;
        let mut via_current: Option<(f64, u32)> = None;
        for (&u, entry) in &self.neighbors {
            if entry.cost >= self.infinity_cost || entry.hop.saturating_add(1) > self.max_hops {
                continue;
            }
            // Loop guard: a neighbour claiming this node as its parent is downstream
            // of us; adopting it would close a cycle instantly.
            if entry.parent_is_me {
                continue;
            }
            // The bottleneck of the path through u: u's bottleneck or our link to u,
            // whichever is longer.
            let c = entry.cost.max(entry.distance);
            let h = entry.hop + 1;
            if self.parent == Some(u) {
                via_current = Some((c, h));
            }
            match best {
                None => best = Some((u, c, h)),
                Some((bu, bc, _)) => {
                    if c < bc - 1e-12 || ((c - bc).abs() <= 1e-12 && u < bu) {
                        best = Some((u, c, h));
                    }
                }
            }
        }
        match best {
            None => {
                if self.parent.is_some() {
                    self.parent_changes += 1;
                }
                self.parent = None;
                self.cost = self.infinity_cost;
                self.hop = self.max_hops;
            }
            Some((bu, bc, bh)) => {
                if let Some((cc, ch)) = via_current {
                    if cc <= bc * (1.0 + self.config.switch_margin) + 1e-12 {
                        self.cost = cc;
                        self.hop = ch;
                        return;
                    }
                }
                if self.parent != Some(bu) {
                    self.parent_changes += 1;
                }
                self.parent = Some(bu);
                self.cost = bc;
                self.hop = bh;
            }
        }
    }

    fn refresh_downstream_flag(&mut self, ctx: &NodeCtx<'_, SsSpstPayload>) {
        let from_children =
            self.neighbors.values().any(|e| e.parent_is_me && e.has_downstream_member);
        self.has_downstream_member = ctx.is_member() || from_children;
    }

    fn forwarding_children(&self) -> Vec<(NodeId, f64)> {
        self.neighbors
            .iter()
            .filter(|(_, e)| e.parent_is_me && e.has_downstream_member)
            .map(|(id, e)| (*id, e.distance))
            .collect()
    }

    /// Forward data down the tree with power control: the bottleneck objective keeps
    /// every tree link short, so reaching the farthest forwarding child (plus the
    /// movement margin) is the natural transmission range.
    fn forward_data(&mut self, ctx: &mut NodeCtx<'_, SsSpstPayload>, tag: DataTag, size: u32) {
        let targets = self.forwarding_children();
        if targets.is_empty() {
            return;
        }
        let far = targets.iter().map(|(_, d)| *d).fold(0.0, f64::max);
        let range = (far * self.config.range_margin).min(ctx.radio.max_range_m);
        ctx.broadcast_data(size, range, tag, SsSpstPayload::Data);
    }

    fn send_beacon(&mut self, ctx: &mut NodeCtx<'_, SsSpstPayload>) {
        let children: Vec<(NodeId, f64)> = self
            .neighbors
            .iter()
            .filter(|(_, e)| e.parent_is_me)
            .map(|(id, e)| (*id, e.distance))
            .collect();
        let interval = self.silence.interval(&self.config.silence, self.config.beacon_interval);
        let beacon = Beacon {
            position: ctx.position,
            cost: self.cost,
            hop: self.hop,
            parent: self.parent,
            member: ctx.is_member(),
            has_downstream_member: self.has_downstream_member,
            children,
            non_member_neighbor_distances: Vec::new(),
            next_beacon_s: interval.mul_f64(1.05).as_secs_f64(),
        };
        // SS-MST beacons carry the same link-based fields as plain SS-SPST.
        let size = beacon.advertised_wire_size(MetricKind::Hop, self.config.silence.enabled);
        ctx.broadcast_control(size, ctx.radio.max_range_m, SsSpstPayload::Beacon(beacon));
        self.beacons_sent += 1;
    }

    fn schedule_next_beacon(&self, ctx: &mut NodeCtx<'_, SsSpstPayload>) {
        let interval = self.silence.interval(&self.config.silence, self.config.beacon_interval);
        let jitter = ctx.jitter(interval.mul_f64(0.1));
        let delay = interval.mul_f64(0.95) + jitter;
        ctx.set_timer(delay, TIMER_BEACON, 0);
    }
}

impl MstNeighbor {
    fn from_beacon(
        me: NodeId,
        my_pos: Vec2,
        b: &Beacon,
        now: SimTime,
        timeout: SimDuration,
    ) -> Self {
        MstNeighbor {
            distance: my_pos.distance(&b.position),
            cost: b.cost,
            hop: b.hop,
            has_downstream_member: b.has_downstream_member,
            parent_is_me: b.parent == Some(me),
            member: b.member,
            last_heard: now,
            timeout,
        }
    }
}

impl ProtocolAgent for SsMstAgent {
    type Payload = SsSpstPayload;

    fn start(&mut self, ctx: &mut NodeCtx<'_, SsSpstPayload>) {
        self.initialise_bounds(ctx);
        if ctx.is_source() {
            self.cost = 0.0;
            self.hop = 0;
        }
        self.has_downstream_member = ctx.is_member();
        // Same steady-state cadence from round one as SS-SPST (mean period exactly
        // the beacon interval).
        self.schedule_next_beacon(ctx);
    }

    fn on_packet(
        &mut self,
        ctx: &mut NodeCtx<'_, SsSpstPayload>,
        packet: &Packet<SsSpstPayload>,
    ) -> Disposition {
        match &packet.payload {
            SsSpstPayload::Beacon(beacon) => {
                let timeout = self.timeout_for(beacon);
                let entry =
                    MstNeighbor::from_beacon(ctx.id, ctx.position, beacon, ctx.now, timeout);
                if self.config.silence.enabled {
                    let inconsistent = match self.neighbors.get(&packet.sender) {
                        None => true,
                        Some(prev) => {
                            prev.parent_is_me != entry.parent_is_me
                                || prev.hop != entry.hop
                                || prev.member != entry.member
                                || prev.has_downstream_member != entry.has_downstream_member
                        }
                    };
                    if inconsistent && self.silence.note_evidence() {
                        ctx.cancel_timer(TIMER_BEACON, 0);
                        self.schedule_next_beacon(ctx);
                    }
                }
                self.neighbors.insert(packet.sender, entry);
                Disposition::Consumed
            }
            SsSpstPayload::Data => {
                let Some(tag) = packet.data else { return Disposition::Discarded };
                if Some(packet.sender) != self.parent {
                    return Disposition::Discarded;
                }
                if !self.seen_data.insert(tag.seq) {
                    return Disposition::Discarded;
                }
                if ctx.is_member() && !ctx.is_source() {
                    ctx.deliver_data(tag);
                }
                self.forward_data(ctx, tag, packet.size_bytes);
                Disposition::Consumed
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_, SsSpstPayload>, kind: u64, _key: u64) {
        if kind != TIMER_BEACON {
            return;
        }
        self.initialise_bounds(ctx);
        let expired = self.expire_neighbors(ctx.now);
        let parent_before = self.parent;
        self.stabilize(ctx);
        self.refresh_downstream_flag(ctx);
        if self.config.silence.enabled {
            if expired || self.parent != parent_before {
                self.silence.note_evidence();
            }
            let legitimate = self.locally_legitimate(ctx);
            self.silence.close_round(&self.config.silence, legitimate);
        }
        self.send_beacon(ctx);
        self.schedule_next_beacon(ctx);
    }

    fn on_app_data(&mut self, ctx: &mut NodeCtx<'_, SsSpstPayload>, tag: DataTag, size: u32) {
        self.seen_data.insert(tag.seq);
        self.forward_data(ctx, tag, size);
    }

    fn label(&self) -> &'static str {
        "SS-MST"
    }

    fn tree_parent(&self) -> Option<NodeId> {
        self.parent
    }

    fn corrupt_state(&mut self, rng: &mut rand::rngs::StdRng) {
        use rand::Rng;
        self.silence.note_evidence();
        let bound = if self.infinity_cost.is_finite() { self.infinity_cost * 2.0 } else { 1.0e6 };
        self.cost = rng.gen::<f64>() * bound;
        self.hop = rng.gen::<u32>();
        self.parent = ssmcast_manet::scrambled_parent(rng);
        self.has_downstream_member = rng.gen::<bool>();
        let mut ids: Vec<NodeId> = self.neighbors.keys().copied().collect();
        ids.sort();
        for id in ids {
            let entry = self.neighbors.get_mut(&id).expect("id collected above");
            entry.cost = rng.gen::<f64>() * bound;
            entry.hop = rng.gen::<u32>();
            entry.parent_is_me = rng.gen::<bool>();
            entry.has_downstream_member = rng.gen::<bool>();
        }
    }

    fn on_corrupted(&mut self, ctx: &mut NodeCtx<'_, SsSpstPayload>) {
        if !self.config.silence.enabled {
            return;
        }
        // Same rationale as the SS-SPST agent: the backoff level was reset by
        // `corrupt_state`, but the timer armed under the suppressed cadence must not
        // keep the scrambled state silent for up to the heartbeat floor.
        ctx.cancel_timer(TIMER_BEACON, 0);
        self.schedule_next_beacon(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ssmcast_manet::{Action, GroupRole, PacketClass, RadioConfig};

    struct Harness {
        radio: RadioConfig,
        rng: StdRng,
        actions: Vec<Action<SsSpstPayload>>,
    }

    impl Harness {
        fn new() -> Self {
            Harness {
                radio: RadioConfig::default(),
                rng: StdRng::seed_from_u64(9),
                actions: Vec::new(),
            }
        }

        fn ctx<'a>(
            &'a mut self,
            now: SimTime,
            id: NodeId,
            pos: Vec2,
            role: GroupRole,
        ) -> NodeCtx<'a, SsSpstPayload> {
            self.actions.clear();
            NodeCtx::new(now, id, pos, role, 10, &self.radio, &mut self.rng, &mut self.actions)
        }
    }

    fn beacon(cost: f64, hop: u32, pos: Vec2, parent: Option<NodeId>) -> Beacon {
        Beacon {
            position: pos,
            cost,
            hop,
            parent,
            member: true,
            has_downstream_member: true,
            children: vec![],
            non_member_neighbor_distances: vec![],
            next_beacon_s: 2.0,
        }
    }

    #[test]
    fn picks_the_minimum_bottleneck_parent_not_the_shortest_path() {
        // Me at (100, 0). Node 0 (the source) is 100 m away; node 1 sits at (60, 0)
        // with a 60 m bottleneck path to the source. Additive shortest-path would go
        // direct (100 < 60 + 40 in hops terms it is 1 hop), but the minimax objective
        // prefers the two-hop path whose longest link is only 60 m.
        let mut h = Harness::new();
        let mut agent = SsMstAgent::new(SsMstConfig::paper_default());
        let me = NodeId(2);
        let my_pos = Vec2::new(100.0, 0.0);
        {
            let mut ctx = h.ctx(SimTime::ZERO, me, my_pos, GroupRole::Member);
            agent.start(&mut ctx);
        }
        let direct =
            Packet::control(NodeId(0), 32, SsSpstPayload::Beacon(beacon(0.0, 0, Vec2::ZERO, None)));
        let relay = Packet::control(
            NodeId(1),
            32,
            SsSpstPayload::Beacon(beacon(60.0, 1, Vec2::new(60.0, 0.0), Some(NodeId(0)))),
        );
        {
            let mut ctx = h.ctx(SimTime::from_secs(1), me, my_pos, GroupRole::Member);
            agent.on_packet(&mut ctx, &direct);
            agent.on_packet(&mut ctx, &relay);
        }
        {
            let mut ctx = h.ctx(SimTime::from_secs(2), me, my_pos, GroupRole::Member);
            agent.on_timer(&mut ctx, TIMER_BEACON, 0);
        }
        assert_eq!(agent.parent(), Some(NodeId(1)), "minimax prefers the 60 m bottleneck");
        assert!((agent.cost() - 60.0).abs() < 1e-9);
        assert_eq!(agent.hop(), 2);
    }

    #[test]
    fn never_adopts_a_neighbor_that_claims_us_as_parent() {
        // Node 5 advertises a tempting zero-ish bottleneck but lists us as its parent:
        // adopting it would close a two-cycle. The loop guard must skip it.
        let mut h = Harness::new();
        let mut agent = SsMstAgent::new(SsMstConfig::paper_default());
        let me = NodeId(2);
        let my_pos = Vec2::new(100.0, 0.0);
        {
            let mut ctx = h.ctx(SimTime::ZERO, me, my_pos, GroupRole::Member);
            agent.start(&mut ctx);
        }
        let cyclic = Packet::control(
            NodeId(5),
            32,
            SsSpstPayload::Beacon(beacon(1.0, 1, Vec2::new(110.0, 0.0), Some(me))),
        );
        {
            let mut ctx = h.ctx(SimTime::from_secs(1), me, my_pos, GroupRole::Member);
            agent.on_packet(&mut ctx, &cyclic);
        }
        {
            let mut ctx = h.ctx(SimTime::from_secs(2), me, my_pos, GroupRole::Member);
            agent.on_timer(&mut ctx, TIMER_BEACON, 0);
        }
        assert_eq!(agent.parent(), None, "the only candidate is our own child");
        assert!(agent.cost() >= agent.infinity_cost);
    }

    #[test]
    fn emits_hop_sized_beacons_and_forwards_down_the_tree() {
        let mut h = Harness::new();
        let mut agent = SsMstAgent::new(SsMstConfig::paper_default());
        let me = NodeId(1);
        let my_pos = Vec2::new(80.0, 0.0);
        {
            let mut ctx = h.ctx(SimTime::ZERO, me, my_pos, GroupRole::Member);
            agent.start(&mut ctx);
        }
        let src =
            Packet::control(NodeId(0), 32, SsSpstPayload::Beacon(beacon(0.0, 0, Vec2::ZERO, None)));
        let child = Packet::control(
            NodeId(3),
            32,
            SsSpstPayload::Beacon(beacon(90.0, 2, Vec2::new(170.0, 0.0), Some(me))),
        );
        {
            let mut ctx = h.ctx(SimTime::from_secs(1), me, my_pos, GroupRole::Member);
            agent.on_packet(&mut ctx, &src);
            agent.on_packet(&mut ctx, &child);
        }
        {
            let mut ctx = h.ctx(SimTime::from_secs(2), me, my_pos, GroupRole::Member);
            agent.on_timer(&mut ctx, TIMER_BEACON, 0);
        }
        assert_eq!(agent.parent(), Some(NodeId(0)));
        let size = h
            .actions
            .iter()
            .find_map(|a| match a {
                Action::Broadcast { class: PacketClass::Control, size_bytes, .. } => {
                    Some(*size_bytes)
                }
                _ => None,
            })
            .expect("beacon emitted");
        assert_eq!(size, 24, "SS-MST beacons use the link-based wire format");

        // Data from the parent is delivered and forwarded toward the child.
        let tag = DataTag {
            group: Default::default(),
            origin: NodeId(0),
            seq: 1,
            created_at: SimTime::from_secs(3),
        };
        let data = Packet::data(NodeId(0), 512, tag, SsSpstPayload::Data);
        {
            let mut ctx = h.ctx(SimTime::from_secs(3), me, my_pos, GroupRole::Member);
            assert_eq!(agent.on_packet(&mut ctx, &data), Disposition::Consumed);
        }
        assert!(h.actions.iter().any(|a| matches!(a, Action::DeliverData { .. })));
        assert!(h
            .actions
            .iter()
            .any(|a| matches!(a, Action::Broadcast { class: PacketClass::Data, .. })));
    }

    #[test]
    fn suppression_backs_off_and_snaps_back_like_ss_spst() {
        let mut config = SsMstConfig::paper_default();
        config.silence = SilenceConfig::on();
        let mut h = Harness::new();
        let mut agent = SsMstAgent::new(config);
        {
            let mut ctx = h.ctx(SimTime::ZERO, NodeId(0), Vec2::ZERO, GroupRole::Source);
            agent.start(&mut ctx);
        }
        for round in 0..6u64 {
            let mut ctx = h.ctx(
                SimTime::from_secs(2 * (round + 1)),
                NodeId(0),
                Vec2::ZERO,
                GroupRole::Source,
            );
            agent.on_timer(&mut ctx, TIMER_BEACON, 0);
        }
        let delay = h
            .actions
            .iter()
            .find_map(|a| match a {
                Action::SetTimer { delay, kind: TIMER_BEACON, .. } => Some(delay.as_secs_f64()),
                _ => None,
            })
            .expect("timer scheduled");
        assert!(delay > 10.0, "quiet source backs off, got {delay}");
        let pkt = Packet::control(
            NodeId(7),
            32,
            SsSpstPayload::Beacon(beacon(5.0, 1, Vec2::new(50.0, 0.0), None)),
        );
        {
            let mut ctx = h.ctx(SimTime::from_secs(20), NodeId(0), Vec2::ZERO, GroupRole::Source);
            agent.on_packet(&mut ctx, &pkt);
        }
        assert!(h
            .actions
            .iter()
            .any(|a| matches!(a, Action::CancelTimer { kind: TIMER_BEACON, .. })));
    }
}
