//! The stabilization probe: an executable legitimacy predicate plus convergence
//! accounting.
//!
//! The paper proves that the SS-SPST family converges to a *legitimate state* — a
//! correct multicast tree — from any initial state. [`StabilizationProbe`] turns that
//! definition into a measurement device for the event-driven simulator: plugged into
//! [`ssmcast_manet::NetworkSim::run_probed`], it evaluates the predicate at fixed
//! epochs, watches injected faults, and charges recovery time, control/data messages
//! and energy to each fault episode. The result lands in the run report as a
//! [`ConvergenceStats`] block.
//!
//! Since the multi-session refactor the predicate is evaluated **per session**: each
//! concurrent multicast group has its own source, membership table (updated by churn)
//! and per-node protocol instances, so each gets its own tree-validity verdict. The
//! network-wide predicate is the conjunction — the aggregate [`ConvergenceStats`] block
//! means "every session legitimate", and [`StabilizationProbe::session_stats`] breaks
//! the same accounting down per session for the report's per-group blocks.
//!
//! # The legitimacy predicate (per session)
//!
//! At a probe instant a session is *legitimate* iff, over the alive nodes (neither
//! crashed nor battery-depleted):
//!
//! 1. the session's source reports no parent and is neither dead nor blacked out,
//! 2. parent pointers are loop-free,
//! 3. every alive **member** that the current [`TopologySnapshot`]'s unit-disc graph
//!    (restricted to alive nodes) connects to the source has a parent chain reaching
//!    the source, and
//! 4. every hop of those chains is an edge of the snapshot between alive,
//!    non-blacked-out nodes (no stale, out-of-range or dark links).
//!
//! Crash and blackout are treated differently on purpose: a *dead* member is exempt
//! from coverage (no protocol can serve it), but a *blacked-out* member still counts —
//! its node runs, only its links are dark — so a blackout episode cannot close before
//! the blackout ends (and whatever tree repair it caused completes). Otherwise a
//! blackout on a leaf member would "recover" at the next probe epoch with no protocol
//! action at all.
//!
//! This is the structural half of the paper's legitimate-state definition: a valid,
//! loop-free, source-rooted multicast tree consistent with the current topology. It
//! deliberately does not demand metric-optimality — the event-driven agent's switch
//! hysteresis keeps trees slightly sub-optimal on purpose. Members that are physically
//! partitioned from the source are exempt (no protocol could attach them), and
//! protocols that maintain no rooted structure at all (blind flooding) are never
//! legitimate — which is exactly the measurable difference between a self-stabilizing
//! tree protocol and a structure-free baseline under the same fault schedule.

use ssmcast_dessim::{SimDuration, SimTime};
use ssmcast_manet::{
    FaultKind, GroupRole, NodeId, ProbeContext, StabilizationObserver, TopologySnapshot,
};
use ssmcast_metrics::ConvergenceStats;

/// Evaluate the network-wide legitimacy predicate: every session legitimate (see the
/// module docs). An empty session list is vacuously illegitimate.
pub fn is_legitimate(ctx: &ProbeContext<'_>) -> bool {
    !ctx.sessions.is_empty()
        && ctx
            .sessions
            .iter()
            .all(|s| legitimate_over(ctx.snapshot, s.parents, ctx.alive, ctx.blacked_out, s.roles))
}

/// Evaluate the legitimacy predicate for one session of a probe context.
pub fn session_legitimate(ctx: &ProbeContext<'_>, session: usize) -> bool {
    let s = &ctx.sessions[session];
    legitimate_over(ctx.snapshot, s.parents, ctx.alive, ctx.blacked_out, s.roles)
}

/// The predicate over explicit pieces, usable from tests without a running simulator.
pub fn legitimate_over(
    snapshot: &TopologySnapshot,
    parents: &[Option<NodeId>],
    alive: &[bool],
    blacked_out: &[bool],
    roles: &[GroupRole],
) -> bool {
    let n = snapshot.len();
    if n == 0
        || parents.len() != n
        || alive.len() != n
        || blacked_out.len() != n
        || roles.len() != n
    {
        return false;
    }
    let Some(source) = roles.iter().position(|r| r.is_source()) else {
        return false;
    };
    let source = NodeId(source as u32);
    if !alive[source.index()] || blacked_out[source.index()] || parents[source.index()].is_some() {
        return false;
    }
    // Alive-restricted reachability from the source in the physical graph.
    let mut reachable = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    reachable[source.index()] = true;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for v in snapshot.neighbors(u) {
            if alive[v.index()] && !reachable[v.index()] {
                reachable[v.index()] = true;
                queue.push_back(v);
            }
        }
    }
    // Every alive member the physics could connect must have a valid chain to the
    // source: existing parents, alive, in range, no dark links, loop-free. A
    // blacked-out member is NOT exempt (its node runs; only its links are dark), and
    // its own first hop is unusable — so the predicate stays false for the duration of
    // a blackout that cuts any member off.
    for v in 0..n {
        let id = NodeId(v as u32);
        if !alive[v] || !roles[v].is_member() || !reachable[v] || id == source {
            continue;
        }
        let mut cur = id;
        let mut hops = 0usize;
        loop {
            let Some(p) = parents[cur.index()] else {
                return false; // a connected member is detached
            };
            if p.index() >= n
                || !alive[p.index()]
                || blacked_out[p.index()]
                || blacked_out[cur.index()]
                || !snapshot.are_neighbors(cur, p)
            {
                return false; // dangling, dead, dark or out-of-range link
            }
            if p == source {
                break;
            }
            hops += 1;
            if hops > n {
                return false; // parent-pointer cycle
            }
            cur = p;
        }
    }
    true
}

/// Counter snapshot a track diffs across a recovery window. The aggregate track uses
/// the context's network-wide totals; each per-session track uses that session's own
/// counters, so a group's recovery cost never includes other sessions' traffic.
#[derive(Clone, Copy, Debug)]
struct Counters {
    control_packets: u64,
    data_packets: u64,
    energy_j: f64,
}

impl Counters {
    fn network_wide(ctx: &ProbeContext<'_>) -> Self {
        Counters {
            control_packets: ctx.control_packets,
            data_packets: ctx.data_packets,
            energy_j: ctx.energy_j,
        }
    }

    fn of_session(ctx: &ProbeContext<'_>, session: usize) -> Self {
        let s = &ctx.sessions[session];
        Counters {
            control_packets: s.control_packets,
            data_packets: s.data_packets,
            energy_j: s.energy_j,
        }
    }
}

/// One open fault episode: when it started and the counter baselines at that instant.
#[derive(Clone, Copy, Debug)]
struct Episode {
    started_at: SimTime,
    baseline: Counters,
}

/// Episode/epoch accounting for one legitimacy stream (the network-wide conjunction, or
/// one session).
#[derive(Clone, Debug)]
struct Track {
    stats: ConvergenceStats,
    episode: Option<Episode>,
    recovery_sum_s: f64,
}

impl Track {
    fn new(epoch_s: f64) -> Self {
        Track { stats: ConvergenceStats::empty(epoch_s), episode: None, recovery_sum_s: 0.0 }
    }

    fn on_epoch(&mut self, legitimate: bool, now: SimTime, counters: Counters) {
        self.stats.epochs_probed += 1;
        if legitimate {
            self.stats.epochs_legitimate += 1;
            if self.stats.first_legitimate_s.is_none() {
                self.stats.first_legitimate_s = Some(now.as_secs_f64());
            }
            if let Some(ep) = self.episode.take() {
                self.close_episode(ep, now, counters);
            }
        }
    }

    fn on_fault(&mut self, now: SimTime, counters: Counters) {
        self.stats.faults_injected += 1;
        // Simultaneous faults (a corruption burst) share one episode.
        if self.episode.is_none() {
            self.episode = Some(Episode { started_at: now, baseline: counters });
        }
    }

    fn close_episode(&mut self, ep: Episode, now: SimTime, counters: Counters) {
        let recovery = now.saturating_since(ep.started_at).as_secs_f64();
        self.stats.recovered += 1;
        self.recovery_sum_s += recovery;
        self.stats.max_recovery_s = self.stats.max_recovery_s.max(recovery);
        self.stats.mean_recovery_s = self.recovery_sum_s / self.stats.recovered as f64;
        self.stats.control_packets_during_recovery +=
            counters.control_packets.saturating_sub(ep.baseline.control_packets);
        self.stats.data_packets_during_recovery +=
            counters.data_packets.saturating_sub(ep.baseline.data_packets);
        self.stats.energy_during_recovery_j += (counters.energy_j - ep.baseline.energy_j).max(0.0);
    }

    fn finish(&mut self, end: SimTime) -> ConvergenceStats {
        if let Some(ep) = self.episode.take() {
            self.stats.unrecovered += 1;
            self.stats.unrecovered_open_s += end.saturating_since(ep.started_at).as_secs_f64();
        }
        self.stats.clone()
    }
}

/// A [`StabilizationObserver`] that evaluates the legitimacy predicate each epoch and
/// aggregates per-episode recovery measurements into a [`ConvergenceStats`] block —
/// network-wide, and broken down per session for multi-group runs.
#[derive(Clone, Debug)]
pub struct StabilizationProbe {
    epoch: SimDuration,
    aggregate: Track,
    /// One track per session, sized lazily at the first callback (the probe does not
    /// know the session count until the runtime hands it a context).
    per_session: Vec<Track>,
    /// Finalized per-session stats, filled by `finish`.
    finished_sessions: Vec<ConvergenceStats>,
}

impl StabilizationProbe {
    /// A probe that reports recovery times quantised to `epoch`.
    pub fn new(epoch: SimDuration) -> Self {
        let epoch = if epoch.is_zero() { SimDuration::from_secs(1) } else { epoch };
        StabilizationProbe {
            epoch,
            aggregate: Track::new(epoch.as_secs_f64()),
            per_session: Vec::new(),
            finished_sessions: Vec::new(),
        }
    }

    /// The probe interval this probe was built with.
    pub fn epoch(&self) -> SimDuration {
        self.epoch
    }

    /// The network-wide statistics accumulated so far (finalised by
    /// [`StabilizationObserver::finish`]).
    pub fn stats(&self) -> &ConvergenceStats {
        &self.aggregate.stats
    }

    fn ensure_sessions(&mut self, n: usize) {
        let epoch_s = self.epoch.as_secs_f64();
        while self.per_session.len() < n {
            self.per_session.push(Track::new(epoch_s));
        }
    }
}

impl StabilizationObserver for StabilizationProbe {
    fn probe_epoch(&self) -> SimDuration {
        self.epoch
    }

    fn on_epoch(&mut self, ctx: &ProbeContext<'_>) {
        self.ensure_sessions(ctx.sessions.len());
        self.aggregate.on_epoch(is_legitimate(ctx), ctx.now, Counters::network_wide(ctx));
        for s in 0..ctx.sessions.len() {
            self.per_session[s].on_epoch(
                session_legitimate(ctx, s),
                ctx.now,
                Counters::of_session(ctx, s),
            );
        }
    }

    fn on_fault(&mut self, _kind: &FaultKind, ctx: &ProbeContext<'_>) {
        self.ensure_sessions(ctx.sessions.len());
        self.aggregate.on_fault(ctx.now, Counters::network_wide(ctx));
        // A node-level fault perturbs every session that node participates in; each
        // session tracks its own episode (baselined at its own counters) and closes it
        // at its own first legitimate epoch.
        for s in 0..ctx.sessions.len() {
            self.per_session[s].on_fault(ctx.now, Counters::of_session(ctx, s));
        }
    }

    fn finish(&mut self, end: SimTime) -> Option<ConvergenceStats> {
        self.finished_sessions =
            self.per_session.iter_mut().map(|track| track.finish(end)).collect();
        Some(self.aggregate.finish(end))
    }

    fn session_stats(&self) -> Vec<ConvergenceStats> {
        self.finished_sessions.clone()
    }

    fn session_recovering(&self, session: usize) -> bool {
        // A session is "recovering" from its first fault notification until the first
        // probe epoch at which its legitimacy predicate holds again (per-session
        // tracks are created lazily, so an unseen session is trivially steady).
        self.per_session.get(session).is_some_and(|track| track.episode.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmcast_manet::{SessionProbe, Vec2};

    /// Four nodes on a line, 100 m apart, 150 m range: path graph 0-1-2-3.
    fn line() -> TopologySnapshot {
        let pos = (0..4).map(|i| Vec2::new(i as f64 * 100.0, 0.0)).collect();
        TopologySnapshot::new(pos, 150.0)
    }

    fn roles() -> Vec<GroupRole> {
        vec![GroupRole::Source, GroupRole::NonMember, GroupRole::Member, GroupRole::Member]
    }

    fn chain_parents() -> Vec<Option<NodeId>> {
        vec![None, Some(NodeId(0)), Some(NodeId(1)), Some(NodeId(2))]
    }

    #[test]
    fn a_valid_chain_is_legitimate() {
        assert!(legitimate_over(&line(), &chain_parents(), &[true; 4], &[false; 4], &roles()));
    }

    #[test]
    fn detached_member_breaks_legitimacy() {
        let mut parents = chain_parents();
        parents[3] = None;
        assert!(!legitimate_over(&line(), &parents, &[true; 4], &[false; 4], &roles()));
        // A detached *non-member* is fine (pruned branch).
        let mut parents = chain_parents();
        parents[1] = None;
        let roles = vec![
            GroupRole::Source,
            GroupRole::NonMember,
            GroupRole::NonMember,
            GroupRole::NonMember,
        ];
        assert!(legitimate_over(&line(), &parents, &[true; 4], &[false; 4], &roles));
    }

    #[test]
    fn out_of_range_parent_breaks_legitimacy() {
        let mut parents = chain_parents();
        parents[3] = Some(NodeId(0)); // 300 m away, range is 150 m
        assert!(!legitimate_over(&line(), &parents, &[true; 4], &[false; 4], &roles()));
    }

    #[test]
    fn cycles_break_legitimacy() {
        let parents = vec![None, Some(NodeId(2)), Some(NodeId(1)), Some(NodeId(2))];
        assert!(!legitimate_over(&line(), &parents, &[true; 4], &[false; 4], &roles()));
    }

    #[test]
    fn source_with_a_parent_is_illegitimate() {
        let mut parents = chain_parents();
        parents[0] = Some(NodeId(1));
        assert!(!legitimate_over(&line(), &parents, &[true; 4], &[false; 4], &roles()));
    }

    #[test]
    fn physically_partitioned_members_are_exempt() {
        // Kill node 1 (the only relay): members 2 and 3 become unreachable, so the
        // predicate cannot demand they attach. Their stale pointers routed *through*
        // the dead node do not count against legitimacy either — the chain test only
        // applies to reachable members.
        let alive = [true, false, true, true];
        assert!(legitimate_over(&line(), &chain_parents(), &alive, &[false; 4], &roles()));
    }

    #[test]
    fn dead_parent_of_a_reachable_member_breaks_legitimacy() {
        // 5-node line; node 2 is a member whose parent 1 died, but node 2 is still
        // physically reachable via... nothing else (1 was the only path) — so instead
        // make a triangle: 0-1, 0-2, 1-2. Parent of 2 is 1; 1 dies; 2 stays reachable
        // through the direct 0-2 edge, so its pointer to the dead 1 is illegitimate.
        let pos = vec![Vec2::new(0.0, 0.0), Vec2::new(100.0, 0.0), Vec2::new(50.0, 80.0)];
        let snap = TopologySnapshot::new(pos, 150.0);
        let roles = vec![GroupRole::Source, GroupRole::NonMember, GroupRole::Member];
        let parents = vec![None, Some(NodeId(0)), Some(NodeId(1))];
        assert!(legitimate_over(&snap, &parents, &[true; 3], &[false; 3], &roles));
        assert!(!legitimate_over(&snap, &parents, &[true, false, true], &[false; 3], &roles));
    }

    const NO_BLACKOUT: [bool; 4] = [false; 4];

    fn ctx_at<'a>(
        now: SimTime,
        snap: &'a TopologySnapshot,
        sessions: &'a [SessionProbe<'a>],
        alive: &'a [bool],
        energy: f64,
    ) -> ProbeContext<'a> {
        ProbeContext {
            now,
            snapshot: snap,
            sessions,
            alive,
            blacked_out: &NO_BLACKOUT,
            control_packets: (now.as_secs_f64() * 10.0) as u64,
            data_packets: 0,
            energy_j: energy,
        }
    }

    #[test]
    fn blacked_out_members_and_relays_break_legitimacy_without_exempting_them() {
        let snap = line();
        let parents = chain_parents();
        let alive = [true; 4];
        // A blacked-out leaf member (node 3) must NOT read as exempt: the network stays
        // illegitimate for the blackout's duration.
        assert!(!legitimate_over(&snap, &parents, &alive, &[false, false, false, true], &roles()));
        // A blacked-out relay (node 1) darkens the chains through it.
        assert!(!legitimate_over(&snap, &parents, &alive, &[false, true, false, false], &roles()));
        // A blacked-out source serves nobody.
        assert!(!legitimate_over(&snap, &parents, &alive, &[true, false, false, false], &roles()));
        // A *dead* leaf member, by contrast, is exempt (nothing can serve it).
        assert!(legitimate_over(
            &snap,
            &parents,
            &[true, true, true, false],
            &NO_BLACKOUT,
            &roles()
        ));
    }

    /// A session view whose counters mirror `ctx_at`'s network-wide formula at `now`
    /// (one session owns all the traffic), so single-session per-group stats must equal
    /// the aggregate exactly.
    fn session_at<'a>(
        now: SimTime,
        parents: &'a [Option<NodeId>],
        roles: &'a [GroupRole],
        energy: f64,
    ) -> SessionProbe<'a> {
        SessionProbe {
            parents,
            roles,
            control_packets: (now.as_secs_f64() * 10.0) as u64,
            data_packets: 0,
            energy_j: energy,
        }
    }

    #[test]
    fn probe_counts_epochs_and_closes_episodes() {
        let snap = line();
        let parents = chain_parents();
        let alive = vec![true; 4];
        let r = roles();
        let mut broken_parents = parents.clone();
        broken_parents[3] = Some(NodeId(0));
        let mut probe = StabilizationProbe::new(SimDuration::from_secs(1));
        // Legitimate epoch at t=1.
        let t1 = SimTime::from_secs(1);
        probe.on_epoch(&ctx_at(t1, &snap, &[session_at(t1, &parents, &r, 1.0)], &alive, 1.0));
        // Fault at t=2 breaks node 3 off.
        let t2 = SimTime::from_secs(2);
        probe.on_fault(
            &FaultKind::Corrupt { node: NodeId(3) },
            &ctx_at(t2, &snap, &[session_at(t2, &broken_parents, &r, 2.0)], &alive, 2.0),
        );
        let t3 = SimTime::from_secs(3);
        probe.on_epoch(&ctx_at(
            t3,
            &snap,
            &[session_at(t3, &broken_parents, &r, 3.0)],
            &alive,
            3.0,
        ));
        // Recovered by t=4.
        let t4 = SimTime::from_secs(4);
        probe.on_epoch(&ctx_at(t4, &snap, &[session_at(t4, &parents, &r, 5.0)], &alive, 5.0));
        let stats = probe.finish(SimTime::from_secs(5)).expect("probe always reports");
        assert_eq!(stats.epochs_probed, 3);
        assert_eq!(stats.epochs_legitimate, 2);
        assert_eq!(stats.first_legitimate_s, Some(1.0));
        assert_eq!(stats.faults_injected, 1);
        assert_eq!(stats.recovered, 1);
        assert_eq!(stats.unrecovered, 0);
        assert!((stats.mean_recovery_s - 2.0).abs() < 1e-9, "fault at 2, legitimate at 4");
        assert_eq!(stats.control_packets_during_recovery, 20);
        assert!((stats.energy_during_recovery_j - 3.0).abs() < 1e-12);
        // A single session's breakdown matches the aggregate.
        let sessions = probe.session_stats();
        assert_eq!(sessions.len(), 1);
        assert_eq!(sessions[0], stats);
    }

    #[test]
    fn open_episodes_count_as_unrecovered_at_finish() {
        let snap = line();
        let parents = chain_parents();
        let alive = vec![true; 4];
        let r = roles();
        let sessions = [SessionProbe {
            parents: &parents,
            roles: &r,
            control_packets: 0,
            data_packets: 0,
            energy_j: 0.0,
        }];
        let ctx = ProbeContext {
            now: SimTime::from_secs(2),
            snapshot: &snap,
            sessions: &sessions,
            alive: &alive,
            blacked_out: &NO_BLACKOUT,
            control_packets: 0,
            data_packets: 0,
            energy_j: 0.0,
        };
        let mut probe = StabilizationProbe::new(SimDuration::from_secs(1));
        probe.on_fault(&FaultKind::Corrupt { node: NodeId(1) }, &ctx);
        probe.on_fault(&FaultKind::Corrupt { node: NodeId(2) }, &ctx);
        let stats = probe.finish(SimTime::from_secs(10)).unwrap();
        assert_eq!(stats.faults_injected, 2, "raw fault events are counted individually");
        assert_eq!(stats.unrecovered, 1, "a simultaneous burst is one episode");
        assert_eq!(stats.recovered, 0);
        assert!(
            (stats.unrecovered_open_s - 8.0).abs() < 1e-12,
            "the open episode was observed for run end (10) − start (2) seconds"
        );
    }

    #[test]
    fn per_session_verdicts_diverge_when_only_one_session_breaks() {
        let snap = line();
        let parents = chain_parents();
        let mut broken = parents.clone();
        broken[3] = Some(NodeId(0)); // out of range: session 1 is illegitimate
        let r = roles();
        let alive = vec![true; 4];
        // Session 0 owns 5 control packets / 0.25 J at the fault instant and 9 / 0.75 J
        // at the recovery epoch; session 1's counters differ — the per-session episode
        // must be baselined and closed with its *own* counters, not the network totals.
        let at_fault = [session_with(&parents, &r, 5, 0.25), session_with(&broken, &r, 100, 10.0)];
        let ctx = ctx_at(SimTime::from_secs(1), &snap, &at_fault, &alive, 11.0);
        assert!(session_legitimate(&ctx, 0));
        assert!(!session_legitimate(&ctx, 1));
        assert!(!is_legitimate(&ctx), "the network-wide verdict is the conjunction");

        let mut probe = StabilizationProbe::new(SimDuration::from_secs(1));
        probe.on_fault(&FaultKind::Corrupt { node: NodeId(3) }, &ctx);
        // Session 0 is already legitimate at the next epoch; session 1 never recovers.
        let at_epoch = [session_with(&parents, &r, 9, 0.75), session_with(&broken, &r, 140, 14.0)];
        probe.on_epoch(&ctx_at(SimTime::from_secs(2), &snap, &at_epoch, &alive, 15.0));
        let aggregate = probe.finish(SimTime::from_secs(5)).unwrap();
        let per = probe.session_stats();
        assert_eq!(per.len(), 2);
        assert_eq!(per[0].recovered, 1, "session 0 closes its episode");
        assert_eq!(per[1].recovered, 0);
        assert_eq!(per[1].unrecovered, 1, "session 1's episode stays open");
        assert_eq!(aggregate.recovered, 0, "the conjunction never turns legitimate");
        assert_eq!(aggregate.unrecovered, 1);
        assert_eq!(per[0].epochs_legitimate, 1);
        assert_eq!(per[1].epochs_legitimate, 0);
        // Recovery cost is charged from the session's own counters: 9 − 5 packets,
        // 0.75 − 0.25 J — not the network-wide 40-packet / 4 J window.
        assert_eq!(per[0].control_packets_during_recovery, 4);
        assert!((per[0].energy_during_recovery_j - 0.5).abs() < 1e-12);
    }

    /// A session view with explicit per-session counters.
    fn session_with<'a>(
        parents: &'a [Option<NodeId>],
        roles: &'a [GroupRole],
        control_packets: u64,
        energy_j: f64,
    ) -> SessionProbe<'a> {
        SessionProbe { parents, roles, control_packets, data_packets: 0, energy_j }
    }

    #[test]
    fn empty_session_lists_are_never_legitimate() {
        let snap = line();
        let alive = vec![true; 4];
        let ctx = ctx_at(SimTime::from_secs(1), &snap, &[], &alive, 0.0);
        assert!(!is_legitimate(&ctx));
    }
}
