//! Minimum-energy multicast tree construction (the BIP greedy of Wieselthier et al.,
//! analysed for MANET multicast by Han et al.).
//!
//! The *broadcast advantage*: a node already transmitting at power `tx(r)` reaches every
//! neighbour within `r` for free, so attaching one more child at distance `d > r` costs
//! only the increment `tx(d) − tx(r)` — not a fresh transmission. The Broadcast
//! Incremental Power (BIP) greedy grows a source-rooted tree one node at a time, always
//! attaching the uncovered node with the cheapest *incremental* transmit power, pricing
//! parents that already transmit at their current farthest-child radius.
//!
//! This is a centralized, topology-snapshot baseline — the "how cheap could multicast
//! possibly be" yardstick the self-stabilizing protocols are measured against. It is not
//! itself self-stabilizing: the driver must rebuild the tree when the topology changes.

use crate::graph::MulticastTopology;
use crate::metric::MetricParams;
use crate::tree::MulticastTree;
use ssmcast_manet::NodeId;

/// Grow a minimum-energy multicast tree with the BIP greedy.
///
/// Starting from the source, repeatedly attach the cheapest uncovered node, where the
/// price of attaching `v` under an in-tree parent `u` currently transmitting to radius
/// `r_u` is the incremental power `params.tx(d(u,v)) − params.tx(r_u)` (a parent with no
/// children yet pays the full `params.tx(d)`). Nodes unreachable from the source stay
/// parentless, so the result spans exactly the source's connected component.
///
/// The returned tree is *unpruned* — every covered node has a parent. Forwarding-set
/// pruning ([`MulticastTree::forwarding_set`]) drops branches with no group members
/// downstream, exactly as for the protocol-built trees.
pub fn min_energy_tree(topo: &MulticastTopology, params: &MetricParams) -> MulticastTree {
    let n = topo.len();
    let source = topo.source();
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut in_tree = vec![false; n];
    // Radius each in-tree node currently transmits at (its farthest child so far).
    let mut radius = vec![0.0f64; n];
    if n == 0 {
        return MulticastTree::new(source, parent);
    }
    in_tree[source.index()] = true;
    for _ in 1..n {
        // The cheapest uncovered attachment. Ties break toward the lower (parent, child)
        // pair so the greedy is deterministic across platforms.
        let mut best: Option<(f64, NodeId, NodeId, f64)> = None;
        for u in topo.nodes().filter(|&u| in_tree[u.index()]) {
            for &(v, d) in topo.neighbors(u) {
                if in_tree[v.index()] {
                    continue;
                }
                let inc = params.tx(d.max(radius[u.index()])) - params.tx(radius[u.index()]);
                let better = match best {
                    None => true,
                    Some((bc, bu, bv, _)) => inc < bc || (inc == bc && (u, v) < (bu, bv)),
                };
                if better {
                    best = Some((inc, u, v, d));
                }
            }
        }
        let Some((_, u, v, d)) = best else {
            break; // the rest of the graph is unreachable from the source
        };
        parent[v.index()] = Some(u);
        in_tree[v.index()] = true;
        radius[u.index()] = radius[u.index()].max(d);
    }
    MulticastTree::new(source, parent)
}

/// Total transmit power of `tree`: each node with children pays one transmission to its
/// farthest child in `topo` (the broadcast advantage — siblings ride along for free).
/// Stale edges (endpoints no longer adjacent) contribute nothing.
pub fn tree_tx_power(tree: &MulticastTree, topo: &MulticastTopology, params: &MetricParams) -> f64 {
    topo.nodes()
        .map(|v| {
            let far = tree.child_distances_in(topo, v).into_iter().fold(0.0f64, f64::max);
            if far > 0.0 {
                params.tx(far)
            } else {
                0.0
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path 0 - 1 - 2 - 3, plus a long chord 0 - 3.
    fn chord_topo() -> MulticastTopology {
        MulticastTopology::from_edges(
            4,
            &[(0, 1, 100.0), (1, 2, 100.0), (2, 3, 100.0), (0, 3, 240.0)],
            NodeId(0),
            vec![true, false, false, true],
        )
    }

    #[test]
    fn bip_prefers_short_relays_over_one_long_link() {
        let topo = chord_topo();
        let params = MetricParams::default();
        let tree = min_energy_tree(&topo, &params);
        assert!(tree.is_spanning());
        // With a quadratic-plus path-loss exponent, three 100 m hops beat one 240 m
        // blast: node 3 must hang off the relay chain, not the chord.
        assert_eq!(tree.parent(NodeId(3)), Some(NodeId(2)));
        assert_eq!(tree.parent(NodeId(1)), Some(NodeId(0)));
        assert_eq!(tree.parent(NodeId(2)), Some(NodeId(1)));
    }

    #[test]
    fn broadcast_advantage_reuses_a_paid_transmission() {
        // Source with two neighbours at 100 m and 120 m: covering the far one at
        // tx(120) makes the near one's incremental price tx(100)−... moot — but more
        // to the point, attaching BOTH under the source must cost tx(120), not
        // tx(100) + tx(120).
        let topo = MulticastTopology::from_edges(
            3,
            &[(0, 1, 100.0), (0, 2, 120.0), (1, 2, 180.0)],
            NodeId(0),
            vec![true, true, true],
        );
        let params = MetricParams::default();
        let tree = min_energy_tree(&topo, &params);
        assert!(tree.is_spanning());
        assert_eq!(tree.parent(NodeId(1)), Some(NodeId(0)));
        assert_eq!(tree.parent(NodeId(2)), Some(NodeId(0)), "incremental price beats a relay");
        let power = tree_tx_power(&tree, &topo, &params);
        assert!(
            (power - params.tx(120.0)).abs() < 1e-12,
            "one transmission at the farthest child covers both: {power}"
        );
    }

    #[test]
    fn tree_power_never_exceeds_per_link_unicast_sum() {
        let topo = chord_topo();
        let params = MetricParams::default();
        let tree = min_energy_tree(&topo, &params);
        let unicast: f64 = tree.edges(&topo).filter_map(|(_, _, d)| d).map(|d| params.tx(d)).sum();
        let broadcast = tree_tx_power(&tree, &topo, &params);
        assert!(broadcast <= unicast + 1e-12, "{broadcast} <= {unicast}");
    }

    #[test]
    fn unreachable_nodes_stay_parentless() {
        let topo = MulticastTopology::from_edges(
            4,
            &[(0, 1, 100.0), (2, 3, 100.0)],
            NodeId(0),
            vec![true, true, true, true],
        );
        let tree = min_energy_tree(&topo, &MetricParams::default());
        assert!(!tree.is_spanning());
        assert_eq!(tree.parent(NodeId(1)), Some(NodeId(0)));
        assert_eq!(tree.parent(NodeId(2)), None);
        assert_eq!(tree.parent(NodeId(3)), None);
    }

    #[test]
    fn empty_and_singleton_graphs_are_fine() {
        let solo = MulticastTopology::from_edges(1, &[], NodeId(0), vec![true]);
        let tree = min_energy_tree(&solo, &MetricParams::default());
        assert!(tree.is_spanning());
        assert_eq!(tree.parent(NodeId(0)), None);
    }
}
