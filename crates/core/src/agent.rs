//! Event-driven SS-SPST agent for the MANET simulator.
//!
//! One [`SsSpstAgent`] runs on every node. Each beacon interval the agent
//!
//! 1. expires neighbours it has not heard from,
//! 2. re-evaluates the guarded commands (same rules as [`crate::sync_model`], but over the
//!    beacon-built neighbour table instead of global knowledge),
//! 3. recomputes its bottom-up pruning flag, and
//! 4. broadcasts its own beacon at maximum range.
//!
//! Data packets flow down the tree: a node accepts data only from its current parent,
//! delivers it locally if it is a member, and re-broadcasts it with just enough power to
//! reach its farthest child that still leads to members. Data heard from any other node is
//! overhearing and is discarded — exactly the energy the SS-SPST-E metric tries to avoid.

use crate::beacon::Beacon;
use crate::metric::{cost_via, MetricKind, MetricParams, ParentView};
use ssmcast_dessim::{SimDuration, SimTime};
use ssmcast_manet::{DataTag, Disposition, NodeCtx, NodeId, Packet, ProtocolAgent, Vec2};
use std::collections::{HashMap, HashSet};

/// Timer class used for the periodic beacon.
const TIMER_BEACON: u64 = 1;

/// Wire payload of the SS-SPST family: either a beacon or a data frame (whose application
/// identity travels in [`ssmcast_manet::Packet::data`]).
#[derive(Clone, Debug, PartialEq)]
pub enum SsSpstPayload {
    /// Periodic control beacon.
    Beacon(Beacon),
    /// Multicast data being forwarded down the tree.
    Data,
}

/// Configuration of an [`SsSpstAgent`].
#[derive(Clone, Copy, Debug)]
pub struct SsSpstConfig {
    /// Which cost metric to stabilize (selects SS-SPST, -T, -F or -E).
    pub kind: MetricKind,
    /// Energy-pricing parameters.
    pub params: MetricParams,
    /// Beacon interval (the paper uses 2 s unless it is the swept parameter).
    pub beacon_interval: SimDuration,
    /// A neighbour is dropped after this many beacon intervals of silence.
    pub neighbor_timeout_intervals: f64,
    /// Data transmissions reach the farthest relevant child scaled by this margin, to
    /// absorb movement since the child's last beacon.
    pub range_margin: f64,
    /// A node abandons a still-valid parent only for a relative improvement larger than
    /// this (hysteresis against tree flapping).
    pub switch_margin: f64,
}

impl SsSpstConfig {
    /// The paper's defaults for a given metric: 2 s beacons, 2.5-interval neighbour
    /// timeout, 10 % range margin, 5 % switch hysteresis.
    pub fn paper_default(kind: MetricKind) -> Self {
        SsSpstConfig {
            kind,
            params: MetricParams::default(),
            beacon_interval: SimDuration::from_secs(2),
            neighbor_timeout_intervals: 2.5,
            range_margin: 1.10,
            switch_margin: 0.05,
        }
    }

    /// Same defaults but with a custom beacon interval (Figures 10 and 11).
    pub fn with_beacon_interval(kind: MetricKind, interval: SimDuration) -> Self {
        SsSpstConfig { beacon_interval: interval, ..Self::paper_default(kind) }
    }
}

/// What this node last heard from one neighbour.
#[derive(Clone, Debug)]
struct NeighborEntry {
    /// Distance to the neighbour, derived from the position it advertised.
    distance: f64,
    cost: f64,
    hop: u32,
    member: bool,
    has_downstream_member: bool,
    /// True if the neighbour's advertised parent is this node (i.e. it is our child).
    parent_is_me: bool,
    /// Distances to the neighbour's children other than this node.
    child_distances_excluding_me: Vec<f64>,
    /// Distances to the neighbour's potential overhearers (SS-SPST-E beacons only).
    non_member_neighbor_distances: Vec<f64>,
    last_heard: SimTime,
}

/// The per-node SS-SPST protocol state machine.
#[derive(Debug)]
pub struct SsSpstAgent {
    config: SsSpstConfig,
    cost: f64,
    hop: u32,
    parent: Option<NodeId>,
    infinity_cost: f64,
    max_hops: u32,
    has_downstream_member: bool,
    neighbors: HashMap<NodeId, NeighborEntry>,
    seen_data: HashSet<u64>,
    parent_changes: u64,
    beacons_sent: u64,
}

impl SsSpstAgent {
    /// Create an agent with the given configuration.
    pub fn new(config: SsSpstConfig) -> Self {
        SsSpstAgent {
            config,
            cost: f64::INFINITY,
            hop: u32::MAX,
            parent: None,
            infinity_cost: f64::INFINITY,
            max_hops: u32::MAX,
            has_downstream_member: false,
            neighbors: HashMap::new(),
            seen_data: HashSet::new(),
            parent_changes: 0,
            beacons_sent: 0,
        }
    }

    /// The metric this agent stabilizes.
    pub fn kind(&self) -> MetricKind {
        self.config.kind
    }

    /// Current parent (None while disconnected or at the source).
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// Current accumulated cost `l_v`.
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// Current hop count `h_v`.
    pub fn hop(&self) -> u32 {
        self.hop
    }

    /// Number of times this node switched parents (tree churn indicator).
    pub fn parent_changes(&self) -> u64 {
        self.parent_changes
    }

    /// Number of beacons transmitted.
    pub fn beacons_sent(&self) -> u64 {
        self.beacons_sent
    }

    /// True if this node currently believes its subtree contains a group member.
    pub fn has_downstream_member(&self) -> bool {
        self.has_downstream_member
    }

    /// Ids of the neighbours currently claiming this node as their parent.
    pub fn children(&self, me: NodeId) -> Vec<NodeId> {
        let _ = me;
        let mut v: Vec<NodeId> =
            self.neighbors.iter().filter(|(_, e)| e.parent_is_me).map(|(id, _)| *id).collect();
        v.sort();
        v
    }

    fn neighbor_timeout(&self) -> SimDuration {
        self.config.beacon_interval.mul_f64(self.config.neighbor_timeout_intervals)
    }

    fn expire_neighbors(&mut self, now: SimTime) {
        let timeout = self.neighbor_timeout();
        self.neighbors.retain(|_, e| now.saturating_since(e.last_heard) <= timeout);
    }

    /// The `E_init` / hop bound used by the guarded commands, derived from network size
    /// and radio limits the first time the agent runs.
    fn initialise_bounds(&mut self, ctx: &NodeCtx<'_, SsSpstPayload>) {
        let n = ctx.n_nodes.max(1) as f64;
        self.max_hops = ctx.n_nodes.max(1) as u32;
        self.infinity_cost = match self.config.kind {
            MetricKind::Hop => n * n + 1.0,
            _ => {
                let worst = self.config.params.tx(ctx.radio.max_range_m);
                n * (worst + n * self.config.params.rx()) + 1.0
            }
        };
        if self.cost.is_infinite() {
            self.cost = self.infinity_cost;
            self.hop = self.max_hops;
        }
    }

    /// Build the [`ParentView`] of neighbour `u` as seen from this node.
    fn view_of(&self, u: NodeId, entry: &NeighborEntry) -> ParentView {
        let _ = u;
        ParentView {
            cost: entry.cost,
            hop: entry.hop,
            child_distances: entry.child_distances_excluding_me.clone(),
            non_member_neighbor_distances: entry.non_member_neighbor_distances.clone(),
        }
    }

    /// Re-evaluate the guarded commands against the current neighbour table.
    fn stabilize(&mut self, ctx: &NodeCtx<'_, SsSpstPayload>) {
        if ctx.is_source() {
            self.cost = 0.0;
            self.hop = 0;
            self.parent = None;
            return;
        }
        let mut best: Option<(NodeId, f64, u32)> = None;
        let mut via_current: Option<(f64, u32)> = None;
        for (&u, entry) in &self.neighbors {
            if entry.cost >= self.infinity_cost || entry.hop.saturating_add(1) > self.max_hops {
                continue;
            }
            let view = self.view_of(u, entry);
            let c = cost_via(self.config.kind, &self.config.params, &view, entry.distance);
            let h = entry.hop + 1;
            if self.parent == Some(u) {
                via_current = Some((c, h));
            }
            match best {
                None => best = Some((u, c, h)),
                Some((bu, bc, _)) => {
                    if c < bc - 1e-12 || ((c - bc).abs() <= 1e-12 && u < bu) {
                        best = Some((u, c, h));
                    }
                }
            }
        }
        match best {
            None => {
                if self.parent.is_some() {
                    self.parent_changes += 1;
                }
                self.parent = None;
                self.cost = self.infinity_cost;
                self.hop = self.max_hops;
            }
            Some((bu, bc, bh)) => {
                if let (Some(p), Some((cc, ch))) = (self.parent, via_current) {
                    if cc <= bc * (1.0 + self.config.switch_margin) + 1e-12 {
                        self.cost = cc;
                        self.hop = ch;
                        let _ = p;
                        return;
                    }
                }
                if self.parent != Some(bu) {
                    self.parent_changes += 1;
                }
                self.parent = Some(bu);
                self.cost = bc;
                self.hop = bh;
            }
        }
    }

    /// Recompute the bottom-up pruning flag from the children's advertised flags.
    fn refresh_downstream_flag(&mut self, ctx: &NodeCtx<'_, SsSpstPayload>) {
        let from_children =
            self.neighbors.values().any(|e| e.parent_is_me && e.has_downstream_member);
        self.has_downstream_member = ctx.is_member() || from_children;
    }

    /// Children (id, distance) that lead to group members — the ones data must reach.
    fn forwarding_children(&self) -> Vec<(NodeId, f64)> {
        self.neighbors
            .iter()
            .filter(|(_, e)| e.parent_is_me && e.has_downstream_member)
            .map(|(id, e)| (*id, e.distance))
            .collect()
    }

    /// Broadcast the data identified by `tag`, if this node has anyone to forward it to.
    ///
    /// The energy-aware variants use power control (reach the farthest relevant child,
    /// plus a margin for movement since its last beacon); plain SS-SPST is not
    /// energy-aware and transmits at full power, exactly the behaviour its hop metric
    /// prices at zero.
    fn forward_data(&mut self, ctx: &mut NodeCtx<'_, SsSpstPayload>, tag: DataTag, size: u32) {
        let targets = self.forwarding_children();
        if targets.is_empty() {
            return;
        }
        let range = if self.config.kind.is_energy_based() {
            let far = targets.iter().map(|(_, d)| *d).fold(0.0, f64::max);
            (far * self.config.range_margin).min(ctx.radio.max_range_m)
        } else {
            ctx.radio.max_range_m
        };
        ctx.broadcast_data(size, range, tag, SsSpstPayload::Data);
    }

    /// Emit this node's beacon.
    fn send_beacon(&mut self, ctx: &mut NodeCtx<'_, SsSpstPayload>) {
        let children: Vec<(NodeId, f64)> = self
            .neighbors
            .iter()
            .filter(|(_, e)| e.parent_is_me)
            .map(|(id, e)| (*id, e.distance))
            .collect();
        let non_member_neighbor_distances = if self.config.kind == MetricKind::EnergyAware {
            self.neighbors
                .iter()
                .filter(|(id, e)| !e.member && !e.parent_is_me && self.parent != Some(**id))
                .map(|(_, e)| e.distance)
                .collect()
        } else {
            Vec::new()
        };
        let beacon = Beacon {
            position: ctx.position,
            cost: self.cost,
            hop: self.hop,
            parent: self.parent,
            member: ctx.is_member(),
            has_downstream_member: self.has_downstream_member,
            children,
            non_member_neighbor_distances,
        };
        let size = beacon.wire_size(self.config.kind);
        ctx.broadcast_control(size, ctx.radio.max_range_m, SsSpstPayload::Beacon(beacon));
        self.beacons_sent += 1;
    }

    fn schedule_next_beacon(&self, ctx: &mut NodeCtx<'_, SsSpstPayload>) {
        // Desynchronise beacons slightly so they do not all collide every interval.
        let jitter = ctx.jitter(self.config.beacon_interval.mul_f64(0.1));
        let delay = self.config.beacon_interval.mul_f64(0.95) + jitter;
        ctx.set_timer(delay, TIMER_BEACON, 0);
    }
}

impl NeighborEntry {
    fn from_beacon(me: NodeId, my_pos: Vec2, b: &Beacon, now: SimTime) -> Self {
        let distance = my_pos.distance(&b.position);
        NeighborEntry {
            distance,
            cost: b.cost,
            hop: b.hop,
            member: b.member,
            has_downstream_member: b.has_downstream_member,
            parent_is_me: b.parent == Some(me),
            child_distances_excluding_me: b
                .children
                .iter()
                .filter(|(c, _)| *c != me)
                .map(|(_, d)| *d)
                .collect(),
            non_member_neighbor_distances: b.non_member_neighbor_distances.clone(),
            last_heard: now,
        }
    }
}

impl ProtocolAgent for SsSpstAgent {
    type Payload = SsSpstPayload;

    fn start(&mut self, ctx: &mut NodeCtx<'_, SsSpstPayload>) {
        self.initialise_bounds(ctx);
        if ctx.is_source() {
            self.cost = 0.0;
            self.hop = 0;
        }
        self.has_downstream_member = ctx.is_member();
        // First beacon goes out after a random fraction of the interval so the network does
        // not fire in lockstep at t = 0.
        let delay = ctx.jitter(self.config.beacon_interval);
        ctx.set_timer(delay, TIMER_BEACON, 0);
    }

    fn on_packet(
        &mut self,
        ctx: &mut NodeCtx<'_, SsSpstPayload>,
        packet: &Packet<SsSpstPayload>,
    ) -> Disposition {
        match &packet.payload {
            SsSpstPayload::Beacon(beacon) => {
                let entry = NeighborEntry::from_beacon(ctx.id, ctx.position, beacon, ctx.now);
                self.neighbors.insert(packet.sender, entry);
                Disposition::Consumed
            }
            SsSpstPayload::Data => {
                let Some(tag) = packet.data else { return Disposition::Discarded };
                // Tree semantics: only data arriving from the current parent is mine to
                // consume; everything else is overhearing.
                if Some(packet.sender) != self.parent {
                    return Disposition::Discarded;
                }
                if !self.seen_data.insert(tag.seq) {
                    return Disposition::Discarded;
                }
                if ctx.is_member() && !ctx.is_source() {
                    ctx.deliver_data(tag);
                }
                self.forward_data(ctx, tag, packet.size_bytes);
                Disposition::Consumed
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_, SsSpstPayload>, kind: u64, _key: u64) {
        if kind != TIMER_BEACON {
            return;
        }
        self.initialise_bounds(ctx);
        self.expire_neighbors(ctx.now);
        self.stabilize(ctx);
        self.refresh_downstream_flag(ctx);
        self.send_beacon(ctx);
        self.schedule_next_beacon(ctx);
    }

    fn on_app_data(&mut self, ctx: &mut NodeCtx<'_, SsSpstPayload>, tag: DataTag, size: u32) {
        self.seen_data.insert(tag.seq);
        self.forward_data(ctx, tag, size);
    }

    fn label(&self) -> &'static str {
        self.config.kind.protocol_name()
    }

    fn tree_parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// Scramble every stabilization variable with the node's seeded RNG: cost, hop,
    /// parent pointer, pruning flag, and the cached neighbour views the guarded
    /// commands read. Self-stabilization means the protocol must converge back to a
    /// legitimate tree from *any* of these states.
    fn corrupt_state(&mut self, rng: &mut rand::rngs::StdRng) {
        use rand::Rng;
        let bound = if self.infinity_cost.is_finite() { self.infinity_cost * 2.0 } else { 1.0e6 };
        self.cost = rng.gen::<f64>() * bound;
        self.hop = rng.gen::<u32>();
        self.parent = ssmcast_manet::scrambled_parent(rng);
        self.has_downstream_member = rng.gen::<bool>();
        // Deterministic corruption: HashMap iteration order varies between runs, so
        // walk the neighbour table in id order to keep RNG draws reproducible.
        let mut ids: Vec<NodeId> = self.neighbors.keys().copied().collect();
        ids.sort();
        for id in ids {
            let entry = self.neighbors.get_mut(&id).expect("id collected above");
            entry.cost = rng.gen::<f64>() * bound;
            entry.hop = rng.gen::<u32>();
            entry.parent_is_me = rng.gen::<bool>();
            entry.has_downstream_member = rng.gen::<bool>();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ssmcast_manet::{Action, GroupRole, PacketClass, RadioConfig};

    struct Harness {
        radio: RadioConfig,
        rng: StdRng,
        actions: Vec<Action<SsSpstPayload>>,
    }

    impl Harness {
        fn new() -> Self {
            Harness {
                radio: RadioConfig::default(),
                rng: StdRng::seed_from_u64(5),
                actions: Vec::new(),
            }
        }

        fn ctx<'a>(
            &'a mut self,
            now: SimTime,
            id: NodeId,
            pos: Vec2,
            role: GroupRole,
        ) -> NodeCtx<'a, SsSpstPayload> {
            self.actions.clear();
            NodeCtx::new(now, id, pos, role, 10, &self.radio, &mut self.rng, &mut self.actions)
        }
    }

    fn beacon_from(cost: f64, hop: u32, pos: Vec2, member: bool, downstream: bool) -> Beacon {
        Beacon {
            position: pos,
            cost,
            hop,
            parent: None,
            member,
            has_downstream_member: downstream,
            children: vec![],
            non_member_neighbor_distances: vec![],
        }
    }

    #[test]
    fn start_schedules_a_beacon_timer_and_sets_source_state() {
        let mut h = Harness::new();
        let mut agent = SsSpstAgent::new(SsSpstConfig::paper_default(MetricKind::EnergyAware));
        {
            let mut ctx = h.ctx(SimTime::ZERO, NodeId(0), Vec2::ZERO, GroupRole::Source);
            agent.start(&mut ctx);
        }
        assert_eq!(agent.cost(), 0.0);
        assert_eq!(agent.hop(), 0);
        assert!(agent.has_downstream_member());
        assert!(matches!(h.actions[0], Action::SetTimer { kind: TIMER_BEACON, .. }));
    }

    #[test]
    fn beacon_reception_populates_neighbor_table_and_stabilization_picks_a_parent() {
        let mut h = Harness::new();
        let mut agent = SsSpstAgent::new(SsSpstConfig::paper_default(MetricKind::EnergyAware));
        let me = NodeId(2);
        let my_pos = Vec2::new(100.0, 0.0);
        {
            let mut ctx = h.ctx(SimTime::ZERO, me, my_pos, GroupRole::Member);
            agent.start(&mut ctx);
        }
        // Hear the source's beacon from 100 m away.
        let pkt = Packet::control(
            NodeId(0),
            32,
            SsSpstPayload::Beacon(beacon_from(0.0, 0, Vec2::ZERO, true, true)),
        );
        {
            let mut ctx = h.ctx(SimTime::from_secs(1), me, my_pos, GroupRole::Member);
            assert_eq!(agent.on_packet(&mut ctx, &pkt), Disposition::Consumed);
        }
        // Beacon timer fires: the agent stabilizes onto the source and emits its own beacon.
        {
            let mut ctx = h.ctx(SimTime::from_secs(2), me, my_pos, GroupRole::Member);
            agent.on_timer(&mut ctx, TIMER_BEACON, 0);
        }
        assert_eq!(agent.parent(), Some(NodeId(0)));
        assert!(agent.cost() < agent.infinity_cost);
        assert_eq!(agent.hop(), 1);
        assert!(agent.has_downstream_member(), "members always set the pruning flag");
        let broadcast = h.actions.iter().find(|a| matches!(a, Action::Broadcast { .. }));
        assert!(broadcast.is_some(), "a beacon must be emitted every interval");
        if let Some(Action::Broadcast { class, payload, .. }) = broadcast {
            assert_eq!(*class, PacketClass::Control);
            assert!(matches!(payload, SsSpstPayload::Beacon(_)));
        }
    }

    #[test]
    fn stale_neighbors_are_expired_and_the_node_detaches() {
        let mut h = Harness::new();
        let mut agent = SsSpstAgent::new(SsSpstConfig::paper_default(MetricKind::Hop));
        let me = NodeId(2);
        let my_pos = Vec2::new(100.0, 0.0);
        {
            let mut ctx = h.ctx(SimTime::ZERO, me, my_pos, GroupRole::Member);
            agent.start(&mut ctx);
        }
        let pkt = Packet::control(
            NodeId(0),
            32,
            SsSpstPayload::Beacon(beacon_from(0.0, 0, Vec2::ZERO, true, true)),
        );
        {
            let mut ctx = h.ctx(SimTime::from_secs(1), me, my_pos, GroupRole::Member);
            agent.on_packet(&mut ctx, &pkt);
        }
        {
            let mut ctx = h.ctx(SimTime::from_secs(2), me, my_pos, GroupRole::Member);
            agent.on_timer(&mut ctx, TIMER_BEACON, 0);
        }
        assert_eq!(agent.parent(), Some(NodeId(0)));
        // No further beacons: after the timeout (2.5 × 2 s) the neighbour is dropped and the
        // node falls back to the disconnected state.
        {
            let mut ctx = h.ctx(SimTime::from_secs(10), me, my_pos, GroupRole::Member);
            agent.on_timer(&mut ctx, TIMER_BEACON, 0);
        }
        assert_eq!(agent.parent(), None, "losing all beacons is a fault; the node detaches");
        assert!(agent.cost() >= agent.infinity_cost);
    }

    #[test]
    fn data_from_parent_is_delivered_and_forwarded_data_from_others_is_overheard() {
        let mut h = Harness::new();
        let mut agent = SsSpstAgent::new(SsSpstConfig::paper_default(MetricKind::EnergyAware));
        let me = NodeId(2);
        let my_pos = Vec2::new(100.0, 0.0);
        {
            let mut ctx = h.ctx(SimTime::ZERO, me, my_pos, GroupRole::Member);
            agent.start(&mut ctx);
        }
        // Learn about the source and a downstream child (node 5) that claims us as parent.
        let src_beacon = Packet::control(
            NodeId(0),
            32,
            SsSpstPayload::Beacon(beacon_from(0.0, 0, Vec2::ZERO, true, true)),
        );
        let mut child_beacon_inner = beacon_from(10.0, 2, Vec2::new(180.0, 0.0), true, true);
        child_beacon_inner.parent = Some(me);
        let child_beacon =
            Packet::control(NodeId(5), 32, SsSpstPayload::Beacon(child_beacon_inner));
        {
            let mut ctx = h.ctx(SimTime::from_secs(1), me, my_pos, GroupRole::Member);
            agent.on_packet(&mut ctx, &src_beacon);
            agent.on_packet(&mut ctx, &child_beacon);
        }
        {
            let mut ctx = h.ctx(SimTime::from_secs(2), me, my_pos, GroupRole::Member);
            agent.on_timer(&mut ctx, TIMER_BEACON, 0);
        }
        assert_eq!(agent.parent(), Some(NodeId(0)));

        let tag = DataTag {
            group: Default::default(),
            origin: NodeId(0),
            seq: 1,
            created_at: SimTime::from_secs(3),
        };
        let data_from_parent = Packet::data(NodeId(0), 512, tag, SsSpstPayload::Data);
        let disposition;
        let actions_snapshot;
        {
            let mut ctx = h.ctx(SimTime::from_secs(3), me, my_pos, GroupRole::Member);
            disposition = agent.on_packet(&mut ctx, &data_from_parent);
            actions_snapshot = h.actions.clone();
        }
        assert_eq!(disposition, Disposition::Consumed);
        assert!(
            actions_snapshot.iter().any(|a| matches!(a, Action::DeliverData { .. })),
            "member delivers data locally"
        );
        assert!(
            actions_snapshot
                .iter()
                .any(|a| matches!(a, Action::Broadcast { class: PacketClass::Data, .. })),
            "node forwards to its downstream child"
        );

        // A duplicate, or data from a non-parent, is pure overhearing.
        {
            let mut ctx = h.ctx(SimTime::from_secs(3), me, my_pos, GroupRole::Member);
            assert_eq!(agent.on_packet(&mut ctx, &data_from_parent), Disposition::Discarded);
        }
        let tag2 = DataTag { seq: 2, ..tag };
        let stranger = Packet::data(NodeId(9), 512, tag2, SsSpstPayload::Data);
        {
            let mut ctx = h.ctx(SimTime::from_secs(4), me, my_pos, GroupRole::Member);
            assert_eq!(agent.on_packet(&mut ctx, &stranger), Disposition::Discarded);
        }
    }

    #[test]
    fn leaf_without_downstream_members_does_not_forward() {
        let mut h = Harness::new();
        let mut agent = SsSpstAgent::new(SsSpstConfig::paper_default(MetricKind::EnergyAware));
        let me = NodeId(3);
        {
            let mut ctx = h.ctx(SimTime::ZERO, me, Vec2::ZERO, GroupRole::NonMember);
            agent.start(&mut ctx);
        }
        let tag = DataTag {
            group: Default::default(),
            origin: NodeId(0),
            seq: 1,
            created_at: SimTime::ZERO,
        };
        {
            let mut ctx = h.ctx(SimTime::from_secs(1), me, Vec2::ZERO, GroupRole::NonMember);
            agent.on_app_data(&mut ctx, tag, 512);
        }
        assert!(
            !h.actions.iter().any(|a| matches!(a, Action::Broadcast { .. })),
            "nothing to forward to: the pruned branch stays silent"
        );
    }

    #[test]
    fn energy_aware_beacons_are_larger_than_plain_ones() {
        // Drive two agents through the same neighbourhood and compare emitted beacon sizes.
        let run = |kind: MetricKind| -> u32 {
            let mut h = Harness::new();
            let mut agent = SsSpstAgent::new(SsSpstConfig::paper_default(kind));
            let me = NodeId(1);
            let my_pos = Vec2::new(50.0, 0.0);
            {
                let mut ctx = h.ctx(SimTime::ZERO, me, my_pos, GroupRole::Member);
                agent.start(&mut ctx);
            }
            // A non-member neighbour that is not a tree neighbour: SS-SPST-E advertises it.
            let nb = Packet::control(
                NodeId(7),
                32,
                SsSpstPayload::Beacon(beacon_from(5.0, 1, Vec2::new(120.0, 0.0), false, false)),
            );
            {
                let mut ctx = h.ctx(SimTime::from_secs(1), me, my_pos, GroupRole::Member);
                agent.on_packet(&mut ctx, &nb);
            }
            {
                let mut ctx = h.ctx(SimTime::from_secs(2), me, my_pos, GroupRole::Member);
                agent.on_timer(&mut ctx, TIMER_BEACON, 0);
            }
            h.actions
                .iter()
                .find_map(|a| match a {
                    Action::Broadcast { class: PacketClass::Control, size_bytes, .. } => {
                        Some(*size_bytes)
                    }
                    _ => None,
                })
                .expect("beacon emitted")
        };
        assert!(run(MetricKind::EnergyAware) > run(MetricKind::Hop));
    }
}
