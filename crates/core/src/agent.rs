//! Event-driven SS-SPST agent for the MANET simulator.
//!
//! One [`SsSpstAgent`] runs on every node. Each beacon interval the agent
//!
//! 1. expires neighbours it has not heard from,
//! 2. re-evaluates the guarded commands (same rules as [`crate::sync_model`], but over the
//!    beacon-built neighbour table instead of global knowledge),
//! 3. recomputes its bottom-up pruning flag, and
//! 4. broadcasts its own beacon at maximum range.
//!
//! Data packets flow down the tree: a node accepts data only from its current parent,
//! delivers it locally if it is a member, and re-broadcasts it with just enough power to
//! reach its farthest child that still leads to members. Data heard from any other node is
//! overhearing and is discarded — exactly the energy the SS-SPST-E metric tries to avoid.

use crate::beacon::Beacon;
use crate::metric::{cost_via, MetricKind, MetricParams, ParentView};
use ssmcast_dessim::{SimDuration, SimTime};
use ssmcast_manet::{
    DataTag, Disposition, NodeCtx, NodeId, Packet, ProtocolAgent, SilenceConfig, Vec2,
};
use std::collections::{HashMap, HashSet};

/// Timer class used for the periodic beacon.
const TIMER_BEACON: u64 = 1;

/// Per-node bookkeeping for adaptive beacon suppression ("silent stabilization").
///
/// A node that has observed `quiet_rounds` consecutive beacon rounds with its local
/// legitimacy predicate holding backs its beacon cadence off exponentially, up to the
/// configured cap. Any evidence of illegitimacy — a neighbour appearing or expiring, a
/// parent change, state corruption, or an overheard beacon inconsistent with the cached
/// neighbour view — resets the state and snaps the cadence back to the base interval.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct SilenceState {
    /// Consecutive quiet rounds observed since the last evidence.
    quiet_rounds: u32,
    /// Current backoff level; the beacon interval is `base * factor^level` (capped).
    level: u32,
    /// Evidence of illegitimacy seen since the last round closed.
    evidence: bool,
}

impl SilenceState {
    /// The beacon interval at the current backoff level.
    pub(crate) fn interval(&self, cfg: &SilenceConfig, base: SimDuration) -> SimDuration {
        cfg.interval_at(base, self.level)
    }

    /// Record evidence of illegitimacy. Returns true when the beacon timer was backed
    /// off, i.e. the caller must cancel it and reschedule at the base cadence.
    pub(crate) fn note_evidence(&mut self) -> bool {
        let was_suppressed = self.level > 0;
        self.evidence = true;
        self.quiet_rounds = 0;
        self.level = 0;
        was_suppressed
    }

    /// Close one beacon round: a round is quiet when the local legitimacy predicate
    /// held and no evidence arrived since the previous round.
    pub(crate) fn close_round(&mut self, cfg: &SilenceConfig, locally_legitimate: bool) {
        if !cfg.enabled {
            return;
        }
        let quiet = locally_legitimate && !self.evidence;
        self.evidence = false;
        if quiet {
            self.quiet_rounds = self.quiet_rounds.saturating_add(1);
            if self.quiet_rounds >= cfg.quiet_rounds {
                self.level = (self.level + 1).min(64);
            }
        } else {
            self.quiet_rounds = 0;
            self.level = 0;
        }
    }
}

/// Wire payload of the SS-SPST family: either a beacon or a data frame (whose application
/// identity travels in [`ssmcast_manet::Packet::data`]).
#[derive(Clone, Debug, PartialEq)]
pub enum SsSpstPayload {
    /// Periodic control beacon.
    Beacon(Beacon),
    /// Multicast data being forwarded down the tree.
    Data,
}

/// Configuration of an [`SsSpstAgent`].
#[derive(Clone, Copy, Debug)]
pub struct SsSpstConfig {
    /// Which cost metric to stabilize (selects SS-SPST, -T, -F or -E).
    pub kind: MetricKind,
    /// Energy-pricing parameters.
    pub params: MetricParams,
    /// Beacon interval (the paper uses 2 s unless it is the swept parameter).
    pub beacon_interval: SimDuration,
    /// A neighbour is dropped after this many beacon intervals of silence.
    pub neighbor_timeout_intervals: f64,
    /// Data transmissions reach the farthest relevant child scaled by this margin, to
    /// absorb movement since the child's last beacon.
    pub range_margin: f64,
    /// A node abandons a still-valid parent only for a relative improvement larger than
    /// this (hysteresis against tree flapping).
    pub switch_margin: f64,
    /// Adaptive beacon suppression. Off by default, which keeps the classic wire
    /// format and cadence byte for byte.
    pub silence: SilenceConfig,
}

impl SsSpstConfig {
    /// The paper's defaults for a given metric: 2 s beacons, 2.5-interval neighbour
    /// timeout, 10 % range margin, 5 % switch hysteresis.
    pub fn paper_default(kind: MetricKind) -> Self {
        SsSpstConfig {
            kind,
            params: MetricParams::default(),
            beacon_interval: SimDuration::from_secs(2),
            neighbor_timeout_intervals: 2.5,
            range_margin: 1.10,
            switch_margin: 0.05,
            silence: SilenceConfig::off(),
        }
    }

    /// Same defaults but with a custom beacon interval (Figures 10 and 11).
    pub fn with_beacon_interval(kind: MetricKind, interval: SimDuration) -> Self {
        SsSpstConfig { beacon_interval: interval, ..Self::paper_default(kind) }
    }
}

/// What this node last heard from one neighbour.
#[derive(Clone, Debug)]
struct NeighborEntry {
    /// Distance to the neighbour, derived from the position it advertised.
    distance: f64,
    cost: f64,
    hop: u32,
    member: bool,
    has_downstream_member: bool,
    /// True if the neighbour's advertised parent is this node (i.e. it is our child).
    parent_is_me: bool,
    /// Distances to the neighbour's children other than this node.
    child_distances_excluding_me: Vec<f64>,
    /// Distances to the neighbour's potential overhearers (SS-SPST-E beacons only).
    non_member_neighbor_distances: Vec<f64>,
    last_heard: SimTime,
    /// Staleness bound for this entry. Scales with the neighbour's advertised
    /// next-beacon bound under suppression, so a correctly silent neighbour is not
    /// falsely expired.
    timeout: SimDuration,
}

/// The per-node SS-SPST protocol state machine.
#[derive(Debug)]
pub struct SsSpstAgent {
    config: SsSpstConfig,
    cost: f64,
    hop: u32,
    parent: Option<NodeId>,
    infinity_cost: f64,
    max_hops: u32,
    has_downstream_member: bool,
    neighbors: HashMap<NodeId, NeighborEntry>,
    seen_data: HashSet<u64>,
    parent_changes: u64,
    beacons_sent: u64,
    silence: SilenceState,
}

impl SsSpstAgent {
    /// Create an agent with the given configuration.
    pub fn new(config: SsSpstConfig) -> Self {
        SsSpstAgent {
            config,
            cost: f64::INFINITY,
            hop: u32::MAX,
            parent: None,
            infinity_cost: f64::INFINITY,
            max_hops: u32::MAX,
            has_downstream_member: false,
            neighbors: HashMap::new(),
            seen_data: HashSet::new(),
            parent_changes: 0,
            beacons_sent: 0,
            silence: SilenceState::default(),
        }
    }

    /// The metric this agent stabilizes.
    pub fn kind(&self) -> MetricKind {
        self.config.kind
    }

    /// Current parent (None while disconnected or at the source).
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// Current accumulated cost `l_v`.
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// Current hop count `h_v`.
    pub fn hop(&self) -> u32 {
        self.hop
    }

    /// Number of times this node switched parents (tree churn indicator).
    pub fn parent_changes(&self) -> u64 {
        self.parent_changes
    }

    /// Number of beacons transmitted.
    pub fn beacons_sent(&self) -> u64 {
        self.beacons_sent
    }

    /// True if this node currently believes its subtree contains a group member.
    pub fn has_downstream_member(&self) -> bool {
        self.has_downstream_member
    }

    /// Ids of the neighbours currently claiming this node as their parent.
    pub fn children(&self, me: NodeId) -> Vec<NodeId> {
        let _ = me;
        let mut v: Vec<NodeId> =
            self.neighbors.iter().filter(|(_, e)| e.parent_is_me).map(|(id, _)| *id).collect();
        v.sort();
        v
    }

    /// Staleness bound for a neighbour that just sent `b`. With suppression enabled
    /// the bound tracks the beacon's advertised next-beacon time, never less than the
    /// configured interval; with suppression off it is the classic fixed timeout.
    fn timeout_for(&self, b: &Beacon) -> SimDuration {
        let base = if self.config.silence.enabled {
            let interval_s = self.config.beacon_interval.as_secs_f64();
            SimDuration::from_secs_f64(b.next_beacon_s.max(interval_s))
        } else {
            self.config.beacon_interval
        };
        base.mul_f64(self.config.neighbor_timeout_intervals)
    }

    /// Drop stale neighbours; returns true when any entry expired (evidence of a
    /// topology change under suppression).
    fn expire_neighbors(&mut self, now: SimTime) -> bool {
        let before = self.neighbors.len();
        self.neighbors.retain(|_, e| now.saturating_since(e.last_heard) <= e.timeout);
        self.neighbors.len() != before
    }

    /// The local legitimacy predicate of the silence detector: the source is always
    /// legitimate; any other node is legitimate when it has a live parent and a
    /// finite cost. Quiet rounds are rounds in which this predicate held and no
    /// evidence (expiry, parent change, inconsistent beacon, corruption) arrived.
    fn locally_legitimate(&self, ctx: &NodeCtx<'_, SsSpstPayload>) -> bool {
        if ctx.is_source() {
            return true;
        }
        match self.parent {
            Some(p) => self.neighbors.contains_key(&p) && self.cost < self.infinity_cost,
            None => false,
        }
    }

    /// The `E_init` / hop bound used by the guarded commands, derived from network size
    /// and radio limits the first time the agent runs.
    fn initialise_bounds(&mut self, ctx: &NodeCtx<'_, SsSpstPayload>) {
        let n = ctx.n_nodes.max(1) as f64;
        self.max_hops = ctx.n_nodes.max(1) as u32;
        self.infinity_cost = match self.config.kind {
            MetricKind::Hop => n * n + 1.0,
            _ => {
                let worst = self.config.params.tx(ctx.radio.max_range_m);
                n * (worst + n * self.config.params.rx()) + 1.0
            }
        };
        if self.cost.is_infinite() {
            self.cost = self.infinity_cost;
            self.hop = self.max_hops;
        }
    }

    /// Build the [`ParentView`] of neighbour `u` as seen from this node.
    fn view_of(&self, u: NodeId, entry: &NeighborEntry) -> ParentView {
        let _ = u;
        ParentView {
            cost: entry.cost,
            hop: entry.hop,
            child_distances: entry.child_distances_excluding_me.clone(),
            non_member_neighbor_distances: entry.non_member_neighbor_distances.clone(),
        }
    }

    /// Re-evaluate the guarded commands against the current neighbour table.
    fn stabilize(&mut self, ctx: &NodeCtx<'_, SsSpstPayload>) {
        if ctx.is_source() {
            self.cost = 0.0;
            self.hop = 0;
            self.parent = None;
            return;
        }
        let mut best: Option<(NodeId, f64, u32)> = None;
        let mut via_current: Option<(f64, u32)> = None;
        for (&u, entry) in &self.neighbors {
            if entry.cost >= self.infinity_cost || entry.hop.saturating_add(1) > self.max_hops {
                continue;
            }
            let view = self.view_of(u, entry);
            let c = cost_via(self.config.kind, &self.config.params, &view, entry.distance);
            let h = entry.hop + 1;
            if self.parent == Some(u) {
                via_current = Some((c, h));
            }
            match best {
                None => best = Some((u, c, h)),
                Some((bu, bc, _)) => {
                    if c < bc - 1e-12 || ((c - bc).abs() <= 1e-12 && u < bu) {
                        best = Some((u, c, h));
                    }
                }
            }
        }
        match best {
            None => {
                if self.parent.is_some() {
                    self.parent_changes += 1;
                }
                self.parent = None;
                self.cost = self.infinity_cost;
                self.hop = self.max_hops;
            }
            Some((bu, bc, bh)) => {
                if let (Some(p), Some((cc, ch))) = (self.parent, via_current) {
                    if cc <= bc * (1.0 + self.config.switch_margin) + 1e-12 {
                        self.cost = cc;
                        self.hop = ch;
                        let _ = p;
                        return;
                    }
                }
                if self.parent != Some(bu) {
                    self.parent_changes += 1;
                }
                self.parent = Some(bu);
                self.cost = bc;
                self.hop = bh;
            }
        }
    }

    /// Recompute the bottom-up pruning flag from the children's advertised flags.
    fn refresh_downstream_flag(&mut self, ctx: &NodeCtx<'_, SsSpstPayload>) {
        let from_children =
            self.neighbors.values().any(|e| e.parent_is_me && e.has_downstream_member);
        self.has_downstream_member = ctx.is_member() || from_children;
    }

    /// Children (id, distance) that lead to group members — the ones data must reach.
    fn forwarding_children(&self) -> Vec<(NodeId, f64)> {
        self.neighbors
            .iter()
            .filter(|(_, e)| e.parent_is_me && e.has_downstream_member)
            .map(|(id, e)| (*id, e.distance))
            .collect()
    }

    /// Broadcast the data identified by `tag`, if this node has anyone to forward it to.
    ///
    /// The energy-aware variants use power control (reach the farthest relevant child,
    /// plus a margin for movement since its last beacon); plain SS-SPST is not
    /// energy-aware and transmits at full power, exactly the behaviour its hop metric
    /// prices at zero.
    fn forward_data(&mut self, ctx: &mut NodeCtx<'_, SsSpstPayload>, tag: DataTag, size: u32) {
        let targets = self.forwarding_children();
        if targets.is_empty() {
            return;
        }
        let range = if self.config.kind.is_energy_based() {
            let far = targets.iter().map(|(_, d)| *d).fold(0.0, f64::max);
            (far * self.config.range_margin).min(ctx.radio.max_range_m)
        } else {
            ctx.radio.max_range_m
        };
        ctx.broadcast_data(size, range, tag, SsSpstPayload::Data);
    }

    /// Emit this node's beacon.
    fn send_beacon(&mut self, ctx: &mut NodeCtx<'_, SsSpstPayload>) {
        let children: Vec<(NodeId, f64)> = self
            .neighbors
            .iter()
            .filter(|(_, e)| e.parent_is_me)
            .map(|(id, e)| (*id, e.distance))
            .collect();
        let non_member_neighbor_distances = if self.config.kind == MetricKind::EnergyAware {
            self.neighbors
                .iter()
                .filter(|(id, e)| !e.member && !e.parent_is_me && self.parent != Some(**id))
                .map(|(_, e)| e.distance)
                .collect()
        } else {
            Vec::new()
        };
        let interval = self.silence.interval(&self.config.silence, self.config.beacon_interval);
        let beacon = Beacon {
            position: ctx.position,
            cost: self.cost,
            hop: self.hop,
            parent: self.parent,
            member: ctx.is_member(),
            has_downstream_member: self.has_downstream_member,
            children,
            non_member_neighbor_distances,
            // The next beacon leaves at most 0.95·interval + 0.1·interval from now.
            next_beacon_s: interval.mul_f64(1.05).as_secs_f64(),
        };
        let size = beacon.advertised_wire_size(self.config.kind, self.config.silence.enabled);
        ctx.broadcast_control(size, ctx.radio.max_range_m, SsSpstPayload::Beacon(beacon));
        self.beacons_sent += 1;
    }

    fn schedule_next_beacon(&self, ctx: &mut NodeCtx<'_, SsSpstPayload>) {
        // Desynchronise beacons slightly so they do not all collide every interval.
        let interval = self.silence.interval(&self.config.silence, self.config.beacon_interval);
        let jitter = ctx.jitter(interval.mul_f64(0.1));
        let delay = interval.mul_f64(0.95) + jitter;
        ctx.set_timer(delay, TIMER_BEACON, 0);
    }
}

impl NeighborEntry {
    fn from_beacon(
        me: NodeId,
        my_pos: Vec2,
        b: &Beacon,
        now: SimTime,
        timeout: SimDuration,
    ) -> Self {
        let distance = my_pos.distance(&b.position);
        NeighborEntry {
            distance,
            cost: b.cost,
            hop: b.hop,
            member: b.member,
            has_downstream_member: b.has_downstream_member,
            parent_is_me: b.parent == Some(me),
            child_distances_excluding_me: b
                .children
                .iter()
                .filter(|(c, _)| *c != me)
                .map(|(_, d)| *d)
                .collect(),
            non_member_neighbor_distances: b.non_member_neighbor_distances.clone(),
            last_heard: now,
            timeout,
        }
    }
}

impl ProtocolAgent for SsSpstAgent {
    type Payload = SsSpstPayload;

    fn start(&mut self, ctx: &mut NodeCtx<'_, SsSpstPayload>) {
        self.initialise_bounds(ctx);
        if ctx.is_source() {
            self.cost = 0.0;
            self.hop = 0;
        }
        self.has_downstream_member = ctx.is_member();
        // The first beacon uses the same 0.95·I + U(0, 0.1·I) draw as every later
        // round, so the mean beacon period is exactly the configured interval from
        // round one; the per-node jitter still desynchronises the network so beacons
        // do not all fire in lockstep.
        self.schedule_next_beacon(ctx);
    }

    fn on_packet(
        &mut self,
        ctx: &mut NodeCtx<'_, SsSpstPayload>,
        packet: &Packet<SsSpstPayload>,
    ) -> Disposition {
        match &packet.payload {
            SsSpstPayload::Beacon(beacon) => {
                let timeout = self.timeout_for(beacon);
                let entry =
                    NeighborEntry::from_beacon(ctx.id, ctx.position, beacon, ctx.now, timeout);
                if self.config.silence.enabled {
                    // A brand-new neighbour, or a beacon disagreeing with the cached
                    // view of the sender, is evidence the tree may be reshaping.
                    let inconsistent = match self.neighbors.get(&packet.sender) {
                        None => true,
                        Some(prev) => {
                            prev.parent_is_me != entry.parent_is_me
                                || prev.hop != entry.hop
                                || prev.member != entry.member
                                || prev.has_downstream_member != entry.has_downstream_member
                        }
                    };
                    if inconsistent && self.silence.note_evidence() {
                        // Snap a backed-off beacon timer back to the base cadence.
                        ctx.cancel_timer(TIMER_BEACON, 0);
                        self.schedule_next_beacon(ctx);
                    }
                }
                self.neighbors.insert(packet.sender, entry);
                Disposition::Consumed
            }
            SsSpstPayload::Data => {
                let Some(tag) = packet.data else { return Disposition::Discarded };
                // Tree semantics: only data arriving from the current parent is mine to
                // consume; everything else is overhearing.
                if Some(packet.sender) != self.parent {
                    return Disposition::Discarded;
                }
                if !self.seen_data.insert(tag.seq) {
                    return Disposition::Discarded;
                }
                if ctx.is_member() && !ctx.is_source() {
                    ctx.deliver_data(tag);
                }
                self.forward_data(ctx, tag, packet.size_bytes);
                Disposition::Consumed
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_, SsSpstPayload>, kind: u64, _key: u64) {
        if kind != TIMER_BEACON {
            return;
        }
        self.initialise_bounds(ctx);
        let expired = self.expire_neighbors(ctx.now);
        let parent_before = self.parent;
        self.stabilize(ctx);
        self.refresh_downstream_flag(ctx);
        if self.config.silence.enabled {
            if expired || self.parent != parent_before {
                self.silence.note_evidence();
            }
            let legitimate = self.locally_legitimate(ctx);
            self.silence.close_round(&self.config.silence, legitimate);
        }
        self.send_beacon(ctx);
        self.schedule_next_beacon(ctx);
    }

    fn on_app_data(&mut self, ctx: &mut NodeCtx<'_, SsSpstPayload>, tag: DataTag, size: u32) {
        self.seen_data.insert(tag.seq);
        self.forward_data(ctx, tag, size);
    }

    fn label(&self) -> &'static str {
        self.config.kind.protocol_name()
    }

    fn tree_parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// Scramble every stabilization variable with the node's seeded RNG: cost, hop,
    /// parent pointer, pruning flag, and the cached neighbour views the guarded
    /// commands read. Self-stabilization means the protocol must converge back to a
    /// legitimate tree from *any* of these states.
    fn corrupt_state(&mut self, rng: &mut rand::rngs::StdRng) {
        use rand::Rng;
        // Corruption is evidence of illegitimacy: a suppressed node resumes the base
        // cadence at its next beacon round instead of staying silent while broken.
        self.silence.note_evidence();
        let bound = if self.infinity_cost.is_finite() { self.infinity_cost * 2.0 } else { 1.0e6 };
        self.cost = rng.gen::<f64>() * bound;
        self.hop = rng.gen::<u32>();
        self.parent = ssmcast_manet::scrambled_parent(rng);
        self.has_downstream_member = rng.gen::<bool>();
        // Deterministic corruption: HashMap iteration order varies between runs, so
        // walk the neighbour table in id order to keep RNG draws reproducible.
        let mut ids: Vec<NodeId> = self.neighbors.keys().copied().collect();
        ids.sort();
        for id in ids {
            let entry = self.neighbors.get_mut(&id).expect("id collected above");
            entry.cost = rng.gen::<f64>() * bound;
            entry.hop = rng.gen::<u32>();
            entry.parent_is_me = rng.gen::<bool>();
            entry.has_downstream_member = rng.gen::<bool>();
        }
    }

    fn on_corrupted(&mut self, ctx: &mut NodeCtx<'_, SsSpstPayload>) {
        if !self.config.silence.enabled {
            return;
        }
        // `corrupt_state` already noted the evidence and reset the backoff level; the
        // beacon timer armed under the old suppressed cadence would still keep the
        // scrambled state invisible for up to the heartbeat floor. Re-arm it at the
        // base interval so neighbours see the corruption within one beacon round.
        ctx.cancel_timer(TIMER_BEACON, 0);
        self.schedule_next_beacon(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ssmcast_manet::{Action, GroupRole, PacketClass, RadioConfig};

    struct Harness {
        radio: RadioConfig,
        rng: StdRng,
        actions: Vec<Action<SsSpstPayload>>,
    }

    impl Harness {
        fn new() -> Self {
            Self::with_seed(5)
        }

        fn with_seed(seed: u64) -> Self {
            Harness {
                radio: RadioConfig::default(),
                rng: StdRng::seed_from_u64(seed),
                actions: Vec::new(),
            }
        }

        fn ctx<'a>(
            &'a mut self,
            now: SimTime,
            id: NodeId,
            pos: Vec2,
            role: GroupRole,
        ) -> NodeCtx<'a, SsSpstPayload> {
            self.actions.clear();
            NodeCtx::new(now, id, pos, role, 10, &self.radio, &mut self.rng, &mut self.actions)
        }
    }

    fn beacon_from(cost: f64, hop: u32, pos: Vec2, member: bool, downstream: bool) -> Beacon {
        Beacon {
            position: pos,
            cost,
            hop,
            parent: None,
            member,
            has_downstream_member: downstream,
            children: vec![],
            non_member_neighbor_distances: vec![],
            next_beacon_s: 2.0,
        }
    }

    fn timer_delay(actions: &[Action<SsSpstPayload>]) -> SimDuration {
        actions
            .iter()
            .find_map(|a| match a {
                Action::SetTimer { delay, kind: TIMER_BEACON, .. } => Some(*delay),
                _ => None,
            })
            .expect("a beacon timer must be scheduled")
    }

    #[test]
    fn start_schedules_a_beacon_timer_and_sets_source_state() {
        let mut h = Harness::new();
        let mut agent = SsSpstAgent::new(SsSpstConfig::paper_default(MetricKind::EnergyAware));
        {
            let mut ctx = h.ctx(SimTime::ZERO, NodeId(0), Vec2::ZERO, GroupRole::Source);
            agent.start(&mut ctx);
        }
        assert_eq!(agent.cost(), 0.0);
        assert_eq!(agent.hop(), 0);
        assert!(agent.has_downstream_member());
        assert!(matches!(h.actions[0], Action::SetTimer { kind: TIMER_BEACON, .. }));
    }

    #[test]
    fn beacon_reception_populates_neighbor_table_and_stabilization_picks_a_parent() {
        let mut h = Harness::new();
        let mut agent = SsSpstAgent::new(SsSpstConfig::paper_default(MetricKind::EnergyAware));
        let me = NodeId(2);
        let my_pos = Vec2::new(100.0, 0.0);
        {
            let mut ctx = h.ctx(SimTime::ZERO, me, my_pos, GroupRole::Member);
            agent.start(&mut ctx);
        }
        // Hear the source's beacon from 100 m away.
        let pkt = Packet::control(
            NodeId(0),
            32,
            SsSpstPayload::Beacon(beacon_from(0.0, 0, Vec2::ZERO, true, true)),
        );
        {
            let mut ctx = h.ctx(SimTime::from_secs(1), me, my_pos, GroupRole::Member);
            assert_eq!(agent.on_packet(&mut ctx, &pkt), Disposition::Consumed);
        }
        // Beacon timer fires: the agent stabilizes onto the source and emits its own beacon.
        {
            let mut ctx = h.ctx(SimTime::from_secs(2), me, my_pos, GroupRole::Member);
            agent.on_timer(&mut ctx, TIMER_BEACON, 0);
        }
        assert_eq!(agent.parent(), Some(NodeId(0)));
        assert!(agent.cost() < agent.infinity_cost);
        assert_eq!(agent.hop(), 1);
        assert!(agent.has_downstream_member(), "members always set the pruning flag");
        let broadcast = h.actions.iter().find(|a| matches!(a, Action::Broadcast { .. }));
        assert!(broadcast.is_some(), "a beacon must be emitted every interval");
        if let Some(Action::Broadcast { class, payload, .. }) = broadcast {
            assert_eq!(*class, PacketClass::Control);
            assert!(matches!(payload, SsSpstPayload::Beacon(_)));
        }
    }

    #[test]
    fn stale_neighbors_are_expired_and_the_node_detaches() {
        let mut h = Harness::new();
        let mut agent = SsSpstAgent::new(SsSpstConfig::paper_default(MetricKind::Hop));
        let me = NodeId(2);
        let my_pos = Vec2::new(100.0, 0.0);
        {
            let mut ctx = h.ctx(SimTime::ZERO, me, my_pos, GroupRole::Member);
            agent.start(&mut ctx);
        }
        let pkt = Packet::control(
            NodeId(0),
            32,
            SsSpstPayload::Beacon(beacon_from(0.0, 0, Vec2::ZERO, true, true)),
        );
        {
            let mut ctx = h.ctx(SimTime::from_secs(1), me, my_pos, GroupRole::Member);
            agent.on_packet(&mut ctx, &pkt);
        }
        {
            let mut ctx = h.ctx(SimTime::from_secs(2), me, my_pos, GroupRole::Member);
            agent.on_timer(&mut ctx, TIMER_BEACON, 0);
        }
        assert_eq!(agent.parent(), Some(NodeId(0)));
        // No further beacons: after the timeout (2.5 × 2 s) the neighbour is dropped and the
        // node falls back to the disconnected state.
        {
            let mut ctx = h.ctx(SimTime::from_secs(10), me, my_pos, GroupRole::Member);
            agent.on_timer(&mut ctx, TIMER_BEACON, 0);
        }
        assert_eq!(agent.parent(), None, "losing all beacons is a fault; the node detaches");
        assert!(agent.cost() >= agent.infinity_cost);
    }

    #[test]
    fn data_from_parent_is_delivered_and_forwarded_data_from_others_is_overheard() {
        let mut h = Harness::new();
        let mut agent = SsSpstAgent::new(SsSpstConfig::paper_default(MetricKind::EnergyAware));
        let me = NodeId(2);
        let my_pos = Vec2::new(100.0, 0.0);
        {
            let mut ctx = h.ctx(SimTime::ZERO, me, my_pos, GroupRole::Member);
            agent.start(&mut ctx);
        }
        // Learn about the source and a downstream child (node 5) that claims us as parent.
        let src_beacon = Packet::control(
            NodeId(0),
            32,
            SsSpstPayload::Beacon(beacon_from(0.0, 0, Vec2::ZERO, true, true)),
        );
        let mut child_beacon_inner = beacon_from(10.0, 2, Vec2::new(180.0, 0.0), true, true);
        child_beacon_inner.parent = Some(me);
        let child_beacon =
            Packet::control(NodeId(5), 32, SsSpstPayload::Beacon(child_beacon_inner));
        {
            let mut ctx = h.ctx(SimTime::from_secs(1), me, my_pos, GroupRole::Member);
            agent.on_packet(&mut ctx, &src_beacon);
            agent.on_packet(&mut ctx, &child_beacon);
        }
        {
            let mut ctx = h.ctx(SimTime::from_secs(2), me, my_pos, GroupRole::Member);
            agent.on_timer(&mut ctx, TIMER_BEACON, 0);
        }
        assert_eq!(agent.parent(), Some(NodeId(0)));

        let tag = DataTag {
            group: Default::default(),
            origin: NodeId(0),
            seq: 1,
            created_at: SimTime::from_secs(3),
        };
        let data_from_parent = Packet::data(NodeId(0), 512, tag, SsSpstPayload::Data);
        let disposition;
        let actions_snapshot;
        {
            let mut ctx = h.ctx(SimTime::from_secs(3), me, my_pos, GroupRole::Member);
            disposition = agent.on_packet(&mut ctx, &data_from_parent);
            actions_snapshot = h.actions.clone();
        }
        assert_eq!(disposition, Disposition::Consumed);
        assert!(
            actions_snapshot.iter().any(|a| matches!(a, Action::DeliverData { .. })),
            "member delivers data locally"
        );
        assert!(
            actions_snapshot
                .iter()
                .any(|a| matches!(a, Action::Broadcast { class: PacketClass::Data, .. })),
            "node forwards to its downstream child"
        );

        // A duplicate, or data from a non-parent, is pure overhearing.
        {
            let mut ctx = h.ctx(SimTime::from_secs(3), me, my_pos, GroupRole::Member);
            assert_eq!(agent.on_packet(&mut ctx, &data_from_parent), Disposition::Discarded);
        }
        let tag2 = DataTag { seq: 2, ..tag };
        let stranger = Packet::data(NodeId(9), 512, tag2, SsSpstPayload::Data);
        {
            let mut ctx = h.ctx(SimTime::from_secs(4), me, my_pos, GroupRole::Member);
            assert_eq!(agent.on_packet(&mut ctx, &stranger), Disposition::Discarded);
        }
    }

    #[test]
    fn leaf_without_downstream_members_does_not_forward() {
        let mut h = Harness::new();
        let mut agent = SsSpstAgent::new(SsSpstConfig::paper_default(MetricKind::EnergyAware));
        let me = NodeId(3);
        {
            let mut ctx = h.ctx(SimTime::ZERO, me, Vec2::ZERO, GroupRole::NonMember);
            agent.start(&mut ctx);
        }
        let tag = DataTag {
            group: Default::default(),
            origin: NodeId(0),
            seq: 1,
            created_at: SimTime::ZERO,
        };
        {
            let mut ctx = h.ctx(SimTime::from_secs(1), me, Vec2::ZERO, GroupRole::NonMember);
            agent.on_app_data(&mut ctx, tag, 512);
        }
        assert!(
            !h.actions.iter().any(|a| matches!(a, Action::Broadcast { .. })),
            "nothing to forward to: the pruned branch stays silent"
        );
    }

    #[test]
    fn energy_aware_beacons_are_larger_than_plain_ones() {
        // Drive two agents through the same neighbourhood and compare emitted beacon sizes.
        let run = |kind: MetricKind| -> u32 {
            let mut h = Harness::new();
            let mut agent = SsSpstAgent::new(SsSpstConfig::paper_default(kind));
            let me = NodeId(1);
            let my_pos = Vec2::new(50.0, 0.0);
            {
                let mut ctx = h.ctx(SimTime::ZERO, me, my_pos, GroupRole::Member);
                agent.start(&mut ctx);
            }
            // A non-member neighbour that is not a tree neighbour: SS-SPST-E advertises it.
            let nb = Packet::control(
                NodeId(7),
                32,
                SsSpstPayload::Beacon(beacon_from(5.0, 1, Vec2::new(120.0, 0.0), false, false)),
            );
            {
                let mut ctx = h.ctx(SimTime::from_secs(1), me, my_pos, GroupRole::Member);
                agent.on_packet(&mut ctx, &nb);
            }
            {
                let mut ctx = h.ctx(SimTime::from_secs(2), me, my_pos, GroupRole::Member);
                agent.on_timer(&mut ctx, TIMER_BEACON, 0);
            }
            h.actions
                .iter()
                .find_map(|a| match a {
                    Action::Broadcast { class: PacketClass::Control, size_bytes, .. } => {
                        Some(*size_bytes)
                    }
                    _ => None,
                })
                .expect("beacon emitted")
        };
        assert!(run(MetricKind::EnergyAware) > run(MetricKind::Hop));
    }

    #[test]
    fn first_beacon_uses_the_steady_state_cadence() {
        // Satellite fix: the first beacon must draw from the same 0.95·I + U(0, 0.1·I)
        // model as every later round, so the mean period is exactly the beacon
        // interval from round one (it used to be U(0, I), mean I/2).
        let interval = SimDuration::from_secs(2).as_secs_f64();
        let reps = 300u64;
        let mut sum = 0.0;
        for seed in 0..reps {
            let mut h = Harness::with_seed(seed);
            let mut agent = SsSpstAgent::new(SsSpstConfig::paper_default(MetricKind::Hop));
            {
                let mut ctx = h.ctx(SimTime::ZERO, NodeId(1), Vec2::ZERO, GroupRole::Member);
                agent.start(&mut ctx);
            }
            let first = timer_delay(&h.actions).as_secs_f64();
            assert!(
                (interval * 0.95..=interval * 1.05).contains(&first),
                "first beacon delay {first} outside the steady-state cadence band"
            );
            {
                let mut ctx =
                    h.ctx(SimTime::from_secs(2), NodeId(1), Vec2::ZERO, GroupRole::Member);
                agent.on_timer(&mut ctx, TIMER_BEACON, 0);
            }
            let steady = timer_delay(&h.actions).as_secs_f64();
            assert!(
                (interval * 0.95..=interval * 1.05).contains(&steady),
                "steady-state delay {steady} outside the cadence band"
            );
            sum += first;
        }
        let mean = sum / reps as f64;
        assert!(
            (mean - interval).abs() < 0.02,
            "mean first-beacon period {mean} should be the configured interval {interval}"
        );
    }

    #[test]
    fn quiet_rounds_back_the_beacon_cadence_off_to_the_cap() {
        let mut config = SsSpstConfig::paper_default(MetricKind::Hop);
        config.silence = SilenceConfig::on();
        let mut h = Harness::new();
        let mut agent = SsSpstAgent::new(config);
        {
            let mut ctx = h.ctx(SimTime::ZERO, NodeId(0), Vec2::ZERO, GroupRole::Source);
            agent.start(&mut ctx);
        }
        let mut delays = Vec::new();
        let mut sizes = Vec::new();
        for round in 0..8u64 {
            let mut ctx = h.ctx(
                SimTime::from_secs(2 * (round + 1)),
                NodeId(0),
                Vec2::ZERO,
                GroupRole::Source,
            );
            agent.on_timer(&mut ctx, TIMER_BEACON, 0);
            delays.push(timer_delay(&h.actions).as_secs_f64());
            sizes.push(
                h.actions
                    .iter()
                    .find_map(|a| match a {
                        Action::Broadcast { class: PacketClass::Control, size_bytes, .. } => {
                            Some(*size_bytes)
                        }
                        _ => None,
                    })
                    .expect("beacon emitted"),
            );
        }
        assert!(delays[0] <= 2.1, "round one stays at the base cadence");
        // quiet_rounds = 3, factor 2, cap 8×: levels reach 8 × 2 s = 16 s and hold.
        let last = *delays.last().unwrap();
        assert!(
            (15.2..=16.8).contains(&last),
            "suppressed cadence {last} should sit at the 8x cap"
        );
        assert!(delays.windows(2).all(|w| w[1] >= w[0] - 1.7), "cadence backs off, never snaps");
        // Suppression-enabled beacons pay for the advertised next-beacon bound.
        assert!(sizes.iter().all(|&s| s == 24 + Beacon::BOUND_FIELD_BYTES));
    }

    #[test]
    fn evidence_snaps_a_suppressed_node_back_to_base_cadence() {
        let mut config = SsSpstConfig::paper_default(MetricKind::Hop);
        config.silence = SilenceConfig::on();
        let mut h = Harness::new();
        let mut agent = SsSpstAgent::new(config);
        {
            let mut ctx = h.ctx(SimTime::ZERO, NodeId(0), Vec2::ZERO, GroupRole::Source);
            agent.start(&mut ctx);
        }
        for round in 0..6u64 {
            let mut ctx = h.ctx(
                SimTime::from_secs(2 * (round + 1)),
                NodeId(0),
                Vec2::ZERO,
                GroupRole::Source,
            );
            agent.on_timer(&mut ctx, TIMER_BEACON, 0);
        }
        assert!(timer_delay(&h.actions).as_secs_f64() > 10.0, "node is deeply suppressed");
        // An unheard-of neighbour shows up: cancel the backed-off timer and resume
        // the base cadence immediately.
        let pkt = Packet::control(
            NodeId(7),
            32,
            SsSpstPayload::Beacon(beacon_from(5.0, 1, Vec2::new(50.0, 0.0), false, false)),
        );
        {
            let mut ctx = h.ctx(SimTime::from_secs(20), NodeId(0), Vec2::ZERO, GroupRole::Source);
            agent.on_packet(&mut ctx, &pkt);
        }
        assert!(
            h.actions.iter().any(|a| matches!(a, Action::CancelTimer { kind: TIMER_BEACON, .. })),
            "the suppressed timer must be cancelled"
        );
        let delay = timer_delay(&h.actions).as_secs_f64();
        assert!(delay <= 2.1, "snap-back reschedules at the base cadence, got {delay}");
    }

    #[test]
    fn advertised_beacon_bound_prevents_false_expiry_of_silent_neighbors() {
        let mut config = SsSpstConfig::paper_default(MetricKind::Hop);
        config.silence = SilenceConfig::on();
        let mut h = Harness::new();
        let mut agent = SsSpstAgent::new(config);
        let me = NodeId(2);
        let my_pos = Vec2::new(100.0, 0.0);
        {
            let mut ctx = h.ctx(SimTime::ZERO, me, my_pos, GroupRole::Member);
            agent.start(&mut ctx);
        }
        // The source is deeply suppressed and advertises a 16 s next-beacon bound.
        let mut b = beacon_from(0.0, 0, Vec2::ZERO, true, true);
        b.next_beacon_s = 16.0;
        let pkt = Packet::control(NodeId(0), 32, SsSpstPayload::Beacon(b));
        {
            let mut ctx = h.ctx(SimTime::from_secs(1), me, my_pos, GroupRole::Member);
            agent.on_packet(&mut ctx, &pkt);
        }
        {
            let mut ctx = h.ctx(SimTime::from_secs(2), me, my_pos, GroupRole::Member);
            agent.on_timer(&mut ctx, TIMER_BEACON, 0);
        }
        assert_eq!(agent.parent(), Some(NodeId(0)));
        // 9 s of silence: past the fixed 5 s timeout, well inside 2.5 × 16 s.
        {
            let mut ctx = h.ctx(SimTime::from_secs(10), me, my_pos, GroupRole::Member);
            agent.on_timer(&mut ctx, TIMER_BEACON, 0);
        }
        assert_eq!(
            agent.parent(),
            Some(NodeId(0)),
            "a correctly silent neighbour must not be expired"
        );
    }
}
