//! Synchronous round-based model of the SS-SPST-E self-stabilization algorithm.
//!
//! The paper measures stabilization in *rounds*: a round is the period in which every node
//! has heard one beacon from each neighbour and recomputed its state. This module runs the
//! guarded commands of Section 5 directly on a [`MulticastTopology`] with exact global
//! knowledge, one synchronous round at a time. It is used for
//!
//! * the worked examples of Figures 1–6 (tree shapes and stabilization round counts),
//! * the convergence / closure / loop-freedom lemmas (unit and property tests), and
//! * fault-injection experiments (arbitrary initial states, topology changes).
//!
//! The event-driven agent in [`crate::agent`] implements the same rules on top of beacons
//! and timers inside the network simulator.

use crate::graph::MulticastTopology;
use crate::metric::{cost_via, MetricKind, MetricParams, ParentView};
use crate::tree::MulticastTree;
use rand::Rng;
use ssmcast_manet::NodeId;

/// Per-node protocol variables: the paper's `l_v` (cost), `h_v` (hop count) and `p_v`
/// (parent pointer).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeState {
    /// Accumulated overhead cost from the source, `l_v`.
    pub cost: f64,
    /// Hop count to the source, `h_v`.
    pub hop: u32,
    /// Current parent, `p_v`.
    pub parent: Option<NodeId>,
}

/// Result of one synchronous round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundReport {
    /// Nodes whose state changed this round.
    pub changed: usize,
    /// Nodes that switched parents this round.
    pub parent_changes: usize,
}

/// The synchronous self-stabilization executor.
#[derive(Clone, Debug)]
pub struct SyncModel {
    topo: MulticastTopology,
    kind: MetricKind,
    params: MetricParams,
    state: Vec<NodeState>,
    max_hops: u32,
    infinity_cost: f64,
    /// A node abandons its current (still valid) parent only if an alternative is better
    /// by more than this relative margin. Prevents oscillation between equal-cost parents
    /// under the node-based metrics.
    switch_margin: f64,
    /// Round counter; parent switches are parity-gated on `(round + node id)` so that two
    /// coupled nodes never switch in the same round, which damps the re-pricing
    /// oscillations the node-based metrics (F, E) can otherwise sustain.
    round_index: u64,
}

impl SyncModel {
    /// Create a model in the paper's "arbitrary initial state": every node disconnected
    /// with cost `E_init` (a value larger than any possible tree cost) and hop count `N`.
    pub fn new(topo: MulticastTopology, kind: MetricKind, params: MetricParams) -> Self {
        let n = topo.len();
        let max_hops = n as u32;
        let infinity_cost = Self::infinity_for(&topo, kind, &params);
        let state = vec![NodeState { cost: infinity_cost, hop: max_hops, parent: None }; n];
        SyncModel {
            topo,
            kind,
            params,
            state,
            max_hops,
            infinity_cost,
            switch_margin: 0.05,
            round_index: 0,
        }
    }

    /// `E_init`: strictly greater than the maximum possible tree cost, which the paper
    /// bounds by the cost of the source reaching every node in one hop.
    fn infinity_for(topo: &MulticastTopology, kind: MetricKind, params: &MetricParams) -> f64 {
        let n = topo.len().max(1) as f64;
        match kind {
            MetricKind::Hop => n * n + 1.0,
            _ => {
                let worst_link = topo
                    .nodes()
                    .flat_map(|v| topo.neighbors(v).iter().map(|(_, d)| *d))
                    .fold(0.0, f64::max)
                    .max(1.0);
                // Every node transmitting to the worst link plus everyone receiving it:
                // comfortably above any real tree cost.
                n * (params.tx(worst_link) + n * params.rx()) + 1.0
            }
        }
    }

    /// The cost value representing "not connected".
    pub fn infinity_cost(&self) -> f64 {
        self.infinity_cost
    }

    /// The metric this model stabilizes.
    pub fn kind(&self) -> MetricKind {
        self.kind
    }

    /// The underlying topology.
    pub fn topology(&self) -> &MulticastTopology {
        &self.topo
    }

    /// Current state of node `v`.
    pub fn state(&self, v: NodeId) -> NodeState {
        self.state[v.index()]
    }

    /// Overwrite the state of node `v` (fault injection / arbitrary initial states).
    pub fn set_state(&mut self, v: NodeId, state: NodeState) {
        self.state[v.index()] = state;
    }

    /// Randomise the state of every node: random parents (possibly invalid), random costs
    /// and hop counts. Used to exercise self-stabilization from garbage states.
    pub fn scramble<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let n = self.topo.len() as u32;
        for v in 0..n {
            let parent = if rng.gen_bool(0.7) { Some(NodeId(rng.gen_range(0..n))) } else { None };
            self.state[v as usize] = NodeState {
                cost: rng.gen_range(0.0..self.infinity_cost),
                hop: rng.gen_range(0..=self.max_hops),
                parent: parent.filter(|p| *p != NodeId(v)),
            };
        }
    }

    /// Replace the topology (e.g. after nodes moved) while keeping protocol state — this is
    /// exactly how a topological change appears to the protocol: state refers to neighbours
    /// that may no longer exist.
    pub fn set_topology(&mut self, topo: MulticastTopology) {
        assert_eq!(topo.len(), self.topo.len(), "node count must be preserved");
        self.infinity_cost = Self::infinity_for(&topo, self.kind, &self.params);
        self.topo = topo;
    }

    /// The tree induced by the current parent pointers.
    pub fn tree(&self) -> MulticastTree {
        MulticastTree::new(self.topo.source(), self.state.iter().map(|s| s.parent).collect())
    }

    /// Sum of all cost variables (the quantity Lemma 1 shows is non-increasing).
    pub fn total_cost(&self) -> f64 {
        self.state.iter().map(|s| s.cost).sum()
    }

    /// What `v` would see about candidate parent `u` through beacons: `u`'s advertised
    /// cost/hop, the distances to `u`'s current children other than `v`, and the distances
    /// to `u`'s non-member, non-tree neighbours other than `v`.
    fn parent_view(&self, u: NodeId, v: NodeId) -> ParentView {
        let su = self.state[u.index()];
        let mut child_distances = Vec::new();
        for &(w, d) in self.topo.neighbors(u) {
            if w != v && self.state[w.index()].parent == Some(u) {
                child_distances.push(d);
            }
        }
        let mut non_member = Vec::new();
        if self.kind == MetricKind::EnergyAware {
            for &(w, d) in self.topo.neighbors(u) {
                if w == v || self.topo.is_member(w) {
                    continue;
                }
                let w_is_tree_neighbor =
                    self.state[w.index()].parent == Some(u) || su.parent == Some(w);
                if !w_is_tree_neighbor {
                    non_member.push(d);
                }
            }
        }
        ParentView {
            cost: su.cost,
            hop: su.hop,
            child_distances,
            non_member_neighbor_distances: non_member,
        }
    }

    /// Compute the next state of node `v` from the frozen previous-round states.
    /// `allow_switch` gates whether the node may abandon a still-usable parent this round.
    fn next_state(&self, v: NodeId, allow_switch: bool) -> NodeState {
        if v == self.topo.source() {
            return NodeState { cost: 0.0, hop: 0, parent: None };
        }
        // N^h_v: neighbours that could serve as parents without exceeding the hop bound.
        let mut best: Option<(NodeId, f64, u32)> = None;
        let mut via_current: Option<(f64, u32)> = None;
        let current_parent = self.state[v.index()].parent;
        for &(u, d) in self.topo.neighbors(v) {
            let su = self.state[u.index()];
            if su.cost >= self.infinity_cost || su.hop + 1 > self.max_hops {
                continue;
            }
            let view = self.parent_view(u, v);
            let c = cost_via(self.kind, &self.params, &view, d);
            let h = su.hop + 1;
            if current_parent == Some(u) {
                via_current = Some((c, h));
            }
            match best {
                None => best = Some((u, c, h)),
                Some((bu, bc, _)) => {
                    if c < bc - 1e-12 || (c <= bc + 1e-12 && u < bu) {
                        best = Some((u, c, h));
                    }
                }
            }
        }
        match best {
            None => NodeState { cost: self.infinity_cost, hop: self.max_hops, parent: None },
            Some((bu, bc, bh)) => {
                // Keep the current parent if it is still usable and either (a) not
                // meaningfully worse than the best alternative (hysteresis) or (b) this
                // node is not scheduled to switch this round (parity gating). Both damp
                // the coupled re-pricing oscillations of the node-based metrics.
                if let (Some(p), Some((cc, ch))) = (current_parent, via_current) {
                    if !allow_switch || cc <= bc * (1.0 + self.switch_margin) + 1e-12 {
                        return NodeState { cost: cc, hop: ch, parent: Some(p) };
                    }
                }
                NodeState { cost: bc, hop: bh, parent: Some(bu) }
            }
        }
    }

    /// Execute one synchronous round: every node recomputes its state from the previous
    /// round's states (as if it had just heard one beacon from every neighbour).
    pub fn round(&mut self) -> RoundReport {
        self.round_index += 1;
        let round = self.round_index;
        let next: Vec<NodeState> = self
            .topo
            .nodes()
            .map(|v| self.next_state(v, (round + v.index() as u64).is_multiple_of(2)))
            .collect();
        let mut changed = 0;
        let mut parent_changes = 0;
        for (old, new) in self.state.iter().zip(&next) {
            let cost_moved = (old.cost - new.cost).abs() > 1e-9;
            if cost_moved || old.hop != new.hop || old.parent != new.parent {
                changed += 1;
            }
            if old.parent != new.parent {
                parent_changes += 1;
            }
        }
        self.state = next;
        RoundReport { changed, parent_changes }
    }

    /// Run rounds until nothing changes. Returns the number of rounds needed, or `None`
    /// if the system did not quiesce within `max_rounds`.
    pub fn run_to_stabilization(&mut self, max_rounds: usize) -> Option<usize> {
        (1..=max_rounds).find(|_| self.round().changed == 0 && self.is_stable())
    }

    /// True if a further round would change nothing — i.e. the system is in a legitimate
    /// state for this metric.
    pub fn is_stable(&self) -> bool {
        self.topo.nodes().all(|v| {
            let next = self.next_state(v, true);
            let cur = self.state[v.index()];
            (cur.cost - next.cost).abs() <= 1e-9 && cur.hop == next.hop && cur.parent == next.parent
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Line topology 0 - 1 - 2 - 3 with a long chord 0 - 3 (within range).
    fn line_with_chord() -> MulticastTopology {
        MulticastTopology::from_edges(
            4,
            &[(0, 1, 100.0), (1, 2, 100.0), (2, 3, 100.0), (0, 3, 240.0)],
            NodeId(0),
            vec![true, true, true, true],
        )
    }

    #[test]
    fn hop_metric_builds_a_bfs_tree() {
        let topo = line_with_chord();
        let mut m = SyncModel::new(topo.clone(), MetricKind::Hop, MetricParams::default());
        let rounds = m.run_to_stabilization(20).expect("must stabilize");
        assert!(rounds <= topo.len() + 1, "stabilizes within N+1 rounds, took {rounds}");
        let tree = m.tree();
        assert!(tree.is_spanning());
        // Hop tree: node 3 attaches directly to the source over the chord.
        assert_eq!(tree.parent(NodeId(3)), Some(NodeId(0)));
        let hops = topo.hops_from_source();
        for v in topo.nodes() {
            assert_eq!(Some(m.state(v).hop), hops[v.index()], "hop counts are BFS distances");
        }
    }

    #[test]
    fn txlink_metric_avoids_the_long_chord() {
        let topo = line_with_chord();
        let mut m = SyncModel::new(topo, MetricKind::TxLink, MetricParams::default());
        m.run_to_stabilization(30).expect("must stabilize");
        let tree = m.tree();
        assert!(tree.is_spanning());
        // Three 100 m hops cost 3·(e+a·100²) which is far below one 240 m hop (a·240²),
        // so node 3 relays through node 2 rather than using the chord.
        assert_eq!(tree.parent(NodeId(3)), Some(NodeId(2)));
        assert_eq!(tree.max_depth(), 3);
    }

    #[test]
    fn total_cost_is_monotone_nonincreasing_from_initial_state() {
        // Lemma 1. For the link-based metrics (Hop, TxLink) the per-round total cost is
        // strictly non-increasing (this is a Bellman-Ford relaxation). For the node-based
        // metrics (F, E) a parent switch re-prices the switching node's siblings, so the
        // total can tick up transiently; the lemma's conclusion — the cost settles at a
        // minimum and stays there — is checked for all four in `closure_once_stable_...`
        // and the convergence tests. Here we assert strict monotonicity where it holds and
        // overall improvement for the node-based metrics.
        let topo = line_with_chord();
        for kind in [MetricKind::Hop, MetricKind::TxLink] {
            let mut m = SyncModel::new(topo.clone(), kind, MetricParams::default());
            let mut prev = m.total_cost();
            for _ in 0..20 {
                m.round();
                let cur = m.total_cost();
                assert!(cur <= prev + 1e-9, "Lemma 1 violated for {kind:?}: {cur} > {prev}");
                prev = cur;
            }
        }
        for kind in [MetricKind::Farthest, MetricKind::EnergyAware] {
            let mut m = SyncModel::new(topo.clone(), kind, MetricParams::default());
            let initial = m.total_cost();
            let after_first = {
                m.round();
                m.total_cost()
            };
            m.run_to_stabilization(40).expect("stabilizes");
            let final_cost = m.total_cost();
            assert!(after_first <= initial);
            assert!(final_cost <= after_first + 1e-9, "{kind:?}: {final_cost} > {after_first}");
        }
    }

    #[test]
    fn closure_once_stable_stays_stable() {
        let topo = line_with_chord();
        for kind in MetricKind::ALL {
            let mut m = SyncModel::new(topo.clone(), kind, MetricParams::default());
            m.run_to_stabilization(40).expect("stabilizes");
            let tree_before = m.tree();
            let cost_before = m.total_cost();
            for _ in 0..10 {
                let r = m.round();
                assert_eq!(r.changed, 0, "Lemma 2 violated for {kind:?}");
            }
            assert_eq!(m.tree(), tree_before);
            assert!((m.total_cost() - cost_before).abs() < 1e-12);
        }
    }

    #[test]
    fn recovers_from_scrambled_state() {
        use rand::SeedableRng;
        let topo = line_with_chord();
        for kind in MetricKind::ALL {
            let mut m = SyncModel::new(topo.clone(), kind, MetricParams::default());
            let mut rng = rand::rngs::StdRng::seed_from_u64(99);
            m.scramble(&mut rng);
            let rounds = m.run_to_stabilization(60).expect("self-stabilizes from garbage");
            assert!(rounds > 0);
            assert!(m.tree().is_spanning(), "{kind:?} must rebuild a spanning tree");
            assert!(!m.tree().has_cycle(), "Lemma 3: no loops after stabilization");
        }
    }

    #[test]
    fn topology_change_is_absorbed() {
        let topo = line_with_chord();
        let mut m = SyncModel::new(topo, MetricKind::EnergyAware, MetricParams::default());
        m.run_to_stabilization(40).unwrap();
        // Node 3 moves away from node 2: the 2-3 link breaks, only the chord remains.
        let moved = MulticastTopology::from_edges(
            4,
            &[(0, 1, 100.0), (1, 2, 100.0), (0, 3, 240.0)],
            NodeId(0),
            vec![true, true, true, true],
        );
        m.set_topology(moved);
        m.run_to_stabilization(40).expect("restabilizes after the fault");
        let tree = m.tree();
        assert!(tree.is_spanning());
        assert_eq!(tree.parent(NodeId(3)), Some(NodeId(0)), "only remaining route is the chord");
    }

    #[test]
    fn partitioned_node_reports_infinite_cost() {
        let topo =
            MulticastTopology::from_edges(3, &[(0, 1, 100.0)], NodeId(0), vec![true, true, true]);
        let mut m = SyncModel::new(topo, MetricKind::EnergyAware, MetricParams::default());
        m.run_to_stabilization(20).unwrap();
        assert_eq!(m.state(NodeId(2)).parent, None);
        assert!(m.state(NodeId(2)).cost >= m.infinity_cost());
        assert!(m.state(NodeId(1)).cost < m.infinity_cost());
    }

    #[test]
    fn source_state_is_fixed() {
        let topo = line_with_chord();
        let mut m = SyncModel::new(topo, MetricKind::Farthest, MetricParams::default());
        m.set_state(NodeId(0), NodeState { cost: 123.0, hop: 7, parent: Some(NodeId(3)) });
        m.round();
        let s = m.state(NodeId(0));
        assert_eq!(s.cost, 0.0);
        assert_eq!(s.hop, 0);
        assert_eq!(s.parent, None);
    }

    #[test]
    fn is_stable_matches_round_behaviour() {
        let topo = line_with_chord();
        let mut m = SyncModel::new(topo, MetricKind::TxLink, MetricParams::default());
        assert!(!m.is_stable());
        m.run_to_stabilization(30).unwrap();
        assert!(m.is_stable());
    }
}
