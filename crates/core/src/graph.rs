//! The multicast problem instance: a weighted neighbourhood graph plus group information.
//!
//! The synchronous protocol model (used for the paper's worked examples and the
//! convergence/closure proofs) runs on this abstract graph; the event-driven agent
//! recovers the same information at run time from beacons.

use ssmcast_manet::{GroupRole, NodeId, TopologySnapshot};
use std::collections::BTreeMap;

/// An undirected weighted graph where edge weights are distances in metres, together with
/// the multicast source and group membership.
#[derive(Clone, Debug)]
pub struct MulticastTopology {
    n: usize,
    adj: Vec<Vec<(NodeId, f64)>>,
    members: Vec<bool>,
    source: NodeId,
}

impl MulticastTopology {
    /// Build from an explicit edge list. `members` must contain the source.
    ///
    /// # Panics
    /// Panics if an edge references a node `>= n`, if the source is out of range, or if
    /// the members vector has the wrong length.
    pub fn from_edges(
        n: usize,
        edges: &[(u32, u32, f64)],
        source: NodeId,
        members: Vec<bool>,
    ) -> Self {
        assert_eq!(members.len(), n, "one membership flag per node");
        assert!(source.index() < n, "source must exist");
        let mut adj_map: Vec<BTreeMap<u32, f64>> = vec![BTreeMap::new(); n];
        for &(u, v, d) in edges {
            assert!((u as usize) < n && (v as usize) < n, "edge endpoint out of range");
            assert!(u != v, "self loops are not allowed");
            assert!(d > 0.0, "distances must be positive");
            adj_map[u as usize].insert(v, d);
            adj_map[v as usize].insert(u, d);
        }
        let adj = adj_map
            .into_iter()
            .map(|m| m.into_iter().map(|(k, d)| (NodeId(k), d)).collect())
            .collect();
        let mut topo = MulticastTopology { n, adj, members, source };
        topo.members[source.index()] = true;
        topo
    }

    /// Build from a geometric snapshot: nodes are adjacent iff within the snapshot range.
    ///
    /// Adjacency comes from the snapshot's grid-indexed [`TopologySnapshot::neighbors`]
    /// query — the same path the event-driven runtime uses — so construction is
    /// O(n·k) in the average neighbourhood size `k` rather than an O(n²) pairwise scan.
    pub fn from_snapshot(snap: &TopologySnapshot, source: NodeId, members: Vec<bool>) -> Self {
        let n = snap.len();
        assert_eq!(members.len(), n);
        let mut edges = Vec::new();
        for i in 0..n as u32 {
            for j in snap.neighbors(NodeId(i)) {
                if j.0 > i {
                    edges.push((i, j.0, snap.distance(NodeId(i), j)));
                }
            }
        }
        Self::from_edges(n, &edges, source, members)
    }

    /// Build one session's problem instance from a snapshot and that session's (possibly
    /// churn-updated) role table: the source and member set are read off the roles, so a
    /// multi-group run yields one topology per session over the same physical graph.
    ///
    /// # Panics
    /// Panics if `roles` has the wrong length or contains no [`GroupRole::Source`].
    pub fn for_session(snap: &TopologySnapshot, roles: &[GroupRole]) -> Self {
        assert_eq!(roles.len(), snap.len(), "one role per node");
        let source =
            roles.iter().position(|r| r.is_source()).expect("a session must have a source");
        let members = roles.iter().map(|r| r.is_member()).collect();
        Self::from_snapshot(snap, NodeId(source as u32), members)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The multicast source.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// True if `v` is a group member (the source always is).
    pub fn is_member(&self, v: NodeId) -> bool {
        self.members[v.index()]
    }

    /// Number of group members (including the source).
    pub fn member_count(&self) -> usize {
        self.members.iter().filter(|&&m| m).count()
    }

    /// Neighbours of `v` with their distances, ordered by node id.
    pub fn neighbors(&self, v: NodeId) -> &[(NodeId, f64)] {
        &self.adj[v.index()]
    }

    /// Distance between `u` and `v` if they are adjacent.
    pub fn distance(&self, u: NodeId, v: NodeId) -> Option<f64> {
        self.adj[u.index()].iter().find(|(w, _)| *w == v).map(|(_, d)| *d)
    }

    /// Iterate over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n as u32).map(NodeId)
    }

    /// Number of neighbours of `v` that are not group members.
    pub fn non_member_neighbor_count(&self, v: NodeId) -> usize {
        self.adj[v.index()].iter().filter(|(u, _)| !self.is_member(*u)).count()
    }

    /// BFS hop distance from the source to every node (`None` if unreachable).
    pub fn hops_from_source(&self) -> Vec<Option<u32>> {
        let mut dist = vec![None; self.n];
        if self.n == 0 {
            return dist;
        }
        let mut queue = std::collections::VecDeque::new();
        dist[self.source.index()] = Some(0);
        queue.push_back(self.source);
        while let Some(u) = queue.pop_front() {
            let du = dist[u.index()].unwrap();
            for &(v, _) in &self.adj[u.index()] {
                if dist[v.index()].is_none() {
                    dist[v.index()] = Some(du + 1);
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// True if every node can reach the source.
    pub fn is_connected(&self) -> bool {
        self.hops_from_source().iter().all(Option::is_some)
    }

    /// The largest distance from the source to any of its direct neighbours — used as the
    /// "root reaches everything in one hop" upper bound the paper calls the maximum
    /// possible tree cost.
    pub fn max_source_neighbor_distance(&self) -> f64 {
        self.adj[self.source.index()].iter().map(|(_, d)| *d).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmcast_manet::Vec2;

    fn triangle() -> MulticastTopology {
        MulticastTopology::from_edges(
            3,
            &[(0, 1, 100.0), (1, 2, 100.0), (0, 2, 150.0)],
            NodeId(0),
            vec![false, true, true],
        )
    }

    #[test]
    fn adjacency_is_symmetric_and_sorted() {
        let t = triangle();
        assert_eq!(t.distance(NodeId(0), NodeId(1)), Some(100.0));
        assert_eq!(t.distance(NodeId(1), NodeId(0)), Some(100.0));
        assert_eq!(t.distance(NodeId(0), NodeId(0)), None);
        let ns: Vec<u32> = t.neighbors(NodeId(0)).iter().map(|(n, _)| n.0).collect();
        assert_eq!(ns, vec![1, 2]);
    }

    #[test]
    fn source_is_always_a_member() {
        let t = triangle();
        assert!(t.is_member(NodeId(0)), "source forced to be a member");
        assert_eq!(t.member_count(), 3);
        assert_eq!(t.non_member_neighbor_count(NodeId(1)), 0);
    }

    #[test]
    fn hops_and_connectivity() {
        let t = triangle();
        assert_eq!(t.hops_from_source(), vec![Some(0), Some(1), Some(1)]);
        assert!(t.is_connected());

        let disconnected =
            MulticastTopology::from_edges(3, &[(0, 1, 50.0)], NodeId(0), vec![true, true, true]);
        assert!(!disconnected.is_connected());
        assert_eq!(disconnected.hops_from_source()[2], None);
    }

    #[test]
    fn from_snapshot_links_nodes_within_range() {
        let snap = TopologySnapshot::new(
            vec![Vec2::new(0.0, 0.0), Vec2::new(100.0, 0.0), Vec2::new(300.0, 0.0)],
            150.0,
        );
        let t = MulticastTopology::from_snapshot(&snap, NodeId(0), vec![true, true, true]);
        assert_eq!(t.distance(NodeId(0), NodeId(1)), Some(100.0));
        assert_eq!(t.distance(NodeId(0), NodeId(2)), None);
        assert_eq!(t.distance(NodeId(1), NodeId(2)), None);
    }

    #[test]
    fn for_session_reads_source_and_members_off_the_role_table() {
        use ssmcast_manet::GroupRole;
        let snap = TopologySnapshot::new(
            vec![Vec2::new(0.0, 0.0), Vec2::new(100.0, 0.0), Vec2::new(200.0, 0.0)],
            150.0,
        );
        // Two sessions over the same physics, different sources and member sets.
        let s0 = MulticastTopology::for_session(
            &snap,
            &[GroupRole::Source, GroupRole::NonMember, GroupRole::Member],
        );
        let s1 = MulticastTopology::for_session(
            &snap,
            &[GroupRole::Member, GroupRole::Member, GroupRole::Source],
        );
        assert_eq!(s0.source(), NodeId(0));
        assert_eq!(s1.source(), NodeId(2));
        assert_eq!(s0.member_count(), 2, "source + node 2");
        assert_eq!(s1.member_count(), 3);
        assert!(!s0.is_member(NodeId(1)));
        assert!(s1.is_member(NodeId(1)));
        assert_eq!(s0.distance(NodeId(0), NodeId(1)), s1.distance(NodeId(0), NodeId(1)));
    }

    #[test]
    fn max_source_neighbor_distance() {
        let t = triangle();
        assert_eq!(t.max_source_neighbor_distance(), 150.0);
    }

    #[test]
    #[should_panic(expected = "distances must be positive")]
    fn zero_distance_rejected() {
        MulticastTopology::from_edges(2, &[(0, 1, 0.0)], NodeId(0), vec![true, true]);
    }
}
