//! # ssmcast-core — the SS-SPST protocol family
//!
//! This crate implements the paper's contribution: self-stabilizing shortest-path
//! spanning-tree multicast with pluggable cost metrics, culminating in the energy-aware
//! SS-SPST-E metric that accounts for transmission energy to the costliest tree neighbour,
//! reception energy, and the discard (overhearing) energy of non-group neighbours.
//!
//! Two complementary implementations share the metric definitions in [`metric`]:
//!
//! * [`sync_model::SyncModel`] — a synchronous, round-based executor over an abstract
//!   weighted graph with global knowledge. It reproduces the paper's worked examples
//!   (Figures 1–6, see [`paper_example`]) and carries the convergence, closure and
//!   loop-freedom lemmas.
//! * [`agent::SsSpstAgent`] — an event-driven [`ssmcast_manet::ProtocolAgent`] that runs
//!   inside the MANET simulator: periodic beacons carry the protocol variables, neighbour
//!   tables expire, the tree is pruned bottom-up, and data is forwarded down the tree with
//!   power control. This is what the paper's Figures 7–16 evaluate.
//!
//! ```
//! use ssmcast_core::{figure1_topology, MetricKind, MetricParams, SyncModel};
//!
//! let mut model = SyncModel::new(figure1_topology(), MetricKind::EnergyAware, MetricParams::default());
//! let rounds = model.run_to_stabilization(100).expect("stabilizes");
//! let tree = model.tree();
//! assert!(tree.is_spanning());
//! assert!(rounds >= 2);
//! ```

#![warn(missing_docs)]

pub mod agent;
pub mod beacon;
pub mod graph;
pub mod metric;
pub mod min_energy;
pub mod mst;
pub mod paper_example;
pub mod probe;
pub mod sync_model;
pub mod tree;

pub use agent::{SsSpstAgent, SsSpstConfig, SsSpstPayload};
pub use beacon::Beacon;
pub use graph::MulticastTopology;
pub use metric::{cost_via, join_overhead, node_cost, MetricKind, MetricParams, ParentView};
pub use min_energy::{min_energy_tree, tree_tx_power};
pub use mst::{SsMstAgent, SsMstConfig};
pub use paper_example::{figure1_topology, run_all_examples, run_example, ExampleResult};
pub use probe::{is_legitimate, legitimate_over, session_legitimate, StabilizationProbe};
pub use sync_model::{NodeState, RoundReport, SyncModel};
pub use tree::MulticastTree;
