//! The future-event list.

use crate::event::{EventId, ScheduledEvent};
use crate::time::SimTime;
use std::collections::{BinaryHeap, HashSet};

/// A priority queue of timestamped events with stable ordering and lazy cancellation.
///
/// * Events at the same timestamp pop in the order they were scheduled.
/// * [`EventQueue::cancel`] marks an event as dead in O(1); dead entries are skipped when
///   popped (lazy deletion), so cancellation never needs to search the heap.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
    live: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), cancelled: HashSet::new(), next_seq: 0, live: 0 }
    }

    /// Create an empty queue with pre-allocated capacity for `cap` pending events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            cancelled: HashSet::new(),
            next_seq: 0,
            live: 0,
        }
    }

    /// Number of live (not cancelled, not yet popped) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Schedule `payload` to fire at absolute time `at`. Returns a handle for cancellation.
    pub fn push(&mut self, at: SimTime, payload: E) -> EventId {
        let id = EventId(self.next_seq);
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { time: at, id, payload });
        self.live += 1;
        id
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was still pending.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        if self.cancelled.insert(id.0) {
            // It may already have fired; only count it as live if it is still in the heap.
            // We cannot check the heap cheaply, so callers that cancel fired events get
            // `true` only once; the live counter is corrected when (if) the entry pops.
            if self.live > 0 {
                self.live -= 1;
                return true;
            }
        }
        false
    }

    /// Timestamp of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skim_cancelled();
        self.heap.peek().map(|e| e.time)
    }

    /// Pop the next live event in (time, sequence) order.
    pub fn pop(&mut self) -> Option<(SimTime, EventId, E)> {
        self.skim_cancelled();
        let ev = self.heap.pop()?;
        self.live = self.live.saturating_sub(1);
        Some((ev.time, ev.id, ev.payload))
    }

    /// Drop any cancelled entries sitting at the top of the heap.
    fn skim_cancelled(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.cancelled.contains(&top.id.0) {
                let dead = self.heap.pop().expect("peeked entry must pop");
                self.cancelled.remove(&dead.id.0);
            } else {
                break;
            }
        }
    }

    /// Remove all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.cancelled.clear();
        self.live = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, _, p)| p).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_pop_in_schedule_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            q.push(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, _, p)| p).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation_skips_event() {
        let mut q = EventQueue::new();
        let _a = q.push(SimTime::from_secs(1), "a");
        let b = q.push(SimTime::from_secs(2), "b");
        let _c = q.push(SimTime::from_secs(3), "c");
        assert!(q.cancel(b));
        assert!(!q.cancel(EventId(999)), "unknown ids are not cancellable");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, _, p)| p).collect();
        assert_eq!(order, vec!["a", "c"]);
        assert!(q.is_empty());
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::from_secs(1), ());
        q.push(SimTime::from_secs(2), ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), ());
        q.clear();
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_sees_next_live_event() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::from_secs(1), ());
        q.push(SimTime::from_secs(2), ());
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
    }
}
