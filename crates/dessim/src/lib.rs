//! # ssmcast-dessim — deterministic discrete-event simulation engine
//!
//! The paper evaluates its protocols inside ns-2; no comparable MANET simulator exists as
//! a Rust library, so this crate provides the event-engine substrate the rest of the
//! workspace is built on:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-nanosecond simulated time, totally ordered,
//!   with convenient conversions from floating-point seconds.
//! * [`EventQueue`] — a binary-heap future-event list with stable (time, sequence)
//!   ordering and O(1) amortised cancellation.
//! * [`KeyedQueue`] — the same structure with caller-keyed tie-breaking, so event order
//!   is a pure function of the event set (the sharded runtime merges concurrently
//!   produced events through it).
//! * [`Simulator`] — the main loop: schedule events, pop them in time order, advance the
//!   clock, and stop at a horizon or when the queue drains.
//! * [`SeedSequence`] — reproducible derivation of independent RNG streams from a single
//!   scenario seed, so simulations are replayable bit-for-bit.
//!
//! The engine itself is single-threaded and deterministic: given the same seed and the
//! same sequence of schedule calls it produces the same trajectory. Parallelism in this
//! workspace lives one level up — independent experiment cells run on a scoped thread
//! pool in `ssmcast-scenario`, and `ssmcast-manet` shards one large simulation across
//! worker threads, each draining its own [`KeyedQueue`] — which keeps this hot loop
//! allocation-light and free of synchronisation.
//!
//! ```
//! use ssmcast_dessim::{Simulator, SimTime, SimDuration};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping(u32) }
//!
//! let mut sim = Simulator::new();
//! sim.schedule_in(SimDuration::from_secs_f64(1.0), Ev::Ping(1));
//! sim.schedule_in(SimDuration::from_secs_f64(0.5), Ev::Ping(2));
//! let mut order = Vec::new();
//! while let Some((t, ev)) = sim.pop_next() {
//!     let Ev::Ping(k) = ev;
//!     order.push((t.as_secs_f64(), k));
//! }
//! assert_eq!(order, vec![(0.5, 2), (1.0, 1)]);
//! ```

#![warn(missing_docs)]

pub mod event;
pub mod keyed;
pub mod queue;
pub mod rng;
pub mod sim;
pub mod time;

pub use event::EventId;
pub use keyed::KeyedQueue;
pub use queue::EventQueue;
pub use rng::SeedSequence;
pub use sim::{RunOutcome, Simulator};
pub use time::{SimDuration, SimTime};
