//! Reproducible random-number streams.
//!
//! Every stochastic component of a scenario (node placement, waypoint selection, traffic
//! jitter, channel loss, group membership) draws from its own [`rand::rngs::StdRng`]
//! derived from a single scenario seed and a component label. This gives two properties
//! the experiment harness relies on:
//!
//! 1. **Replayability** — a (seed, scenario) pair fully determines the trajectory.
//! 2. **Stream independence** — changing how many random numbers one component draws does
//!    not perturb any other component, so protocol comparisons run against *identical*
//!    mobility and traffic.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives independent, labelled RNG streams from one master seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeedSequence {
    master: u64,
}

impl SeedSequence {
    /// Create a sequence from a master seed.
    pub fn new(master: u64) -> Self {
        SeedSequence { master }
    }

    /// The master seed this sequence was created from.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Derive the 64-bit seed for a labelled stream.
    ///
    /// Uses SplitMix64 finalisation over the master seed combined with an FNV-1a hash of
    /// the label, which is cheap and avalanches well enough that adjacent labels and
    /// adjacent seeds produce unrelated streams.
    pub fn derive_seed(&self, label: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        splitmix64(self.master ^ h)
    }

    /// A [`StdRng`] for the given component label.
    pub fn stream(&self, label: &str) -> StdRng {
        StdRng::seed_from_u64(self.derive_seed(label))
    }

    /// A [`StdRng`] for a per-entity stream, e.g. one mobility stream per node.
    pub fn indexed_stream(&self, label: &str, index: u64) -> StdRng {
        StdRng::seed_from_u64(splitmix64(self.derive_seed(label) ^ splitmix64(index)))
    }

    /// A derived child sequence, e.g. one per repetition of a scenario.
    ///
    /// `master ^ splitmix64(index + γ)` is injective in `index` for any fixed master
    /// (xor with a constant composed with a bijection), and the outer finaliser keeps
    /// siblings statistically unrelated. An earlier formulation multiplied
    /// `(master + γ)` by `index + 1`, which collapsed *every* child to the same value
    /// for the adversarial master `-γ mod 2^64`.
    pub fn child(&self, index: u64) -> SeedSequence {
        SeedSequence {
            master: splitmix64(self.master ^ splitmix64(index.wrapping_add(0x9e37_79b9_7f4a_7c15))),
        }
    }
}

/// SplitMix64 finaliser: a cheap bijective mixer with good avalanche behaviour.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_label_same_stream() {
        let s = SeedSequence::new(42);
        let a: Vec<u32> =
            s.stream("mobility").sample_iter(rand::distributions::Standard).take(8).collect();
        let b: Vec<u32> =
            s.stream("mobility").sample_iter(rand::distributions::Standard).take(8).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_differ() {
        let s = SeedSequence::new(42);
        let a: u64 = s.stream("mobility").gen();
        let b: u64 = s.stream("traffic").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn different_master_seeds_differ() {
        let a: u64 = SeedSequence::new(1).stream("x").gen();
        let b: u64 = SeedSequence::new(2).stream("x").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn indexed_streams_are_distinct() {
        let s = SeedSequence::new(7);
        let a: u64 = s.indexed_stream("node", 0).gen();
        let b: u64 = s.indexed_stream("node", 1).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn children_are_distinct_and_deterministic() {
        let s = SeedSequence::new(7);
        assert_ne!(s.child(0).master(), s.child(1).master());
        assert_eq!(s.child(3).master(), s.child(3).master());
    }

    #[test]
    fn children_never_collapse_even_for_adversarial_masters() {
        // 0x61c8864680b583eb is -γ mod 2^64 for γ = 0x9e3779b97f4a7c15; the old
        // multiplicative derivation mapped every child of this master to one value.
        for master in [0x61c8_8646_80b5_83ebu64, 0, 1, u64::MAX] {
            let s = SeedSequence::new(master);
            let children: std::collections::HashSet<u64> =
                (0..1000).map(|i| s.child(i).master()).collect();
            assert_eq!(children.len(), 1000, "children collapsed for master {master:#x}");
        }
    }

    #[test]
    fn splitmix_is_bijective_on_sample() {
        // Distinct inputs must give distinct outputs (spot check, bijectivity implies it).
        let outs: std::collections::HashSet<u64> = (0..10_000u64).map(splitmix64).collect();
        assert_eq!(outs.len(), 10_000);
    }
}
