//! Event identities and heap entries.

use crate::time::SimTime;
use std::cmp::Ordering;

/// Opaque handle to a scheduled event, usable to cancel it before it fires.
///
/// Identifiers are unique within one [`crate::EventQueue`] / [`crate::Simulator`] and are
/// never reused.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(pub(crate) u64);

impl EventId {
    /// The raw sequence number backing this identifier.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// A (time, sequence, payload) entry in the future-event list.
///
/// Ordering is by time first and insertion sequence second, so events scheduled for the
/// same instant fire in schedule order — this is what makes runs reproducible.
#[derive(Debug)]
pub(crate) struct ScheduledEvent<E> {
    pub time: SimTime,
    pub id: EventId,
    pub payload: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.id == other.id
    }
}

impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest event is popped first.
        other.time.cmp(&self.time).then_with(|| other.id.cmp(&self.id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn earlier_event_sorts_greater_for_max_heap() {
        let a = ScheduledEvent { time: SimTime::from_secs(1), id: EventId(0), payload: () };
        let b = ScheduledEvent { time: SimTime::from_secs(2), id: EventId(1), payload: () };
        // In max-heap order the earlier event must compare as "greater".
        assert!(a > b);
    }

    #[test]
    fn same_time_orders_by_insertion_sequence() {
        let a = ScheduledEvent { time: SimTime::from_secs(1), id: EventId(0), payload: () };
        let b = ScheduledEvent { time: SimTime::from_secs(1), id: EventId(1), payload: () };
        assert!(a > b, "earlier-scheduled event must pop first");
    }
}
