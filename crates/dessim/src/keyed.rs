//! A future-event list ordered by a caller-supplied key instead of insertion order.
//!
//! [`EventQueue`](crate::EventQueue) breaks timestamp ties by insertion sequence, which
//! makes the pop order depend on *when* events were scheduled. A parallel engine that
//! merges events produced concurrently by several workers cannot reproduce one global
//! insertion order, so it needs tie-breaking that is a pure function of the event itself.
//! [`KeyedQueue`] orders events by `(time, key)` where the key is supplied by the caller
//! at push time — identical event sets pop identically no matter who pushed them first.

use crate::event::EventId;
use crate::time::SimTime;
use std::collections::{BinaryHeap, HashSet};

/// One pending entry; ordered so the `BinaryHeap` max-heap pops the smallest
/// `(time, key, id)` first.
#[derive(Debug)]
struct KeyedEntry<K, E> {
    time: SimTime,
    key: K,
    id: EventId,
    payload: E,
}

impl<K: Ord, E> PartialEq for KeyedEntry<K, E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.key == other.key && self.id == other.id
    }
}

impl<K: Ord, E> Eq for KeyedEntry<K, E> {}

impl<K: Ord, E> PartialOrd for KeyedEntry<K, E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<K: Ord, E> Ord for KeyedEntry<K, E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the smallest tuple on top. The id
        // is a final tiebreaker only so the order is total; callers that need
        // schedule-independent determinism must make `(time, key)` unique.
        (&other.time, &other.key, &other.id.0).cmp(&(&self.time, &self.key, &self.id.0))
    }
}

/// A priority queue of timestamped events ordered by `(time, key)` with lazy cancellation.
///
/// * Events pop in ascending `(time, key)` order regardless of push order.
/// * [`KeyedQueue::cancel`] marks an event dead in O(1); dead entries are skipped when
///   they reach the top of the heap.
#[derive(Debug)]
pub struct KeyedQueue<K, E> {
    heap: BinaryHeap<KeyedEntry<K, E>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
    live: usize,
}

impl<K: Ord, E> Default for KeyedQueue<K, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord, E> KeyedQueue<K, E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        KeyedQueue { heap: BinaryHeap::new(), cancelled: HashSet::new(), next_seq: 0, live: 0 }
    }

    /// Create an empty queue with room for `cap` pending events.
    pub fn with_capacity(cap: usize) -> Self {
        KeyedQueue {
            heap: BinaryHeap::with_capacity(cap),
            cancelled: HashSet::new(),
            next_seq: 0,
            live: 0,
        }
    }

    /// Number of live (not cancelled, not yet popped) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Schedule `payload` at absolute time `at` with tie-breaking key `key`.
    pub fn push(&mut self, at: SimTime, key: K, payload: E) -> EventId {
        let id = EventId(self.next_seq);
        self.next_seq += 1;
        self.heap.push(KeyedEntry { time: at, key, id, payload });
        self.live += 1;
        id
    }

    /// Cancel a previously scheduled event. Returns `true` if it was still pending.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        if self.cancelled.insert(id.0) && self.live > 0 {
            self.live -= 1;
            return true;
        }
        false
    }

    /// Timestamp of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skim_cancelled();
        self.heap.peek().map(|e| e.time)
    }

    /// Pop the next live event in `(time, key)` order.
    pub fn pop(&mut self) -> Option<(SimTime, K, E)> {
        self.skim_cancelled();
        let ev = self.heap.pop()?;
        self.live = self.live.saturating_sub(1);
        Some((ev.time, ev.key, ev.payload))
    }

    /// Drop any cancelled entries sitting at the top of the heap.
    fn skim_cancelled(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.cancelled.contains(&top.id.0) {
                let dead = self.heap.pop().expect("peeked entry must pop");
                self.cancelled.remove(&dead.id.0);
            } else {
                break;
            }
        }
    }

    /// Remove all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.cancelled.clear();
        self.live = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_key_order() {
        let mut q = KeyedQueue::new();
        let t = SimTime::from_secs(1);
        q.push(t, 3u32, "c");
        q.push(SimTime::from_secs(2), 0u32, "d");
        q.push(t, 1, "a");
        q.push(t, 2, "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, _, p)| p).collect();
        assert_eq!(order, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn order_is_independent_of_push_order() {
        let t = SimTime::from_secs(5);
        let keys = [(0u64, 7u64), (1, 0), (0, 2), (2, 9), (1, 5)];
        let mut fwd = KeyedQueue::new();
        for &k in &keys {
            fwd.push(t, k, k);
        }
        let mut rev = KeyedQueue::new();
        for &k in keys.iter().rev() {
            rev.push(t, k, k);
        }
        let a: Vec<_> = std::iter::from_fn(|| fwd.pop()).map(|(_, k, _)| k).collect();
        let b: Vec<_> = std::iter::from_fn(|| rev.pop()).map(|(_, k, _)| k).collect();
        assert_eq!(a, b);
        let mut sorted = keys.to_vec();
        sorted.sort_unstable();
        assert_eq!(a, sorted);
    }

    #[test]
    fn cancellation_skips_event() {
        let mut q = KeyedQueue::new();
        let _a = q.push(SimTime::from_secs(1), 0u8, "a");
        let b = q.push(SimTime::from_secs(2), 0, "b");
        let _c = q.push(SimTime::from_secs(3), 0, "c");
        assert!(q.cancel(b));
        assert!(!q.cancel(EventId(999)), "unknown ids are not cancellable");
        assert_eq!(q.len(), 2);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, _, p)| p).collect();
        assert_eq!(order, vec!["a", "c"]);
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_sees_next_live_event() {
        let mut q = KeyedQueue::new();
        let a = q.push(SimTime::from_secs(1), 0u8, ());
        q.push(SimTime::from_secs(2), 0, ());
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        q.clear();
        assert!(q.pop().is_none());
    }
}
