//! The simulation main loop.

use crate::event::EventId;
use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};

/// Why a call to [`Simulator::run_until`] returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained before the horizon.
    QueueDrained,
    /// The simulated clock reached the requested horizon.
    HorizonReached,
    /// The handler requested an early stop.
    Stopped,
    /// The event budget was exhausted (runaway-protection).
    BudgetExhausted,
}

/// A discrete-event simulator: a clock plus a future-event list.
///
/// The simulator is generic over the event payload type `E`; the domain layers
/// (`ssmcast-manet` and the protocol crates) define their own event enums. The engine
/// never inspects payloads — it only orders them in time.
#[derive(Debug)]
pub struct Simulator<E> {
    queue: EventQueue<E>,
    now: SimTime,
    processed: u64,
    max_events: u64,
}

impl<E> Default for Simulator<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulator<E> {
    /// Create a simulator with the clock at zero and no event budget.
    pub fn new() -> Self {
        Simulator {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            processed: 0,
            max_events: u64::MAX,
        }
    }

    /// Create a simulator pre-allocating queue space for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        Simulator {
            queue: EventQueue::with_capacity(cap),
            now: SimTime::ZERO,
            processed: 0,
            max_events: u64::MAX,
        }
    }

    /// Limit the total number of events this simulator will process (runaway protection
    /// for property tests and fuzzing). The default is unlimited.
    pub fn set_event_budget(&mut self, budget: u64) {
        self.max_events = budget;
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending (live) events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule an event at an absolute time. Scheduling in the past is clamped to "now"
    /// (the event still fires, immediately after currently pending same-time events).
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventId {
        let at = at.max(self.now);
        self.queue.push(at, payload)
    }

    /// Schedule an event `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, payload: E) -> EventId {
        self.queue.push(self.now + delay, payload)
    }

    /// Cancel a pending event. Returns `true` if it had not fired yet.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop_next(&mut self) -> Option<(SimTime, E)> {
        let (t, _id, payload) = self.queue.pop()?;
        debug_assert!(t >= self.now, "event queue must never run backwards");
        self.now = t;
        self.processed += 1;
        Some((t, payload))
    }

    /// Timestamp of the next pending event.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Run until the horizon, the queue drains, the budget is exhausted, or the handler
    /// returns `false`.
    ///
    /// The handler receives `(simulator, time, event)` and may schedule further events.
    pub fn run_until<F>(&mut self, horizon: SimTime, mut handler: F) -> RunOutcome
    where
        F: FnMut(&mut Self, SimTime, E) -> bool,
    {
        loop {
            if self.processed >= self.max_events {
                return RunOutcome::BudgetExhausted;
            }
            let next = match self.queue.peek_time() {
                Some(t) => t,
                None => {
                    // Clock still advances to the horizon so periodic observers see the
                    // full window length.
                    self.now = self.now.max(horizon.min(SimTime::MAX));
                    return RunOutcome::QueueDrained;
                }
            };
            if next > horizon {
                self.now = horizon;
                return RunOutcome::HorizonReached;
            }
            let (t, ev) = self.pop_next().expect("peeked event must pop");
            if !handler(self, t, ev) {
                return RunOutcome::Stopped;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    enum Ev {
        Tick(u32),
        Stop,
    }

    #[test]
    fn clock_advances_with_events() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_secs(5), Ev::Tick(1));
        sim.schedule_at(SimTime::from_secs(2), Ev::Tick(2));
        let (t, ev) = sim.pop_next().unwrap();
        assert_eq!(t, SimTime::from_secs(2));
        assert_eq!(ev, Ev::Tick(2));
        assert_eq!(sim.now(), SimTime::from_secs(2));
    }

    #[test]
    fn run_until_horizon_leaves_future_events_pending() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_secs(1), Ev::Tick(1));
        sim.schedule_at(SimTime::from_secs(10), Ev::Tick(2));
        let mut seen = Vec::new();
        let outcome = sim.run_until(SimTime::from_secs(5), |_, _, ev| {
            seen.push(ev);
            true
        });
        assert_eq!(outcome, RunOutcome::HorizonReached);
        assert_eq!(seen, vec![Ev::Tick(1)]);
        assert_eq!(sim.now(), SimTime::from_secs(5));
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    fn run_until_drains_queue() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_secs(1), Ev::Tick(1));
        let outcome = sim.run_until(SimTime::from_secs(100), |_, _, _| true);
        assert_eq!(outcome, RunOutcome::QueueDrained);
        assert_eq!(sim.now(), SimTime::from_secs(100), "clock advances to horizon on drain");
    }

    #[test]
    fn handler_can_stop_early() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_secs(1), Ev::Tick(1));
        sim.schedule_at(SimTime::from_secs(2), Ev::Stop);
        sim.schedule_at(SimTime::from_secs(3), Ev::Tick(3));
        let outcome = sim.run_until(SimTime::MAX, |_, _, ev| ev != Ev::Stop);
        assert_eq!(outcome, RunOutcome::Stopped);
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    fn handler_can_reschedule() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_secs(1), Ev::Tick(0));
        let mut count = 0u32;
        sim.run_until(SimTime::from_secs(10), |s, t, _| {
            count += 1;
            if count < 5 {
                s.schedule_at(t + SimDuration::from_secs(1), Ev::Tick(count));
            }
            true
        });
        assert_eq!(count, 5);
    }

    #[test]
    fn event_budget_stops_runaway() {
        let mut sim = Simulator::new();
        sim.set_event_budget(100);
        sim.schedule_at(SimTime::from_secs(1), Ev::Tick(0));
        let outcome = sim.run_until(SimTime::MAX, |s, t, _| {
            // Self-perpetuating event storm.
            s.schedule_at(t + SimDuration::from_millis(1), Ev::Tick(0));
            true
        });
        assert_eq!(outcome, RunOutcome::BudgetExhausted);
        assert_eq!(sim.events_processed(), 100);
    }

    #[test]
    fn scheduling_in_past_clamps_to_now() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_secs(5), Ev::Tick(1));
        sim.pop_next();
        sim.schedule_at(SimTime::from_secs(1), Ev::Tick(2));
        let (t, _) = sim.pop_next().unwrap();
        assert_eq!(t, SimTime::from_secs(5), "past events fire at the current time");
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut sim = Simulator::new();
        let id = sim.schedule_at(SimTime::from_secs(1), Ev::Tick(1));
        sim.schedule_at(SimTime::from_secs(2), Ev::Tick(2));
        assert!(sim.cancel(id));
        let mut seen = Vec::new();
        sim.run_until(SimTime::MAX, |_, _, ev| {
            seen.push(ev);
            true
        });
        assert_eq!(seen, vec![Ev::Tick(2)]);
    }
}
