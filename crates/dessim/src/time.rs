//! Simulated time.
//!
//! Time is kept as an integer number of nanoseconds so that event ordering is exact and
//! platform independent; floating-point seconds are only used at the API edges (scenario
//! parameters, metric reporting).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Number of nanoseconds in one second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// An absolute instant on the simulated clock, measured from the start of the run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of simulated time.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * NANOS_PER_SEC)
    }

    /// Construct from floating-point seconds (negative values clamp to zero).
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(secs_to_nanos(secs))
    }

    /// Raw nanoseconds since the start of the run.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in floating-point seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Value in floating-point milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Time elapsed since `earlier`, saturating at zero if `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span; used as an "effectively forever" downtime.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * NANOS_PER_SEC)
    }

    /// Construct from floating-point seconds (negative values clamp to zero).
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(secs_to_nanos(secs))
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in floating-point seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Value in floating-point milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiply by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Scale by a floating-point factor (clamped to be non-negative).
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        let f = factor.max(0.0);
        SimDuration((self.0 as f64 * f).round() as u64)
    }
}

fn secs_to_nanos(secs: f64) -> u64 {
    if secs <= 0.0 || !secs.is_finite() {
        0
    } else {
        (secs * NANOS_PER_SEC as f64).round() as u64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_roundtrip_seconds() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn negative_and_nan_seconds_clamp_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NEG_INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn add_and_subtract() {
        let t = SimTime::from_secs(10) + SimDuration::from_millis(250);
        assert_eq!(t.as_nanos(), 10_250_000_000);
        let d = t - SimTime::from_secs(10);
        assert_eq!(d.as_millis_f64(), 250.0);
        // Saturating subtraction: earlier - later == 0.
        assert_eq!((SimTime::from_secs(1) - SimTime::from_secs(2)), SimDuration::ZERO);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_secs_f64(0.1);
        let b = SimTime::from_secs_f64(0.2);
        assert!(a < b);
        assert!(SimTime::MAX > b);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(2);
        assert_eq!(d.saturating_mul(3), SimDuration::from_secs(6));
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(1));
        assert_eq!(d.mul_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn saturating_since() {
        let a = SimTime::from_secs(5);
        let b = SimTime::from_secs(7);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(2));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }
}
