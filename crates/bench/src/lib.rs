//! # ssmcast-bench — the benchmark harness
//!
//! This crate holds the Criterion benchmarks that regenerate the paper's evaluation
//! figures (see the `benches/` directory and EXPERIMENTS.md). The library itself is empty;
//! everything lives in the bench targets:
//!
//! * `microbench` — event-queue, metric evaluation and stabilization microbenchmarks.
//! * `fig01_06_paper_example` — the worked example of Figures 1–6.
//! * `fig07_09_velocity_metrics` — Figures 7–9 (SS-SPST variants vs velocity).
//! * `fig10_11_beacon_interval` — Figures 10–11 (beacon interval trade-off).
//! * `fig12_13_15_group_size` — Figures 12, 13, 15 (group-size scalability).
//! * `fig14_16_velocity_protocols` — Figures 14, 16 (protocol comparison vs velocity).
