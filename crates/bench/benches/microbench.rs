//! Engine and algorithm microbenchmarks: event-queue throughput, metric evaluation and
//! synchronous stabilization of the paper's example topology.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ssmcast_core::{cost_via, figure1_topology, MetricKind, MetricParams, ParentView, SyncModel};
use ssmcast_dessim::{SimTime, Simulator};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("dessim/schedule_and_drain_10k_events", |b| {
        b.iter(|| {
            let mut sim: Simulator<u64> = Simulator::with_capacity(10_000);
            for i in 0..10_000u64 {
                // Pseudo-random but deterministic timestamps.
                let t = i.wrapping_mul(2654435761) % 1_000_000;
                sim.schedule_at(SimTime::from_nanos(t), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = sim.pop_next() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });
}

fn bench_metric_evaluation(c: &mut Criterion) {
    let params = MetricParams::default();
    let view = ParentView {
        cost: 0.012,
        hop: 3,
        child_distances: vec![80.0, 120.0, 145.0, 60.0],
        non_member_neighbor_distances: vec![55.0, 90.0, 130.0, 170.0, 210.0],
    };
    c.bench_function("core/join_overhead_energy_aware", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for d in 10..250 {
                acc += cost_via(MetricKind::EnergyAware, &params, black_box(&view), d as f64);
            }
            black_box(acc)
        })
    });
}

fn bench_sync_stabilization(c: &mut Criterion) {
    let mut group = c.benchmark_group("core/sync_stabilization_figure1");
    group.sample_size(20);
    for kind in MetricKind::ALL {
        group.bench_function(kind.protocol_name(), |b| {
            b.iter(|| {
                let mut model = SyncModel::new(figure1_topology(), kind, MetricParams::default());
                black_box(model.run_to_stabilization(200))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_event_queue, bench_metric_evaluation, bench_sync_stabilization);
criterion_main!(benches);
