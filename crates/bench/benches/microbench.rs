//! Engine and algorithm microbenchmarks: event-queue throughput, metric evaluation,
//! synchronous stabilization of the paper's example topology, and the radio-medium
//! broadcast path (grid-indexed vs brute-force neighbour queries) at large n.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ssmcast_core::{cost_via, figure1_topology, MetricKind, MetricParams, ParentView, SyncModel};
use ssmcast_dessim::{SimDuration, SimTime, Simulator};
use ssmcast_manet::{FaultPlanSpec, MacConfig, MediumConfig, SilenceConfig};
use ssmcast_scenario::{run_protocol, MetricsConfig, ProtocolKind, Scenario};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("dessim/schedule_and_drain_10k_events", |b| {
        b.iter(|| {
            let mut sim: Simulator<u64> = Simulator::with_capacity(10_000);
            for i in 0..10_000u64 {
                // Pseudo-random but deterministic timestamps.
                let t = i.wrapping_mul(2654435761) % 1_000_000;
                sim.schedule_at(SimTime::from_nanos(t), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = sim.pop_next() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });
}

fn bench_metric_evaluation(c: &mut Criterion) {
    let params = MetricParams::default();
    let view = ParentView {
        cost: 0.012,
        hop: 3,
        child_distances: vec![80.0, 120.0, 145.0, 60.0],
        non_member_neighbor_distances: vec![55.0, 90.0, 130.0, 170.0, 210.0],
    };
    c.bench_function("core/join_overhead_energy_aware", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for d in 10..250 {
                acc += cost_via(MetricKind::EnergyAware, &params, black_box(&view), d as f64);
            }
            black_box(acc)
        })
    });
}

fn bench_sync_stabilization(c: &mut Criterion) {
    let mut group = c.benchmark_group("core/sync_stabilization_figure1");
    group.sample_size(20);
    for kind in MetricKind::ALL {
        group.bench_function(kind.protocol_name(), |b| {
            b.iter(|| {
                let mut model = SyncModel::new(figure1_topology(), kind, MetricParams::default());
                black_box(model.run_to_stabilization(200))
            })
        });
    }
    group.finish();
}

/// The grid-indexed broadcast path against the brute-force O(n) scan on a flood-heavy
/// 1000-node scenario (≈ 12 neighbours per node). Both modes share a 200 ms position
/// epoch, so they simulate the same physics (and produce identical reports); only the
/// neighbour-query cost differs.
fn bench_broadcast_medium(c: &mut Criterion) {
    let base = {
        let mut s = Scenario::paper_default();
        s.n_nodes = 1_000;
        s.area_side_m = 4_000.0;
        s.group_size = 50;
        s.duration_s = 1.0;
        s.warmup_s = 0.25;
        s
    };
    let epoch = SimDuration::from_millis(200);
    let mut group = c.benchmark_group("manet/flood_n1000");
    group.sample_size(3);
    for (name, medium) in [
        ("grid", MediumConfig::grid().with_epoch(epoch)),
        ("bruteforce", MediumConfig::brute_force().with_epoch(epoch)),
    ] {
        // The brute-force variant exists to price the O(n) scan against the grid; in
        // `--quick` CI smoke mode it proves nothing the grid run doesn't and costs
        // ~43 ms/sample, so it only runs in full mode (the JSON config notes this).
        if name == "bruteforce" && criterion::is_quick() {
            continue;
        }
        let scenario = base.with_medium(medium);
        group.bench_function(name, |b| {
            b.iter(|| {
                let report = run_protocol(
                    black_box(&scenario),
                    ProtocolKind::Flooding.to_protocol().as_ref(),
                );
                black_box(report)
            })
        });
    }
    group.finish();
}

/// The fault-injection + stabilization-probe path at n = 500: one corruption burst plus
/// crashes and blackouts during a short SS-SPST-E run, with the legitimacy predicate
/// probed every 500 ms. The fault-free run of the same scenario is the baseline, so the
/// pair prices the whole subsystem (fault dispatch, per-epoch snapshot + BFS legitimacy
/// check, convergence accounting).
fn bench_fault_recovery(c: &mut Criterion) {
    let base = {
        let mut s = Scenario::paper_default();
        s.n_nodes = 500;
        s.area_side_m = 2_800.0;
        s.group_size = 40;
        s.duration_s = 8.0;
        s.warmup_s = 1.0;
        s.medium = MediumConfig::grid().with_epoch(SimDuration::from_millis(200));
        s
    };
    let faulted = {
        let mut s = base;
        s.faults = FaultPlanSpec::stress(2.0, 6.0);
        s.faults.probe_epoch_s = 0.5;
        s
    };
    let mut group = c.benchmark_group("manet/faults_n500");
    group.sample_size(3);
    for (name, scenario) in [("faultfree", base), ("stress_probe", faulted)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let report = run_protocol(
                    black_box(&scenario),
                    ProtocolKind::SsSpst(MetricKind::EnergyAware).to_protocol().as_ref(),
                );
                black_box(report)
            })
        });
    }
    group.finish();
}

/// Multi-session dispatch pricing at n = 500: the same radio field carrying one vs four
/// concurrent multicast sessions (each with its own per-node SS-SPST-E instances and a
/// churned membership), probed per session. The single-session run is the baseline, so
/// the pair prices the per-(session, node) agent dispatch, the per-session traces and
/// the per-session legitimacy evaluation the multi-group refactor added.
fn bench_multi_group(c: &mut Criterion) {
    let base = {
        let mut s = Scenario::paper_default();
        s.n_nodes = 500;
        s.area_side_m = 2_800.0;
        s.group_size = 40;
        s.duration_s = 5.0;
        s.warmup_s = 1.0;
        s.member_churn_rate = 0.5;
        s.faults.probe_epoch_s = 0.5;
        s.medium = MediumConfig::grid().with_epoch(SimDuration::from_millis(200));
        s
    };
    let mut group = c.benchmark_group("manet/groups_n500");
    group.sample_size(3);
    for (name, n_groups) in [("sessions_1", 1), ("sessions_4", 4)] {
        let scenario = base.with_groups(n_groups);
        group.bench_function(name, |b| {
            b.iter(|| {
                let report = run_protocol(
                    black_box(&scenario),
                    ProtocolKind::SsSpst(MetricKind::EnergyAware).to_protocol().as_ref(),
                );
                black_box(report)
            })
        });
    }
    group.finish();
}

/// The energy-lifecycle path at n = 500: the same SS-SPST-E scenario with unlimited
/// always-on radios (the paper's model, and the fast path with every lifecycle branch
/// compiled out at runtime) versus the full lifecycle — finite batteries, a duty-cycled
/// radio with idle/sleep drain accrual, distance-based TX power control and per-epoch
/// lifetime sampling. The pair prices the whole subsystem.
fn bench_energy_lifecycle(c: &mut Criterion) {
    let base = {
        let mut s = Scenario::paper_default();
        s.n_nodes = 500;
        s.area_side_m = 2_800.0;
        s.group_size = 40;
        s.duration_s = 5.0;
        s.warmup_s = 1.0;
        s.medium = MediumConfig::grid().with_epoch(SimDuration::from_millis(200));
        s
    };
    let lifecycle = base
        .with_battery_capacity(50.0)
        .with_duty_cycle(1.0, 0.8)
        .with_idle_power(2e-3, 1e-4)
        .with_tx_power_control(true);
    let mut group = c.benchmark_group("manet/energy_n500");
    group.sample_size(3);
    for (name, scenario) in [("unlimited", base), ("lifecycle", lifecycle)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let report = run_protocol(
                    black_box(&scenario),
                    ProtocolKind::SsSpst(MetricKind::EnergyAware).to_protocol().as_ref(),
                );
                black_box(report)
            })
        });
    }
    group.finish();
}

/// The MAC-layer path at n = 500: the same SS-SPST-E scenario under the three
/// channel-access policies. Random jitter is the pre-MAC fast path (one extra virtual
/// call per transmission); CSMA adds carrier sensing with retry events; TDMA adds slot
/// arithmetic plus per-reception claim learning. The triple prices the subsystem and
/// its two contention disciplines against the legacy baseline.
fn bench_mac(c: &mut Criterion) {
    let base = {
        let mut s = Scenario::paper_default();
        s.n_nodes = 500;
        s.area_side_m = 2_800.0;
        s.group_size = 40;
        s.duration_s = 5.0;
        s.warmup_s = 1.0;
        s.medium = MediumConfig::grid().with_epoch(SimDuration::from_millis(200));
        s
    };
    let mut group = c.benchmark_group("manet/mac_n500");
    group.sample_size(3);
    for (name, mac) in [
        ("jitter", MacConfig::default()),
        ("csma", MacConfig::csma()),
        ("ss_tdma", MacConfig::ss_tdma()),
    ] {
        let scenario = base.with_mac(mac);
        group.bench_function(name, |b| {
            b.iter(|| {
                let report = run_protocol(
                    black_box(&scenario),
                    ProtocolKind::SsSpst(MetricKind::EnergyAware).to_protocol().as_ref(),
                );
                black_box(report)
            })
        });
    }
    group.finish();
}

/// The region-sharded engine against the sequential loop on an n = 5000 flood
/// (≈ 13 neighbours per node, field scaled for constant density). Shard counts 2/4/8
/// price the partitioned engine's synchronization against the extra cores it can
/// recruit: on a multi-core host the higher shard counts win; on a single core they
/// only measure the synchronization overhead. Reports are byte-identical across the
/// sharded counts (see `tests/shard_equivalence.rs`); the sequential run is the
/// wall-clock baseline.
fn bench_sharded_engine(c: &mut Criterion) {
    let base = {
        let mut s = Scenario::paper_default();
        s.n_nodes = 5_000;
        s.area_side_m = 8_573.0;
        s.group_size = 50;
        s.duration_s = 1.0;
        s.warmup_s = 0.25;
        s.medium = MediumConfig::grid().with_epoch(SimDuration::from_millis(200));
        s
    };
    let mut group = c.benchmark_group("manet/shard_n5000");
    group.sample_size(2);
    for (name, shards) in [("sequential", 0u32), ("shards_2", 2), ("shards_4", 4), ("shards_8", 8)]
    {
        let scenario = if shards == 0 { base } else { base.with_shards(shards) };
        group.bench_function(name, |b| {
            b.iter(|| {
                let report = run_protocol(
                    black_box(&scenario),
                    ProtocolKind::Flooding.to_protocol().as_ref(),
                );
                black_box(report)
            })
        });
    }
    group.finish();
}

/// Exact vs streaming report accumulation on a long-horizon n = 2000 lifetime flood:
/// ten times the horizon of the other large-n runs, finite batteries and a 50 ms
/// lifetime sample epoch, so exact-mode report state (per-packet latency/dedup maps,
/// per-epoch curves) grows with the horizon while streaming mode holds its fixed
/// sketch budgets. The streaming variant runs FIRST on purpose: the JSON report's
/// VmHWM columns are a monotone process-wide high-water mark, so any peak-RSS growth
/// the exact variant then shows on top of it is the exact report layer's own
/// footprint. Scalar report metrics are bit-equal between the two modes (see
/// `tests/streaming_equivalence.rs`), so the pair prices pure accounting overhead.
fn bench_long_horizon(c: &mut Criterion) {
    let base = {
        let mut s = Scenario::paper_default();
        s.n_nodes = 2_000;
        s.area_side_m = 5_600.0;
        s.group_size = 50;
        s.duration_s = 10.0;
        s.warmup_s = 0.25;
        s.medium = MediumConfig::grid().with_epoch(SimDuration::from_millis(200));
        s.lifecycle.sample_epoch = SimDuration::from_millis(50);
        s.with_battery_capacity(100.0).with_idle_power(1e-4, 1e-6)
    };
    let mut group = c.benchmark_group("manet/long_horizon_n2000");
    group.sample_size(2);
    for (name, metrics) in
        [("streaming", MetricsConfig::streaming()), ("exact", MetricsConfig::exact())]
    {
        let scenario = base.with_metrics(metrics);
        group.bench_function(name, |b| {
            b.iter(|| {
                let report = run_protocol(
                    black_box(&scenario),
                    ProtocolKind::Flooding.to_protocol().as_ref(),
                );
                black_box(report)
            })
        });
    }
    group.finish();
}

/// Beacon suppression off vs on, SS-SPST-E at n = 500. Suppression prices the extra
/// per-round silence bookkeeping plus the phase-split accounting — and on a short run
/// mostly measures that the feature costs nothing when the network is still
/// converging (the steady-state byte win needs long runs; see `tests/silence.rs`).
fn bench_silence(c: &mut Criterion) {
    let base = {
        let mut s = Scenario::paper_default();
        s.n_nodes = 500;
        s.area_side_m = 2_800.0;
        s.group_size = 40;
        s.duration_s = 5.0;
        s.warmup_s = 1.0;
        s.medium = MediumConfig::grid().with_epoch(SimDuration::from_millis(200));
        s
    };
    let mut group = c.benchmark_group("manet/silence_n500");
    group.sample_size(3);
    for (name, silence) in [("off", SilenceConfig::off()), ("on", SilenceConfig::on())] {
        let scenario = base.with_silence(silence);
        group.bench_function(name, |b| {
            b.iter(|| {
                let report = run_protocol(
                    black_box(&scenario),
                    ProtocolKind::SsSpst(MetricKind::EnergyAware).to_protocol().as_ref(),
                );
                black_box(report)
            })
        });
    }
    group.finish();
}

/// The minimum-energy baselines at n = 500: MEM-Tree prices the centralized BIP tree
/// construction (an O(n·m) greedy over the t = 0 snapshot, rebuilt once per run) plus
/// source-tree forwarding; DCA-Forward layers per-child wake-window queries and
/// deferral timers on top under a 50 %-awake duty cycle. The pair prices the new
/// tree-construction hot path against the duty-aware forwarding overhead.
fn bench_min_energy(c: &mut Criterion) {
    let base = {
        let mut s = Scenario::paper_default();
        s.n_nodes = 500;
        s.area_side_m = 2_800.0;
        s.group_size = 40;
        s.duration_s = 5.0;
        s.warmup_s = 1.0;
        s.medium = MediumConfig::grid().with_epoch(SimDuration::from_millis(200));
        s
    };
    let duty_cycled = base.with_duty_cycle(1.0, 0.5).with_tx_power_control(true);
    let mut group = c.benchmark_group("manet/min_energy_n500");
    group.sample_size(3);
    for (name, scenario, kind) in [
        ("mem_tree", base, ProtocolKind::MemTree),
        ("dca_forward", duty_cycled, ProtocolKind::DcaForward),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let report = run_protocol(black_box(&scenario), kind.to_protocol().as_ref());
                black_box(report)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_metric_evaluation,
    bench_sync_stabilization,
    bench_broadcast_medium,
    bench_fault_recovery,
    bench_multi_group,
    bench_energy_lifecycle,
    bench_mac,
    bench_sharded_engine,
    bench_long_horizon,
    bench_silence,
    bench_min_energy
);
criterion_main!(benches);
