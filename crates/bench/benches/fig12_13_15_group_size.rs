//! Figures 12, 13 and 15: packet delivery ratio, control overhead and average delay as a
//! function of multicast group size, for MAODV, SS-SPST, SS-SPST-E and ODMRP. Prints the
//! regenerated tables, then times one representative cell.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ssmcast_scenario::{figure_to_text, run_figure, run_single_cell, FigureId, ProtocolKind};

const SCALE: f64 = 0.2;

fn print_figures() {
    for id in [FigureId::Fig12, FigureId::Fig13, FigureId::Fig15] {
        let result = run_figure(id, SCALE, 1);
        println!("\n{}", figure_to_text(&result));
    }
}

fn bench_group_size_cell(c: &mut Criterion) {
    print_figures();
    let mut group = c.benchmark_group("fig12_13_15");
    group.sample_size(10);
    group.bench_function("odmrp_group30", |b| {
        b.iter(|| black_box(run_single_cell(FigureId::Fig12, 30.0, ProtocolKind::Odmrp, SCALE)))
    });
    group.finish();
}

criterion_group!(benches, bench_group_size_cell);
criterion_main!(benches);
