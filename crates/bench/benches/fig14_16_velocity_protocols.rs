//! Figures 14 and 16: packet delivery ratio and energy per delivered packet as a function
//! of velocity, comparing MAODV, SS-SPST, SS-SPST-E and ODMRP. Prints the regenerated
//! tables, then times one representative cell.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ssmcast_scenario::{figure_to_text, run_figure, run_single_cell, FigureId, ProtocolKind};

const SCALE: f64 = 0.2;

fn print_figures() {
    for id in [FigureId::Fig14, FigureId::Fig16] {
        let result = run_figure(id, SCALE, 1);
        println!("\n{}", figure_to_text(&result));
    }
}

fn bench_protocol_cell(c: &mut Criterion) {
    print_figures();
    let mut group = c.benchmark_group("fig14_16");
    group.sample_size(10);
    group.bench_function("maodv_cell_v10", |b| {
        b.iter(|| black_box(run_single_cell(FigureId::Fig14, 10.0, ProtocolKind::Maodv, SCALE)))
    });
    group.finish();
}

criterion_group!(benches, bench_protocol_cell);
criterion_main!(benches);
