//! Figures 7, 8 and 9: packet delivery ratio, unavailability ratio and energy per packet
//! as a function of node velocity, for the four SS-SPST cost metrics. The bench prints the
//! regenerated figure tables once (reduced scale; see EXPERIMENTS.md), then times one
//! representative simulation cell.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ssmcast_core::MetricKind;
use ssmcast_scenario::{figure_to_text, run_figure, run_single_cell, FigureId, ProtocolKind};

/// Scale factor for the printed figures: 0.2 → 36 simulated seconds per cell.
const SCALE: f64 = 0.2;

fn print_figures() {
    for id in [FigureId::Fig7, FigureId::Fig8, FigureId::Fig9] {
        let result = run_figure(id, SCALE, 1);
        println!("\n{}", figure_to_text(&result));
    }
}

fn bench_velocity_cell(c: &mut Criterion) {
    print_figures();
    let mut group = c.benchmark_group("fig07_09");
    group.sample_size(10);
    group.bench_function("ss_spst_e_cell_v10", |b| {
        b.iter(|| {
            black_box(run_single_cell(
                FigureId::Fig7,
                10.0,
                ProtocolKind::SsSpst(MetricKind::EnergyAware),
                SCALE,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_velocity_cell);
criterion_main!(benches);
