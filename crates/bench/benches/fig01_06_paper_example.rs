//! Figures 1–6: the paper's worked example. Prints the stabilized tree, round count and
//! per-packet energy for every metric (the content of Figures 2, 3, 4 and 6), then times
//! the SS-SPST-E stabilization itself.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ssmcast_core::{figure1_topology, run_all_examples, MetricKind, MetricParams, SyncModel};
use ssmcast_manet::NodeId;

fn print_figure_tables() {
    let topo = figure1_topology();
    println!("\n=== Figures 1-6: SS-SPST variants on the example topology ===");
    println!(
        "{:<12} {:>7} {:>10} {:>12} {:>18}",
        "protocol", "rounds", "max depth", "parent(3)", "energy/packet (mJ)"
    );
    for r in run_all_examples() {
        println!(
            "{:<12} {:>7} {:>10} {:>12} {:>18.3}",
            r.kind.protocol_name(),
            r.rounds,
            r.tree.max_depth(),
            r.tree.parent(NodeId(3)).map(|p| p.to_string()).unwrap_or_else(|| "-".into()),
            r.per_packet_energy * 1e3
        );
        for (p, c, d) in r.tree.edges(&topo) {
            println!("    {:>2} -> {:<2} {:>8.2} m", p, c, d.unwrap_or(f64::NAN));
        }
    }
}

fn bench_example_stabilization(c: &mut Criterion) {
    print_figure_tables();
    let mut group = c.benchmark_group("fig01_06");
    group.sample_size(20);
    group.bench_function("stabilize_energy_aware", |b| {
        b.iter(|| {
            let mut model = SyncModel::new(
                figure1_topology(),
                MetricKind::EnergyAware,
                MetricParams::default(),
            );
            black_box(model.run_to_stabilization(200))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_example_stabilization);
criterion_main!(benches);
