//! Figures 10 and 11: packet delivery ratio and energy per packet as a function of the
//! beacon interval, SS-SPST vs SS-SPST-E. Prints the regenerated tables, then times one
//! representative cell.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ssmcast_core::MetricKind;
use ssmcast_scenario::{figure_to_text, run_figure, run_single_cell, FigureId, ProtocolKind};

const SCALE: f64 = 0.2;

fn print_figures() {
    for id in [FigureId::Fig10, FigureId::Fig11] {
        let result = run_figure(id, SCALE, 1);
        println!("\n{}", figure_to_text(&result));
    }
}

fn bench_beacon_cell(c: &mut Criterion) {
    print_figures();
    let mut group = c.benchmark_group("fig10_11");
    group.sample_size(10);
    group.bench_function("ss_spst_e_beacon_2s", |b| {
        b.iter(|| {
            black_box(run_single_cell(
                FigureId::Fig10,
                2.0,
                ProtocolKind::SsSpst(MetricKind::EnergyAware),
                SCALE,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_beacon_cell);
criterion_main!(benches);
