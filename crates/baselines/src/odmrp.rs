//! On-Demand Multicast Routing Protocol (ODMRP), Gerla/Lee/Chiang 1999.
//!
//! ODMRP is a mesh-based, on-demand protocol. While a source has data to send it
//! periodically floods a *Join Query*; receivers answer with *Join Replies* that travel
//! hop-by-hop back along the reverse path, marking every node on the way as part of the
//! *forwarding group*. Data packets are then re-broadcast by all forwarding-group members,
//! giving redundant paths (high delivery ratio, Figure 12/14) at the price of the highest
//! control and energy overheads of the protocols compared (Figures 13 and 16).
//!
//! ODMRP's mesh is naturally multi-group — each group builds its own forwarding group
//! from its own Join Query floods. The multi-session runtime realises exactly that by
//! instantiating one `OdmrpAgent` per (session, node); each session's mesh soft state
//! (reverse paths, forwarding-group lifetimes, dedup sets) is fully independent, while
//! all sessions contend on the one shared radio medium.

use ssmcast_dessim::{SimDuration, SimTime};
use ssmcast_manet::{DataTag, Disposition, NodeCtx, NodeId, Packet, ProtocolAgent};
use std::collections::HashSet;

/// Timer class for the periodic Join-Query refresh at the source.
const TIMER_REFRESH: u64 = 1;

/// ODMRP wire payloads.
#[derive(Clone, Debug, PartialEq)]
pub enum OdmrpPayload {
    /// Flooded by the source while it has data to send.
    JoinQuery {
        /// The multicast source that originated the query.
        origin: NodeId,
        /// Query sequence number (for duplicate suppression).
        seq: u64,
        /// Hops travelled so far.
        hop: u32,
    },
    /// Sent by group members back towards the source; every node that recognises itself
    /// as `next_hop` joins the forwarding group and propagates the reply upstream.
    JoinReply {
        /// The source the reply is heading to.
        source: NodeId,
        /// The neighbour that should process this reply (reverse-path next hop).
        next_hop: NodeId,
    },
    /// Multicast data.
    Data,
}

/// ODMRP configuration.
#[derive(Clone, Copy, Debug)]
pub struct OdmrpConfig {
    /// Join-Query refresh interval while traffic is flowing (the original paper defaults
    /// to a sub-second refresh; we use 1 s).
    pub refresh_interval: SimDuration,
    /// Forwarding-group soft-state lifetime (multiples of the refresh interval).
    pub fg_timeout_intervals: f64,
    /// Join-Query size on the wire, bytes.
    pub join_query_bytes: u32,
    /// Join-Reply size on the wire, bytes.
    pub join_reply_bytes: u32,
    /// How many data packets the source buffers while it has no forwarding mesh yet.
    pub max_buffered: usize,
}

impl Default for OdmrpConfig {
    fn default() -> Self {
        OdmrpConfig {
            refresh_interval: SimDuration::from_secs(1),
            fg_timeout_intervals: 3.0,
            join_query_bytes: 28,
            join_reply_bytes: 28,
            max_buffered: 64,
        }
    }
}

/// The per-node ODMRP state machine.
#[derive(Debug)]
pub struct OdmrpAgent {
    config: OdmrpConfig,
    /// Join-Query sequence numbers already processed (duplicate suppression for the flood).
    jq_seen: HashSet<u64>,
    /// Reverse-path next hop towards the source, learned from the freshest Join Query.
    upstream: Option<NodeId>,
    upstream_seq: u64,
    /// This node is in the forwarding group until this time.
    forwarding_until: SimTime,
    /// Data packets already handled (duplicate suppression for the mesh).
    seen_data: HashSet<u64>,
    /// Source-only: next Join-Query sequence number.
    jq_seq: u64,
    /// Source-only: when the application last produced data.
    last_app_data: Option<SimTime>,
    /// Source-only: whether the refresh timer is armed.
    refresh_armed: bool,
    /// Source-only: whether at least one Join Reply has come back (mesh exists).
    mesh_established: bool,
    /// Source-only: data buffered while the mesh is being built.
    buffered: Vec<(DataTag, u32)>,
}

impl OdmrpAgent {
    /// Create an agent with the given configuration.
    pub fn new(config: OdmrpConfig) -> Self {
        OdmrpAgent {
            config,
            jq_seen: HashSet::new(),
            upstream: None,
            upstream_seq: 0,
            forwarding_until: SimTime::ZERO,
            seen_data: HashSet::new(),
            jq_seq: 0,
            last_app_data: None,
            refresh_armed: false,
            mesh_established: false,
            buffered: Vec::new(),
        }
    }

    /// Create an agent with default parameters.
    pub fn with_defaults() -> Self {
        Self::new(OdmrpConfig::default())
    }

    /// True if this node is currently part of the forwarding group.
    pub fn is_forwarder(&self, now: SimTime) -> bool {
        now < self.forwarding_until
    }

    /// The reverse-path next hop towards the source, if known.
    pub fn upstream(&self) -> Option<NodeId> {
        self.upstream
    }

    fn fg_timeout(&self) -> SimDuration {
        self.config.refresh_interval.mul_f64(self.config.fg_timeout_intervals)
    }

    fn send_join_query(&mut self, ctx: &mut NodeCtx<'_, OdmrpPayload>) {
        let seq = self.jq_seq;
        self.jq_seq += 1;
        self.jq_seen.insert(seq);
        ctx.broadcast_control(
            self.config.join_query_bytes,
            ctx.radio.max_range_m,
            OdmrpPayload::JoinQuery { origin: ctx.id, seq, hop: 0 },
        );
    }

    fn flush_buffer(&mut self, ctx: &mut NodeCtx<'_, OdmrpPayload>) {
        for (tag, size) in std::mem::take(&mut self.buffered) {
            ctx.broadcast_data(size, ctx.radio.max_range_m, tag, OdmrpPayload::Data);
        }
    }
}

impl ProtocolAgent for OdmrpAgent {
    type Payload = OdmrpPayload;

    fn start(&mut self, _ctx: &mut NodeCtx<'_, OdmrpPayload>) {
        // On-demand: nothing happens until the application produces data.
    }

    fn on_packet(
        &mut self,
        ctx: &mut NodeCtx<'_, OdmrpPayload>,
        packet: &Packet<OdmrpPayload>,
    ) -> Disposition {
        match &packet.payload {
            OdmrpPayload::JoinQuery { origin, seq, hop } => {
                if !self.jq_seen.insert(*seq) {
                    return Disposition::Discarded;
                }
                // Backward learning: the sender is our next hop towards the source.
                self.upstream = Some(packet.sender);
                self.upstream_seq = *seq;
                // Members answer with a Join Reply that travels back along the reverse path.
                if ctx.is_member() && !ctx.is_source() {
                    ctx.broadcast_control(
                        self.config.join_reply_bytes,
                        ctx.radio.max_range_m,
                        OdmrpPayload::JoinReply { source: *origin, next_hop: packet.sender },
                    );
                }
                // Continue the flood.
                ctx.broadcast_control(
                    self.config.join_query_bytes,
                    ctx.radio.max_range_m,
                    OdmrpPayload::JoinQuery { origin: *origin, seq: *seq, hop: hop + 1 },
                );
                Disposition::Consumed
            }
            OdmrpPayload::JoinReply { source, next_hop } => {
                if *next_hop != ctx.id {
                    // Reply addressed to somebody else: overheard and dropped.
                    return Disposition::Discarded;
                }
                self.forwarding_until = ctx.now + self.fg_timeout();
                if ctx.is_source() {
                    self.mesh_established = true;
                    self.flush_buffer(ctx);
                } else if let Some(up) = self.upstream {
                    ctx.broadcast_control(
                        self.config.join_reply_bytes,
                        ctx.radio.max_range_m,
                        OdmrpPayload::JoinReply { source: *source, next_hop: up },
                    );
                }
                Disposition::Consumed
            }
            OdmrpPayload::Data => {
                let Some(tag) = packet.data else { return Disposition::Discarded };
                if !self.seen_data.insert(tag.seq) {
                    return Disposition::Discarded;
                }
                let member = ctx.is_member() && !ctx.is_source();
                if member {
                    ctx.deliver_data(tag);
                }
                let forwarder = self.is_forwarder(ctx.now);
                if forwarder {
                    ctx.broadcast_data(
                        packet.size_bytes,
                        ctx.radio.max_range_m,
                        tag,
                        OdmrpPayload::Data,
                    );
                }
                if member || forwarder {
                    Disposition::Consumed
                } else {
                    Disposition::Discarded
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_, OdmrpPayload>, kind: u64, _key: u64) {
        if kind != TIMER_REFRESH {
            return;
        }
        self.refresh_armed = false;
        let active = self
            .last_app_data
            .map(|t| ctx.now.saturating_since(t) <= self.fg_timeout())
            .unwrap_or(false);
        if active {
            self.send_join_query(ctx);
            ctx.set_timer(self.config.refresh_interval, TIMER_REFRESH, 0);
            self.refresh_armed = true;
        }
    }

    fn on_app_data(&mut self, ctx: &mut NodeCtx<'_, OdmrpPayload>, tag: DataTag, size: u32) {
        let first = self.last_app_data.is_none();
        self.last_app_data = Some(ctx.now);
        self.seen_data.insert(tag.seq);
        if first || !self.refresh_armed {
            self.send_join_query(ctx);
            ctx.set_timer(self.config.refresh_interval, TIMER_REFRESH, 0);
            self.refresh_armed = true;
        }
        if self.mesh_established {
            ctx.broadcast_data(size, ctx.radio.max_range_m, tag, OdmrpPayload::Data);
        } else if self.buffered.len() < self.config.max_buffered {
            // Route-acquisition latency: data waits until the first Join Reply arrives.
            self.buffered.push((tag, size));
        }
    }

    fn label(&self) -> &'static str {
        "ODMRP"
    }

    fn tree_parent(&self) -> Option<NodeId> {
        // The reverse-path next hop learned from the freshest Join Query — the closest
        // thing ODMRP's mesh has to a tree edge towards the source.
        self.upstream
    }

    /// Transient-fault injection: scramble the reverse path and forwarding-group soft
    /// state. The sub-second Join-Query refresh repairs this quickly — ODMRP pays for
    /// its robustness in control overhead, not recovery time.
    fn corrupt_state(&mut self, rng: &mut rand::rngs::StdRng) {
        use rand::Rng;
        if rng.gen::<bool>() {
            self.upstream = ssmcast_manet::scrambled_parent(rng);
            self.forwarding_until = if rng.gen::<bool>() { SimTime::MAX } else { SimTime::ZERO };
        } else {
            self.upstream = None;
            self.forwarding_until = SimTime::ZERO;
            self.mesh_established = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ssmcast_manet::{Action, GroupId, GroupRole, PacketClass, RadioConfig, Vec2};

    struct Harness {
        radio: RadioConfig,
        rng: StdRng,
        actions: Vec<Action<OdmrpPayload>>,
    }

    impl Harness {
        fn new() -> Self {
            Harness {
                radio: RadioConfig::default(),
                rng: StdRng::seed_from_u64(3),
                actions: Vec::new(),
            }
        }
        fn ctx(&mut self, now: SimTime, id: NodeId, role: GroupRole) -> NodeCtx<'_, OdmrpPayload> {
            self.actions.clear();
            NodeCtx::new(
                now,
                id,
                Vec2::ZERO,
                role,
                50,
                &self.radio,
                &mut self.rng,
                &mut self.actions,
            )
        }
    }

    fn tag(seq: u64) -> DataTag {
        DataTag { group: GroupId(0), origin: NodeId(0), seq, created_at: SimTime::ZERO }
    }

    #[test]
    fn source_floods_join_query_and_buffers_until_reply() {
        let mut h = Harness::new();
        let mut a = OdmrpAgent::with_defaults();
        {
            let mut ctx = h.ctx(SimTime::from_secs(1), NodeId(0), GroupRole::Source);
            a.on_app_data(&mut ctx, tag(1), 512);
        }
        // A Join Query goes out, but the data is buffered (no mesh yet).
        assert!(h.actions.iter().any(|x| matches!(
            x,
            Action::Broadcast { payload: OdmrpPayload::JoinQuery { .. }, .. }
        )));
        assert!(!h
            .actions
            .iter()
            .any(|x| matches!(x, Action::Broadcast { class: PacketClass::Data, .. })));
        assert_eq!(a.buffered.len(), 1);

        // A Join Reply addressed to the source establishes the mesh and flushes the buffer.
        let jr = Packet::control(
            NodeId(4),
            28,
            OdmrpPayload::JoinReply { source: NodeId(0), next_hop: NodeId(0) },
        );
        {
            let mut ctx = h.ctx(SimTime::from_secs(2), NodeId(0), GroupRole::Source);
            assert_eq!(a.on_packet(&mut ctx, &jr), Disposition::Consumed);
        }
        assert!(a.mesh_established);
        assert!(h
            .actions
            .iter()
            .any(|x| matches!(x, Action::Broadcast { class: PacketClass::Data, .. })));
        // Subsequent data goes straight out.
        {
            let mut ctx = h.ctx(SimTime::from_secs(3), NodeId(0), GroupRole::Source);
            a.on_app_data(&mut ctx, tag(2), 512);
        }
        assert!(h
            .actions
            .iter()
            .any(|x| matches!(x, Action::Broadcast { class: PacketClass::Data, .. })));
    }

    #[test]
    fn member_replies_to_join_query_and_relays_the_flood() {
        let mut h = Harness::new();
        let mut a = OdmrpAgent::with_defaults();
        let jq = Packet::control(
            NodeId(7),
            28,
            OdmrpPayload::JoinQuery { origin: NodeId(0), seq: 5, hop: 2 },
        );
        {
            let mut ctx = h.ctx(SimTime::from_secs(1), NodeId(3), GroupRole::Member);
            assert_eq!(a.on_packet(&mut ctx, &jq), Disposition::Consumed);
        }
        assert_eq!(a.upstream(), Some(NodeId(7)));
        let replies: Vec<_> = h
            .actions
            .iter()
            .filter(|x| {
                matches!(x, Action::Broadcast { payload: OdmrpPayload::JoinReply { .. }, .. })
            })
            .collect();
        assert_eq!(replies.len(), 1, "members answer with one Join Reply");
        assert!(h.actions.iter().any(|x| matches!(
            x,
            Action::Broadcast { payload: OdmrpPayload::JoinQuery { hop: 3, .. }, .. }
        )));
        // Duplicate query is pure overhead.
        {
            let mut ctx = h.ctx(SimTime::from_secs(1), NodeId(3), GroupRole::Member);
            assert_eq!(a.on_packet(&mut ctx, &jq), Disposition::Discarded);
        }
    }

    #[test]
    fn join_reply_recruits_forwarders_along_the_reverse_path() {
        let mut h = Harness::new();
        let mut a = OdmrpAgent::with_defaults();
        // Learn an upstream first.
        let jq = Packet::control(
            NodeId(1),
            28,
            OdmrpPayload::JoinQuery { origin: NodeId(0), seq: 1, hop: 1 },
        );
        {
            let mut ctx = h.ctx(SimTime::from_secs(1), NodeId(2), GroupRole::NonMember);
            a.on_packet(&mut ctx, &jq);
        }
        // A reply addressed to us makes us a forwarder and is propagated to our upstream.
        let jr = Packet::control(
            NodeId(9),
            28,
            OdmrpPayload::JoinReply { source: NodeId(0), next_hop: NodeId(2) },
        );
        {
            let mut ctx = h.ctx(SimTime::from_secs(1), NodeId(2), GroupRole::NonMember);
            assert_eq!(a.on_packet(&mut ctx, &jr), Disposition::Consumed);
        }
        assert!(a.is_forwarder(SimTime::from_secs(2)));
        assert!(h.actions.iter().any(|x| matches!(
            x,
            Action::Broadcast { payload: OdmrpPayload::JoinReply { next_hop: NodeId(1), .. }, .. }
        )));
        // A reply addressed to someone else is overheard.
        let other = Packet::control(
            NodeId(9),
            28,
            OdmrpPayload::JoinReply { source: NodeId(0), next_hop: NodeId(6) },
        );
        {
            let mut ctx = h.ctx(SimTime::from_secs(1), NodeId(2), GroupRole::NonMember);
            assert_eq!(a.on_packet(&mut ctx, &other), Disposition::Discarded);
        }
        // Forwarding-group membership expires.
        assert!(!a.is_forwarder(SimTime::from_secs(60)));
    }

    #[test]
    fn forwarders_rebroadcast_data_and_members_deliver_it_once() {
        let mut h = Harness::new();
        let mut a = OdmrpAgent::with_defaults();
        // Become a forwarder.
        let jq = Packet::control(
            NodeId(1),
            28,
            OdmrpPayload::JoinQuery { origin: NodeId(0), seq: 1, hop: 1 },
        );
        let jr = Packet::control(
            NodeId(9),
            28,
            OdmrpPayload::JoinReply { source: NodeId(0), next_hop: NodeId(2) },
        );
        {
            let mut ctx = h.ctx(SimTime::from_secs(1), NodeId(2), GroupRole::Member);
            a.on_packet(&mut ctx, &jq);
            a.on_packet(&mut ctx, &jr);
        }
        let data = Packet::data(NodeId(1), 512, tag(7), OdmrpPayload::Data);
        {
            let mut ctx = h.ctx(SimTime::from_secs(2), NodeId(2), GroupRole::Member);
            assert_eq!(a.on_packet(&mut ctx, &data), Disposition::Consumed);
        }
        assert!(h.actions.iter().any(|x| matches!(x, Action::DeliverData { .. })));
        assert!(h
            .actions
            .iter()
            .any(|x| matches!(x, Action::Broadcast { class: PacketClass::Data, .. })));
        // The duplicate arriving over another mesh path is suppressed.
        {
            let mut ctx = h.ctx(SimTime::from_secs(2), NodeId(2), GroupRole::Member);
            assert_eq!(a.on_packet(&mut ctx, &data), Disposition::Discarded);
        }
    }

    #[test]
    fn refresh_timer_stops_when_traffic_stops() {
        let mut h = Harness::new();
        let mut a = OdmrpAgent::with_defaults();
        {
            let mut ctx = h.ctx(SimTime::from_secs(1), NodeId(0), GroupRole::Source);
            a.on_app_data(&mut ctx, tag(1), 512);
        }
        // Long after the last data packet, the refresh timer fires and goes quiet.
        {
            let mut ctx = h.ctx(SimTime::from_secs(100), NodeId(0), GroupRole::Source);
            a.on_timer(&mut ctx, TIMER_REFRESH, 0);
        }
        assert!(
            !h.actions.iter().any(|x| matches!(x, Action::Broadcast { .. })),
            "no queries without traffic (on-demand behaviour)"
        );
    }
}
