//! Blind flooding: the simplest possible multicast "protocol".
//!
//! Every node re-broadcasts every data packet exactly once at maximum power. There is no
//! control traffic at all. Flooding is not evaluated in the paper but serves as a useful
//! reference point in tests and ablations: it upper-bounds the delivery ratio any protocol
//! can achieve on a given scenario and lower-bounds nothing — its energy cost is enormous.
//!
//! Multi-group runs instantiate one `FloodingAgent` per (session, node): the dedup set
//! is per session, so concurrent sessions flood independently even though their sources
//! reuse overlapping sequence numbers.

use ssmcast_manet::{DataTag, Disposition, NodeCtx, Packet, ProtocolAgent};
use std::collections::HashSet;

/// The flooding payload: only data, no control messages.
#[derive(Clone, Debug, PartialEq)]
pub struct FloodPayload;

/// Per-node flooding state: which packets we have already relayed.
#[derive(Debug, Default)]
pub struct FloodingAgent {
    seen: HashSet<u64>,
}

impl FloodingAgent {
    /// Create a flooding agent.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ProtocolAgent for FloodingAgent {
    type Payload = FloodPayload;

    fn start(&mut self, _ctx: &mut NodeCtx<'_, FloodPayload>) {}

    fn on_packet(
        &mut self,
        ctx: &mut NodeCtx<'_, FloodPayload>,
        packet: &Packet<FloodPayload>,
    ) -> Disposition {
        let Some(tag) = packet.data else { return Disposition::Discarded };
        if !self.seen.insert(tag.seq) {
            return Disposition::Discarded;
        }
        if ctx.is_member() && !ctx.is_source() {
            ctx.deliver_data(tag);
        }
        ctx.broadcast_data(packet.size_bytes, ctx.radio.max_range_m, tag, FloodPayload);
        Disposition::Consumed
    }

    fn on_timer(&mut self, _ctx: &mut NodeCtx<'_, FloodPayload>, _kind: u64, _key: u64) {}

    fn on_app_data(&mut self, ctx: &mut NodeCtx<'_, FloodPayload>, tag: DataTag, size: u32) {
        self.seen.insert(tag.seq);
        ctx.broadcast_data(size, ctx.radio.max_range_m, tag, FloodPayload);
    }

    fn label(&self) -> &'static str {
        "Flooding"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ssmcast_dessim::SimTime;
    use ssmcast_manet::{Action, GroupId, GroupRole, NodeId, PacketClass, RadioConfig, Vec2};

    fn tag(seq: u64) -> DataTag {
        DataTag { group: GroupId(0), origin: NodeId(0), seq, created_at: SimTime::ZERO }
    }

    #[test]
    fn each_packet_is_relayed_exactly_once() {
        let radio = RadioConfig::default();
        let mut rng = StdRng::seed_from_u64(1);
        let mut actions: Vec<Action<FloodPayload>> = Vec::new();
        let mut agent = FloodingAgent::new();
        let pkt = Packet::data(NodeId(3), 512, tag(1), FloodPayload);
        {
            let mut ctx = NodeCtx::new(
                SimTime::ZERO,
                NodeId(5),
                Vec2::ZERO,
                GroupRole::Member,
                10,
                &radio,
                &mut rng,
                &mut actions,
            );
            assert_eq!(agent.on_packet(&mut ctx, &pkt), Disposition::Consumed);
        }
        assert!(actions.iter().any(|a| matches!(a, Action::DeliverData { .. })));
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Broadcast { class: PacketClass::Data, .. })));
        actions.clear();
        {
            let mut ctx = NodeCtx::new(
                SimTime::ZERO,
                NodeId(5),
                Vec2::ZERO,
                GroupRole::Member,
                10,
                &radio,
                &mut rng,
                &mut actions,
            );
            assert_eq!(agent.on_packet(&mut ctx, &pkt), Disposition::Discarded);
        }
        assert!(actions.is_empty(), "duplicates trigger nothing");
    }
}
