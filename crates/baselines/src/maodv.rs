//! Multicast Ad hoc On-Demand Distance Vector routing (MAODV), Royer & Perkins 1999.
//!
//! MAODV maintains one shared multicast tree per group, rooted at a group leader (here:
//! the multicast source). This implementation preserves the behavioural signature the
//! paper compares against — tree-based forwarding, on-demand control traffic, the lowest
//! control overhead of the four protocols but also the lowest delivery ratio, and slow
//! repair under mobility — using a compact three-message realisation:
//!
//! * the leader floods a periodic **Group Hello** while it has traffic; the flood's
//!   reverse paths give every node a fresh next hop towards the leader (route discovery),
//! * members answer each Group Hello with a hop-by-hop **Join** that activates the nodes
//!   on the reverse path as tree routers (the role MACT plays in full MAODV),
//! * **Data** flows down the tree: a tree router accepts data only from its upstream next
//!   hop and re-broadcasts it; everybody else overhears.
//!
//! "One shared tree per group" extends to multi-group runs unchanged: the runtime
//! instantiates one `MaodvAgent` per (session, node), so each session keeps its own
//! leader-rooted tree, hello sequence space and activation soft state over the shared
//! medium.

use ssmcast_dessim::{SimDuration, SimTime};
use ssmcast_manet::{DataTag, Disposition, NodeCtx, NodeId, Packet, ProtocolAgent};
use std::collections::HashSet;

/// Timer class for the periodic Group Hello at the leader.
const TIMER_HELLO: u64 = 1;

/// MAODV wire payloads.
#[derive(Clone, Debug, PartialEq)]
pub enum MaodvPayload {
    /// Flooded from the group leader; establishes/refreshes routes towards the tree root.
    GroupHello {
        /// Hello sequence number.
        seq: u64,
        /// Hops travelled so far.
        hop: u32,
    },
    /// Hop-by-hop tree activation travelling towards the leader (plays the role of
    /// RREP/MACT in full MAODV).
    Join {
        /// The neighbour that should process this activation next.
        target: NodeId,
    },
    /// Multicast data.
    Data,
}

/// MAODV configuration.
#[derive(Clone, Copy, Debug)]
pub struct MaodvConfig {
    /// Group Hello interval (the MAODV draft uses 5 s).
    pub hello_interval: SimDuration,
    /// Tree-router soft state lifetime, in hello intervals.
    pub tree_timeout_intervals: f64,
    /// Group Hello size, bytes.
    pub hello_bytes: u32,
    /// Join size, bytes.
    pub join_bytes: u32,
    /// Data packets buffered at the source while the tree is being built.
    pub max_buffered: usize,
}

impl Default for MaodvConfig {
    fn default() -> Self {
        MaodvConfig {
            hello_interval: SimDuration::from_secs(5),
            tree_timeout_intervals: 2.5,
            hello_bytes: 24,
            join_bytes: 24,
            max_buffered: 64,
        }
    }
}

/// The per-node MAODV state machine.
#[derive(Debug)]
pub struct MaodvAgent {
    config: MaodvConfig,
    hello_seen: HashSet<u64>,
    /// Next hop towards the group leader and the hello sequence that taught it to us.
    upstream: Option<NodeId>,
    upstream_expires: SimTime,
    /// This node is an activated tree router until this time.
    on_tree_until: SimTime,
    seen_data: HashSet<u64>,
    /// Leader-only state.
    hello_seq: u64,
    last_app_data: Option<SimTime>,
    hello_armed: bool,
    tree_established: bool,
    buffered: Vec<(DataTag, u32)>,
}

impl MaodvAgent {
    /// Create an agent with the given configuration.
    pub fn new(config: MaodvConfig) -> Self {
        MaodvAgent {
            config,
            hello_seen: HashSet::new(),
            upstream: None,
            upstream_expires: SimTime::ZERO,
            on_tree_until: SimTime::ZERO,
            seen_data: HashSet::new(),
            hello_seq: 0,
            last_app_data: None,
            hello_armed: false,
            tree_established: false,
            buffered: Vec::new(),
        }
    }

    /// Create an agent with default parameters.
    pub fn with_defaults() -> Self {
        Self::new(MaodvConfig::default())
    }

    /// True if this node is an activated tree router at `now`.
    pub fn is_tree_router(&self, now: SimTime) -> bool {
        now < self.on_tree_until
    }

    /// The current next hop towards the group leader, if fresh.
    pub fn upstream(&self, now: SimTime) -> Option<NodeId> {
        if now < self.upstream_expires {
            self.upstream
        } else {
            None
        }
    }

    fn tree_timeout(&self) -> SimDuration {
        self.config.hello_interval.mul_f64(self.config.tree_timeout_intervals)
    }

    fn send_hello(&mut self, ctx: &mut NodeCtx<'_, MaodvPayload>) {
        let seq = self.hello_seq;
        self.hello_seq += 1;
        self.hello_seen.insert(seq);
        ctx.broadcast_control(
            self.config.hello_bytes,
            ctx.radio.max_range_m,
            MaodvPayload::GroupHello { seq, hop: 0 },
        );
    }

    fn flush_buffer(&mut self, ctx: &mut NodeCtx<'_, MaodvPayload>) {
        for (tag, size) in std::mem::take(&mut self.buffered) {
            ctx.broadcast_data(size, ctx.radio.max_range_m, tag, MaodvPayload::Data);
        }
    }
}

impl ProtocolAgent for MaodvAgent {
    type Payload = MaodvPayload;

    fn start(&mut self, _ctx: &mut NodeCtx<'_, MaodvPayload>) {
        // On-demand: the leader starts advertising only once it has data to send.
    }

    fn on_packet(
        &mut self,
        ctx: &mut NodeCtx<'_, MaodvPayload>,
        packet: &Packet<MaodvPayload>,
    ) -> Disposition {
        match &packet.payload {
            MaodvPayload::GroupHello { seq, hop } => {
                if !self.hello_seen.insert(*seq) {
                    return Disposition::Discarded;
                }
                // First copy of a hello arrives over the shortest path: its sender becomes
                // our next hop towards the leader.
                self.upstream = Some(packet.sender);
                self.upstream_expires = ctx.now + self.tree_timeout();
                // Members (re-)join the tree every hello period.
                if ctx.is_member() && !ctx.is_source() {
                    ctx.broadcast_control(
                        self.config.join_bytes,
                        ctx.radio.max_range_m,
                        MaodvPayload::Join { target: packet.sender },
                    );
                    self.on_tree_until = ctx.now + self.tree_timeout();
                }
                // Relay the flood.
                ctx.broadcast_control(
                    self.config.hello_bytes,
                    ctx.radio.max_range_m,
                    MaodvPayload::GroupHello { seq: *seq, hop: hop + 1 },
                );
                Disposition::Consumed
            }
            MaodvPayload::Join { target } => {
                if *target != ctx.id {
                    return Disposition::Discarded;
                }
                self.on_tree_until = ctx.now + self.tree_timeout();
                if ctx.is_source() {
                    self.tree_established = true;
                    self.flush_buffer(ctx);
                } else if let Some(up) = self.upstream(ctx.now) {
                    ctx.broadcast_control(
                        self.config.join_bytes,
                        ctx.radio.max_range_m,
                        MaodvPayload::Join { target: up },
                    );
                }
                Disposition::Consumed
            }
            MaodvPayload::Data => {
                let Some(tag) = packet.data else { return Disposition::Discarded };
                // Tree discipline: only data arriving from our upstream is ours to handle.
                if self.upstream(ctx.now) != Some(packet.sender) && !ctx.is_source() {
                    return Disposition::Discarded;
                }
                if !self.seen_data.insert(tag.seq) {
                    return Disposition::Discarded;
                }
                let member = ctx.is_member() && !ctx.is_source();
                if member {
                    ctx.deliver_data(tag);
                }
                let router = self.is_tree_router(ctx.now);
                if router {
                    ctx.broadcast_data(
                        packet.size_bytes,
                        ctx.radio.max_range_m,
                        tag,
                        MaodvPayload::Data,
                    );
                }
                if member || router {
                    Disposition::Consumed
                } else {
                    Disposition::Discarded
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_, MaodvPayload>, kind: u64, _key: u64) {
        if kind != TIMER_HELLO {
            return;
        }
        self.hello_armed = false;
        let active = self
            .last_app_data
            .map(|t| ctx.now.saturating_since(t) <= self.tree_timeout())
            .unwrap_or(false);
        if active {
            self.send_hello(ctx);
            ctx.set_timer(self.config.hello_interval, TIMER_HELLO, 0);
            self.hello_armed = true;
        }
    }

    fn on_app_data(&mut self, ctx: &mut NodeCtx<'_, MaodvPayload>, tag: DataTag, size: u32) {
        let first = self.last_app_data.is_none();
        self.last_app_data = Some(ctx.now);
        self.seen_data.insert(tag.seq);
        if first || !self.hello_armed {
            self.send_hello(ctx);
            ctx.set_timer(self.config.hello_interval, TIMER_HELLO, 0);
            self.hello_armed = true;
        }
        if self.tree_established {
            ctx.broadcast_data(size, ctx.radio.max_range_m, tag, MaodvPayload::Data);
        } else if self.buffered.len() < self.config.max_buffered {
            self.buffered.push((tag, size));
        }
    }

    fn label(&self) -> &'static str {
        "MAODV"
    }

    fn tree_parent(&self) -> Option<NodeId> {
        // The reverse-path next hop towards the group leader — MAODV's tree edge. No
        // freshness filter here: a stale pointer *should* read as illegitimate until
        // the next Group Hello repairs it.
        self.upstream
    }

    /// Transient-fault injection: either plant a false belief (a bogus upstream held
    /// forever) or wipe the route state entirely. Repair has to wait for the next
    /// Group Hello flood, which is what makes MAODV recover more slowly than a
    /// beacon-every-2-s SS-SPST variant under the same fault schedule.
    fn corrupt_state(&mut self, rng: &mut rand::rngs::StdRng) {
        use rand::Rng;
        if rng.gen::<bool>() {
            self.upstream = ssmcast_manet::scrambled_parent(rng);
            self.upstream_expires = SimTime::MAX;
            self.on_tree_until = if rng.gen::<bool>() { SimTime::MAX } else { SimTime::ZERO };
        } else {
            self.upstream = None;
            self.upstream_expires = SimTime::ZERO;
            self.on_tree_until = SimTime::ZERO;
            self.tree_established = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ssmcast_manet::{Action, GroupId, GroupRole, PacketClass, RadioConfig, Vec2};

    struct Harness {
        radio: RadioConfig,
        rng: StdRng,
        actions: Vec<Action<MaodvPayload>>,
    }

    impl Harness {
        fn new() -> Self {
            Harness {
                radio: RadioConfig::default(),
                rng: StdRng::seed_from_u64(3),
                actions: Vec::new(),
            }
        }
        fn ctx(&mut self, now: SimTime, id: NodeId, role: GroupRole) -> NodeCtx<'_, MaodvPayload> {
            self.actions.clear();
            NodeCtx::new(
                now,
                id,
                Vec2::ZERO,
                role,
                50,
                &self.radio,
                &mut self.rng,
                &mut self.actions,
            )
        }
    }

    fn tag(seq: u64) -> DataTag {
        DataTag { group: GroupId(0), origin: NodeId(0), seq, created_at: SimTime::ZERO }
    }

    #[test]
    fn leader_floods_hello_on_first_data_and_buffers_until_join() {
        let mut h = Harness::new();
        let mut a = MaodvAgent::with_defaults();
        {
            let mut ctx = h.ctx(SimTime::from_secs(1), NodeId(0), GroupRole::Source);
            a.on_app_data(&mut ctx, tag(1), 512);
        }
        assert!(h.actions.iter().any(|x| matches!(
            x,
            Action::Broadcast { payload: MaodvPayload::GroupHello { .. }, .. }
        )));
        assert_eq!(a.buffered.len(), 1, "data waits for the tree");
        // A Join addressed to the leader establishes the tree and releases the buffer.
        let join = Packet::control(NodeId(4), 24, MaodvPayload::Join { target: NodeId(0) });
        {
            let mut ctx = h.ctx(SimTime::from_secs(2), NodeId(0), GroupRole::Source);
            assert_eq!(a.on_packet(&mut ctx, &join), Disposition::Consumed);
        }
        assert!(a.tree_established);
        assert!(h
            .actions
            .iter()
            .any(|x| matches!(x, Action::Broadcast { class: PacketClass::Data, .. })));
    }

    #[test]
    fn members_join_on_hello_and_relays_activate_the_reverse_path() {
        let mut h = Harness::new();
        let mut member = MaodvAgent::with_defaults();
        let hello = Packet::control(NodeId(6), 24, MaodvPayload::GroupHello { seq: 3, hop: 2 });
        {
            let mut ctx = h.ctx(SimTime::from_secs(1), NodeId(9), GroupRole::Member);
            assert_eq!(member.on_packet(&mut ctx, &hello), Disposition::Consumed);
        }
        assert_eq!(member.upstream(SimTime::from_secs(2)), Some(NodeId(6)));
        assert!(h.actions.iter().any(|x| matches!(
            x,
            Action::Broadcast { payload: MaodvPayload::Join { target: NodeId(6) }, .. }
        )));
        assert!(h.actions.iter().any(|x| matches!(
            x,
            Action::Broadcast { payload: MaodvPayload::GroupHello { hop: 3, .. }, .. }
        )));

        // A relay that learned its upstream forwards the activation one hop further.
        let mut relay = MaodvAgent::with_defaults();
        let hello2 = Packet::control(NodeId(2), 24, MaodvPayload::GroupHello { seq: 3, hop: 1 });
        {
            let mut ctx = h.ctx(SimTime::from_secs(1), NodeId(6), GroupRole::NonMember);
            relay.on_packet(&mut ctx, &hello2);
        }
        let join = Packet::control(NodeId(9), 24, MaodvPayload::Join { target: NodeId(6) });
        {
            let mut ctx = h.ctx(SimTime::from_secs(1), NodeId(6), GroupRole::NonMember);
            assert_eq!(relay.on_packet(&mut ctx, &join), Disposition::Consumed);
        }
        assert!(relay.is_tree_router(SimTime::from_secs(2)));
        assert!(h.actions.iter().any(|x| matches!(
            x,
            Action::Broadcast { payload: MaodvPayload::Join { target: NodeId(2) }, .. }
        )));
        // Activation soft state eventually expires (slow repair under mobility).
        assert!(!relay.is_tree_router(SimTime::from_secs(60)));
    }

    #[test]
    fn data_follows_the_tree_and_everything_else_is_overheard() {
        let mut h = Harness::new();
        let mut a = MaodvAgent::with_defaults();
        // Learn upstream (node 1) and become an activated router.
        let hello = Packet::control(NodeId(1), 24, MaodvPayload::GroupHello { seq: 0, hop: 1 });
        let join = Packet::control(NodeId(8), 24, MaodvPayload::Join { target: NodeId(4) });
        {
            let mut ctx = h.ctx(SimTime::from_secs(1), NodeId(4), GroupRole::Member);
            a.on_packet(&mut ctx, &hello);
            a.on_packet(&mut ctx, &join);
        }
        // Data from the upstream is delivered and forwarded.
        let data = Packet::data(NodeId(1), 512, tag(1), MaodvPayload::Data);
        {
            let mut ctx = h.ctx(SimTime::from_secs(2), NodeId(4), GroupRole::Member);
            assert_eq!(a.on_packet(&mut ctx, &data), Disposition::Consumed);
        }
        assert!(h.actions.iter().any(|x| matches!(x, Action::DeliverData { .. })));
        assert!(h
            .actions
            .iter()
            .any(|x| matches!(x, Action::Broadcast { class: PacketClass::Data, .. })));
        // Data from a non-upstream neighbour is overhearing.
        let stray = Packet::data(NodeId(7), 512, tag(2), MaodvPayload::Data);
        {
            let mut ctx = h.ctx(SimTime::from_secs(2), NodeId(4), GroupRole::Member);
            assert_eq!(a.on_packet(&mut ctx, &stray), Disposition::Discarded);
        }
        // Duplicate hello is suppressed.
        {
            let mut ctx = h.ctx(SimTime::from_secs(2), NodeId(4), GroupRole::Member);
            assert_eq!(a.on_packet(&mut ctx, &hello), Disposition::Discarded);
        }
    }

    #[test]
    fn hello_stops_when_traffic_stops() {
        let mut h = Harness::new();
        let mut a = MaodvAgent::with_defaults();
        {
            let mut ctx = h.ctx(SimTime::from_secs(1), NodeId(0), GroupRole::Source);
            a.on_app_data(&mut ctx, tag(1), 512);
        }
        {
            let mut ctx = h.ctx(SimTime::from_secs(200), NodeId(0), GroupRole::Source);
            a.on_timer(&mut ctx, TIMER_HELLO, 0);
        }
        assert!(!h.actions.iter().any(|x| matches!(x, Action::Broadcast { .. })));
    }
}
