//! # ssmcast-baselines — the multicast protocols the paper compares against
//!
//! * [`odmrp`] — On-Demand Multicast Routing Protocol: mesh-based, flooding Join Queries,
//!   redundant forwarding group. Best delivery ratio, highest control and energy cost.
//! * [`maodv`] — Multicast AODV: shared tree rooted at a group leader, on-demand control,
//!   lowest control overhead and lowest delivery ratio.
//! * [`flooding`] — blind flooding, used as a reference upper bound on deliverability.
//! * [`min_energy`] — MEM-Tree and DCA-Forward: forwarding agents for a precomputed
//!   minimum-energy (BIP) multicast tree, the latter duty-cycle-aware. Lower bounds on
//!   energy cost; no stabilization.
//!
//! All of them implement [`ssmcast_manet::ProtocolAgent`] and run unchanged in the same
//! simulator and scenarios as the SS-SPST family.

#![warn(missing_docs)]

pub mod flooding;
pub mod maodv;
pub mod min_energy;
pub mod odmrp;

pub use flooding::{FloodPayload, FloodingAgent};
pub use maodv::{MaodvAgent, MaodvConfig, MaodvPayload};
pub use min_energy::{MinEnergyAgent, MinEnergyPayload};
pub use odmrp::{OdmrpAgent, OdmrpConfig, OdmrpPayload};
