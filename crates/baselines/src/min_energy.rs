//! Minimum-energy multicast forwarding agents: MEM-Tree and DCA-Forward.
//!
//! Both run a *precomputed* minimum-energy tree (the BIP construction in
//! `ssmcast_core::min_energy`, built by the scenario layer from the t = 0 topology
//! snapshot) rather than stabilizing one in-network. They are the "how cheap could
//! multicast possibly be" baselines the self-stabilizing protocols are measured
//! against: no beacons, no neighbour tables, no repair — just tree forwarding with
//! power control, which also means the tree silently rots as nodes move or die.
//!
//! * [`MinEnergyAgent`] in **MEM-Tree** mode forwards each packet immediately to its
//!   forwarding-set children, priced at the farthest child (broadcast advantage).
//! * In **DCA-Forward** mode the agent also knows the run's [`DutySchedule`] and defers
//!   each child's copy into that child's wake window: children awake at the delivery
//!   instant are served now in one batched transmission priced at the farthest awake
//!   child; sleeping children get a timer that fires exactly one delivery-delay before
//!   their next wake, so the frame lands in the open window instead of being lost.

use ssmcast_manet::{DataTag, Disposition, DutySchedule, NodeCtx, NodeId, Packet, ProtocolAgent};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Tree forwarding needs no control traffic: the payload is data-only, like flooding's.
#[derive(Clone, Debug, PartialEq)]
pub struct MinEnergyPayload;

/// Safety margin applied to the farthest-child distance when choosing a transmit
/// range, matching the SS-SPST data plane's allowance for mobility drift.
const RANGE_MARGIN: f64 = 1.10;

/// Timer kind for deferred duty-cycle-aware forwards (key = packet sequence number).
const TIMER_DEFER: u64 = 1;

/// Wake windows each child is served in under DCA-Forward. One copy per window with
/// no acknowledgements means a single collision or channel loss starves the child's
/// whole subtree; a second window squares the per-hop loss probability at a bounded
/// energy premium (≤ 2× the tree's transmissions, still far below flooding).
const DCA_TRIES: u8 = 2;

struct PendingForward {
    tag: DataTag,
    size_bytes: u32,
    /// Indices into `children` still owed a copy, with serve attempts left for each.
    remaining: Vec<(usize, u8)>,
}

/// Per-(session, node) state for MEM-Tree / DCA-Forward: the node's slice of the
/// precomputed minimum-energy tree, plus (in DCA mode) the shared duty schedule.
pub struct MinEnergyAgent {
    parent: Option<NodeId>,
    /// Forwarding-set children with their snapshot distances.
    children: Vec<(NodeId, f64)>,
    /// Duty schedule for DCA-Forward; `None` selects plain MEM-Tree forwarding.
    duty: Option<Arc<DutySchedule>>,
    seen: HashSet<u64>,
    pending: HashMap<u64, PendingForward>,
}

impl MinEnergyAgent {
    /// MEM-Tree: forward immediately, priced at the farthest forwarding child.
    pub fn mem_tree(parent: Option<NodeId>, children: Vec<(NodeId, f64)>) -> Self {
        MinEnergyAgent {
            parent,
            children,
            duty: None,
            seen: HashSet::new(),
            pending: HashMap::new(),
        }
    }

    /// DCA-Forward: defer each child's copy into its wake window under `duty`.
    pub fn dca_forward(
        parent: Option<NodeId>,
        children: Vec<(NodeId, f64)>,
        duty: Arc<DutySchedule>,
    ) -> Self {
        MinEnergyAgent {
            parent,
            children,
            duty: Some(duty),
            seen: HashSet::new(),
            pending: HashMap::new(),
        }
    }

    fn tx_range(&self, ctx: &NodeCtx<'_, MinEnergyPayload>, farthest: f64) -> f64 {
        (farthest * RANGE_MARGIN).min(ctx.radio.max_range_m)
    }

    /// One batched transmission to every child awake at the delivery instant; a timer
    /// one delivery-delay before the earliest remaining wake for the rest.
    fn forward(&mut self, ctx: &mut NodeCtx<'_, MinEnergyPayload>, seq: u64) {
        let Some(p) = self.pending.get_mut(&seq) else { return };
        let Some(duty) = &self.duty else {
            // MEM-Tree: everyone is served now, priced at the farthest child.
            let farthest =
                p.remaining.iter().map(|&(i, _)| self.children[i].1).fold(0.0f64, f64::max);
            let (tag, size) = (p.tag, p.size_bytes);
            self.pending.remove(&seq);
            let range = self.tx_range(ctx, farthest);
            ctx.broadcast_data(size, range, tag, MinEnergyPayload);
            return;
        };
        let delivery_at = ctx.now + ctx.radio.delivery_delay(p.size_bytes);
        let mut farthest_awake = 0.0f64;
        let mut next_wake = None;
        let fold_wake = |next_wake: &mut Option<ssmcast_dessim::SimTime>,
                         wake: ssmcast_dessim::SimTime| {
            *next_wake = Some(next_wake.map_or(wake, |w| w.min(wake)));
        };
        let children = &self.children;
        p.remaining.retain_mut(|(i, tries)| {
            let (child, dist) = children[*i];
            if duty.is_awake(child, delivery_at) {
                farthest_awake = farthest_awake.max(dist);
                *tries -= 1;
                if *tries == 0 {
                    return false;
                }
                // Served, but without acknowledgements the copy may still have been
                // lost: schedule one more serve a full period out — the child's next
                // window, at the same in-window offset.
                fold_wake(&mut next_wake, delivery_at + duty.period());
                true
            } else {
                fold_wake(&mut next_wake, duty.next_awake_at(child, delivery_at));
                true
            }
        });
        let (tag, size) = (p.tag, p.size_bytes);
        if p.remaining.is_empty() {
            self.pending.remove(&seq);
        }
        if farthest_awake > 0.0 {
            let range = self.tx_range(ctx, farthest_awake);
            ctx.broadcast_data(size, range, tag, MinEnergyPayload);
        }
        if let Some(wake) = next_wake {
            // Fire one delivery-delay before the wake so the frame lands as the window
            // opens (`wake > delivery_at` here, so the delay is positive) — plus a
            // random stagger across the first half of the window. Without the stagger
            // every packet queued during the same sleep interval fires at window-open
            // and the copies collide on air; the child is awake for the whole window,
            // so any instant in the first half delivers equally well.
            let stagger = ctx.jitter(duty.awake_len().mul_f64(0.5));
            ctx.set_timer(wake.saturating_since(delivery_at) + stagger, TIMER_DEFER, seq);
        }
    }

    fn accept(&mut self, ctx: &mut NodeCtx<'_, MinEnergyPayload>, tag: DataTag, size: u32) {
        if !self.children.is_empty() {
            // The redundant second serve only pays off when radios actually sleep;
            // with an always-awake schedule (or plain MEM-Tree) one copy is the tree.
            let tries = match &self.duty {
                Some(d) if d.is_on() => DCA_TRIES,
                _ => 1,
            };
            self.pending.insert(
                tag.seq,
                PendingForward {
                    tag,
                    size_bytes: size,
                    remaining: (0..self.children.len()).map(|i| (i, tries)).collect(),
                },
            );
            self.forward(ctx, tag.seq);
        }
    }
}

impl ProtocolAgent for MinEnergyAgent {
    type Payload = MinEnergyPayload;

    fn start(&mut self, _ctx: &mut NodeCtx<'_, MinEnergyPayload>) {}

    fn on_packet(
        &mut self,
        ctx: &mut NodeCtx<'_, MinEnergyPayload>,
        packet: &Packet<MinEnergyPayload>,
    ) -> Disposition {
        let Some(tag) = packet.data else { return Disposition::Discarded };
        if !self.seen.insert(tag.seq) {
            return Disposition::Discarded;
        }
        let member = ctx.is_member() && !ctx.is_source();
        if member {
            ctx.deliver_data(tag);
        }
        if member || !self.children.is_empty() {
            self.accept(ctx, tag, packet.size_bytes);
            Disposition::Consumed
        } else {
            Disposition::Discarded
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_, MinEnergyPayload>, kind: u64, key: u64) {
        if kind == TIMER_DEFER {
            self.forward(ctx, key);
        }
    }

    fn on_app_data(&mut self, ctx: &mut NodeCtx<'_, MinEnergyPayload>, tag: DataTag, size: u32) {
        self.seen.insert(tag.seq);
        self.accept(ctx, tag, size);
    }

    fn label(&self) -> &'static str {
        if self.duty.is_some() {
            "DCA-Forward"
        } else {
            "MEM-Tree"
        }
    }

    fn tree_parent(&self) -> Option<NodeId> {
        self.parent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ssmcast_dessim::{SimDuration, SimTime};
    use ssmcast_manet::{Action, GroupId, GroupRole, PacketClass, RadioConfig, Vec2};

    fn tag(seq: u64) -> DataTag {
        DataTag { group: GroupId(0), origin: NodeId(0), seq, created_at: SimTime::ZERO }
    }

    fn drive<R>(
        agent: &mut MinEnergyAgent,
        now: SimTime,
        role: GroupRole,
        f: impl FnOnce(&mut MinEnergyAgent, &mut NodeCtx<'_, MinEnergyPayload>) -> R,
    ) -> (R, Vec<Action<MinEnergyPayload>>) {
        let radio = RadioConfig::default();
        let mut rng = StdRng::seed_from_u64(9);
        let mut actions = Vec::new();
        let r = {
            let mut ctx =
                NodeCtx::new(now, NodeId(1), Vec2::ZERO, role, 8, &radio, &mut rng, &mut actions);
            f(agent, &mut ctx)
        };
        (r, actions)
    }

    #[test]
    fn mem_tree_forwards_once_at_farthest_child_range() {
        let mut agent =
            MinEnergyAgent::mem_tree(Some(NodeId(0)), vec![(NodeId(2), 80.0), (NodeId(3), 120.0)]);
        let pkt = Packet::data(NodeId(0), 512, tag(7), MinEnergyPayload);
        let (disp, actions) =
            drive(&mut agent, SimTime::ZERO, GroupRole::Member, |a, ctx| a.on_packet(ctx, &pkt));
        assert_eq!(disp, Disposition::Consumed);
        assert!(actions.iter().any(|a| matches!(a, Action::DeliverData { .. })));
        let ranges: Vec<f64> = actions
            .iter()
            .filter_map(|a| match a {
                Action::Broadcast { class: PacketClass::Data, range_m, .. } => Some(*range_m),
                _ => None,
            })
            .collect();
        assert_eq!(ranges.len(), 1, "one batched transmission");
        assert!((ranges[0] - 120.0 * RANGE_MARGIN).abs() < 1e-9);
        // A second copy of the same packet does nothing.
        let (disp, actions) =
            drive(&mut agent, SimTime::ZERO, GroupRole::Member, |a, ctx| a.on_packet(ctx, &pkt));
        assert_eq!(disp, Disposition::Discarded);
        assert!(actions.is_empty());
    }

    #[test]
    fn non_tree_non_member_discards() {
        let mut agent = MinEnergyAgent::mem_tree(None, Vec::new());
        let pkt = Packet::data(NodeId(0), 512, tag(1), MinEnergyPayload);
        let (disp, actions) =
            drive(&mut agent, SimTime::ZERO, GroupRole::NonMember, |a, ctx| a.on_packet(ctx, &pkt));
        assert_eq!(disp, Disposition::Discarded);
        assert!(actions.is_empty());
    }

    #[test]
    fn dca_batches_awake_children_and_defers_sleepers() {
        // Period 1 s, awake 0.5 s. Child 2 (phase 0) is awake at t=0; child 3
        // (phase 0.5 s) sleeps [0, 0.5) and wakes at 0.5 s.
        let duty = Arc::new(DutySchedule::with_phases(
            1_000_000_000,
            500_000_000,
            vec![0, 0, 0, 500_000_000],
        ));
        let mut agent = MinEnergyAgent::dca_forward(
            Some(NodeId(0)),
            vec![(NodeId(2), 80.0), (NodeId(3), 120.0)],
            duty,
        );
        let pkt = Packet::data(NodeId(0), 512, tag(7), MinEnergyPayload);
        let (_, actions) =
            drive(&mut agent, SimTime::ZERO, GroupRole::NonMember, |a, ctx| a.on_packet(ctx, &pkt));
        // Immediate batch covers only the awake child 2 → priced at 80 m.
        let bcasts: Vec<f64> = actions
            .iter()
            .filter_map(|a| match a {
                Action::Broadcast { class: PacketClass::Data, range_m, .. } => Some(*range_m),
                _ => None,
            })
            .collect();
        assert_eq!(bcasts.len(), 1);
        assert!((bcasts[0] - 80.0 * RANGE_MARGIN).abs() < 1e-9);
        // And a timer is armed for the sleeper's wake window.
        let delay = actions
            .iter()
            .find_map(|a| match a {
                Action::SetTimer { delay, kind: TIMER_DEFER, key: 7 } => Some(*delay),
                _ => None,
            })
            .expect("deferred forward armed");
        let radio = RadioConfig::default();
        let dd = radio.delivery_delay(512);
        // The deferred copy lands inside the first half of the sleeper's wake window
        // ([0.5 s, 0.75 s)): one delivery-delay after the fire instant, staggered to
        // keep back-to-back deferrals from colliding at window-open.
        let lands_at = SimTime::ZERO + delay + dd;
        let wake = SimTime::ZERO + SimDuration::from_nanos(500_000_000);
        assert!(lands_at >= wake, "must not land before the window opens");
        assert!(lands_at < wake + SimDuration::from_nanos(250_000_000));
        // Firing the timer sends the deferred copy priced at the sleeper's distance
        // (child 2 is asleep by then, so it does not stretch the range).
        let (_, actions) =
            drive(&mut agent, SimTime::ZERO + delay, GroupRole::NonMember, |a, ctx| {
                a.on_timer(ctx, TIMER_DEFER, 7)
            });
        let bcasts: Vec<f64> = actions
            .iter()
            .filter_map(|a| match a {
                Action::Broadcast { class: PacketClass::Data, range_m, .. } => Some(*range_m),
                _ => None,
            })
            .collect();
        assert_eq!(bcasts.len(), 1, "deferred copy goes out exactly once");
        assert!((bcasts[0] - 120.0 * RANGE_MARGIN).abs() < 1e-9);
        // Each child is owed one redundant serve (DCA_TRIES = 2): keep firing the
        // armed timers and check the packet drains within the bounded tx budget.
        let mut now = SimTime::ZERO + delay;
        let mut extra_bcasts = 0;
        let mut next_delay = actions.iter().find_map(|a| match a {
            Action::SetTimer { delay, kind: TIMER_DEFER, key: 7 } => Some(*delay),
            _ => None,
        });
        let mut fires = 0;
        while let Some(d) = next_delay {
            fires += 1;
            assert!(fires <= 2 * DCA_TRIES as usize, "retry machinery must stay bounded");
            now += d;
            let (_, actions) = drive(&mut agent, now, GroupRole::NonMember, |a, ctx| {
                a.on_timer(ctx, TIMER_DEFER, 7)
            });
            extra_bcasts += actions
                .iter()
                .filter(|a| matches!(a, Action::Broadcast { class: PacketClass::Data, .. }))
                .count();
            next_delay = actions.iter().find_map(|a| match a {
                Action::SetTimer { delay, kind: TIMER_DEFER, key: 7 } => Some(*delay),
                _ => None,
            });
        }
        // 2 children × 2 tries = 4 serves total; 2 already went out above.
        assert!(extra_bcasts <= 2, "at most one redundant serve per child: {extra_bcasts}");
        // Fully drained: a stray timer fire does nothing.
        let (_, actions) =
            drive(&mut agent, now, GroupRole::NonMember, |a, ctx| a.on_timer(ctx, TIMER_DEFER, 7));
        assert!(actions.is_empty());
    }

    #[test]
    fn dca_with_everyone_awake_degenerates_to_mem_tree() {
        let duty = Arc::new(DutySchedule::always_awake());
        let mut agent =
            MinEnergyAgent::dca_forward(None, vec![(NodeId(2), 80.0), (NodeId(3), 120.0)], duty);
        let (_, actions) = drive(&mut agent, SimTime::ZERO, GroupRole::Source, |a, ctx| {
            a.on_app_data(ctx, tag(1), 512)
        });
        let bcasts = actions
            .iter()
            .filter(|a| matches!(a, Action::Broadcast { class: PacketClass::Data, .. }))
            .count();
        let timers = actions.iter().filter(|a| matches!(a, Action::SetTimer { .. })).count();
        assert_eq!((bcasts, timers), (1, 0));
    }
}
