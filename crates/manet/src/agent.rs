//! The interface between protocol implementations and the network runtime.
//!
//! A protocol (SS-SPST*, MAODV, ODMRP, flooding, ...) is implemented as one
//! [`ProtocolAgent`] instance per node. Agents are purely reactive: the runtime calls them
//! on packet receptions, timer expiries and application sends, and they respond by pushing
//! [`Action`]s (broadcasts, timers, data deliveries) into the provided [`NodeCtx`]. This
//! keeps agents free of borrows into the simulator and makes them trivially unit-testable.

use crate::energy::RadioConfig;
use crate::geometry::Vec2;
use crate::node::{GroupRole, NodeId};
use crate::packet::{DataTag, Packet, PacketClass};
use rand::rngs::StdRng;
use ssmcast_dessim::{SimDuration, SimTime};

/// How a received packet was used, which decides the energy accounting category.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Disposition {
    /// The packet was useful to this node (consumed, forwarded, or used to update state).
    Consumed,
    /// The packet was received only because of the broadcast medium and thrown away —
    /// this is the paper's overhearing / discard energy.
    Discarded,
}

/// An effect requested by an agent, applied by the runtime after the callback returns.
#[derive(Clone, Debug)]
pub enum Action<P> {
    /// Broadcast a packet with power sufficient to reach `range_m` metres.
    Broadcast {
        /// Control or data.
        class: PacketClass,
        /// Size on the wire, bytes.
        size_bytes: u32,
        /// Requested transmission range in metres (clamped to the radio maximum).
        range_m: f64,
        /// Data tag if this frame carries application data.
        data: Option<DataTag>,
        /// Protocol payload.
        payload: P,
    },
    /// Arm (or re-arm) a timer identified by `(kind, key)`.
    SetTimer {
        /// Delay from now.
        delay: SimDuration,
        /// Protocol-defined timer class (e.g. "beacon", "join query refresh").
        kind: u64,
        /// Discriminator within a class (e.g. a destination id); use 0 when unused.
        key: u64,
    },
    /// Cancel a pending timer identified by `(kind, key)`, if any.
    CancelTimer {
        /// Timer class.
        kind: u64,
        /// Discriminator.
        key: u64,
    },
    /// Report that an application data packet reached this node's application layer.
    DeliverData {
        /// The end-to-end identity of the delivered packet.
        tag: DataTag,
    },
}

/// Per-callback context handed to an agent.
pub struct NodeCtx<'a, P> {
    /// Current simulated time.
    pub now: SimTime,
    /// This node's identifier.
    pub id: NodeId,
    /// This node's current position.
    pub position: Vec2,
    /// This node's role in the multicast group under study.
    pub role: GroupRole,
    /// Total number of nodes in the network (the paper bounds hop counts by `N`).
    pub n_nodes: usize,
    /// Shared radio configuration (ranges, bitrate, energy model).
    pub radio: &'a RadioConfig,
    /// Per-node protocol RNG (for jitter); deterministic per scenario seed.
    pub rng: &'a mut StdRng,
    actions: &'a mut Vec<Action<P>>,
}

impl<'a, P> NodeCtx<'a, P> {
    /// Create a context. Used by the runtime and by unit tests that drive agents directly.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        now: SimTime,
        id: NodeId,
        position: Vec2,
        role: GroupRole,
        n_nodes: usize,
        radio: &'a RadioConfig,
        rng: &'a mut StdRng,
        actions: &'a mut Vec<Action<P>>,
    ) -> Self {
        NodeCtx { now, id, position, role, n_nodes, radio, rng, actions }
    }

    /// True if this node is a member (or the source) of the group under study.
    pub fn is_member(&self) -> bool {
        self.role.is_member()
    }

    /// True if this node is the multicast source.
    pub fn is_source(&self) -> bool {
        self.role.is_source()
    }

    /// Broadcast a control packet.
    pub fn broadcast_control(&mut self, size_bytes: u32, range_m: f64, payload: P) {
        self.actions.push(Action::Broadcast {
            class: PacketClass::Control,
            size_bytes,
            range_m,
            data: None,
            payload,
        });
    }

    /// Broadcast a data packet carrying `tag`.
    pub fn broadcast_data(&mut self, size_bytes: u32, range_m: f64, tag: DataTag, payload: P) {
        self.actions.push(Action::Broadcast {
            class: PacketClass::Data,
            size_bytes,
            range_m,
            data: Some(tag),
            payload,
        });
    }

    /// Arm a timer `delay` from now. Re-arming an already pending `(kind, key)` replaces it.
    pub fn set_timer(&mut self, delay: SimDuration, kind: u64, key: u64) {
        self.actions.push(Action::SetTimer { delay, kind, key });
    }

    /// Cancel a pending timer.
    pub fn cancel_timer(&mut self, kind: u64, key: u64) {
        self.actions.push(Action::CancelTimer { kind, key });
    }

    /// Report delivery of application data to this node.
    pub fn deliver_data(&mut self, tag: DataTag) {
        self.actions.push(Action::DeliverData { tag });
    }

    /// A uniformly random jitter in `[0, max)`, convenient for desynchronising periodic
    /// protocol timers.
    pub fn jitter(&mut self, max: SimDuration) -> SimDuration {
        use rand::Rng;
        let f: f64 = self.rng.gen_range(0.0..1.0);
        max.mul_f64(f)
    }

    /// Number of actions queued so far in this callback (mostly useful in tests).
    pub fn pending_actions(&self) -> usize {
        self.actions.len()
    }
}

/// A multicast protocol implementation, instantiated once per node.
///
/// Agents are `Send` (and payloads `Send`) so the sharded engine can move each shard's
/// agents onto its worker thread; agents never need to be `Sync` — exactly one thread
/// drives any given agent at a time.
pub trait ProtocolAgent: Send {
    /// The protocol's wire payload type.
    type Payload: Clone + std::fmt::Debug + Send;

    /// Called once at simulation start (time zero) for every node.
    fn start(&mut self, ctx: &mut NodeCtx<'_, Self::Payload>);

    /// Called when a packet is received (after a successful, non-collided reception).
    /// The returned [`Disposition`] selects the energy accounting category.
    fn on_packet(
        &mut self,
        ctx: &mut NodeCtx<'_, Self::Payload>,
        packet: &Packet<Self::Payload>,
    ) -> Disposition;

    /// Called when a timer armed via [`NodeCtx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut NodeCtx<'_, Self::Payload>, kind: u64, key: u64);

    /// Called at the multicast source when the application generates a data packet.
    fn on_app_data(&mut self, ctx: &mut NodeCtx<'_, Self::Payload>, tag: DataTag, size_bytes: u32);

    /// Short protocol name for reports ("SS-SPST-E", "ODMRP", ...).
    fn label(&self) -> &'static str {
        "protocol"
    }

    /// The node's current parent in the protocol's distribution structure, if it
    /// maintains one. Stabilization probes use this to evaluate the legitimacy
    /// predicate (valid, loop-free, source-rooted tree); structure-free protocols such
    /// as blind flooding keep the default `None` and are never structurally legitimate.
    fn tree_parent(&self) -> Option<NodeId> {
        None
    }

    /// Transient-fault hook: scramble this agent's protocol variables using the node's
    /// seeded RNG. The fault-injection subsystem calls this for
    /// [`crate::faults::FaultKind::Corrupt`] events; a self-stabilizing protocol must
    /// recover from *any* state this leaves behind. The default does nothing (a
    /// stateless protocol has nothing to corrupt).
    fn corrupt_state(&mut self, rng: &mut StdRng) {
        let _ = rng;
    }

    /// Called immediately after [`Self::corrupt_state`], with a full node context, so
    /// the agent can re-arm timers the corruption made urgent. The suppressing tree
    /// agents use this to snap a backed-off beacon schedule to the base cadence: the
    /// corrupted state must not stay silent for up to the heartbeat floor before its
    /// neighbours can even see it. The default does nothing.
    fn on_corrupted(&mut self, ctx: &mut NodeCtx<'_, Self::Payload>) {
        let _ = ctx;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ctx_queues_actions_in_order() {
        let radio = RadioConfig::default();
        let mut rng = StdRng::seed_from_u64(1);
        let mut actions: Vec<Action<u8>> = Vec::new();
        let mut ctx = NodeCtx::new(
            SimTime::ZERO,
            NodeId(3),
            Vec2::new(1.0, 2.0),
            GroupRole::Member,
            50,
            &radio,
            &mut rng,
            &mut actions,
        );
        ctx.broadcast_control(32, 250.0, 7);
        ctx.set_timer(SimDuration::from_secs(2), 1, 0);
        ctx.cancel_timer(1, 0);
        assert_eq!(ctx.pending_actions(), 3);
        assert!(matches!(actions[0], Action::Broadcast { class: PacketClass::Control, .. }));
        assert!(matches!(actions[1], Action::SetTimer { kind: 1, .. }));
        assert!(matches!(actions[2], Action::CancelTimer { kind: 1, .. }));
    }

    #[test]
    fn jitter_is_bounded() {
        let radio = RadioConfig::default();
        let mut rng = StdRng::seed_from_u64(2);
        let mut actions: Vec<Action<u8>> = Vec::new();
        let mut ctx = NodeCtx::new(
            SimTime::ZERO,
            NodeId(0),
            Vec2::ZERO,
            GroupRole::NonMember,
            10,
            &radio,
            &mut rng,
            &mut actions,
        );
        let max = SimDuration::from_millis(500);
        for _ in 0..100 {
            let j = ctx.jitter(max);
            assert!(j < max + SimDuration::from_nanos(1));
        }
    }

    #[test]
    fn role_helpers() {
        let radio = RadioConfig::default();
        let mut rng = StdRng::seed_from_u64(2);
        let mut actions: Vec<Action<u8>> = Vec::new();
        let ctx = NodeCtx::new(
            SimTime::ZERO,
            NodeId(0),
            Vec2::ZERO,
            GroupRole::Source,
            10,
            &radio,
            &mut rng,
            &mut actions,
        );
        assert!(ctx.is_member());
        assert!(ctx.is_source());
    }
}
