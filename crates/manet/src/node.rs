//! Node and multicast-group identities.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A node identifier, unique within one simulated network.
///
/// The paper assumes "each node in the MANET is identified by a unique identifier"; we use
/// a dense `u32` index so identifiers double as vector indices in the runtime (and the
/// sharded engine can address n ≥ 100k nodes).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index into dense per-node arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<u16> for NodeId {
    fn from(v: u16) -> Self {
        NodeId(u32::from(v))
    }
}

/// A multicast group identifier. The paper evaluates a single group, but the substrate
/// supports several concurrent groups.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct GroupId(pub u16);

/// Role of a node with respect to one multicast group.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum GroupRole {
    /// The multicast source (also a member).
    Source,
    /// A receiving group member.
    Member,
    /// Not in the group; only relays or overhears traffic.
    NonMember,
}

impl GroupRole {
    /// True for sources and members.
    pub fn is_member(self) -> bool {
        matches!(self, GroupRole::Source | GroupRole::Member)
    }

    /// True only for the source.
    pub fn is_source(self) -> bool {
        matches!(self, GroupRole::Source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrips_through_index() {
        let n = NodeId(42);
        assert_eq!(n.index(), 42);
        assert_eq!(NodeId::from(42u16), n);
        assert_eq!(NodeId::from(42u32), n);
        assert_eq!(format!("{n}"), "42");
        assert_eq!(format!("{n:?}"), "n42");
    }

    #[test]
    fn group_roles() {
        assert!(GroupRole::Source.is_member());
        assert!(GroupRole::Source.is_source());
        assert!(GroupRole::Member.is_member());
        assert!(!GroupRole::Member.is_source());
        assert!(!GroupRole::NonMember.is_member());
    }
}
