//! # ssmcast-manet — mobile ad hoc network substrate
//!
//! Everything the paper gets "for free" from ns-2, rebuilt as a library:
//!
//! * [`geometry`] — 2-D points and deployment areas.
//! * [`mobility`] — random-waypoint (with the non-zero minimum-speed fix), Gauss–Markov,
//!   grid placement and stationary trajectories.
//! * [`energy`] — first-order radio energy model with power control, plus radio timing.
//! * [`battery`] — per-node energy accounting split by purpose (tx/rx/overhear plus
//!   continuous idle-listen/sleep drain).
//! * [`lifecycle`] — the energy lifecycle: seeded radio duty-cycle schedules,
//!   idle/sleep drain rates and distance-based TX power control; battery depletion is
//!   a permanent node death feeding the [`ssmcast_metrics::LifetimeStats`] block.
//! * [`harvest`] — energy-harvesting node model: seeded per-node harvest rates and
//!   harvest-until-threshold wake, turning depletion into a power-cycling episode.
//! * [`channel`] — broadcast medium occupancy and the capture-effect collision model.
//! * [`mac`] — pluggable medium-access policies deciding when pending broadcasts hit
//!   the air: legacy random jitter, carrier-sense CSMA with exponential backoff, and a
//!   self-stabilizing TDMA slot assignment in the style of Leone & Schiller.
//! * [`packet`] / [`node`] — frames, node ids, multicast group roles.
//! * [`agent`] — the [`agent::ProtocolAgent`] trait protocol crates implement.
//! * [`faults`] — fault injection: seeded [`faults::FaultPlan`]s (state corruption,
//!   crash/rejoin, link blackouts, battery drains) and the
//!   [`faults::StabilizationObserver`] probe interface for convergence measurement.
//! * [`silence`] — [`silence::SilenceConfig`]: adaptive beacon suppression (silent
//!   stabilization) for the self-stabilizing tree agents, with phase-split
//!   bytes-on-air accounting in the runtime.
//! * [`spatial`] — the uniform-grid [`spatial::SpatialIndex`] answering range queries in
//!   O(k) candidates instead of O(n).
//! * [`medium`] — the radio medium layer: [`medium::RadioMedium`] with epoch-cached
//!   positions and pluggable (grid / brute-force) neighbour queries.
//! * [`snapshot`] — frozen connectivity graphs for the synchronous protocol model,
//!   backed by the same spatial index.
//! * [`traffic`] — CBR multicast workload.
//! * [`runtime`] — [`runtime::NetworkSim`], the event loop that ties it all together and
//!   produces a [`report::SimReport`].
//! * [`engine`] — [`engine::EngineConfig`]: selects the classic sequential loop or the
//!   region-sharded multi-threaded engine for large-n runs.

#![warn(missing_docs)]

pub mod agent;
pub mod battery;
pub mod channel;
pub mod energy;
pub mod engine;
pub mod faults;
pub mod geometry;
pub mod harvest;
pub mod lifecycle;
pub mod mac;
pub mod medium;
pub mod mobility;
pub mod node;
pub mod packet;
pub mod report;
pub mod runtime;
pub mod session;
pub mod silence;
pub mod snapshot;
pub mod spatial;
pub mod traffic;

pub use agent::{Action, Disposition, NodeCtx, ProtocolAgent};
pub use battery::{Battery, EnergyUse};
pub use channel::Channel;
pub use energy::{EnergyModel, RadioConfig};
pub use engine::EngineConfig;
pub use faults::{
    scrambled_parent, FaultEvent, FaultKind, FaultPlan, FaultPlanSpec, ProbeContext, SessionProbe,
    StabilizationObserver,
};
pub use geometry::{Area, Vec2};
pub use harvest::{HarvestConfig, HarvestPlan};
pub use lifecycle::{DutyCycleConfig, DutySchedule, LifecycleConfig};
pub use mac::{CsmaConfig, MacConfig, MacDecision, MacFrame, MacKind, MacPolicy, TdmaConfig};
pub use medium::{MediumConfig, NeighborQuery, RadioMedium};
pub use mobility::{
    grid_positions, BoxedMobility, GaussMarkov, GaussMarkovConfig, Mobility, RandomWaypoint,
    Stationary, WaypointConfig,
};
pub use node::{GroupId, GroupRole, NodeId};
pub use packet::{DataTag, Packet, PacketClass};
pub use report::{GroupAccounting, SimReport, Trace};
pub use runtime::{NetEvent, NetworkSim, SimSetup};
pub use session::{MembershipChange, MembershipEvent, SessionSetup};
pub use silence::SilenceConfig;
pub use snapshot::TopologySnapshot;
pub use spatial::SpatialIndex;
pub use traffic::TrafficConfig;
