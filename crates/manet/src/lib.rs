//! # ssmcast-manet — mobile ad hoc network substrate
//!
//! Everything the paper gets "for free" from ns-2, rebuilt as a library:
//!
//! * [`geometry`] — 2-D points and deployment areas.
//! * [`mobility`] — random-waypoint (with the non-zero minimum-speed fix), Gauss–Markov,
//!   grid placement and stationary trajectories.
//! * [`energy`] — first-order radio energy model with power control, plus radio timing.
//! * [`battery`] — per-node energy accounting split by purpose (tx/rx/overhear).
//! * [`channel`] — broadcast medium occupancy and the capture-effect collision model.
//! * [`packet`] / [`node`] — frames, node ids, multicast group roles.
//! * [`agent`] — the [`agent::ProtocolAgent`] trait protocol crates implement.
//! * [`snapshot`] — frozen connectivity graphs for the synchronous protocol model.
//! * [`traffic`] — CBR multicast workload.
//! * [`runtime`] — [`runtime::NetworkSim`], the event loop that ties it all together and
//!   produces a [`report::SimReport`].

#![warn(missing_docs)]

pub mod agent;
pub mod battery;
pub mod channel;
pub mod energy;
pub mod geometry;
pub mod mobility;
pub mod node;
pub mod packet;
pub mod report;
pub mod runtime;
pub mod snapshot;
pub mod traffic;

pub use agent::{Action, Disposition, NodeCtx, ProtocolAgent};
pub use battery::{Battery, EnergyUse};
pub use channel::Channel;
pub use energy::{EnergyModel, RadioConfig};
pub use geometry::{Area, Vec2};
pub use mobility::{
    grid_positions, BoxedMobility, GaussMarkov, GaussMarkovConfig, Mobility, RandomWaypoint,
    Stationary, WaypointConfig,
};
pub use node::{GroupId, GroupRole, NodeId};
pub use packet::{DataTag, Packet, PacketClass};
pub use report::{SimReport, Trace};
pub use runtime::{NetEvent, NetworkSim, SimSetup};
pub use snapshot::TopologySnapshot;
pub use traffic::TrafficConfig;
