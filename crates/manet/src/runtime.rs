//! The network runtime: wires protocol agents, mobility, radio, energy accounting and
//! traffic generation onto the discrete-event engine and produces a [`SimReport`].

use crate::agent::{Action, Disposition, NodeCtx, ProtocolAgent};
use crate::battery::{Battery, EnergyUse};
use crate::channel::Channel;
use crate::energy::RadioConfig;
use crate::geometry::Vec2;
use crate::medium::{MediumConfig, RadioMedium};
use crate::mobility::BoxedMobility;
use crate::node::{GroupRole, NodeId};
use crate::packet::{DataTag, Packet, PacketClass};
use crate::report::{SimReport, Trace};
use crate::snapshot::TopologySnapshot;
use crate::traffic::TrafficConfig;
use rand::rngs::StdRng;
use rand::Rng;
use ssmcast_dessim::{RunOutcome, SeedSequence, SimDuration, SimTime, Simulator};
use std::collections::HashMap;

/// Static setup for one simulation run.
#[derive(Clone, Debug)]
pub struct SimSetup {
    /// Radio and energy configuration shared by all nodes.
    pub radio: RadioConfig,
    /// The CBR multicast flow.
    pub traffic: TrafficConfig,
    /// Per-node role in the multicast group (indexed by node id).
    pub roles: Vec<GroupRole>,
    /// Battery capacity per node in joules (`f64::INFINITY` for the paper's experiments).
    pub battery_capacity_j: f64,
    /// Window used for the unavailability ratio.
    pub unavailability_window: SimDuration,
    /// Per-window delivery ratio below which the service counts as unavailable.
    pub availability_threshold: f64,
    /// Seed sequence for loss sampling and per-node protocol jitter.
    pub seeds: SeedSequence,
    /// Radio medium configuration: position-cache epoch and neighbour-query mode.
    pub medium: MediumConfig,
}

impl SimSetup {
    /// Number of nodes implied by the role vector.
    pub fn n_nodes(&self) -> usize {
        self.roles.len()
    }

    /// Number of group members expected to receive each data packet (members excluding
    /// the source).
    pub fn n_receivers(&self) -> u64 {
        self.roles.iter().filter(|r| matches!(r, GroupRole::Member)).count() as u64
    }
}

/// Events flowing through the network simulation.
#[derive(Debug)]
pub enum NetEvent<P> {
    /// A packet copy arrives at `rx`. `corrupted` receptions still cost energy but are not
    /// handed to the protocol.
    Deliver {
        /// Receiving node.
        rx: NodeId,
        /// The frame.
        packet: Packet<P>,
        /// Lost to noise or collision.
        corrupted: bool,
    },
    /// A protocol timer fires at `node`.
    Timer {
        /// Owning node.
        node: NodeId,
        /// Protocol-defined timer class.
        kind: u64,
        /// Discriminator within the class.
        key: u64,
    },
    /// The CBR application at the source emits data packet `seq`.
    AppSend {
        /// Application sequence number.
        seq: u64,
    },
}

/// A complete network simulation for one protocol.
pub struct NetworkSim<A: ProtocolAgent> {
    sim: Simulator<NetEvent<A::Payload>>,
    setup: SimSetup,
    agents: Vec<A>,
    medium: RadioMedium,
    batteries: Vec<Battery>,
    rngs: Vec<StdRng>,
    loss_rng: StdRng,
    channel: Channel,
    timers: HashMap<(u16, u64, u64), ssmcast_dessim::EventId>,
    trace: Trace,
    scratch_actions: Vec<Action<A::Payload>>,
    scratch_receivers: Vec<NodeId>,
}

impl<A: ProtocolAgent> NetworkSim<A> {
    /// Build a simulation. `mobility` and `agents` must have one entry per role in the
    /// setup, in node-id order.
    pub fn new(setup: SimSetup, mobility: Vec<BoxedMobility>, agents: Vec<A>) -> Self {
        let n = setup.n_nodes();
        assert_eq!(mobility.len(), n, "one mobility model per node");
        assert_eq!(agents.len(), n, "one agent per node");
        assert!(setup.traffic.source.index() < n, "traffic source must exist");
        let batteries = vec![Battery::with_capacity(setup.battery_capacity_j); n];
        let rngs = (0..n as u64).map(|i| setup.seeds.indexed_stream("protocol", i)).collect();
        let loss_rng = setup.seeds.stream("channel-loss");
        let trace = Trace::new(setup.n_receivers(), setup.unavailability_window);
        let medium = RadioMedium::new(mobility, setup.medium, setup.radio.max_range_m);
        NetworkSim {
            sim: Simulator::with_capacity(1024),
            channel: Channel::new(n),
            timers: HashMap::new(),
            scratch_actions: Vec::with_capacity(16),
            scratch_receivers: Vec::with_capacity(16),
            batteries,
            rngs,
            loss_rng,
            trace,
            setup,
            medium,
            agents,
        }
    }

    /// Current positions of all nodes as a [`TopologySnapshot`] (uses the *maximum* radio
    /// range as the neighbour relation).
    pub fn snapshot(&mut self) -> TopologySnapshot {
        let t = self.sim.now();
        self.medium.snapshot(t, self.setup.radio.max_range_m)
    }

    /// The radio medium (position cache + spatial index) driving this simulation.
    pub fn medium(&self) -> &RadioMedium {
        &self.medium
    }

    /// Access a node's battery (for tests and the energy-budget example).
    pub fn battery(&self, n: NodeId) -> &Battery {
        &self.batteries[n.index()]
    }

    /// The protocol agent at `n`.
    pub fn agent(&self, n: NodeId) -> &A {
        &self.agents[n.index()]
    }

    /// Total number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.sim.events_processed()
    }

    fn make_ctx_and_call<F>(&mut self, node: NodeId, t: SimTime, f: F)
    where
        F: FnOnce(&mut A, &mut NodeCtx<'_, A::Payload>),
    {
        let pos = self.medium.position_of(node, t);
        let role = self.setup.roles[node.index()];
        let n_nodes = self.setup.roles.len();
        let mut actions = std::mem::take(&mut self.scratch_actions);
        actions.clear();
        {
            let mut ctx = NodeCtx::new(
                t,
                node,
                pos,
                role,
                n_nodes,
                &self.setup.radio,
                &mut self.rngs[node.index()],
                &mut actions,
            );
            f(&mut self.agents[node.index()], &mut ctx);
        }
        self.apply_actions(node, t, pos, &mut actions);
        self.scratch_actions = actions;
    }

    /// Apply the actions a protocol emitted at `node`. `node_pos` is the position the
    /// protocol context already saw, threaded through so broadcasts do not query the
    /// mobility model a second time at the same timestamp.
    fn apply_actions(
        &mut self,
        node: NodeId,
        t: SimTime,
        node_pos: Vec2,
        actions: &mut Vec<Action<A::Payload>>,
    ) {
        for action in actions.drain(..) {
            match action {
                Action::Broadcast { class, size_bytes, range_m, data, payload } => {
                    self.do_broadcast(node, t, node_pos, class, size_bytes, range_m, data, payload);
                }
                Action::SetTimer { delay, kind, key } => {
                    let ev = NetEvent::Timer { node, kind, key };
                    let id = self.sim.schedule_in(delay, ev);
                    if let Some(old) = self.timers.insert((node.0, kind, key), id) {
                        self.sim.cancel(old);
                    }
                }
                Action::CancelTimer { kind, key } => {
                    if let Some(id) = self.timers.remove(&(node.0, kind, key)) {
                        self.sim.cancel(id);
                    }
                }
                Action::DeliverData { tag } => {
                    self.trace.record_delivery(&tag, node, t);
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn do_broadcast(
        &mut self,
        sender: NodeId,
        t: SimTime,
        sender_pos: Vec2,
        class: PacketClass,
        size_bytes: u32,
        range_m: f64,
        data: Option<DataTag>,
        payload: A::Payload,
    ) {
        if self.batteries[sender.index()].is_depleted() {
            return;
        }
        let radio = self.setup.radio;
        let range = radio.clamp_range(range_m);
        let tx_energy = radio.energy.tx_energy(range, size_bytes);
        let usage = match class {
            PacketClass::Control => EnergyUse::TxControl,
            PacketClass::Data => EnergyUse::TxData,
        };
        self.batteries[sender.index()].consume(tx_energy, usage);
        match class {
            PacketClass::Control => self.trace.record_control_tx(size_bytes),
            PacketClass::Data => self.trace.record_data_tx(size_bytes),
        }

        // Crude CSMA: every transmission waits a small random backoff before hitting the
        // air, so relays of the same flood do not all collide at their common neighbours.
        let backoff = if radio.mac_backoff_max.is_zero() {
            SimDuration::ZERO
        } else {
            radio.mac_backoff_max.mul_f64(self.loss_rng.gen::<f64>())
        };
        let tx_start = t + backoff;
        let tx_end = tx_start + radio.tx_duration(size_bytes);
        let delivery_at = tx_start + radio.delivery_delay(size_bytes);
        // Receivers come back in ascending node-id order regardless of query mode, so
        // the per-receiver channel and loss draws below consume `loss_rng` in exactly
        // the sequence the brute-force scan would.
        let mut receivers = std::mem::take(&mut self.scratch_receivers);
        self.medium.receivers_within(sender, sender_pos, range, t, &mut receivers);
        for &rx in &receivers {
            if self.batteries[rx.index()].is_depleted() {
                continue;
            }
            let clean = if radio.collisions_enabled {
                self.channel.try_receive(rx, tx_start, tx_end)
            } else {
                true
            };
            let lost = self.loss_rng.gen::<f64>() < radio.loss_probability;
            let corrupted = !clean || lost;
            let packet = Packet { sender, class, size_bytes, data, payload: payload.clone() };
            self.sim.schedule_at(delivery_at, NetEvent::Deliver { rx, packet, corrupted });
        }
        self.scratch_receivers = receivers;
    }

    fn dispatch(&mut self, t: SimTime, ev: NetEvent<A::Payload>) {
        match ev {
            NetEvent::Deliver { rx, packet, corrupted } => {
                if self.batteries[rx.index()].is_depleted() {
                    return;
                }
                let rx_energy = self.setup.radio.energy.rx_energy(packet.size_bytes);
                if corrupted {
                    self.batteries[rx.index()].consume(rx_energy, EnergyUse::Overhear);
                    return;
                }
                let mut disposition = Disposition::Discarded;
                self.make_ctx_and_call(rx, t, |agent, ctx| {
                    disposition = agent.on_packet(ctx, &packet);
                });
                let usage = match (disposition, packet.class) {
                    (Disposition::Discarded, _) => EnergyUse::Overhear,
                    (Disposition::Consumed, PacketClass::Control) => EnergyUse::RxControl,
                    (Disposition::Consumed, PacketClass::Data) => EnergyUse::RxData,
                };
                self.batteries[rx.index()].consume(rx_energy, usage);
            }
            NetEvent::Timer { node, kind, key } => {
                self.timers.remove(&(node.0, kind, key));
                if self.batteries[node.index()].is_depleted() {
                    return;
                }
                self.make_ctx_and_call(node, t, |agent, ctx| agent.on_timer(ctx, kind, key));
            }
            NetEvent::AppSend { seq } => {
                let traffic = self.setup.traffic;
                if t >= traffic.stop {
                    return;
                }
                let source = traffic.source;
                let tag = DataTag { group: traffic.group, origin: source, seq, created_at: t };
                self.trace.record_generated(seq, t);
                if !self.batteries[source.index()].is_depleted() {
                    self.make_ctx_and_call(source, t, |agent, ctx| {
                        agent.on_app_data(ctx, tag, traffic.packet_size_bytes);
                    });
                }
                let next = t + traffic.interval();
                if next < traffic.stop {
                    self.sim.schedule_at(next, NetEvent::AppSend { seq: seq + 1 });
                }
            }
        }
    }

    /// Run the simulation for `duration` and return the report.
    pub fn run(&mut self, duration: SimDuration) -> SimReport {
        let horizon = SimTime::ZERO + duration;
        // Start every agent at time zero.
        for i in 0..self.setup.roles.len() {
            self.make_ctx_and_call(NodeId(i as u16), SimTime::ZERO, |agent, ctx| agent.start(ctx));
        }
        // Kick off the CBR application.
        if self.setup.traffic.start < horizon {
            let start = self.setup.traffic.start;
            self.sim.schedule_at(start, NetEvent::AppSend { seq: 0 });
        }
        // Main loop. The closure trick: `run_until` hands us events one at a time; we
        // cannot call a method on `self` from inside a closure borrowing `self.sim`, so we
        // drive the loop manually.
        while let Some(next) = self.sim.peek_time() {
            if next > horizon {
                break;
            }
            let (t, ev) = self.sim.pop_next().expect("peeked event must pop");
            self.dispatch(t, ev);
        }
        self.report(duration)
    }

    /// Build a report from the current trace (normally called by [`Self::run`]).
    pub fn report(&self, duration: SimDuration) -> SimReport {
        let total_energy: f64 = self.batteries.iter().map(Battery::consumed).sum();
        let overhear: f64 = self.batteries.iter().map(Battery::overheard).sum();
        let label = self.agents.first().map(|a| a.label()).unwrap_or("protocol");
        self.trace.finish(
            label,
            duration,
            total_energy,
            overhear,
            self.channel.collisions(),
            self.setup.traffic.packet_size_bytes,
            self.setup.availability_threshold,
        )
    }
}

/// Outcome of a bounded run (re-exported for integration tests that drive the engine
/// directly).
pub type NetRunOutcome = RunOutcome;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mobility::Stationary;
    use crate::node::GroupId;

    /// A trivial flooding protocol used to exercise the runtime: the source broadcasts
    /// data at max range; every member delivers; every node rebroadcasts each packet once.
    struct Flood {
        seen: std::collections::HashSet<u64>,
    }

    impl Flood {
        fn new() -> Self {
            Flood { seen: std::collections::HashSet::new() }
        }
    }

    impl ProtocolAgent for Flood {
        type Payload = ();

        fn start(&mut self, _ctx: &mut NodeCtx<'_, ()>) {}

        fn on_packet(&mut self, ctx: &mut NodeCtx<'_, ()>, packet: &Packet<()>) -> Disposition {
            let Some(tag) = packet.data else { return Disposition::Discarded };
            if !self.seen.insert(tag.seq) {
                return Disposition::Discarded;
            }
            if ctx.is_member() {
                ctx.deliver_data(tag);
            }
            ctx.broadcast_data(packet.size_bytes, ctx.radio.max_range_m, tag, ());
            Disposition::Consumed
        }

        fn on_timer(&mut self, _ctx: &mut NodeCtx<'_, ()>, _kind: u64, _key: u64) {}

        fn on_app_data(&mut self, ctx: &mut NodeCtx<'_, ()>, tag: DataTag, size: u32) {
            self.seen.insert(tag.seq);
            ctx.broadcast_data(size, ctx.radio.max_range_m, tag, ());
        }

        fn label(&self) -> &'static str {
            "flood-test"
        }
    }

    fn line_setup(n: usize, spacing: f64) -> (SimSetup, Vec<BoxedMobility>) {
        let roles: Vec<GroupRole> =
            (0..n).map(|i| if i == 0 { GroupRole::Source } else { GroupRole::Member }).collect();
        let mobility: Vec<BoxedMobility> = (0..n)
            .map(|i| Box::new(Stationary::new(Vec2::new(i as f64 * spacing, 0.0))) as BoxedMobility)
            .collect();
        let radio = RadioConfig {
            loss_probability: 0.0,
            collisions_enabled: false,
            ..RadioConfig::default()
        };
        let traffic = TrafficConfig {
            group: GroupId(0),
            source: NodeId(0),
            data_rate_bps: 64_000.0,
            packet_size_bytes: 512,
            start: SimTime::from_secs(1),
            stop: SimTime::from_secs(11),
        };
        let setup = SimSetup {
            radio,
            traffic,
            roles,
            battery_capacity_j: f64::INFINITY,
            unavailability_window: SimDuration::from_secs(1),
            availability_threshold: 0.95,
            seeds: SeedSequence::new(7),
            medium: MediumConfig::default(),
        };
        (setup, mobility)
    }

    #[test]
    fn flooding_on_a_line_delivers_everything() {
        let (setup, mobility) = line_setup(4, 200.0);
        let agents = (0..4).map(|_| Flood::new()).collect();
        let mut sim = NetworkSim::new(setup, mobility, agents);
        let report = sim.run(SimDuration::from_secs(20));
        assert!(report.generated > 100, "CBR source must generate packets");
        assert_eq!(report.expected_deliveries, report.generated * 3);
        assert!(
            (report.pdr - 1.0).abs() < 1e-9,
            "ideal channel flooding delivers all, pdr={}",
            report.pdr
        );
        assert!(report.avg_delay_ms > 0.0);
        assert!(report.total_energy_j > 0.0);
        assert!(report.unavailability_ratio < 1e-9);
    }

    #[test]
    fn partitioned_member_receives_nothing() {
        let (mut setup, _) = line_setup(3, 200.0);
        // Node 2 is far out of range of everyone.
        let mobility: Vec<BoxedMobility> = vec![
            Box::new(Stationary::new(Vec2::new(0.0, 0.0))),
            Box::new(Stationary::new(Vec2::new(200.0, 0.0))),
            Box::new(Stationary::new(Vec2::new(5_000.0, 0.0))),
        ];
        setup.roles = vec![GroupRole::Source, GroupRole::Member, GroupRole::Member];
        let agents = (0..3).map(|_| Flood::new()).collect();
        let mut sim = NetworkSim::new(setup, mobility, agents);
        let report = sim.run(SimDuration::from_secs(20));
        assert!((report.pdr - 0.5).abs() < 1e-9, "only half the deliveries can happen");
    }

    #[test]
    fn loss_reduces_pdr() {
        let (mut setup, mobility) = line_setup(4, 200.0);
        setup.radio.loss_probability = 0.3;
        let agents = (0..4).map(|_| Flood::new()).collect();
        let mut sim = NetworkSim::new(setup, mobility, agents);
        let report = sim.run(SimDuration::from_secs(20));
        assert!(report.pdr < 1.0);
        assert!(report.pdr > 0.2, "some packets still get through, pdr={}", report.pdr);
    }

    #[test]
    fn energy_is_charged_for_tx_rx_and_overhearing() {
        let (setup, mobility) = line_setup(3, 100.0);
        let agents = (0..3).map(|_| Flood::new()).collect();
        let mut sim = NetworkSim::new(setup, mobility, agents);
        let report = sim.run(SimDuration::from_secs(5));
        assert!(report.total_energy_j > 0.0);
        // The source both transmits and (re-)receives floods from node 1.
        assert!(sim.battery(NodeId(0)).tx_total() > 0.0);
        assert!(sim.battery(NodeId(1)).rx_total() > 0.0);
        // Duplicate floods arriving at a node that has already seen them are discarded,
        // so some overhearing energy must have accumulated.
        assert!(report.overhear_energy_j > 0.0);
    }

    #[test]
    fn depleted_nodes_stop_participating() {
        let (mut setup, mobility) = line_setup(3, 100.0);
        setup.battery_capacity_j = 0.0; // dead from the start
        let agents = (0..3).map(|_| Flood::new()).collect();
        let mut sim = NetworkSim::new(setup, mobility, agents);
        let report = sim.run(SimDuration::from_secs(5));
        assert_eq!(report.delivered, 0, "dead radios deliver nothing");
    }

    #[test]
    fn report_is_deterministic_for_a_seed() {
        let run = || {
            let (setup, mobility) = line_setup(4, 200.0);
            let agents = (0..4).map(|_| Flood::new()).collect();
            let mut sim = NetworkSim::new(setup, mobility, agents);
            sim.run(SimDuration::from_secs(15))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn grid_and_brute_force_query_modes_agree_byte_for_byte() {
        use crate::medium::MediumConfig;
        let run = |medium: MediumConfig| {
            let (mut setup, mobility) = line_setup(6, 150.0);
            setup.radio.loss_probability = 0.1; // exercise the loss RNG draw order
            setup.medium = medium;
            let agents = (0..6).map(|_| Flood::new()).collect();
            let mut sim = NetworkSim::new(setup, mobility, agents);
            sim.run(SimDuration::from_secs(15))
        };
        assert_eq!(run(MediumConfig::grid()), run(MediumConfig::brute_force()));
        // The same holds under a coarse position epoch (both paths quantised alike).
        let epoch = SimDuration::from_millis(250);
        assert_eq!(
            run(MediumConfig::grid().with_epoch(epoch)),
            run(MediumConfig::brute_force().with_epoch(epoch))
        );
    }
}
