//! The network runtime: wires protocol agents, mobility, radio, energy accounting and
//! traffic generation onto the discrete-event engine and produces a [`SimReport`].
//!
//! Since the multi-session refactor the runtime hosts **N concurrent multicast
//! sessions** over one shared radio medium: each node runs one protocol-agent instance
//! per session, frames are dispatched to the instance of the session that sent them,
//! and each session carries its own traffic trace, churn-updated membership table and
//! attributed energy. A single-session setup reproduces the original runtime event for
//! event (and byte for byte in its report).

use crate::agent::{Action, Disposition, NodeCtx, ProtocolAgent};
use crate::battery::{Battery, EnergyUse};
use crate::channel::Channel;
use crate::energy::RadioConfig;
use crate::engine::EngineConfig;
use crate::faults::StabilizationObserver;
use crate::faults::{FaultEvent, FaultKind, FaultPlan, ProbeContext, SessionProbe};
use crate::geometry::Vec2;
use crate::harvest::{HarvestConfig, HarvestPlan};
use crate::lifecycle::{DutySchedule, LifecycleConfig};
use crate::mac::{MacConfig, MacDecision, MacFrame, MacPolicy};
use crate::medium::{MediumConfig, RadioMedium};
use crate::mobility::BoxedMobility;
use crate::node::{GroupRole, NodeId};
use crate::packet::{DataTag, Packet, PacketClass};
use crate::report::{GroupAccounting, SimReport, Trace};
use crate::session::{MembershipChange, MembershipEvent, SessionSetup};
use crate::silence::SilenceConfig;
use crate::snapshot::TopologySnapshot;
use crate::traffic::TrafficConfig;
use rand::rngs::StdRng;
use rand::Rng;
use ssmcast_dessim::{RunOutcome, SeedSequence, SimDuration, SimTime, Simulator};
use ssmcast_metrics::{
    CurveRing, EngineStats, LifetimeStats, MacStats, MetricsConfig, SessionSilence, SilenceStats,
    RESIDUAL_HISTOGRAM_BINS,
};
use std::collections::HashMap;

mod shard;

/// Static setup for one simulation run.
#[derive(Clone, Debug)]
pub struct SimSetup {
    /// Radio and energy configuration shared by all nodes.
    pub radio: RadioConfig,
    /// The concurrent multicast sessions (at least one): CBR flow + initial membership
    /// table + churn schedule each. Session `i`'s frames are dispatched to the `i`-th
    /// protocol instance on every node.
    pub sessions: Vec<SessionSetup>,
    /// Number of nodes in the network (every session's role table has this length).
    pub n_nodes: usize,
    /// Battery capacity per node in joules (`f64::INFINITY` for the paper's experiments).
    pub battery_capacity_j: f64,
    /// Energy-lifecycle knobs: radio duty-cycling, continuous idle/sleep drain and
    /// distance-based TX power control. [`LifecycleConfig::off`] (the default) keeps
    /// runs byte-identical to pre-lifecycle builds.
    pub lifecycle: LifecycleConfig,
    /// Window used for the unavailability ratio.
    pub unavailability_window: SimDuration,
    /// Per-window delivery ratio below which the service counts as unavailable.
    pub availability_threshold: f64,
    /// Medium-access policy deciding when pending broadcasts hit the air. The default
    /// ([`MacConfig::default`]: random jitter, stats off) reproduces pre-MAC-layer runs
    /// byte-identically.
    pub mac: MacConfig,
    /// Seed sequence for loss sampling and per-node protocol jitter.
    pub seeds: SeedSequence,
    /// Radio medium configuration: position-cache epoch and neighbour-query mode.
    pub medium: MediumConfig,
    /// Scheduled fault events (empty for the paper's fault-free experiments). Injected
    /// through the event queue, so a `(seed, plan)` pair fully determines the run.
    pub faults: FaultPlan,
    /// Engine selection: the classic sequential loop ([`EngineConfig::default`],
    /// byte-identical to earlier builds) or the region-sharded parallel engine.
    pub engine: EngineConfig,
    /// Beacon-suppression knobs for the self-stabilizing agents. [`SilenceConfig::off`]
    /// (the default) keeps runs byte-identical to always-on beaconing; any enabled
    /// configuration makes the runtime split control bytes-on-air into steady-state vs
    /// recovery phases and attach a `SilenceStats` block to the report.
    pub silence: SilenceConfig,
    /// Report-accumulation mode: exact store-everything tracking (the default,
    /// byte-identical to earlier builds) or memory-bounded streaming sketches whose
    /// footprint is set by configuration, not by event count.
    pub metrics: MetricsConfig,
    /// Energy-harvesting knobs. [`HarvestConfig::off`] (the default) keeps battery
    /// depletion permanent; enabled harvesting turns depletion into a power-cycling
    /// episode. Harvest wakes are node-local, so both engines run them: sharded runs
    /// are byte-identical to the sequential engine at any shard count.
    pub harvest: HarvestConfig,
}

impl SimSetup {
    /// A single-session setup — the paper's shape, and the one every pre-multi-group
    /// call site used.
    #[allow(clippy::too_many_arguments)]
    pub fn single(
        radio: RadioConfig,
        traffic: TrafficConfig,
        roles: Vec<GroupRole>,
        battery_capacity_j: f64,
        unavailability_window: SimDuration,
        availability_threshold: f64,
        seeds: SeedSequence,
        medium: MediumConfig,
        faults: FaultPlan,
    ) -> Self {
        let n_nodes = roles.len();
        SimSetup {
            radio,
            sessions: vec![SessionSetup::new(traffic, roles)],
            n_nodes,
            battery_capacity_j,
            lifecycle: LifecycleConfig::off(),
            mac: MacConfig::default(),
            unavailability_window,
            availability_threshold,
            seeds,
            medium,
            faults,
            engine: EngineConfig::default(),
            silence: SilenceConfig::off(),
            metrics: MetricsConfig::default(),
            harvest: HarvestConfig::off(),
        }
    }

    /// The same setup under a different engine configuration.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// The same setup under a different beacon-suppression configuration.
    pub fn with_silence(mut self, silence: SilenceConfig) -> Self {
        self.silence = silence;
        self
    }

    /// The same setup under a different report-accumulation mode.
    pub fn with_metrics(mut self, metrics: MetricsConfig) -> Self {
        self.metrics = metrics;
        self
    }

    /// The same setup under a different energy-harvesting configuration.
    pub fn with_harvest(mut self, harvest: HarvestConfig) -> Self {
        self.harvest = harvest;
        self
    }

    /// Number of nodes in the network.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Number of concurrent multicast sessions.
    pub fn n_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// True when the setup is genuinely multi-session or churns memberships — the runs
    /// whose reports carry a per-group breakdown.
    pub fn has_group_dynamics(&self) -> bool {
        self.sessions.len() > 1 || self.sessions.iter().any(|s| !s.churn.is_empty())
    }
}

/// Events flowing through the network simulation.
#[derive(Debug)]
pub enum NetEvent<P> {
    /// A packet copy arrives at `rx`. `corrupted` receptions still cost energy but are not
    /// handed to the protocol.
    Deliver {
        /// Session whose protocol instances this frame belongs to.
        session: u16,
        /// Receiving node.
        rx: NodeId,
        /// The frame.
        packet: Packet<P>,
        /// Lost to noise or collision.
        corrupted: bool,
        /// Transmission start (drives TDMA slot learning at the receiver).
        tx_start: SimTime,
        /// MAC state snapshotted at transmit time ([`MacPolicy::piggyback_row`]) and
        /// shared by every copy of the frame — TDMA's 2-hop claim table.
        piggyback: Option<std::sync::Arc<[u16]>>,
    },
    /// A protocol timer fires at `node`.
    Timer {
        /// Session whose instance armed the timer.
        session: u16,
        /// Owning node.
        node: NodeId,
        /// Protocol-defined timer class.
        kind: u64,
        /// Discriminator within the class.
        key: u64,
    },
    /// The CBR application at a session's source emits data packet `seq`.
    AppSend {
        /// The emitting session.
        session: u16,
        /// Application sequence number.
        seq: u64,
    },
    /// A scheduled membership change (join/leave churn) takes effect.
    Membership {
        /// The churned session.
        session: u16,
        /// The node joining or leaving.
        node: NodeId,
        /// Join or leave.
        change: MembershipChange,
    },
    /// An injected fault fires (see [`crate::faults`]).
    Fault(FaultKind),
    /// A depleted, energy-harvesting node has banked its wake threshold: recharge its
    /// battery and bring it back to life (see [`crate::harvest`]).
    HarvestWake {
        /// The waking node.
        node: NodeId,
    },
    /// The MAC policy deferred a pending broadcast: retry channel access now.
    MacRetry {
        /// Session whose frame is pending.
        session: u16,
        /// The transmitting node.
        sender: NodeId,
        /// Control or data.
        class: PacketClass,
        /// Size on the wire, bytes.
        size_bytes: u32,
        /// Requested (already clamped) transmission range, metres.
        range_m: f64,
        /// Application-data tag, if the frame carries data.
        data: Option<DataTag>,
        /// Protocol payload, carried through the deferral.
        payload: P,
        /// Access attempt number (1 on the first retry).
        attempt: u32,
        /// When the protocol originally requested the broadcast (for access-delay
        /// accounting).
        requested_at: SimTime,
    },
}

/// A complete network simulation for one protocol.
pub struct NetworkSim<A: ProtocolAgent> {
    sim: Simulator<NetEvent<A::Payload>>,
    setup: SimSetup,
    /// One agent per (session, node), session-major: `agents[s * n_nodes + node]`.
    agents: Vec<A>,
    /// Current per-session membership tables, same layout as `agents`. Starts from the
    /// sessions' initial roles and is updated by [`NetEvent::Membership`] churn.
    memberships: Vec<GroupRole>,
    /// Current receivers (members excluding the source) per session.
    receiver_counts: Vec<u64>,
    /// Join churn events applied per session.
    joins: Vec<u64>,
    /// Leave churn events applied per session.
    leaves: Vec<u64>,
    medium: RadioMedium,
    batteries: Vec<Battery>,
    /// Energy attributed to each session's frames (tx + rx + overhear), joules. Every
    /// radio consumption flows through exactly one session, so these sum to the
    /// batteries' total minus fault-injected drain spikes (which are not radio
    /// activity and belong to no session): the shared medium conserves energy across
    /// sessions.
    session_energy_j: Vec<f64>,
    /// Overheard/discarded reception energy attributed to each session, joules.
    session_overhear_j: Vec<f64>,
    /// Per-node crash flag (driven by [`FaultKind::Crash`] / [`FaultKind::Rejoin`]).
    crashed: Vec<bool>,
    /// Materialised per-node duty-cycle schedule (always-awake when duty cycling is off).
    duty: DutySchedule,
    /// Per-node horizon up to which continuous idle/sleep drain has been accrued.
    accrued_until: Vec<SimTime>,
    /// First instant each node's battery was observed depleted. Without harvesting,
    /// battery death is permanent; a harvest wake clears the entry again.
    death_at: Vec<Option<SimTime>>,
    /// Earliest depletion ever observed across the fleet — `first_death_s` must report
    /// the first depletion even after a harvest wake clears `death_at`.
    first_depletion: Option<SimTime>,
    /// Materialised per-node harvest rates (inert when harvesting is off).
    harvest: HarvestPlan,
    /// Battery-alive node count at each lifetime sample epoch (bounded ring in
    /// streaming mode, plain unbounded buffer in exact mode).
    alive_curve: CurveRing<u64>,
    /// Cumulative delivery ratio at each lifetime sample epoch.
    delivery_curve: CurveRing<f64>,
    rngs: Vec<StdRng>,
    loss_rng: StdRng,
    channel: Channel,
    /// The medium-access policy built from the setup's [`MacConfig`].
    mac: Box<dyn MacPolicy>,
    /// Broadcast requests that reached the MAC (attempt 0, after liveness/blackout
    /// filtering).
    mac_requested: u64,
    /// Frames the MAC actually put on the air.
    mac_sent: u64,
    /// Frames the MAC abandoned (retry cap exceeded).
    mac_drops: u64,
    /// MAC deferrals (each postponement of a pending frame counts once).
    mac_deferrals: u64,
    /// Sum of request-to-transmission delays over sent frames.
    mac_access_delay: SimDuration,
    /// Sum of transmit airtime over sent frames.
    mac_airtime: SimDuration,
    /// Pending timers keyed by (node, session, kind, key).
    timers: HashMap<(u32, u16, u64, u64), ssmcast_dessim::EventId>,
    /// Snapshot built for the latest probed instant, reused across the observer
    /// notifications of a simultaneous fault burst (positions cannot change within one
    /// timestamp, and a burst at n = 500 would otherwise rebuild the spatial index once
    /// per corrupted node).
    probe_snapshot: Option<(SimTime, TopologySnapshot)>,
    /// One traffic trace per session.
    traces: Vec<Trace>,
    scratch_actions: Vec<Action<A::Payload>>,
    scratch_receivers: Vec<NodeId>,
    /// Probe-assembly scratch, reused across epochs (a fault burst at n = 100k would
    /// otherwise allocate three fleet-sized vectors per probed instant).
    probe_parents: Vec<Option<NodeId>>,
    probe_alive: Vec<bool>,
    probe_blacked: Vec<bool>,
    /// Per-session recovery flag, refreshed from the observer after every epoch and
    /// fault notification; drives the steady-vs-recovery control-byte split. All-false
    /// (and the counters below unused) when beacon suppression is off.
    session_recovering: Vec<bool>,
    /// Per-session (packets, bytes) of control traffic sent while steady.
    silence_steady: Vec<(u64, u64)>,
    /// Per-session (packets, bytes) of control traffic sent while recovering.
    silence_recovery: Vec<(u64, u64)>,
}

impl<A: ProtocolAgent> NetworkSim<A> {
    /// Build a simulation. `mobility` must have one entry per node; `agents` must have
    /// one entry per (session, node) pair in session-major order (for the single-session
    /// setups every pre-multi-group caller builds, that is simply one agent per node).
    pub fn new(setup: SimSetup, mobility: Vec<BoxedMobility>, agents: Vec<A>) -> Self {
        let n = setup.n_nodes();
        let n_sessions = setup.n_sessions();
        assert!(n_sessions > 0, "at least one multicast session");
        assert_eq!(mobility.len(), n, "one mobility model per node");
        assert_eq!(agents.len(), n * n_sessions, "one agent per (session, node)");
        let mut memberships = Vec::with_capacity(n * n_sessions);
        let mut receiver_counts = Vec::with_capacity(n_sessions);
        for session in &setup.sessions {
            assert_eq!(session.roles.len(), n, "one role per node per session");
            assert!(session.traffic.source.index() < n, "traffic source must exist");
            assert!(
                matches!(session.roles[session.traffic.source.index()], GroupRole::Source),
                "the session's source role must sit at its traffic source"
            );
            memberships.extend_from_slice(&session.roles);
            receiver_counts.push(session.initial_receivers());
        }
        let batteries = vec![Battery::with_capacity(setup.battery_capacity_j); n];
        let rngs = (0..n as u64).map(|i| setup.seeds.indexed_stream("protocol", i)).collect();
        let loss_rng = setup.seeds.stream("channel-loss");
        let traces = (0..n_sessions)
            .map(|_| Trace::with_config(setup.unavailability_window, &setup.metrics))
            .collect();
        let medium = RadioMedium::new(mobility, setup.medium, setup.radio.max_range_m);
        let duty = DutySchedule::from_seeds(&setup.lifecycle.duty_cycle, n, &setup.seeds);
        // A zero-capacity battery is depleted before the first event: record the death
        // at time zero so lifetime metrics never censor an already-dead fleet.
        let death_at: Vec<Option<SimTime>> =
            batteries.iter().map(|b| b.is_depleted().then_some(SimTime::ZERO)).collect();
        let first_depletion = death_at.iter().flatten().min().copied();
        let harvest =
            HarvestPlan::from_seeds(&setup.harvest, n, setup.battery_capacity_j, &setup.seeds);
        let curve_budget = if setup.metrics.is_streaming() {
            setup.metrics.streaming.curve_budget as usize
        } else {
            usize::MAX
        };
        let mac = setup.mac.build(n, &setup.seeds);
        NetworkSim {
            sim: Simulator::with_capacity(1024),
            channel: Channel::new(n, n_sessions),
            mac,
            mac_requested: 0,
            mac_sent: 0,
            mac_drops: 0,
            mac_deferrals: 0,
            mac_access_delay: SimDuration::ZERO,
            mac_airtime: SimDuration::ZERO,
            timers: HashMap::new(),
            probe_snapshot: None,
            scratch_actions: Vec::with_capacity(16),
            scratch_receivers: Vec::with_capacity(16),
            probe_parents: Vec::new(),
            probe_alive: Vec::new(),
            probe_blacked: Vec::new(),
            crashed: vec![false; n],
            duty,
            accrued_until: vec![SimTime::ZERO; n],
            death_at,
            first_depletion,
            harvest,
            alive_curve: CurveRing::with_budget(curve_budget),
            delivery_curve: CurveRing::with_budget(curve_budget),
            session_energy_j: vec![0.0; n_sessions],
            session_overhear_j: vec![0.0; n_sessions],
            session_recovering: vec![false; n_sessions],
            silence_steady: vec![(0, 0); n_sessions],
            silence_recovery: vec![(0, 0); n_sessions],
            joins: vec![0; n_sessions],
            leaves: vec![0; n_sessions],
            batteries,
            rngs,
            loss_rng,
            traces,
            memberships,
            receiver_counts,
            setup,
            medium,
            agents,
        }
    }

    /// Index of session `s`'s instance (or membership slot) at `node`.
    fn idx(&self, session: usize, node: NodeId) -> usize {
        session * self.setup.n_nodes + node.index()
    }

    /// Current positions of all nodes as a [`TopologySnapshot`] (uses the *maximum* radio
    /// range as the neighbour relation).
    pub fn snapshot(&mut self) -> TopologySnapshot {
        let t = self.sim.now();
        self.medium.snapshot(t, self.setup.radio.max_range_m)
    }

    /// The radio medium (position cache + spatial index) driving this simulation.
    pub fn medium(&self) -> &RadioMedium {
        &self.medium
    }

    /// Access a node's battery (for tests and the energy-budget example).
    pub fn battery(&self, n: NodeId) -> &Battery {
        &self.batteries[n.index()]
    }

    /// The protocol agent at `n` in the first session (the only session in single-group
    /// setups).
    pub fn agent(&self, n: NodeId) -> &A {
        &self.agents[n.index()]
    }

    /// The protocol agent running session `session` at node `n`.
    pub fn agent_in(&self, session: usize, n: NodeId) -> &A {
        &self.agents[self.idx(session, n)]
    }

    /// Node `n`'s current role in `session` (membership churn applied).
    pub fn role_in(&self, session: usize, n: NodeId) -> GroupRole {
        self.memberships[self.idx(session, n)]
    }

    /// Total number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.sim.events_processed()
    }

    /// True while node `n` is crashed by an injected fault.
    pub fn is_crashed(&self, n: NodeId) -> bool {
        self.crashed[n.index()]
    }

    /// The instant node `n`'s battery was observed depleted, if it is currently dead.
    /// Without harvesting battery death is permanent: unlike a crash there is no
    /// rejoin. A harvest wake clears the entry.
    pub fn death_time(&self, n: NodeId) -> Option<SimTime> {
        self.death_at[n.index()]
    }

    /// The materialised duty-cycle schedule driving this run's radios.
    pub fn duty_schedule(&self) -> &DutySchedule {
        &self.duty
    }

    /// True when this run tracks the energy lifecycle (finite batteries or continuous
    /// drain) and therefore attaches a [`LifetimeStats`] block to its report.
    fn lifetime_tracking(&self) -> bool {
        self.setup.battery_capacity_j.is_finite() || self.setup.lifecycle.has_continuous_drain()
    }

    /// Record node `i`'s death the first time its battery is observed depleted. With
    /// harvesting enabled, also schedule the node's harvest-until-threshold wake —
    /// exactly once per depletion episode (`death_at[i]` guards re-entry).
    fn note_death(&mut self, i: usize, t: SimTime) {
        if self.death_at[i].is_none() && self.batteries[i].is_depleted() {
            self.death_at[i] = Some(t);
            self.first_depletion = Some(self.first_depletion.map_or(t, |f| f.min(t)));
            if let Some(delay) = self.harvest.wake_delay(NodeId(i as u32)) {
                if let Some(at) = t.checked_add(delay) {
                    self.sim.schedule_at(at, NetEvent::HarvestWake { node: NodeId(i as u32) });
                }
            }
        }
    }

    /// Accrue node `i`'s continuous idle-listen / sleep drain up to `t`. The drain is
    /// piecewise-linear over the duty-cycle schedule, so accruing lazily at event and
    /// sample instants books exactly the same joules as accruing continuously; a node
    /// whose battery runs dry between packets is observed dead at the next instant
    /// anything (an event, a probe, a lifetime sample) looks at it.
    fn accrue_idle(&mut self, i: usize, t: SimTime) {
        if !self.setup.lifecycle.has_continuous_drain() {
            return;
        }
        let from = self.accrued_until[i];
        if t <= from {
            return;
        }
        self.accrued_until[i] = t;
        if self.batteries[i].is_depleted() {
            return;
        }
        let awake = self.duty.awake_between(NodeId(i as u32), from, t);
        let asleep = t.saturating_since(from) - awake;
        let lc = self.setup.lifecycle;
        if lc.idle_listen_w > 0.0 {
            self.batteries[i].accept(lc.idle_listen_w * awake.as_secs_f64(), EnergyUse::IdleListen);
        }
        if lc.sleep_w > 0.0 {
            self.batteries[i].accept(lc.sleep_w * asleep.as_secs_f64(), EnergyUse::Sleep);
        }
        self.note_death(i, t);
    }

    /// Accrue every node's continuous drain up to `t` (probes and lifetime samples need
    /// the whole fleet's liveness to be current).
    fn accrue_all(&mut self, t: SimTime) {
        if !self.setup.lifecycle.has_continuous_drain() {
            return;
        }
        for i in 0..self.setup.n_nodes {
            self.accrue_idle(i, t);
        }
    }

    /// Record one lifetime sample at `t`: battery-alive population and cumulative
    /// delivery ratio.
    fn sample_lifetime(&mut self, t: SimTime) {
        self.accrue_all(t);
        let alive = self.batteries.iter().filter(|b| !b.is_depleted()).count() as u64;
        self.alive_curve.push(alive);
        let delivered: u64 = self.traces.iter().map(Trace::delivered_count).sum();
        let expected: u64 = self.traces.iter().map(|tr| tr.expected_deliveries()).sum();
        let ratio = if expected > 0 { delivered as f64 / expected as f64 } else { 0.0 };
        self.delivery_curve.push(ratio);
    }

    /// Build the [`LifetimeStats`] block from the current state, or `None` when the run
    /// does not track the energy lifecycle.
    fn lifetime_stats(&self) -> Option<LifetimeStats> {
        if !self.lifetime_tracking() {
            return None;
        }
        // In streaming mode the bounded rings may have downsampled: one committed
        // point then spans `stride` raw epochs, and the reported cadence scales with
        // it (exact mode has stride 1, leaving the bytes unchanged).
        let epoch = self.sample_epoch().saturating_mul(self.alive_curve.stride());
        let n = self.setup.n_nodes as u64;
        let mut stats = LifetimeStats::empty(epoch.as_secs_f64(), n);
        stats.first_death_s = self.first_depletion.map(|t| t.as_secs_f64());
        stats.deaths = self.batteries.iter().filter(|b| b.is_depleted()).count() as u64;
        stats.alive_final = n - stats.deaths;
        stats.alive_curve = self.alive_curve.samples().to_vec();
        stats.delivery_ratio_curve = self.delivery_curve.samples().to_vec();
        stats.idle_energy_j = self.batteries.iter().map(Battery::idle_listened).sum();
        stats.sleep_energy_j = self.batteries.iter().map(Battery::slept).sum();
        stats.drained_j = self.batteries.iter().map(Battery::drained).sum();
        let capacity = self.setup.battery_capacity_j;
        if capacity.is_finite() && !self.batteries.is_empty() {
            let mut histogram = vec![0u64; RESIDUAL_HISTOGRAM_BINS];
            let mut sum = 0.0f64;
            let mut min = f64::INFINITY;
            for b in &self.batteries {
                let residual = b.remaining();
                sum += residual;
                min = min.min(residual);
                let fraction = if capacity > 0.0 { residual / capacity } else { 0.0 };
                let bin = ((fraction * RESIDUAL_HISTOGRAM_BINS as f64) as usize)
                    .min(RESIDUAL_HISTOGRAM_BINS - 1);
                histogram[bin] += 1;
            }
            stats.residual_energy_histogram = histogram;
            stats.mean_residual_j = sum / self.batteries.len() as f64;
            stats.min_residual_j = min;
        }
        Some(stats)
    }

    /// The lifetime sampling cadence (zero in the config falls back to one second).
    fn sample_epoch(&self) -> SimDuration {
        let epoch = self.setup.lifecycle.sample_epoch;
        if epoch.is_zero() {
            SimDuration::from_secs(1)
        } else {
            epoch
        }
    }

    /// Network-wide energy consumed so far, joules (running total for mid-run probes).
    pub fn energy_consumed_j(&self) -> f64 {
        self.batteries.iter().map(Battery::consumed).sum()
    }

    /// Energy attributed to session `session`'s frames so far, joules.
    pub fn session_energy_j(&self, session: usize) -> f64 {
        self.session_energy_j[session]
    }

    /// Control packets transmitted so far, network-wide.
    pub fn control_packets_sent(&self) -> u64 {
        self.traces.iter().map(Trace::control_packets).sum()
    }

    /// Data packet transmissions so far, network-wide.
    pub fn data_packets_sent(&self) -> u64 {
        self.traces.iter().map(Trace::data_packets_tx).sum()
    }

    fn make_ctx_and_call<F>(&mut self, session: usize, node: NodeId, t: SimTime, f: F)
    where
        F: FnOnce(&mut A, &mut NodeCtx<'_, A::Payload>),
    {
        let pos = self.medium.position_of(node, t);
        let idx = self.idx(session, node);
        let role = self.memberships[idx];
        let n_nodes = self.setup.n_nodes;
        let mut actions = std::mem::take(&mut self.scratch_actions);
        actions.clear();
        {
            let mut ctx = NodeCtx::new(
                t,
                node,
                pos,
                role,
                n_nodes,
                &self.setup.radio,
                &mut self.rngs[node.index()],
                &mut actions,
            );
            f(&mut self.agents[idx], &mut ctx);
        }
        self.apply_actions(session, node, t, pos, &mut actions);
        self.scratch_actions = actions;
    }

    /// Apply the actions a protocol emitted at `node` within `session`. `node_pos` is
    /// the position the protocol context already saw, threaded through so broadcasts do
    /// not query the mobility model a second time at the same timestamp.
    fn apply_actions(
        &mut self,
        session: usize,
        node: NodeId,
        t: SimTime,
        node_pos: Vec2,
        actions: &mut Vec<Action<A::Payload>>,
    ) {
        for action in actions.drain(..) {
            match action {
                Action::Broadcast { class, size_bytes, range_m, data, payload } => {
                    self.do_broadcast(
                        session, node, t, node_pos, class, size_bytes, range_m, data, payload,
                    );
                }
                Action::SetTimer { delay, kind, key } => {
                    let ev = NetEvent::Timer { session: session as u16, node, kind, key };
                    let id = self.sim.schedule_in(delay, ev);
                    if let Some(old) = self.timers.insert((node.0, session as u16, kind, key), id) {
                        self.sim.cancel(old);
                    }
                }
                Action::CancelTimer { kind, key } => {
                    if let Some(id) = self.timers.remove(&(node.0, session as u16, kind, key)) {
                        self.sim.cancel(id);
                    }
                }
                Action::DeliverData { tag } => {
                    // Membership is enforced here, not only in protocol code: a node
                    // that left the group (or never joined it) cannot count a delivery,
                    // whatever its protocol instance believes. Only *receiving* members
                    // count — the source is the origin, never a delivery target.
                    if matches!(self.memberships[self.idx(session, node)], GroupRole::Member) {
                        self.traces[session].record_delivery(&tag, node, t);
                    }
                }
            }
        }
    }

    /// Apply one injected fault at time `t`. Returns `false` when the fault was a
    /// no-op (corrupting or re-crashing an already-down node, draining an empty
    /// battery) so the probed loop does not report phantom faults to the observer.
    fn apply_fault(&mut self, t: SimTime, kind: FaultKind) -> bool {
        // Bring the target's continuous drain up to date first, so a node whose battery
        // ran dry between packets is already dead (and the fault a no-op) here.
        self.accrue_idle(kind.node().index(), t);
        match kind {
            FaultKind::Corrupt { node } => {
                let i = node.index();
                let up = !self.crashed[i] && !self.batteries[i].is_depleted();
                if up {
                    // State corruption hits the node: every session's instance there is
                    // scrambled (with the node's own seeded RNG, in session order), and
                    // so is its MAC state — a corrupted TDMA schedule must re-converge.
                    for session in 0..self.setup.n_sessions() {
                        let idx = self.idx(session, node);
                        self.agents[idx].corrupt_state(&mut self.rngs[i]);
                    }
                    // A second pass with a live context: suppressed agents re-arm their
                    // beacon timers so the scrambled state becomes visible at the base
                    // cadence, not after a backed-off interval.
                    for session in 0..self.setup.n_sessions() {
                        self.make_ctx_and_call(session, node, t, |agent, ctx| {
                            agent.on_corrupted(ctx)
                        });
                    }
                    self.mac.corrupt(node);
                }
                up
            }
            FaultKind::Crash { node, down_for } => {
                if self.crashed[node.index()] || self.batteries[node.index()].is_depleted() {
                    return false; // already dead — nothing changes
                }
                self.crashed[node.index()] = true;
                if down_for != SimDuration::MAX {
                    if let Some(at) = t.checked_add(down_for) {
                        self.sim.schedule_at(at, NetEvent::Fault(FaultKind::Rejoin { node }));
                    }
                }
                true
            }
            FaultKind::Rejoin { node } => {
                let was_down = self.crashed[node.index()];
                if was_down {
                    self.crashed[node.index()] = false;
                    // The node's timers were lost while it was down; restarting the
                    // agents re-arms them. Their (stale) protocol state survives the
                    // crash — exactly the arbitrary-state situation self-stabilization
                    // must recover from.
                    for session in 0..self.setup.n_sessions() {
                        self.make_ctx_and_call(session, node, t, |agent, ctx| agent.start(ctx));
                    }
                }
                was_down
            }
            FaultKind::Blackout { node, duration } => {
                let until = t.checked_add(duration).unwrap_or(SimTime::MAX);
                // The medium flag is set regardless (the blackout may outlive a crash's
                // downtime), but darkening an already-dead node's links is a no-op for
                // episode accounting — a dead node is exempt from legitimacy anyway.
                self.medium.set_blackout(node, until);
                !self.crashed[node.index()] && !self.batteries[node.index()].is_depleted()
            }
            FaultKind::Drain { node, joules } => {
                let i = node.index();
                // An unlimited battery cannot be hurt by a spike: skip it entirely so
                // the energy report stays clean and no phantom episode opens.
                if self.batteries[i].is_unlimited() || self.batteries[i].is_depleted() {
                    return false;
                }
                self.batteries[i].drain(joules);
                self.note_death(i, t);
                true
            }
        }
    }

    /// Apply one scheduled membership change. Sources never churn, and redundant events
    /// (joining a member, removing a non-member) are ignored, so schedules stay valid
    /// under any interleaving.
    fn apply_membership(&mut self, session: usize, node: NodeId, change: MembershipChange) {
        let idx = self.idx(session, node);
        match (change, self.memberships[idx]) {
            (MembershipChange::Join, GroupRole::NonMember) => {
                self.memberships[idx] = GroupRole::Member;
                self.receiver_counts[session] += 1;
                self.joins[session] += 1;
            }
            (MembershipChange::Leave, GroupRole::Member) => {
                self.memberships[idx] = GroupRole::NonMember;
                self.receiver_counts[session] -= 1;
                self.leaves[session] += 1;
            }
            _ => {}
        }
    }

    /// Build a [`ProbeContext`] at `t` and hand it to the observer (as an epoch probe,
    /// or as a fault notification when `fault` is set).
    fn observe(
        &mut self,
        t: SimTime,
        observer: &mut dyn StabilizationObserver,
        fault: Option<&FaultKind>,
    ) {
        // Idle drain accrues fleet-wide first, so the alive-sets below reflect nodes
        // whose batteries ran dry between packets.
        self.accrue_all(t);
        if !matches!(&self.probe_snapshot, Some((st, _)) if *st == t) {
            let snapshot = self.medium.snapshot(t, self.setup.radio.max_range_m);
            self.probe_snapshot = Some((t, snapshot));
        }
        let snapshot = &self.probe_snapshot.as_ref().expect("primed above").1;
        let n = self.setup.n_nodes;
        self.probe_parents.clear();
        self.probe_parents.extend(self.agents.iter().map(ProtocolAgent::tree_parent));
        self.probe_alive.clear();
        self.probe_alive
            .extend((0..n).map(|i| !self.crashed[i] && !self.batteries[i].is_depleted()));
        // Blackout is reported separately from liveness: a blacked-out node still runs
        // (and still counts as a member to serve), its links are just unusable.
        self.probe_blacked.clear();
        self.probe_blacked.extend((0..n).map(|i| self.medium.is_blacked_out(NodeId(i as u32), t)));
        let (parents, alive, blacked_out): (&[_], &[bool], &[bool]) =
            (&self.probe_parents, &self.probe_alive, &self.probe_blacked);
        // One view per session: that session's parents, its churn-updated roles, and
        // its own running counters (so per-session recovery accounting does not charge
        // one session with another's traffic).
        let sessions: Vec<SessionProbe<'_>> = (0..self.setup.n_sessions())
            .map(|s| SessionProbe {
                parents: &parents[s * n..(s + 1) * n],
                roles: &self.memberships[s * n..(s + 1) * n],
                control_packets: self.traces[s].control_packets(),
                data_packets: self.traces[s].data_packets_tx(),
                energy_j: self.session_energy_j[s],
            })
            .collect();
        let ctx = ProbeContext {
            now: t,
            snapshot,
            sessions: &sessions,
            alive,
            blacked_out,
            control_packets: self.control_packets_sent(),
            data_packets: self.data_packets_sent(),
            energy_j: self.energy_consumed_j(),
        };
        match fault {
            Some(kind) => observer.on_fault(kind, &ctx),
            None => observer.on_epoch(&ctx),
        }
        drop(sessions);
        if self.setup.silence.enabled {
            for s in 0..self.setup.n_sessions() {
                self.session_recovering[s] = observer.session_recovering(s);
            }
        }
    }

    /// Bucket one control transmission into the steady or recovery phase.
    fn record_silence_control(&mut self, session: usize, size_bytes: u32) {
        if !self.setup.silence.enabled {
            return;
        }
        let bucket = if self.session_recovering[session] {
            &mut self.silence_recovery[session]
        } else {
            &mut self.silence_steady[session]
        };
        bucket.0 += 1;
        bucket.1 += size_bytes as u64;
    }

    /// The phase-split control-traffic block, when suppression accounting is on.
    fn silence_stats(&self) -> Option<SilenceStats> {
        if !self.setup.silence.enabled {
            return None;
        }
        let sessions = self
            .silence_steady
            .iter()
            .zip(&self.silence_recovery)
            .map(|(&(sp, sb), &(rp, rb))| SessionSilence {
                steady_control_packets: sp,
                steady_control_bytes: sb,
                recovery_control_packets: rp,
                recovery_control_bytes: rb,
            })
            .collect();
        Some(SilenceStats::from_sessions(sessions))
    }

    #[allow(clippy::too_many_arguments)]
    fn do_broadcast(
        &mut self,
        session: usize,
        sender: NodeId,
        t: SimTime,
        sender_pos: Vec2,
        class: PacketClass,
        size_bytes: u32,
        range_m: f64,
        data: Option<DataTag>,
        payload: A::Payload,
    ) {
        self.try_send(
            session,
            sender,
            t,
            Some(sender_pos),
            class,
            size_bytes,
            range_m,
            data,
            payload,
            0,
            t,
        );
    }

    /// One MAC-mediated transmission attempt: run the liveness/blackout guards, ask the
    /// MAC policy when the frame may transmit, and either put it on the air, schedule a
    /// [`NetEvent::MacRetry`], or drop it. `sender_pos` is threaded from the protocol
    /// context on the first attempt; retries pass `None` and re-query the (possibly
    /// moved) node.
    #[allow(clippy::too_many_arguments)]
    fn try_send(
        &mut self,
        session: usize,
        sender: NodeId,
        t: SimTime,
        sender_pos: Option<Vec2>,
        class: PacketClass,
        size_bytes: u32,
        range_m: f64,
        data: Option<DataTag>,
        payload: A::Payload,
        attempt: u32,
        requested_at: SimTime,
    ) {
        self.accrue_idle(sender.index(), t);
        if self.batteries[sender.index()].is_depleted() || self.crashed[sender.index()] {
            return;
        }
        let radio = self.setup.radio;
        let range = radio.clamp_range(range_m);
        let usage = match class {
            PacketClass::Control => EnergyUse::TxControl,
            PacketClass::Data => EnergyUse::TxData,
        };
        // A blacked-out sender still pays for the transmission but nobody hears it —
        // at the requested range even under power control (its neighbourhood is
        // unknowable through a jammed link), and without wasting a neighbour query
        // whose result would be discarded. The MAC never sees these frames: carrier
        // sensing through a jammed front end is meaningless.
        if self.medium.is_blacked_out(sender, t) {
            let accepted = self.batteries[sender.index()]
                .accept(radio.energy.tx_energy(range, size_bytes), usage);
            self.note_death(sender.index(), t);
            self.session_energy_j[session] += accepted;
            match class {
                PacketClass::Control => {
                    self.traces[session].record_control_tx(size_bytes);
                    self.record_silence_control(session, size_bytes);
                }
                PacketClass::Data => self.traces[session].record_data_tx(size_bytes),
            }
            return;
        }
        if attempt == 0 {
            self.mac_requested += 1;
        }
        // The MAC decides when the frame hits the air. The default jitter policy draws
        // exactly the legacy backoff from `loss_rng` and always transmits, keeping
        // pre-MAC-layer runs byte-identical; the contention policies use their own
        // seeded streams and may defer or drop instead.
        let frame = MacFrame { sender, class, size_bytes, attempt };
        let decision = self.mac.access(&frame, t, &radio, &self.channel, &mut self.loss_rng);
        let tx_start = match decision {
            MacDecision::Drop => {
                self.mac_drops += 1;
                return;
            }
            MacDecision::Defer { until } => {
                self.mac_deferrals += 1;
                let ev = NetEvent::MacRetry {
                    session: session as u16,
                    sender,
                    class,
                    size_bytes,
                    range_m: range,
                    data,
                    payload,
                    attempt: attempt + 1,
                    requested_at,
                };
                self.sim.schedule_at(until.max(t), ev);
                return;
            }
            MacDecision::Transmit { at } => at.max(t),
        };
        self.mac_sent += 1;
        self.mac_access_delay += tx_start.saturating_since(requested_at);
        self.mac_airtime += radio.tx_duration(size_bytes);
        // Receivers are computed up front (the query is RNG-free, so the loss draws
        // below still happen in exactly the legacy order) so distance-based TX power
        // control can price the transmission by its farthest actual receiver.
        let sender_pos = sender_pos.unwrap_or_else(|| self.medium.position_of(sender, t));
        let mut receivers = std::mem::take(&mut self.scratch_receivers);
        self.medium.receivers_within(sender, sender_pos, range, t, &mut receivers);
        let tx_end = tx_start + radio.tx_duration(size_bytes);
        let delivery_at = tx_start + radio.delivery_delay(size_bytes);
        let lc = self.setup.lifecycle;
        let tx_range = if lc.tx_power_control {
            // Just enough power to cover the farthest receiver; the zero-range
            // electronics term keeps the cost above the floor even with nobody in
            // range. By default a sleeping receiver still counts — the sender cannot
            // know; with the duty-aware-pricing opt-in the seeded schedule *is*
            // knowable, and receivers provably asleep at the delivery instant (they
            // would drop the frame anyway) leave the pricing set. The receiver set,
            // delays and loss draws are never affected — only the priced range.
            if lc.duty_aware_pricing && self.duty.is_on() {
                let priced: Vec<NodeId> = receivers
                    .iter()
                    .copied()
                    .filter(|&rx| self.duty.is_awake(rx, delivery_at))
                    .collect();
                self.medium.farthest_distance(sender_pos, &priced, t).min(range)
            } else {
                self.medium.farthest_distance(sender_pos, &receivers, t).min(range)
            }
        } else {
            range
        };
        let tx_energy = radio.energy.tx_energy(tx_range, size_bytes);
        // Attribute only what the battery actually held: the dying gasp of a nearly
        // drained node books (and charges its session with) the residual energy, so
        // per-session sums conserve the batteries' totals across depletion.
        let accepted = self.batteries[sender.index()].accept(tx_energy, usage);
        self.note_death(sender.index(), t);
        self.session_energy_j[session] += accepted;
        match class {
            PacketClass::Control => {
                self.traces[session].record_control_tx(size_bytes);
                self.record_silence_control(session, size_bytes);
            }
            PacketClass::Data => self.traces[session].record_data_tx(size_bytes),
        }

        // MAC state rides the frame: the claim-table row is snapshotted once, when the
        // frame leaves the sender, and shared by every receiver's copy — receivers
        // learn from what was actually on the air, not from the sender's later state.
        let piggyback: Option<std::sync::Arc<[u16]>> =
            self.mac.piggyback_row(sender, class).map(std::sync::Arc::from);
        // Receivers come back in ascending node-id order regardless of query mode, so
        // the per-receiver channel and loss draws below consume `loss_rng` in exactly
        // the sequence the brute-force scan would.
        for &rx in &receivers {
            if self.batteries[rx.index()].is_depleted() {
                continue;
            }
            let clean = if radio.collisions_enabled {
                self.channel.try_receive(session as u16, rx, tx_start, tx_end)
            } else {
                true
            };
            let lost = self.loss_rng.gen::<f64>() < radio.loss_probability;
            let corrupted = !clean || lost;
            let packet = Packet { sender, class, size_bytes, data, payload: payload.clone() };
            let ev = NetEvent::Deliver {
                session: session as u16,
                rx,
                packet,
                corrupted,
                tx_start,
                piggyback: piggyback.clone(),
            };
            self.sim.schedule_at(delivery_at, ev);
        }
        self.scratch_receivers = receivers;
    }

    fn dispatch(&mut self, t: SimTime, ev: NetEvent<A::Payload>) {
        match ev {
            NetEvent::Deliver { session, rx, packet, corrupted, tx_start, piggyback } => {
                let session = session as usize;
                self.accrue_idle(rx.index(), t);
                if self.batteries[rx.index()].is_depleted() || self.crashed[rx.index()] {
                    return;
                }
                // A frame already in flight when the blackout started is lost too.
                if self.medium.is_blacked_out(rx, t) {
                    return;
                }
                // A sleeping radio misses the frame entirely: no reception, no
                // reception energy — the delivery cost of duty cycling.
                if !self.duty.is_awake(rx, t) {
                    return;
                }
                let rx_energy = self.setup.radio.energy.rx_energy(packet.size_bytes);
                if corrupted {
                    let accepted =
                        self.batteries[rx.index()].accept(rx_energy, EnergyUse::Overhear);
                    self.note_death(rx.index(), t);
                    self.session_energy_j[session] += accepted;
                    self.session_overhear_j[session] += accepted;
                    return;
                }
                // A clean reception teaches the MAC: TDMA learns the sender's slot
                // (and, on control frames, its piggybacked claim table) exclusively
                // through this call — at arrival, exactly like the sharded engine.
                self.mac.on_overheard(
                    rx,
                    packet.sender,
                    packet.class,
                    tx_start,
                    piggyback.as_deref(),
                );
                let mut disposition = Disposition::Discarded;
                self.make_ctx_and_call(session, rx, t, |agent, ctx| {
                    disposition = agent.on_packet(ctx, &packet);
                });
                let usage = match (disposition, packet.class) {
                    (Disposition::Discarded, _) => EnergyUse::Overhear,
                    (Disposition::Consumed, PacketClass::Control) => EnergyUse::RxControl,
                    (Disposition::Consumed, PacketClass::Data) => EnergyUse::RxData,
                };
                let accepted = self.batteries[rx.index()].accept(rx_energy, usage);
                self.note_death(rx.index(), t);
                self.session_energy_j[session] += accepted;
                if usage == EnergyUse::Overhear {
                    self.session_overhear_j[session] += accepted;
                }
            }
            NetEvent::Timer { session, node, kind, key } => {
                self.timers.remove(&(node.0, session, kind, key));
                self.accrue_idle(node.index(), t);
                if self.batteries[node.index()].is_depleted() || self.crashed[node.index()] {
                    return;
                }
                self.make_ctx_and_call(session as usize, node, t, |agent, ctx| {
                    agent.on_timer(ctx, kind, key);
                });
            }
            NetEvent::AppSend { session, seq } => {
                let s = session as usize;
                let traffic = self.setup.sessions[s].traffic;
                if t >= traffic.stop {
                    return;
                }
                let source = traffic.source;
                self.accrue_idle(source.index(), t);
                let tag = DataTag { group: traffic.group, origin: source, seq, created_at: t };
                let receivers = self.receiver_counts[s];
                self.traces[s].record_generated(seq, t, receivers);
                if !self.batteries[source.index()].is_depleted() && !self.crashed[source.index()] {
                    self.make_ctx_and_call(s, source, t, |agent, ctx| {
                        agent.on_app_data(ctx, tag, traffic.packet_size_bytes);
                    });
                }
                let next = t + traffic.interval();
                if next < traffic.stop {
                    self.sim.schedule_at(next, NetEvent::AppSend { session, seq: seq + 1 });
                }
            }
            NetEvent::Membership { session, node, change } => {
                self.apply_membership(session as usize, node, change);
            }
            NetEvent::Fault(kind) => {
                // Defensive fallback only: `run_inner`'s loop intercepts fault events
                // itself (it must decide whether to notify the observer and how to
                // account the episode), so this arm never fires from a normal run.
                let _ = self.apply_fault(t, kind);
            }
            NetEvent::HarvestWake { node } => {
                let i = node.index();
                // Book the dark period first: `accrue_idle` advances the accrual
                // horizon but charges nothing while the battery reads depleted — a
                // powered-down node draws no idle or sleep current.
                self.accrue_idle(i, t);
                let restored = self.batteries[i].recharge(self.harvest.wake_energy_j());
                if restored <= 0.0 || self.batteries[i].is_depleted() {
                    return; // nothing banked (or still short): stay dark forever
                }
                self.death_at[i] = None;
                if !self.crashed[i] {
                    // Timers died with the node; restarting the agents re-arms them,
                    // carrying whatever protocol state survived the outage — the same
                    // arbitrary-state restart as a fault-layer rejoin.
                    for session in 0..self.setup.n_sessions() {
                        self.make_ctx_and_call(session, node, t, |agent, ctx| agent.start(ctx));
                    }
                }
            }
            NetEvent::MacRetry {
                session,
                sender,
                class,
                size_bytes,
                range_m,
                data,
                payload,
                attempt,
                requested_at,
            } => {
                self.try_send(
                    session as usize,
                    sender,
                    t,
                    None,
                    class,
                    size_bytes,
                    range_m,
                    data,
                    payload,
                    attempt,
                    requested_at,
                );
            }
        }
    }

    /// Run the simulation for `duration` and return the report. Any faults in the
    /// setup's [`FaultPlan`] are injected, but no legitimacy probe runs — use
    /// [`Self::run_probed`] to also measure convergence.
    pub fn run(&mut self, duration: SimDuration) -> SimReport {
        self.run_inner(duration, None)
    }

    /// Run the simulation while probing the network through `observer` every
    /// [`StabilizationObserver::probe_epoch`] (legitimacy predicate + convergence
    /// accounting; see [`crate::faults`]). The observer's finish result is embedded in
    /// the report's `convergence` block (and its per-session stats in the per-group
    /// blocks, when the run has group dynamics). Probing reads state but never perturbs
    /// the event flow: for the same seeds and fault plan, the report's traffic/energy
    /// numbers are identical with and without a probe.
    pub fn run_probed(
        &mut self,
        duration: SimDuration,
        observer: &mut dyn StabilizationObserver,
    ) -> SimReport {
        self.run_inner(duration, Some(observer))
    }

    fn run_inner(
        &mut self,
        duration: SimDuration,
        probe: Option<&mut dyn StabilizationObserver>,
    ) -> SimReport {
        if self.setup.engine.is_parallel() {
            return shard::run_sharded(self, duration, probe);
        }
        let wall = std::time::Instant::now();
        let mut peak_depth: u64 = 0;
        let horizon = SimTime::ZERO + duration;
        // Start every agent at time zero, session-major (session 0 first keeps the
        // single-session event order of the pre-refactor runtime).
        for session in 0..self.setup.n_sessions() {
            for i in 0..self.setup.n_nodes {
                self.make_ctx_and_call(session, NodeId(i as u32), SimTime::ZERO, |agent, ctx| {
                    agent.start(ctx)
                });
            }
        }
        // Schedule the fault plan through the same queue as every packet and timer.
        let faults: Vec<FaultEvent> = self.setup.faults.events().to_vec();
        for fe in faults {
            if fe.at <= horizon {
                self.sim.schedule_at(fe.at, NetEvent::Fault(fe.kind));
            }
        }
        // Schedule each session's churn the same way: membership changes are data.
        let churn: Vec<(u16, MembershipEvent)> = self
            .setup
            .sessions
            .iter()
            .enumerate()
            .flat_map(|(s, sess)| sess.churn.iter().map(move |ev| (s as u16, *ev)))
            .collect();
        for (session, ev) in churn {
            if ev.at <= horizon {
                let net = NetEvent::Membership { session, node: ev.node, change: ev.change };
                self.sim.schedule_at(ev.at, net);
            }
        }
        // Kick off each session's CBR application.
        for (s, sess) in self.setup.sessions.iter().enumerate() {
            if sess.traffic.start < horizon {
                self.sim.schedule_at(
                    sess.traffic.start,
                    NetEvent::AppSend { session: s as u16, seq: 0 },
                );
            }
        }
        // Main loop. The closure trick: `run_until` hands us events one at a time; we
        // cannot call a method on `self` from inside a closure borrowing `self.sim`, so
        // we drive the loop manually. Probe epochs and lifetime samples interleave with
        // events in strict time order (events at an epoch's exact timestamp dispatch
        // first, so both see the post-event state); when a probe and a sample fall on
        // the same instant the probe fires first — both only read state.
        let mut probe = probe;
        let probe_epoch = probe.as_ref().map(|observer| {
            let epoch = observer.probe_epoch();
            if epoch.is_zero() {
                SimDuration::from_secs(1)
            } else {
                epoch
            }
        });
        let mut next_probe = probe_epoch.map(|epoch| SimTime::ZERO + epoch);
        let sample_epoch = self.sample_epoch();
        let mut next_sample =
            if self.lifetime_tracking() { Some(SimTime::ZERO + sample_epoch) } else { None };
        loop {
            if self.setup.engine.stats {
                peak_depth = peak_depth.max(self.sim.pending() as u64);
            }
            let next_aux = match (next_probe, next_sample) {
                (Some(p), Some(s)) => Some(p.min(s)),
                (p, s) => p.or(s),
            };
            match self.sim.peek_time() {
                Some(next) if next <= horizon && next_aux.is_none_or(|aux| next <= aux) => {
                    let (t, ev) = self.sim.pop_next().expect("peeked event must pop");
                    match ev {
                        NetEvent::Fault(kind) => {
                            // Rejoins are repairs scheduled by an earlier crash, and
                            // no-op faults (e.g. corrupting an already-crashed node)
                            // never perturbed anything — reporting either would open
                            // spurious episodes.
                            let applied = self.apply_fault(t, kind);
                            if let Some(observer) = probe.as_deref_mut() {
                                if applied && !matches!(kind, FaultKind::Rejoin { .. }) {
                                    self.observe(t, observer, Some(&kind));
                                }
                            }
                        }
                        other => self.dispatch(t, other),
                    }
                }
                _ => {
                    let Some(aux) = next_aux else { break };
                    if aux > horizon {
                        break;
                    }
                    if next_probe == Some(aux) {
                        let observer = probe.as_deref_mut().expect("probe drives probe epochs");
                        self.observe(aux, observer, None);
                        next_probe = Some(aux + probe_epoch.expect("epoch set with the probe"));
                    }
                    if next_sample == Some(aux) {
                        self.sample_lifetime(aux);
                        next_sample = Some(aux + sample_epoch);
                    }
                }
            }
        }
        // Bring every battery's continuous drain up to the horizon so the residual
        // energy histogram and total-energy figures describe the whole run.
        self.accrue_all(horizon);
        let mut report = self.report(duration);
        if self.setup.engine.stats {
            report.engine = Some(EngineStats::from_counts(
                0,
                vec![self.sim.events_processed()],
                peak_depth,
                0,
                wall.elapsed().as_secs_f64(),
            ));
        }
        if let Some(observer) = probe {
            report.convergence = observer.finish(horizon);
            if let Some(groups) = report.groups.as_mut() {
                let per_session = observer.session_stats();
                for (group, stats) in groups.iter_mut().zip(per_session) {
                    group.convergence = Some(stats);
                }
            }
        }
        report
    }

    /// Build a report from the current traces (normally called by [`Self::run`]). The
    /// aggregate block folds every session; runs with group dynamics (several sessions
    /// or churn) additionally carry one per-group block per session.
    pub fn report(&self, duration: SimDuration) -> SimReport {
        let total_energy: f64 = self.batteries.iter().map(Battery::consumed).sum();
        let overhear: f64 = self.batteries.iter().map(Battery::overheard).sum();
        let label = self.agents.first().map(|a| a.label()).unwrap_or("protocol");
        let pairs: Vec<(&Trace, u32)> = self
            .traces
            .iter()
            .zip(&self.setup.sessions)
            .map(|(trace, session)| (trace, session.traffic.packet_size_bytes))
            .collect();
        let mut report = Trace::finish_aggregate(
            &pairs,
            label,
            duration,
            total_energy,
            overhear,
            self.channel.collisions(),
            self.setup.availability_threshold,
        );
        if self.setup.has_group_dynamics() {
            let groups = self
                .setup
                .sessions
                .iter()
                .enumerate()
                .map(|(s, session)| {
                    self.traces[s].group_stats(&GroupAccounting {
                        group: session.traffic.group.0,
                        source: session.traffic.source.0,
                        members_initial: session.initial_receivers(),
                        members_final: self.receiver_counts[s],
                        joins: self.joins[s],
                        leaves: self.leaves[s],
                        energy_j: self.session_energy_j[s],
                        overhear_energy_j: self.session_overhear_j[s],
                        collisions: self.channel.collisions_for(s),
                        availability_threshold: self.setup.availability_threshold,
                    })
                })
                .collect();
            report.groups = Some(groups);
        }
        report.lifetime = self.lifetime_stats();
        if self.setup.mac.reports_stats() {
            report.mac = Some(self.mac_stats(duration));
        }
        report.silence = self.silence_stats();
        report
    }

    /// Assemble the [`MacStats`] block from the runtime counters, the collision channel
    /// and the policy's own accounting.
    fn mac_stats(&self, duration: SimDuration) -> MacStats {
        let mut mac = MacStats::empty(self.mac.label());
        mac.frames_requested = self.mac_requested;
        mac.frames_sent = self.mac_sent;
        mac.mac_drops = self.mac_drops;
        mac.deferrals = self.mac_deferrals;
        mac.mean_access_delay_ms = if self.mac_sent > 0 {
            self.mac_access_delay.as_millis_f64() / self.mac_sent as f64
        } else {
            0.0
        };
        mac.airtime_utilization = if duration.is_zero() {
            0.0
        } else {
            self.mac_airtime.as_secs_f64() / duration.as_secs_f64()
        };
        mac.receptions = self.channel.receptions();
        mac.collisions = self.channel.collisions();
        mac.collision_rate =
            if mac.receptions > 0 { mac.collisions as f64 / mac.receptions as f64 } else { 0.0 };
        self.mac.fill_stats(&mut mac);
        mac
    }
}

/// Outcome of a bounded run (re-exported for integration tests that drive the engine
/// directly).
pub type NetRunOutcome = RunOutcome;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mobility::Stationary;
    use crate::node::GroupId;

    /// A trivial flooding protocol used to exercise the runtime: the source broadcasts
    /// data at max range; every member delivers; every node rebroadcasts each packet once.
    struct Flood {
        seen: std::collections::HashSet<u64>,
    }

    impl Flood {
        fn new() -> Self {
            Flood { seen: std::collections::HashSet::new() }
        }
    }

    impl ProtocolAgent for Flood {
        type Payload = ();

        fn start(&mut self, _ctx: &mut NodeCtx<'_, ()>) {}

        fn on_packet(&mut self, ctx: &mut NodeCtx<'_, ()>, packet: &Packet<()>) -> Disposition {
            let Some(tag) = packet.data else { return Disposition::Discarded };
            if !self.seen.insert(tag.seq) {
                return Disposition::Discarded;
            }
            if ctx.is_member() {
                ctx.deliver_data(tag);
            }
            ctx.broadcast_data(packet.size_bytes, ctx.radio.max_range_m, tag, ());
            Disposition::Consumed
        }

        fn on_timer(&mut self, _ctx: &mut NodeCtx<'_, ()>, _kind: u64, _key: u64) {}

        fn on_app_data(&mut self, ctx: &mut NodeCtx<'_, ()>, tag: DataTag, size: u32) {
            self.seen.insert(tag.seq);
            ctx.broadcast_data(size, ctx.radio.max_range_m, tag, ());
        }

        fn label(&self) -> &'static str {
            "flood-test"
        }
    }

    fn line_traffic(group: u16, source: NodeId) -> TrafficConfig {
        TrafficConfig {
            group: GroupId(group),
            source,
            data_rate_bps: 64_000.0,
            packet_size_bytes: 512,
            start: SimTime::from_secs(1),
            stop: SimTime::from_secs(11),
        }
    }

    fn line_setup(n: usize, spacing: f64) -> (SimSetup, Vec<BoxedMobility>) {
        let roles: Vec<GroupRole> =
            (0..n).map(|i| if i == 0 { GroupRole::Source } else { GroupRole::Member }).collect();
        let mobility: Vec<BoxedMobility> = (0..n)
            .map(|i| Box::new(Stationary::new(Vec2::new(i as f64 * spacing, 0.0))) as BoxedMobility)
            .collect();
        let radio = RadioConfig {
            loss_probability: 0.0,
            collisions_enabled: false,
            ..RadioConfig::default()
        };
        let setup = SimSetup::single(
            radio,
            line_traffic(0, NodeId(0)),
            roles,
            f64::INFINITY,
            SimDuration::from_secs(1),
            0.95,
            SeedSequence::new(7),
            MediumConfig::default(),
            FaultPlan::new(),
        );
        (setup, mobility)
    }

    #[test]
    fn flooding_on_a_line_delivers_everything() {
        let (setup, mobility) = line_setup(4, 200.0);
        let agents = (0..4).map(|_| Flood::new()).collect();
        let mut sim = NetworkSim::new(setup, mobility, agents);
        let report = sim.run(SimDuration::from_secs(20));
        assert!(report.generated > 100, "CBR source must generate packets");
        assert_eq!(report.expected_deliveries, report.generated * 3);
        assert!(
            (report.pdr - 1.0).abs() < 1e-9,
            "ideal channel flooding delivers all, pdr={}",
            report.pdr
        );
        assert!(report.avg_delay_ms > 0.0);
        assert!(report.total_energy_j > 0.0);
        assert!(report.unavailability_ratio < 1e-9);
        assert!(report.groups.is_none(), "single static session: no per-group breakdown");
    }

    #[test]
    fn partitioned_member_receives_nothing() {
        let (mut setup, _) = line_setup(3, 200.0);
        // Node 2 is far out of range of everyone.
        let mobility: Vec<BoxedMobility> = vec![
            Box::new(Stationary::new(Vec2::new(0.0, 0.0))),
            Box::new(Stationary::new(Vec2::new(200.0, 0.0))),
            Box::new(Stationary::new(Vec2::new(5_000.0, 0.0))),
        ];
        setup.sessions[0].roles = vec![GroupRole::Source, GroupRole::Member, GroupRole::Member];
        let agents = (0..3).map(|_| Flood::new()).collect();
        let mut sim = NetworkSim::new(setup, mobility, agents);
        let report = sim.run(SimDuration::from_secs(20));
        assert!((report.pdr - 0.5).abs() < 1e-9, "only half the deliveries can happen");
    }

    #[test]
    fn loss_reduces_pdr() {
        let (mut setup, mobility) = line_setup(4, 200.0);
        setup.radio.loss_probability = 0.3;
        let agents = (0..4).map(|_| Flood::new()).collect();
        let mut sim = NetworkSim::new(setup, mobility, agents);
        let report = sim.run(SimDuration::from_secs(20));
        assert!(report.pdr < 1.0);
        assert!(report.pdr > 0.2, "some packets still get through, pdr={}", report.pdr);
    }

    #[test]
    fn energy_is_charged_for_tx_rx_and_overhearing() {
        let (setup, mobility) = line_setup(3, 100.0);
        let agents = (0..3).map(|_| Flood::new()).collect();
        let mut sim = NetworkSim::new(setup, mobility, agents);
        let report = sim.run(SimDuration::from_secs(5));
        assert!(report.total_energy_j > 0.0);
        // The source both transmits and (re-)receives floods from node 1.
        assert!(sim.battery(NodeId(0)).tx_total() > 0.0);
        assert!(sim.battery(NodeId(1)).rx_total() > 0.0);
        // Duplicate floods arriving at a node that has already seen them are discarded,
        // so some overhearing energy must have accumulated.
        assert!(report.overhear_energy_j > 0.0);
        // A single session owns every joule the batteries burned.
        assert!((sim.session_energy_j(0) - report.total_energy_j).abs() < 1e-9);
    }

    #[test]
    fn depleted_nodes_stop_participating() {
        let (mut setup, mobility) = line_setup(3, 100.0);
        setup.battery_capacity_j = 0.0; // dead from the start
        let agents = (0..3).map(|_| Flood::new()).collect();
        let mut sim = NetworkSim::new(setup, mobility, agents);
        let report = sim.run(SimDuration::from_secs(5));
        assert_eq!(report.delivered, 0, "dead radios deliver nothing");
        // An initially depleted fleet is dead at time zero, not censored: the lifetime
        // block must record the deaths rather than score a full-run lifetime.
        assert_eq!(sim.death_time(NodeId(0)), Some(SimTime::ZERO));
        let lifetime = report.lifetime.as_ref().expect("finite batteries track lifetime");
        assert_eq!(lifetime.first_death_s, Some(0.0));
        assert_eq!(lifetime.deaths, 3);
        assert_eq!(lifetime.alive_final, 0);
    }

    #[test]
    fn duty_aware_pricing_prices_at_the_awake_receiver() {
        // Nodes at 0 / 100 / 200 m; node 2 (the farthest receiver) is phase-shifted to
        // sleep through the whole broadcast window. With plain TX power control the
        // sender pays for 200 m; with the duty-aware opt-in it pays only for the one
        // receiver that can actually take the frame at 100 m.
        let tx_total = |duty_aware: bool| {
            let (mut setup, mobility) = line_setup(3, 100.0);
            setup.lifecycle =
                setup.lifecycle.with_tx_power_control(true).with_duty_aware_pricing(duty_aware);
            let agents = (0..3).map(|_| Flood::new()).collect();
            let mut sim = NetworkSim::new(setup, mobility, agents);
            // Hand-built schedule: 1000 s period, first half awake; node 2's phase puts
            // it asleep for all of [0, 500) s — provably asleep at the delivery instant.
            let half = 500_000_000_000u64;
            sim.duty = DutySchedule::with_phases(2 * half, half, vec![0, 0, half]);
            let t = SimTime::from_secs(1);
            sim.try_send(
                0,
                NodeId(0),
                t,
                None,
                PacketClass::Data,
                512,
                sim.setup.radio.max_range_m,
                None,
                (),
                0,
                t,
            );
            sim.battery(NodeId(0)).tx_total()
        };
        let radio = RadioConfig::default();
        let aware = tx_total(true);
        let blind = tx_total(false);
        assert!(
            (aware - radio.energy.tx_energy(100.0, 512)).abs() < 1e-12,
            "duty-aware pricing charges the awake receiver's distance: {aware}"
        );
        assert!(
            (blind - radio.energy.tx_energy(200.0, 512)).abs() < 1e-12,
            "default pricing still charges the farthest sleeper: {blind}"
        );
        assert!(aware < blind);
    }

    #[test]
    fn harvest_wake_revives_depleted_nodes() {
        // Idle drain kills a 1 J fleet roughly two seconds in. Without harvesting the
        // run goes dark for good; with a generous harvest rate the nodes power-cycle
        // and keep delivering. The first depletion instant must be identical in both
        // runs: harvesting only acts after it.
        let run = |harvest: HarvestConfig| {
            let (mut setup, mobility) = line_setup(3, 200.0);
            setup.battery_capacity_j = 1.0;
            setup.lifecycle.idle_listen_w = 0.5;
            setup.harvest = harvest;
            let agents = (0..3).map(|_| Flood::new()).collect();
            let mut sim = NetworkSim::new(setup, mobility, agents);
            let report = sim.run(SimDuration::from_secs(20));
            let harvested: f64 = (0..3).map(|i| sim.battery(NodeId(i)).harvested()).sum();
            (report, harvested)
        };
        let (dark, dark_harvested) = run(HarvestConfig::off());
        let (cycling, cycling_harvested) = run(HarvestConfig::on(10.0, 10.0, 0.5));
        assert_eq!(dark_harvested, 0.0);
        assert!(cycling_harvested > 0.0, "waking nodes banked harvested charge");
        let dark_lt = dark.lifetime.as_ref().expect("finite batteries track lifetime");
        let cyc_lt = cycling.lifetime.as_ref().expect("finite batteries track lifetime");
        assert!(dark_lt.first_death_s.is_some(), "the fleet must deplete at least once");
        assert_eq!(
            dark_lt.first_death_s, cyc_lt.first_death_s,
            "harvesting cannot move the first depletion"
        );
        assert!(
            cycling.delivered > dark.delivered,
            "power-cycling relays deliver more than permanently dead ones \
             ({} vs {})",
            cycling.delivered,
            dark.delivered
        );
    }

    #[test]
    fn harvest_runs_are_deterministic_for_a_seed() {
        let run = || {
            let (mut setup, mobility) = line_setup(3, 200.0);
            setup.battery_capacity_j = 1.0;
            setup.lifecycle.idle_listen_w = 0.5;
            setup.harvest = HarvestConfig::on(5.0, 20.0, 0.5);
            let agents = (0..3).map(|_| Flood::new()).collect();
            let mut sim = NetworkSim::new(setup, mobility, agents);
            sim.run(SimDuration::from_secs(20))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn streaming_mode_preserves_scalar_metrics_and_attaches_its_block() {
        let run = |metrics: MetricsConfig| {
            let (mut setup, mobility) = line_setup(4, 200.0);
            setup.metrics = metrics;
            let agents = (0..4).map(|_| Flood::new()).collect();
            let mut sim = NetworkSim::new(setup, mobility, agents);
            sim.run(SimDuration::from_secs(20))
        };
        let exact = run(MetricsConfig::exact());
        let streaming = run(MetricsConfig::streaming());
        assert!(exact.streaming.is_none(), "exact reports carry no streaming block");
        let block = streaming.streaming.as_ref().expect("streaming reports carry the block");
        assert!(block.report_bytes > 0);
        // Scalar metrics fold through the same counters in both modes: bit-equal.
        assert_eq!(exact.generated, streaming.generated);
        assert_eq!(exact.delivered, streaming.delivered);
        assert_eq!(exact.pdr.to_bits(), streaming.pdr.to_bits());
        assert_eq!(exact.avg_delay_ms.to_bits(), streaming.avg_delay_ms.to_bits());
        assert_eq!(exact.total_energy_j.to_bits(), streaming.total_energy_j.to_bits());
        // The histogram's exact maximum dominates its own quantiles and the mean.
        assert!(block.latency_p95_ms <= block.latency_max_ms + 1e-9);
        assert!(block.latency_max_ms >= exact.avg_delay_ms - 1e-9);
    }

    #[test]
    fn report_is_deterministic_for_a_seed() {
        let run = || {
            let (setup, mobility) = line_setup(4, 200.0);
            let agents = (0..4).map(|_| Flood::new()).collect();
            let mut sim = NetworkSim::new(setup, mobility, agents);
            sim.run(SimDuration::from_secs(15))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn crash_and_rejoin_suppress_then_restore_participation() {
        // Node 1 is the only relay between the source and node 2 on the line. Crash it
        // for the middle of the run: deliveries to node 2 must stop, then resume.
        let run = |faults: FaultPlan| {
            let (mut setup, mobility) = line_setup(3, 200.0);
            setup.faults = faults;
            let agents = (0..3).map(|_| Flood::new()).collect();
            let mut sim = NetworkSim::new(setup, mobility, agents);
            sim.run(SimDuration::from_secs(20))
        };
        let healthy = run(FaultPlan::new());
        let crashed = run(FaultPlan::new().with(
            SimTime::from_secs(4),
            FaultKind::Crash { node: NodeId(1), down_for: SimDuration::from_secs(5) },
        ));
        assert!(crashed.delivered < healthy.delivered, "a crashed relay loses deliveries");
        assert!(
            crashed.pdr > 0.3,
            "after the rejoin the relay must carry traffic again, pdr={}",
            crashed.pdr
        );
        let permanent = run(FaultPlan::new().with(
            SimTime::from_secs(4),
            FaultKind::Crash { node: NodeId(1), down_for: SimDuration::MAX },
        ));
        assert!(permanent.delivered < crashed.delivered, "a permanent crash never recovers");
    }

    #[test]
    fn blackout_silences_links_but_still_burns_transmit_energy() {
        let run = |faults: FaultPlan| {
            let (mut setup, mobility) = line_setup(2, 100.0);
            setup.faults = faults;
            let agents = (0..2).map(|_| Flood::new()).collect();
            let mut sim = NetworkSim::new(setup, mobility, agents);
            sim.run(SimDuration::from_secs(20))
        };
        let healthy = run(FaultPlan::new());
        // Black out the source for the whole traffic window.
        let dark = run(FaultPlan::new().with(
            SimTime::from_secs(0),
            FaultKind::Blackout { node: NodeId(0), duration: SimDuration::from_secs(30) },
        ));
        assert_eq!(dark.delivered, 0, "nothing escapes a blacked-out transmitter");
        assert_eq!(dark.generated, healthy.generated, "the application keeps generating");
        assert!(dark.total_energy_j > 0.0, "transmissions into the void still cost energy");
        assert!(dark.total_energy_j < healthy.total_energy_j, "but nobody pays rx energy");
    }

    #[test]
    fn battery_drain_spike_can_silence_a_node() {
        let (mut setup, mobility) = line_setup(3, 200.0);
        setup.battery_capacity_j = 100.0;
        setup.faults = FaultPlan::new()
            .with(SimTime::from_secs(4), FaultKind::Drain { node: NodeId(1), joules: 1_000.0 });
        let agents = (0..3).map(|_| Flood::new()).collect();
        let mut sim = NetworkSim::new(setup, mobility, agents);
        let report = sim.run(SimDuration::from_secs(20));
        assert!(sim.battery(NodeId(1)).is_depleted(), "the spike empties the battery");
        assert!(sim.battery(NodeId(1)).drained() > 0.0);
        assert!(report.pdr < 1.0, "the dead relay costs deliveries");
    }

    #[test]
    fn faulted_runs_are_deterministic_for_a_seed_and_plan() {
        let run = || {
            let (mut setup, mobility) = line_setup(4, 200.0);
            setup.faults = FaultPlan::new()
                .with(
                    SimTime::from_secs(3),
                    FaultKind::Crash { node: NodeId(2), down_for: SimDuration::from_secs(4) },
                )
                .with(
                    SimTime::from_secs(5),
                    FaultKind::Blackout { node: NodeId(1), duration: SimDuration::from_secs(2) },
                )
                .with(SimTime::from_secs(8), FaultKind::Corrupt { node: NodeId(3) });
            let agents = (0..4).map(|_| Flood::new()).collect();
            let mut sim = NetworkSim::new(setup, mobility, agents);
            sim.run(SimDuration::from_secs(15))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn rejoins_are_not_reported_as_faults_and_blackouts_suspend_probe_liveness() {
        #[derive(Default)]
        struct Recording {
            faults: Vec<FaultKind>,
            alive_mid: Option<(Vec<bool>, Vec<bool>)>,
            alive_late: Option<(Vec<bool>, Vec<bool>)>,
        }
        impl crate::faults::StabilizationObserver for Recording {
            fn on_epoch(&mut self, ctx: &crate::faults::ProbeContext<'_>) {
                if ctx.now == SimTime::from_secs(6) {
                    self.alive_mid = Some((ctx.alive.to_vec(), ctx.blacked_out.to_vec()));
                }
                if ctx.now == SimTime::from_secs(12) {
                    self.alive_late = Some((ctx.alive.to_vec(), ctx.blacked_out.to_vec()));
                }
            }
            fn on_fault(&mut self, kind: &FaultKind, _ctx: &crate::faults::ProbeContext<'_>) {
                self.faults.push(*kind);
            }
            fn finish(&mut self, _end: SimTime) -> Option<ssmcast_metrics::ConvergenceStats> {
                None
            }
        }
        let (mut setup, mobility) = line_setup(3, 100.0);
        setup.faults = FaultPlan::new()
            .with(
                SimTime::from_secs(3),
                FaultKind::Crash { node: NodeId(2), down_for: SimDuration::from_secs(4) },
            )
            .with(
                SimTime::from_secs(5),
                FaultKind::Blackout { node: NodeId(1), duration: SimDuration::from_secs(3) },
            );
        let agents = (0..3).map(|_| Flood::new()).collect();
        let mut sim = NetworkSim::new(setup, mobility, agents);
        let mut obs = Recording::default();
        sim.run_probed(SimDuration::from_secs(15), &mut obs);
        assert_eq!(
            obs.faults,
            vec![
                FaultKind::Crash { node: NodeId(2), down_for: SimDuration::from_secs(4) },
                FaultKind::Blackout { node: NodeId(1), duration: SimDuration::from_secs(3) },
            ],
            "the internally scheduled rejoin is a repair, not an injected fault"
        );
        assert_eq!(
            obs.alive_mid,
            Some((vec![true, true, false], vec![false, true, false])),
            "at t=6 node 2 is crashed (until 7); node 1 is alive but blacked out (until 8)"
        );
        assert_eq!(
            obs.alive_late,
            Some((vec![true, true, true], vec![false, false, false])),
            "by t=12 both the blackout and the crash are over"
        );
    }

    #[test]
    fn probing_never_perturbs_the_simulation_itself() {
        // A do-nothing observer: the probed run's traffic/energy numbers must equal the
        // unprobed run's exactly (probes read state, they do not schedule anything).
        struct Null;
        impl crate::faults::StabilizationObserver for Null {
            fn probe_epoch(&self) -> SimDuration {
                SimDuration::from_millis(250)
            }
            fn on_epoch(&mut self, _ctx: &crate::faults::ProbeContext<'_>) {}
            fn on_fault(&mut self, _kind: &FaultKind, _ctx: &crate::faults::ProbeContext<'_>) {}
            fn finish(&mut self, _end: SimTime) -> Option<ssmcast_metrics::ConvergenceStats> {
                None
            }
        }
        let run = |probed: bool| {
            let (mut setup, mobility) = line_setup(4, 200.0);
            setup.faults = FaultPlan::new().with(
                SimTime::from_secs(3),
                FaultKind::Crash { node: NodeId(2), down_for: SimDuration::from_secs(4) },
            );
            let agents = (0..4).map(|_| Flood::new()).collect();
            let mut sim = NetworkSim::new(setup, mobility, agents);
            if probed {
                sim.run_probed(SimDuration::from_secs(15), &mut Null)
            } else {
                sim.run(SimDuration::from_secs(15))
            }
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn grid_and_brute_force_query_modes_agree_byte_for_byte() {
        use crate::medium::MediumConfig;
        let run = |medium: MediumConfig| {
            let (mut setup, mobility) = line_setup(6, 150.0);
            setup.radio.loss_probability = 0.1; // exercise the loss RNG draw order
            setup.medium = medium;
            let agents = (0..6).map(|_| Flood::new()).collect();
            let mut sim = NetworkSim::new(setup, mobility, agents);
            sim.run(SimDuration::from_secs(15))
        };
        assert_eq!(run(MediumConfig::grid()), run(MediumConfig::brute_force()));
        // The same holds under a coarse position epoch (both paths quantised alike).
        let epoch = SimDuration::from_millis(250);
        assert_eq!(
            run(MediumConfig::grid().with_epoch(epoch)),
            run(MediumConfig::brute_force().with_epoch(epoch))
        );
    }

    /// Two-session setup on the same 4-node line: session 0 sourced at node 0, session 1
    /// sourced at node 3, members mirrored.
    fn two_session_setup(spacing: f64) -> (SimSetup, Vec<BoxedMobility>) {
        let (mut setup, mobility) = line_setup(4, spacing);
        let roles1 =
            vec![GroupRole::Member, GroupRole::Member, GroupRole::Member, GroupRole::Source];
        setup.sessions.push(SessionSetup::new(line_traffic(1, NodeId(3)), roles1));
        (setup, mobility)
    }

    #[test]
    fn concurrent_sessions_deliver_independently_and_carry_group_blocks() {
        let (setup, mobility) = two_session_setup(200.0);
        let agents = (0..8).map(|_| Flood::new()).collect();
        let mut sim = NetworkSim::new(setup, mobility, agents);
        let report = sim.run(SimDuration::from_secs(20));
        let groups = report.groups.as_ref().expect("two sessions breed a breakdown");
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].group, 0);
        assert_eq!(groups[1].group, 1);
        assert_eq!(groups[1].source, 3);
        for g in groups {
            assert!(g.generated > 100, "both sessions generate traffic");
            assert!((g.pdr - 1.0).abs() < 1e-9, "ideal channel floods deliver all");
        }
        // Aggregate counters are the per-session sums.
        assert_eq!(report.generated, groups[0].generated + groups[1].generated);
        assert_eq!(report.delivered, groups[0].delivered + groups[1].delivered);
        // And the shared medium conserves energy across the sessions.
        let attributed: f64 = groups.iter().map(|g| g.energy_j).sum();
        assert!(
            (attributed - report.total_energy_j).abs() <= 1e-9 * report.total_energy_j.max(1.0),
            "attributed {attributed} vs total {}",
            report.total_energy_j
        );
    }

    #[test]
    fn sessions_are_isolated_frames_of_one_session_never_reach_the_other() {
        // Session 1's flood instances never see session 0's frames: each flood agent
        // dedups by seq, so if dispatch leaked across sessions the shared seq numbers
        // would suppress deliveries in one of them.
        let (setup, mobility) = two_session_setup(200.0);
        let agents = (0..8).map(|_| Flood::new()).collect();
        let mut sim = NetworkSim::new(setup, mobility, agents);
        let report = sim.run(SimDuration::from_secs(20));
        let groups = report.groups.expect("breakdown");
        assert!((groups[0].pdr - 1.0).abs() < 1e-9 && (groups[1].pdr - 1.0).abs() < 1e-9);
        // Each node runs one instance per session: distinct objects, distinct state.
        assert!(!std::ptr::eq(sim.agent_in(0, NodeId(1)), sim.agent_in(1, NodeId(1))));
    }

    #[test]
    fn membership_churn_updates_expected_deliveries_and_counts() {
        // Node 2 leaves session 0 at t=5 and rejoins at t=8; while out, generated
        // packets owe one fewer delivery and node 2's deliveries are dropped.
        let (mut setup, mobility) = line_setup(3, 200.0);
        setup.sessions[0].churn = vec![
            MembershipEvent {
                at: SimTime::from_secs(5),
                node: NodeId(2),
                change: MembershipChange::Leave,
            },
            MembershipEvent {
                at: SimTime::from_secs(8),
                node: NodeId(2),
                change: MembershipChange::Join,
            },
        ];
        let agents = (0..3).map(|_| Flood::new()).collect();
        let mut sim = NetworkSim::new(setup, mobility, agents);
        let report = sim.run(SimDuration::from_secs(20));
        let groups = report.groups.expect("churn breeds a breakdown");
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].joins, 1);
        assert_eq!(groups[0].leaves, 1);
        assert_eq!(groups[0].members_initial, 2);
        assert_eq!(groups[0].members_final, 2);
        assert!(
            report.expected_deliveries < report.generated * 2,
            "packets generated during the absence owe only one delivery"
        );
        assert!(report.expected_deliveries > report.generated, "node 1 stays a member throughout");
        assert!((report.pdr - 1.0).abs() < 1e-2, "expected and delivered shrink together");
        assert!(groups[0].join_overhead_bytes_per_event >= 0.0);
    }

    #[test]
    fn runtime_drops_deliveries_for_nodes_outside_the_group() {
        // A protocol that (wrongly) delivers everywhere: the runtime's membership guard
        // must still only count members.
        struct OverDeliver {
            seen: std::collections::HashSet<u64>,
        }
        impl ProtocolAgent for OverDeliver {
            type Payload = ();
            fn start(&mut self, _ctx: &mut NodeCtx<'_, ()>) {}
            fn on_packet(&mut self, ctx: &mut NodeCtx<'_, ()>, packet: &Packet<()>) -> Disposition {
                if let Some(tag) = packet.data {
                    ctx.deliver_data(tag); // no membership check at all
                    if self.seen.insert(tag.seq) {
                        ctx.broadcast_data(packet.size_bytes, ctx.radio.max_range_m, tag, ());
                    }
                }
                Disposition::Consumed
            }
            fn on_timer(&mut self, _ctx: &mut NodeCtx<'_, ()>, _kind: u64, _key: u64) {}
            fn on_app_data(&mut self, ctx: &mut NodeCtx<'_, ()>, tag: DataTag, size: u32) {
                self.seen.insert(tag.seq);
                ctx.broadcast_data(size, ctx.radio.max_range_m, tag, ());
            }
            fn label(&self) -> &'static str {
                "overdeliver"
            }
        }
        let (mut setup, mobility) = line_setup(3, 100.0);
        setup.sessions[0].roles = vec![GroupRole::Source, GroupRole::NonMember, GroupRole::Member];
        // Mark the setup as dynamic so the breakdown is attached even with one session.
        setup.sessions[0].churn = vec![MembershipEvent {
            at: SimTime::from_secs(19),
            node: NodeId(1),
            change: MembershipChange::Join,
        }];
        let agents = (0..3).map(|_| OverDeliver { seen: Default::default() }).collect();
        let mut sim = NetworkSim::new(setup, mobility, agents);
        let report = sim.run(SimDuration::from_secs(18));
        // Only node 2's deliveries count: the non-member node 1 delivered in vain. Each
        // packet reaches node 2 along two paths, so the duplicate filter also engages.
        assert_eq!(report.expected_deliveries, report.generated);
        assert_eq!(report.delivered, report.generated, "the single member is fully served");
        assert!(report.duplicate_deliveries > 0);
    }

    #[test]
    fn multi_session_runs_are_deterministic() {
        let run = || {
            let (mut setup, mobility) = two_session_setup(200.0);
            setup.sessions[1].churn = vec![MembershipEvent {
                at: SimTime::from_secs(6),
                node: NodeId(1),
                change: MembershipChange::Leave,
            }];
            let agents = (0..8).map(|_| Flood::new()).collect();
            let mut sim = NetworkSim::new(setup, mobility, agents);
            sim.run(SimDuration::from_secs(15))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn probe_context_carries_one_view_per_session() {
        struct CountSessions {
            seen: Vec<usize>,
        }
        impl crate::faults::StabilizationObserver for CountSessions {
            fn on_epoch(&mut self, ctx: &crate::faults::ProbeContext<'_>) {
                self.seen.push(ctx.sessions.len());
                for view in ctx.sessions {
                    assert_eq!(view.parents.len(), view.roles.len());
                }
            }
            fn on_fault(&mut self, _k: &FaultKind, _ctx: &crate::faults::ProbeContext<'_>) {}
            fn finish(&mut self, _end: SimTime) -> Option<ssmcast_metrics::ConvergenceStats> {
                None
            }
        }
        let (setup, mobility) = two_session_setup(200.0);
        let agents = (0..8).map(|_| Flood::new()).collect();
        let mut sim = NetworkSim::new(setup, mobility, agents);
        let mut obs = CountSessions { seen: Vec::new() };
        sim.run_probed(SimDuration::from_secs(5), &mut obs);
        assert!(!obs.seen.is_empty());
        assert!(obs.seen.iter().all(|&n| n == 2));
    }
}
