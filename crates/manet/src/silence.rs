//! Beacon-suppression configuration: silent stabilization in the style of
//! Devismes, Masuzawa & Tixeuil.
//!
//! The paper's SS protocols beacon at a fixed cadence forever, so in a legitimate
//! state every control byte is pure overhead. With suppression enabled, an agent
//! that has observed its *local* legitimacy predicate hold for
//! [`SilenceConfig::quiet_rounds`] consecutive beacon rounds backs its beacon timer
//! off exponentially — each further quiet round multiplies the interval by
//! [`SilenceConfig::backoff_factor`], capped at
//! [`SilenceConfig::max_interval_factor`] × the base interval (the heartbeat floor
//! that keeps neighbour tables alive). Any evidence of illegitimacy — a neighbour
//! appearing or expiring, a parent change or loss, corrupted state, an overheard
//! beacon inconsistent with the recorded neighbour view — snaps the interval back to
//! the base `beacon_interval` immediately.
//!
//! The default is **off**, which reproduces always-on beaconing byte for byte: no
//! extra RNG draws, no wire-format change, no report block.

use serde::{Deserialize, Serialize};
use ssmcast_dessim::SimDuration;

/// Adaptive beacon-suppression knobs for the self-stabilizing tree agents.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SilenceConfig {
    /// Master switch. `false` (the default) reproduces always-on beaconing exactly.
    pub enabled: bool,
    /// Consecutive quiet beacon rounds before the first backoff step.
    pub quiet_rounds: u32,
    /// Interval multiplier applied per additional quiet round once backoff has begun.
    pub backoff_factor: f64,
    /// Cap on the suppressed interval, as a multiple of the base beacon interval.
    /// `1.0` disables the backoff while keeping phase accounting on.
    pub max_interval_factor: f64,
}

impl SilenceConfig {
    /// Suppression disabled (the default): classic fixed-cadence beaconing.
    pub fn off() -> Self {
        SilenceConfig {
            enabled: false,
            quiet_rounds: 3,
            backoff_factor: 2.0,
            max_interval_factor: 8.0,
        }
    }

    /// Suppression enabled with the default schedule: after 3 quiet rounds, double
    /// the interval per quiet round up to 8 × the base interval.
    pub fn on() -> Self {
        SilenceConfig { enabled: true, ..Self::off() }
    }

    /// The same configuration with a different backoff cap (clamped to ≥ 1).
    pub fn with_max_interval_factor(mut self, factor: f64) -> Self {
        self.max_interval_factor = factor.max(1.0);
        self
    }

    /// The same configuration with a different quiet-round threshold (clamped to ≥ 1).
    pub fn with_quiet_rounds(mut self, rounds: u32) -> Self {
        self.quiet_rounds = rounds.max(1);
        self
    }

    /// The beacon interval at backoff `level` (number of quiet rounds past the
    /// threshold), given the agent's base interval. Level 0 is the base cadence.
    pub fn interval_at(&self, base: SimDuration, level: u32) -> SimDuration {
        if !self.enabled || level == 0 {
            return base;
        }
        let factor =
            self.backoff_factor.max(1.0).powi(level.min(64) as i32).min(self.max_interval_factor);
        base.mul_f64(factor.max(1.0))
    }
}

impl Default for SilenceConfig {
    fn default() -> Self {
        Self::off()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_off_and_keeps_the_base_cadence() {
        let cfg = SilenceConfig::default();
        assert!(!cfg.enabled);
        let base = SimDuration::from_secs(2);
        assert_eq!(cfg.interval_at(base, 0), base);
        assert_eq!(cfg.interval_at(base, 10), base, "disabled suppression never backs off");
    }

    #[test]
    fn backoff_doubles_per_level_and_caps_at_the_heartbeat() {
        let cfg = SilenceConfig::on();
        let base = SimDuration::from_secs(2);
        assert_eq!(cfg.interval_at(base, 0), base);
        assert_eq!(cfg.interval_at(base, 1), base.mul_f64(2.0));
        assert_eq!(cfg.interval_at(base, 2), base.mul_f64(4.0));
        assert_eq!(cfg.interval_at(base, 3), base.mul_f64(8.0));
        assert_eq!(cfg.interval_at(base, 20), base.mul_f64(8.0), "capped");
    }

    #[test]
    fn cap_of_one_keeps_the_base_cadence_even_when_enabled() {
        let cfg = SilenceConfig::on().with_max_interval_factor(1.0);
        let base = SimDuration::from_secs(2);
        assert_eq!(cfg.interval_at(base, 5), base);
        assert_eq!(SilenceConfig::on().with_max_interval_factor(0.2).max_interval_factor, 1.0);
        assert_eq!(SilenceConfig::on().with_quiet_rounds(0).quiet_rounds, 1);
    }
}
