//! Packets exchanged over the broadcast wireless medium.

use crate::node::{GroupId, NodeId};
use serde::{Deserialize, Serialize};
use ssmcast_dessim::SimTime;

/// Whether a packet carries protocol control information or application data.
///
/// The distinction drives the control-overhead metric (Figure 13) and the energy
/// accounting categories.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, Serialize, Deserialize)]
pub enum PacketClass {
    /// Protocol control traffic: beacons, join queries/replies, route requests, ...
    Control,
    /// Multicast application data.
    Data,
}

/// Application-data identification carried end to end so the runtime can measure packet
/// delivery ratio and delay without understanding protocol payloads.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct DataTag {
    /// Multicast group the data belongs to.
    pub group: GroupId,
    /// Node that originated the data.
    pub origin: NodeId,
    /// Application-level sequence number, unique per origin.
    pub seq: u64,
    /// When the application generated the packet (for end-to-end delay).
    pub created_at: SimTime,
}

/// A frame on the air. `P` is the protocol-specific payload type.
///
/// A transmission is always a local broadcast: every node within the chosen transmission
/// range receives a copy (the *wireless multicast advantage*), so there is no link-layer
/// destination field; protocols address each other inside their payloads.
#[derive(Clone, Debug, PartialEq)]
pub struct Packet<P> {
    /// The transmitting node (last hop, not necessarily the data origin).
    pub sender: NodeId,
    /// Control or data.
    pub class: PacketClass,
    /// Size on the wire in bytes (headers included); drives airtime and energy.
    pub size_bytes: u32,
    /// Present when the frame carries (a copy of) an application data packet.
    pub data: Option<DataTag>,
    /// Protocol-specific contents.
    pub payload: P,
}

impl<P> Packet<P> {
    /// Construct a control packet.
    pub fn control(sender: NodeId, size_bytes: u32, payload: P) -> Self {
        Packet { sender, class: PacketClass::Control, size_bytes, data: None, payload }
    }

    /// Construct a data-bearing packet.
    pub fn data(sender: NodeId, size_bytes: u32, tag: DataTag, payload: P) -> Self {
        Packet { sender, class: PacketClass::Data, size_bytes, data: Some(tag), payload }
    }

    /// True if this frame carries application data.
    pub fn is_data(&self) -> bool {
        self.class == PacketClass::Data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_class() {
        let c: Packet<u8> = Packet::control(NodeId(1), 32, 7);
        assert_eq!(c.class, PacketClass::Control);
        assert!(!c.is_data());
        assert!(c.data.is_none());

        let tag =
            DataTag { group: GroupId(0), origin: NodeId(1), seq: 9, created_at: SimTime::ZERO };
        let d: Packet<u8> = Packet::data(NodeId(1), 512, tag, 7);
        assert!(d.is_data());
        assert_eq!(d.data.unwrap().seq, 9);
    }
}
