//! Raw simulation traces and the per-run report derived from them.
//!
//! Since the multi-session refactor a run carries one [`Trace`] per multicast session;
//! [`Trace::finish_aggregate`] folds them into the network-wide [`SimReport`] (whose
//! aggregate fields are defined exactly as the single-group originals), and
//! [`Trace::group_stats`] renders each session's own block. Single-session, churn-free
//! runs produce reports byte-identical to the pre-refactor build: the aggregate of one
//! trace *is* the old report, and the `groups` breakdown is omitted entirely.

use crate::node::NodeId;
use crate::packet::DataTag;
use serde::{Deserialize, Serialize};
use ssmcast_dessim::{SimDuration, SimTime};
use ssmcast_metrics::{
    ConvergenceStats, EngineStats, FixedBinHistogram, GroupStats, LifetimeStats, MacStats,
    MetricsConfig, SeqDedup, SilenceStats, StreamingStats, WindowLedger,
};
use std::collections::{HashMap, HashSet};

/// Per-packet bookkeeping: exact store-everything records, or the fixed-budget
/// streaming sketches (see `ssmcast_metrics::streaming`). The scalar counters that
/// both modes share (`expected`, `delay_sum`, `delivered_count`, …) live directly on
/// [`Trace`], which is why PDR, mean latency and energy totals are bit-equal across
/// modes.
#[derive(Debug, Clone)]
enum PacketLog {
    /// One map entry per generated packet and one set entry per delivery: memory grows
    /// O(events).
    Exact { generated: HashMap<u64, SimTime>, delivered: HashSet<(u64, u32)> },
    /// Fixed-budget sketches: a generated-packet counter (the per-packet timestamps
    /// were only ever read through `DataTag::created_at`), per-receiver sequence
    /// bitmaps for duplicate detection, and a latency histogram for the quantiles the
    /// exact mode derives from retained samples. Memory is O(budgets + nodes).
    Streaming { generated: u64, dedup: SeqDedup, latency: FixedBinHistogram },
}

/// Raw counters accumulated for one multicast session while a simulation runs.
#[derive(Debug, Clone)]
pub struct Trace {
    window: SimDuration,
    log: PacketLog,
    /// Per-window expected/delivered counts. In exact mode the ledger is unbounded
    /// (level 0: exactly the historical per-window maps); in streaming mode it
    /// coarsens to a fixed block budget.
    windows: WindowLedger,
    /// Deliveries owed: summed per generated packet from the membership at that instant.
    expected: u64,
    delay_sum: SimDuration,
    delivered_count: u64,
    duplicate_deliveries: u64,
    control_packets: u64,
    control_bytes: u64,
    data_packets_tx: u64,
    data_bytes_tx: u64,
}

/// Everything a session's [`GroupStats`] block needs beyond the trace counters: identity,
/// the churn the runtime applied, and the energy it attributed to this session.
#[derive(Clone, Copy, Debug)]
pub struct GroupAccounting {
    /// The session's group id.
    pub group: u16,
    /// The session's source node id.
    pub source: u32,
    /// Receivers at the start of the run.
    pub members_initial: u64,
    /// Receivers at the end of the run.
    pub members_final: u64,
    /// Join events applied.
    pub joins: u64,
    /// Leave events applied.
    pub leaves: u64,
    /// Energy attributed to this session's frames, joules.
    pub energy_j: f64,
    /// Overhearing energy attributed to this session, joules.
    pub overhear_energy_j: f64,
    /// Receptions of this session's frames lost to a collision on the shared medium.
    pub collisions: u64,
    /// Per-window delivery ratio below which the session counts as unavailable.
    pub availability_threshold: f64,
}

impl Trace {
    /// Create an exact (store-everything) trace. `window` is the bucket used for the
    /// unavailability ratio. Every historical caller keeps this constructor; streaming
    /// accumulation is opted into via [`Trace::with_config`].
    pub fn new(window: SimDuration) -> Self {
        Trace::with_config(window, &MetricsConfig::exact())
    }

    /// Create a trace in the accumulation mode selected by `metrics`.
    pub fn with_config(window: SimDuration, metrics: &MetricsConfig) -> Self {
        let (log, windows) = if metrics.is_streaming() {
            let cfg = metrics.streaming;
            let bin_ns =
                SimDuration::from_secs_f64(cfg.latency_bin_width_ms / 1_000.0).as_nanos().max(1);
            (
                PacketLog::Streaming {
                    generated: 0,
                    dedup: SeqDedup::new(cfg.dedup_window),
                    latency: FixedBinHistogram::new(bin_ns, cfg.latency_bins),
                },
                WindowLedger::bounded(cfg.window_budget as usize),
            )
        } else {
            (
                PacketLog::Exact { generated: HashMap::new(), delivered: HashSet::new() },
                WindowLedger::exact(),
            )
        };
        Trace {
            window,
            log,
            windows,
            expected: 0,
            delay_sum: SimDuration::ZERO,
            delivered_count: 0,
            duplicate_deliveries: 0,
            control_packets: 0,
            control_bytes: 0,
            data_packets_tx: 0,
            data_bytes_tx: 0,
        }
    }

    /// True when this trace accumulates with the fixed-budget streaming sketches.
    pub fn is_streaming(&self) -> bool {
        matches!(self.log, PacketLog::Streaming { .. })
    }

    /// Approximate report-layer bytes held by this trace: a data-size lower bound
    /// (map/set payloads, histogram bins, bitmap words, ledger blocks) that excludes
    /// allocator and hash-table overhead, so it *under*-counts the exact mode. Used by
    /// the memory-bound evidence in benches and tests.
    pub fn approx_mem_bytes(&self) -> u64 {
        let log = match &self.log {
            PacketLog::Exact { generated, delivered } => {
                generated.len() as u64 * 16 + delivered.len() as u64 * 12
            }
            PacketLog::Streaming { dedup, latency, .. } => {
                8 + dedup.mem_bytes() + latency.mem_bytes()
            }
        };
        log + self.windows.mem_bytes()
    }

    fn window_of(&self, t: SimTime) -> u64 {
        let w = self.window.as_nanos().max(1);
        t.as_nanos() / w
    }

    /// Record that the application generated data packet `seq` at time `t`, owed to
    /// `receivers` current members (members excluding the source at that instant —
    /// membership churn makes this a per-packet quantity).
    pub fn record_generated(&mut self, seq: u64, t: SimTime, receivers: u64) {
        match &mut self.log {
            PacketLog::Exact { generated, .. } => {
                generated.insert(seq, t);
            }
            PacketLog::Streaming { generated, .. } => *generated += 1,
        }
        self.expected += receivers;
        let w = self.window_of(t);
        self.windows.add_expected(w, receivers);
    }

    /// Record that `tag` reached the application at node `rx` at time `now`.
    /// Duplicate receptions of the same packet at the same node are counted once.
    /// (Streaming mode detects duplicates over a bounded per-receiver sequence window;
    /// a reception lapping the window is conservatively counted as a duplicate.)
    pub fn record_delivery(&mut self, tag: &DataTag, rx: NodeId, now: SimTime) {
        let fresh = match &mut self.log {
            PacketLog::Exact { delivered, .. } => delivered.insert((tag.seq, rx.0)),
            PacketLog::Streaming { dedup, .. } => dedup.insert(rx.0, tag.seq),
        };
        if !fresh {
            self.duplicate_deliveries += 1;
            return;
        }
        self.delivered_count += 1;
        let delay = now.saturating_since(tag.created_at);
        self.delay_sum += delay;
        if let PacketLog::Streaming { latency, .. } = &mut self.log {
            latency.record(delay.as_nanos());
        }
        let gen_window = self.window_of(tag.created_at);
        self.windows.add_delivered(gen_window, 1);
    }

    /// Record a transmitted control packet of `bytes`.
    pub fn record_control_tx(&mut self, bytes: u32) {
        self.control_packets += 1;
        self.control_bytes += u64::from(bytes);
    }

    /// Record a transmitted data packet of `bytes` (including forwarded copies).
    pub fn record_data_tx(&mut self, bytes: u32) {
        self.data_packets_tx += 1;
        self.data_bytes_tx += u64::from(bytes);
    }

    /// Number of data packets generated so far.
    pub fn generated_count(&self) -> u64 {
        match &self.log {
            PacketLog::Exact { generated, .. } => generated.len() as u64,
            PacketLog::Streaming { generated, .. } => *generated,
        }
    }

    /// Number of unique (packet, member) deliveries.
    pub fn delivered_count(&self) -> u64 {
        self.delivered_count
    }

    /// Deliveries owed so far (running total, for mid-run lifetime sampling).
    pub fn expected_deliveries(&self) -> u64 {
        self.expected
    }

    /// Control packets transmitted so far (running total, for mid-run probes).
    pub fn control_packets(&self) -> u64 {
        self.control_packets
    }

    /// Data packet transmissions so far (running total, for mid-run probes).
    pub fn data_packets_tx(&self) -> u64 {
        self.data_packets_tx
    }

    /// Unavailability over this trace's windows: the fraction whose per-window delivery
    /// ratio fell below `threshold` (1.0 when no traffic window exists). Defined by
    /// one shared ledger implementation so the per-session blocks and the merged
    /// aggregate agree. (The paper does not define the metric formally; see
    /// EXPERIMENTS.md.)
    fn unavailability(&self, threshold: f64) -> f64 {
        self.windows.unavailability(threshold)
    }

    /// Merge `other` into `self`: counters sum, maps union-sum, sets union, sketches
    /// merge. The sharded engine records each session's trace piecewise (each shard
    /// sees only its own nodes' deliveries) and folds the pieces with this. All merged
    /// quantities are integers (delays are integer nanoseconds) and the streaming
    /// sketches coarsen to content-determined levels, so the merge is exact and
    /// order-independent — a prerequisite for shard-count-invariant reports.
    ///
    /// The pieces must be disjoint: a `(packet, receiver)` delivery or a generated
    /// sequence number must have been recorded by exactly one piece (the sharded engine
    /// guarantees this — each node is owned by one shard), and all pieces must share
    /// one accumulation mode.
    pub fn absorb(&mut self, other: &Trace) {
        match (&mut self.log, &other.log) {
            (
                PacketLog::Exact { generated, delivered },
                PacketLog::Exact { generated: og, delivered: od },
            ) => {
                for (&seq, &t) in og {
                    generated.insert(seq, t);
                }
                delivered.extend(od.iter().copied());
            }
            (
                PacketLog::Streaming { generated, dedup, latency },
                PacketLog::Streaming { generated: og, dedup: od, latency: ol },
            ) => {
                *generated += og;
                dedup.absorb(od);
                latency.absorb(ol);
            }
            _ => panic!("Trace::absorb requires pieces of the same metrics mode"),
        }
        self.expected += other.expected;
        self.delay_sum += other.delay_sum;
        self.delivered_count += other.delivered_count;
        self.duplicate_deliveries += other.duplicate_deliveries;
        self.control_packets += other.control_packets;
        self.control_bytes += other.control_bytes;
        self.data_packets_tx += other.data_packets_tx;
        self.data_bytes_tx += other.data_bytes_tx;
        self.windows.absorb(&other.windows);
    }

    /// Finish a single-session trace into a [`SimReport`] — the aggregate of one trace.
    #[allow(clippy::too_many_arguments)]
    pub fn finish(
        &self,
        protocol: &str,
        duration: SimDuration,
        total_energy_j: f64,
        overhear_energy_j: f64,
        collisions: u64,
        data_packet_size: u32,
        availability_threshold: f64,
    ) -> SimReport {
        Self::finish_aggregate(
            &[(self, data_packet_size)],
            protocol,
            duration,
            total_energy_j,
            overhear_energy_j,
            collisions,
            availability_threshold,
        )
    }

    /// Fold per-session traces into the network-wide report. Every aggregate is defined
    /// exactly as the single-group original: counters sum, ratios divide the summed
    /// numerators by the summed denominators, and unavailability merges the sessions'
    /// per-window expectations before thresholding. Each trace is paired with its
    /// session's data packet size (control overhead divides by *delivered data bytes*,
    /// which may differ per session).
    pub fn finish_aggregate(
        traces: &[(&Trace, u32)],
        protocol: &str,
        duration: SimDuration,
        total_energy_j: f64,
        overhear_energy_j: f64,
        collisions: u64,
        availability_threshold: f64,
    ) -> SimReport {
        let mut generated = 0u64;
        let mut expected = 0u64;
        let mut delivered = 0u64;
        let mut duplicates = 0u64;
        let mut delay_sum = SimDuration::ZERO;
        let mut control_packets = 0u64;
        let mut control_bytes = 0u64;
        let mut data_packets_tx = 0u64;
        let mut data_bytes_tx = 0u64;
        let mut data_bytes_delivered = 0u64;
        let mut windows: Option<WindowLedger> = None;
        for (trace, data_packet_size) in traces {
            generated += trace.generated_count();
            expected += trace.expected;
            delivered += trace.delivered_count;
            duplicates += trace.duplicate_deliveries;
            delay_sum += trace.delay_sum;
            control_packets += trace.control_packets;
            control_bytes += trace.control_bytes;
            data_packets_tx += trace.data_packets_tx;
            data_bytes_tx += trace.data_bytes_tx;
            data_bytes_delivered += trace.delivered_count * u64::from(*data_packet_size);
            match &mut windows {
                None => windows = Some(trace.windows.clone()),
                Some(w) => w.absorb(&trace.windows),
            }
        }
        let pdr = if expected > 0 { delivered as f64 / expected as f64 } else { 0.0 };
        let avg_delay_ms =
            if delivered > 0 { delay_sum.as_millis_f64() / delivered as f64 } else { 0.0 };
        let energy_per_delivered_mj =
            if delivered > 0 { total_energy_j * 1_000.0 / delivered as f64 } else { 0.0 };
        let control_overhead = if data_bytes_delivered > 0 {
            control_bytes as f64 / data_bytes_delivered as f64
        } else {
            0.0
        };
        let unavailability =
            windows.as_ref().map(|w| w.unavailability(availability_threshold)).unwrap_or(1.0);

        // When every trace accumulated with the streaming sketches, summarize them.
        // Quantiles come from the *merged* histogram (sessions merged here; shard
        // pieces already merged by `absorb`), so they are invariant to shard count
        // and session iteration order alike.
        let streaming = if !traces.is_empty() && traces.iter().all(|(t, _)| t.is_streaming()) {
            let mut merged: Option<FixedBinHistogram> = None;
            let mut report_bytes = 0u64;
            for (trace, _) in traces {
                report_bytes += trace.approx_mem_bytes();
                if let PacketLog::Streaming { latency, .. } = &trace.log {
                    match &mut merged {
                        None => merged = Some(latency.clone()),
                        Some(m) => m.absorb(latency),
                    }
                }
            }
            let hist = merged.expect("at least one streaming trace");
            let ledger = windows.as_ref().expect("at least one trace");
            Some(StreamingStats {
                latency_bin_width_ms: hist.bin_width_ns() as f64 / 1e6,
                latency_p50_ms: hist.quantile_ns(0.50) / 1e6,
                latency_p95_ms: hist.quantile_ns(0.95) / 1e6,
                latency_max_ms: hist.max_ns() as f64 / 1e6,
                latency_overflow: hist.overflow(),
                window_level: ledger.level(),
                window_blocks: ledger.blocks_len() as u64,
                report_bytes,
            })
        } else {
            None
        };

        SimReport {
            protocol: protocol.to_string(),
            duration_s: duration.as_secs_f64(),
            generated,
            expected_deliveries: expected,
            delivered,
            duplicate_deliveries: duplicates,
            pdr,
            avg_delay_ms,
            total_energy_j,
            overhear_energy_j,
            energy_per_delivered_mj,
            control_packets,
            control_bytes,
            data_packets_tx,
            data_bytes_tx,
            control_bytes_per_data_byte: control_overhead,
            unavailability_ratio: unavailability,
            collisions,
            convergence: None,
            groups: None,
            lifetime: None,
            mac: None,
            silence: None,
            engine: None,
            streaming,
        }
    }

    /// Render this session's per-group block (see [`GroupStats`]); the runtime supplies
    /// identity, churn counters and attributed energy via `acct`.
    pub fn group_stats(&self, acct: &GroupAccounting) -> GroupStats {
        let pdr = if self.expected > 0 {
            self.delivered_count as f64 / self.expected as f64
        } else {
            0.0
        };
        let avg_delay_ms = if self.delivered_count > 0 {
            self.delay_sum.as_millis_f64() / self.delivered_count as f64
        } else {
            0.0
        };
        let events = acct.joins + acct.leaves;
        let join_overhead =
            if events > 0 { self.control_bytes as f64 / events as f64 } else { 0.0 };
        GroupStats {
            group: acct.group,
            source: acct.source,
            members_initial: acct.members_initial,
            members_final: acct.members_final,
            joins: acct.joins,
            leaves: acct.leaves,
            generated: self.generated_count(),
            expected_deliveries: self.expected,
            delivered: self.delivered_count,
            duplicate_deliveries: self.duplicate_deliveries,
            pdr,
            avg_delay_ms,
            control_packets: self.control_packets,
            control_bytes: self.control_bytes,
            data_packets_tx: self.data_packets_tx,
            data_bytes_tx: self.data_bytes_tx,
            energy_j: acct.energy_j,
            overhear_energy_j: acct.overhear_energy_j,
            collisions: acct.collisions,
            join_overhead_bytes_per_event: join_overhead,
            unavailability_ratio: self.unavailability(acct.availability_threshold),
            convergence: None,
        }
    }
}

/// Summary of one simulation run: everything needed to reproduce the paper's y-axes.
///
/// `Serialize` is implemented by hand so the `groups` breakdown is *omitted* (not
/// `null`) when absent: single-session, churn-free runs keep the exact serialized bytes
/// of the pre-multi-group builds (guarded by `tests/golden_single_group.rs`).
#[derive(Debug, Clone, Deserialize, PartialEq)]
pub struct SimReport {
    /// Protocol label.
    pub protocol: String,
    /// Simulated duration in seconds.
    pub duration_s: f64,
    /// Data packets generated by the source(s).
    pub generated: u64,
    /// Deliveries that should have happened (per packet, the membership at generation).
    pub expected_deliveries: u64,
    /// Unique (packet, member) deliveries that did happen.
    pub delivered: u64,
    /// Redundant deliveries suppressed by the dedup check (mesh protocols produce many).
    pub duplicate_deliveries: u64,
    /// Packet delivery ratio (Figure 7/10/12/14).
    pub pdr: f64,
    /// Average end-to-end delay of delivered packets, ms (Figure 15).
    pub avg_delay_ms: f64,
    /// Total energy consumed by all nodes, joules.
    pub total_energy_j: f64,
    /// Energy wasted on overheard/discarded receptions, joules.
    pub overhear_energy_j: f64,
    /// Energy per delivered packet, millijoules (Figure 9/11/16).
    pub energy_per_delivered_mj: f64,
    /// Control packets transmitted.
    pub control_packets: u64,
    /// Control bytes transmitted.
    pub control_bytes: u64,
    /// Data packet transmissions (including forwarding).
    pub data_packets_tx: u64,
    /// Data bytes transmitted.
    pub data_bytes_tx: u64,
    /// Control bytes per delivered data byte (Figure 13).
    pub control_bytes_per_data_byte: f64,
    /// Fraction of traffic windows in which the multicast service was unavailable (Figure 8).
    pub unavailability_ratio: f64,
    /// Collided receptions.
    pub collisions: u64,
    /// Convergence measurements from the stabilization probe, when the run injected
    /// faults or churned memberships (see the `faults` module and `ssmcast-core`'s
    /// `StabilizationProbe`). `None` for fault-free, churn-free runs, keeping them
    /// byte-identical to pre-fault builds.
    pub convergence: Option<ConvergenceStats>,
    /// Per-session breakdown for multi-group or churned runs; `None` (and absent from
    /// the serialized form) for plain single-group runs.
    pub groups: Option<Vec<GroupStats>>,
    /// Network-lifetime measurements when the run tracked the energy lifecycle (finite
    /// battery capacity or continuous idle/sleep drain): time-to-first-death, alive and
    /// delivery-ratio curves, residual-energy histogram. `None` (and absent from the
    /// serialized form) for unlimited-battery, drain-free runs, keeping them
    /// byte-identical to pre-lifecycle builds.
    pub lifetime: Option<LifetimeStats>,
    /// MAC-layer measurements when the run used a non-default medium-access policy (or
    /// explicitly asked for them). `None` (and absent from the serialized form) for
    /// default random-jitter runs, keeping them byte-identical to pre-MAC-layer builds.
    pub mac: Option<MacStats>,
    /// Steady-state vs recovery control-byte split when the run configured beacon
    /// suppression (`SilenceConfig`). `None` (and absent from the serialized form) for
    /// suppression-off runs, keeping them byte-identical to pre-suppression builds.
    pub silence: Option<SilenceStats>,
    /// Event-loop measurements when the run opted in via `EngineConfig::with_stats`.
    /// `None` (and absent from the serialized form) otherwise, keeping default reports
    /// byte-identical to builds that predate the block. Contains a wall-clock-derived
    /// rate, so stats-on reports are not byte-reproducible across runs.
    pub engine: Option<EngineStats>,
    /// Streaming-sketch summary (histogram quantiles, ledger coarsening, approximate
    /// report bytes) when the run accumulated in `MetricsMode::Streaming`. `None` (and
    /// absent from the serialized form) for default exact-mode runs, keeping them
    /// byte-identical to pre-streaming builds.
    pub streaming: Option<StreamingStats>,
}

impl Serialize for SimReport {
    fn serialize_json(&self, out: &mut String) {
        // Field order and spelling must match what `#[derive(Serialize)]` emitted before
        // `groups` existed; the golden-bytes regression test depends on it.
        out.push('{');
        out.push_str("\"protocol\":");
        self.protocol.serialize_json(out);
        macro_rules! field {
            ($name:literal, $value:expr) => {
                out.push(',');
                out.push_str(concat!("\"", $name, "\":"));
                $value.serialize_json(out);
            };
        }
        field!("duration_s", self.duration_s);
        field!("generated", self.generated);
        field!("expected_deliveries", self.expected_deliveries);
        field!("delivered", self.delivered);
        field!("duplicate_deliveries", self.duplicate_deliveries);
        field!("pdr", self.pdr);
        field!("avg_delay_ms", self.avg_delay_ms);
        field!("total_energy_j", self.total_energy_j);
        field!("overhear_energy_j", self.overhear_energy_j);
        field!("energy_per_delivered_mj", self.energy_per_delivered_mj);
        field!("control_packets", self.control_packets);
        field!("control_bytes", self.control_bytes);
        field!("data_packets_tx", self.data_packets_tx);
        field!("data_bytes_tx", self.data_bytes_tx);
        field!("control_bytes_per_data_byte", self.control_bytes_per_data_byte);
        field!("unavailability_ratio", self.unavailability_ratio);
        field!("collisions", self.collisions);
        field!("convergence", self.convergence);
        if let Some(groups) = &self.groups {
            field!("groups", groups);
        }
        if let Some(lifetime) = &self.lifetime {
            field!("lifetime", lifetime);
        }
        if let Some(mac) = &self.mac {
            field!("mac", mac);
        }
        if let Some(silence) = &self.silence {
            field!("silence", silence);
        }
        if let Some(engine) = &self.engine {
            field!("engine", engine);
        }
        if let Some(streaming) = &self.streaming {
            field!("streaming", streaming);
        }
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::GroupId;

    fn tag(seq: u64, created_ms: u64) -> DataTag {
        DataTag {
            group: GroupId(0),
            origin: NodeId(0),
            seq,
            created_at: SimTime::ZERO + SimDuration::from_millis(created_ms),
        }
    }

    #[test]
    fn pdr_and_delay() {
        let mut tr = Trace::new(SimDuration::from_secs(1));
        tr.record_generated(0, SimTime::ZERO, 2);
        tr.record_generated(1, SimTime::from_secs_f64(0.5), 2);
        // Packet 0 reaches both members, packet 1 reaches one of two.
        tr.record_delivery(&tag(0, 0), NodeId(1), SimTime::from_secs_f64(0.010));
        tr.record_delivery(&tag(0, 0), NodeId(2), SimTime::from_secs_f64(0.030));
        tr.record_delivery(&tag(1, 500), NodeId(1), SimTime::from_secs_f64(0.520));
        let r = tr.finish("test", SimDuration::from_secs(1), 0.004, 0.001, 0, 512, 0.95);
        assert_eq!(r.expected_deliveries, 4);
        assert_eq!(r.delivered, 3);
        assert!((r.pdr - 0.75).abs() < 1e-12);
        assert!((r.avg_delay_ms - 20.0).abs() < 1e-9);
        // 4 mJ over 3 deliveries.
        assert!((r.energy_per_delivered_mj - 4.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn duplicates_count_once() {
        let mut tr = Trace::new(SimDuration::from_secs(1));
        tr.record_generated(0, SimTime::ZERO, 1);
        tr.record_delivery(&tag(0, 0), NodeId(1), SimTime::from_secs_f64(0.010));
        tr.record_delivery(&tag(0, 0), NodeId(1), SimTime::from_secs_f64(0.020));
        let r = tr.finish("test", SimDuration::from_secs(1), 0.0, 0.0, 0, 512, 0.95);
        assert_eq!(r.delivered, 1);
        assert_eq!(r.duplicate_deliveries, 1);
        assert_eq!(r.pdr, 1.0);
    }

    #[test]
    fn control_overhead_ratio() {
        let mut tr = Trace::new(SimDuration::from_secs(1));
        tr.record_generated(0, SimTime::ZERO, 1);
        tr.record_delivery(&tag(0, 0), NodeId(1), SimTime::from_secs_f64(0.010));
        tr.record_control_tx(256);
        tr.record_control_tx(256);
        tr.record_data_tx(512);
        let r = tr.finish("test", SimDuration::from_secs(1), 0.0, 0.0, 0, 512, 0.95);
        assert_eq!(r.control_bytes, 512);
        assert!((r.control_bytes_per_data_byte - 1.0).abs() < 1e-12);
        assert_eq!(r.data_packets_tx, 1);
    }

    #[test]
    fn unavailability_counts_bad_windows() {
        let mut tr = Trace::new(SimDuration::from_secs(1));
        // Window 0: delivered. Window 1: lost. Window 2: delivered.
        for (seq, secs) in [(0u64, 0.1), (1, 1.1), (2, 2.1)] {
            tr.record_generated(seq, SimTime::from_secs_f64(secs), 1);
        }
        tr.record_delivery(&tag(0, 100), NodeId(1), SimTime::from_secs_f64(0.2));
        tr.record_delivery(&tag(2, 2100), NodeId(1), SimTime::from_secs_f64(2.2));
        let r = tr.finish("test", SimDuration::from_secs(3), 0.0, 0.0, 0, 512, 0.95);
        assert!((r.unavailability_ratio - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_run_reports_zero_pdr_and_full_unavailability() {
        let tr = Trace::new(SimDuration::from_secs(1));
        let r = tr.finish("test", SimDuration::from_secs(10), 0.0, 0.0, 0, 512, 0.95);
        assert_eq!(r.pdr, 0.0);
        assert_eq!(r.unavailability_ratio, 1.0);
        assert_eq!(r.energy_per_delivered_mj, 0.0);
    }

    #[test]
    fn churn_makes_expected_deliveries_a_per_packet_quantity() {
        let mut tr = Trace::new(SimDuration::from_secs(1));
        tr.record_generated(0, SimTime::from_secs_f64(0.1), 3);
        tr.record_generated(1, SimTime::from_secs_f64(0.2), 1); // two members left
        let r = tr.finish("test", SimDuration::from_secs(1), 0.0, 0.0, 0, 512, 0.95);
        assert_eq!(r.expected_deliveries, 4);
    }

    #[test]
    fn aggregate_of_two_sessions_sums_counters_and_merges_windows() {
        let mut a = Trace::new(SimDuration::from_secs(1));
        a.record_generated(0, SimTime::from_secs_f64(0.1), 1);
        a.record_delivery(&tag(0, 100), NodeId(1), SimTime::from_secs_f64(0.2));
        a.record_data_tx(512);
        a.record_control_tx(64);
        let mut b = Trace::new(SimDuration::from_secs(1));
        b.record_generated(0, SimTime::from_secs_f64(0.1), 2);
        // Session b delivers neither copy: the shared window 0 is still available in
        // aggregate only if 2 of 3 expected arrive — with the 0.95 threshold it is not.
        let r = Trace::finish_aggregate(
            &[(&a, 512), (&b, 256)],
            "agg",
            SimDuration::from_secs(1),
            0.5,
            0.1,
            3,
            0.95,
        );
        assert_eq!(r.generated, 2);
        assert_eq!(r.expected_deliveries, 3);
        assert_eq!(r.delivered, 1);
        assert!((r.pdr - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.collisions, 3);
        // Control overhead divides by delivered bytes at each session's own size.
        assert!((r.control_bytes_per_data_byte - 64.0 / 512.0).abs() < 1e-12);
        assert_eq!(r.unavailability_ratio, 1.0, "the merged window misses 2 of 3");
    }

    #[test]
    fn aggregate_of_one_trace_equals_finish() {
        let mut tr = Trace::new(SimDuration::from_secs(1));
        tr.record_generated(0, SimTime::ZERO, 2);
        tr.record_delivery(&tag(0, 0), NodeId(1), SimTime::from_secs_f64(0.010));
        tr.record_control_tx(128);
        let single = tr.finish("p", SimDuration::from_secs(2), 0.25, 0.125, 1, 512, 0.95);
        let agg = Trace::finish_aggregate(
            &[(&tr, 512)],
            "p",
            SimDuration::from_secs(2),
            0.25,
            0.125,
            1,
            0.95,
        );
        assert_eq!(single, agg);
    }

    #[test]
    fn group_stats_render_the_per_session_block() {
        let mut tr = Trace::new(SimDuration::from_secs(1));
        tr.record_generated(0, SimTime::from_secs_f64(0.1), 2);
        tr.record_delivery(&tag(0, 100), NodeId(1), SimTime::from_secs_f64(0.15));
        tr.record_control_tx(100);
        tr.record_control_tx(100);
        let g = tr.group_stats(&GroupAccounting {
            group: 2,
            source: 7,
            members_initial: 2,
            members_final: 3,
            joins: 3,
            leaves: 1,
            energy_j: 0.75,
            overhear_energy_j: 0.25,
            collisions: 4,
            availability_threshold: 0.95,
        });
        assert_eq!(g.group, 2);
        assert_eq!(g.source, 7);
        assert_eq!(g.expected_deliveries, 2);
        assert_eq!(g.delivered, 1);
        assert!((g.pdr - 0.5).abs() < 1e-12);
        assert_eq!(g.membership_events(), 4);
        assert!((g.join_overhead_bytes_per_event - 50.0).abs() < 1e-12);
        assert!((g.energy_j - 0.75).abs() < 1e-12);
        assert_eq!(g.collisions, 4);
        assert!(g.convergence.is_none());
    }

    #[test]
    fn serialization_omits_groups_when_absent_and_renders_them_when_present() {
        let tr = Trace::new(SimDuration::from_secs(1));
        let mut r = tr.finish("p", SimDuration::from_secs(1), 0.0, 0.0, 0, 512, 0.95);
        let mut plain = String::new();
        r.serialize_json(&mut plain);
        assert!(plain.ends_with("\"convergence\":null}"), "no groups key at all: {plain}");
        assert!(!plain.contains("\"groups\""));
        r.groups = Some(vec![tr.group_stats(&GroupAccounting {
            group: 0,
            source: 0,
            members_initial: 0,
            members_final: 0,
            joins: 0,
            leaves: 0,
            energy_j: 0.0,
            overhear_energy_j: 0.0,
            collisions: 0,
            availability_threshold: 0.95,
        })]);
        let mut tagged = String::new();
        r.serialize_json(&mut tagged);
        assert!(tagged.contains("\"groups\":[{\"group\":0,"), "groups block renders: {tagged}");
    }

    #[test]
    fn serialization_omits_lifetime_when_absent_and_renders_it_when_present() {
        let tr = Trace::new(SimDuration::from_secs(1));
        let mut r = tr.finish("p", SimDuration::from_secs(1), 0.0, 0.0, 0, 512, 0.95);
        let mut plain = String::new();
        r.serialize_json(&mut plain);
        assert!(!plain.contains("\"lifetime\""), "no lifetime key for unlimited runs: {plain}");
        let mut stats = LifetimeStats::empty(1.0, 4);
        stats.first_death_s = Some(12.0);
        stats.deaths = 1;
        stats.alive_final = 3;
        r.lifetime = Some(stats);
        let mut tagged = String::new();
        r.serialize_json(&mut tagged);
        assert!(
            tagged.contains("\"lifetime\":{\"sample_epoch_s\":1,\"first_death_s\":12,"),
            "lifetime block renders: {tagged}"
        );
    }

    #[test]
    fn serialization_omits_mac_when_absent_and_renders_it_when_present() {
        let tr = Trace::new(SimDuration::from_secs(1));
        let mut r = tr.finish("p", SimDuration::from_secs(1), 0.0, 0.0, 0, 512, 0.95);
        let mut plain = String::new();
        r.serialize_json(&mut plain);
        assert!(!plain.contains("\"mac\""), "no mac key for default-policy runs: {plain}");
        let mut stats = MacStats::empty("csma");
        stats.frames_requested = 10;
        stats.frames_sent = 9;
        stats.mac_drops = 1;
        r.mac = Some(stats);
        let mut tagged = String::new();
        r.serialize_json(&mut tagged);
        assert!(
            tagged.contains("\"mac\":{\"policy\":\"csma\",\"frames_requested\":10,"),
            "mac block renders: {tagged}"
        );
        assert!(tagged.ends_with('}'));
    }

    #[test]
    fn serialization_omits_silence_when_absent_and_renders_it_when_present() {
        use ssmcast_metrics::SessionSilence;
        let tr = Trace::new(SimDuration::from_secs(1));
        let mut r = tr.finish("p", SimDuration::from_secs(1), 0.0, 0.0, 0, 512, 0.95);
        let mut plain = String::new();
        r.serialize_json(&mut plain);
        assert!(!plain.contains("\"silence\""), "no silence key for suppression-off runs: {plain}");
        let session = SessionSilence {
            steady_control_packets: 7,
            steady_control_bytes: 168,
            recovery_control_packets: 1,
            recovery_control_bytes: 24,
        };
        r.silence = Some(SilenceStats::from_sessions(vec![session]));
        let mut tagged = String::new();
        r.serialize_json(&mut tagged);
        assert!(
            tagged.contains("\"silence\":{\"steady_control_packets\":7,"),
            "silence block renders: {tagged}"
        );
        assert!(tagged.ends_with('}'));
    }

    #[test]
    fn serialization_omits_engine_when_absent_and_renders_it_when_present() {
        let tr = Trace::new(SimDuration::from_secs(1));
        let mut r = tr.finish("p", SimDuration::from_secs(1), 0.0, 0.0, 0, 512, 0.95);
        let mut plain = String::new();
        r.serialize_json(&mut plain);
        assert!(!plain.contains("\"engine\""), "no engine key when stats are off: {plain}");
        r.engine = Some(EngineStats::from_counts(2, vec![3, 5], 4, 6, 2.0));
        let mut tagged = String::new();
        r.serialize_json(&mut tagged);
        assert!(
            tagged.contains("\"engine\":{\"shards\":2,\"events_processed\":8,"),
            "engine block renders: {tagged}"
        );
        assert!(tagged.ends_with('}'));
    }

    #[test]
    fn absorb_merges_disjoint_trace_pieces_exactly() {
        let window = SimDuration::from_secs(1);
        // One trace that saw everything...
        let mut whole = Trace::new(window);
        whole.record_generated(0, SimTime::ZERO, 2);
        whole.record_generated(1, SimTime::from_secs_f64(1.5), 2);
        whole.record_delivery(&tag(0, 0), NodeId(1), SimTime::from_secs_f64(0.010));
        whole.record_delivery(&tag(0, 0), NodeId(2), SimTime::from_secs_f64(0.020));
        whole.record_delivery(&tag(0, 0), NodeId(2), SimTime::from_secs_f64(0.030)); // dup
        whole.record_control_tx(100);
        whole.record_data_tx(512);
        // ...versus two shard-local pieces covering the same run.
        let mut a = Trace::new(window);
        a.record_generated(0, SimTime::ZERO, 2);
        a.record_generated(1, SimTime::from_secs_f64(1.5), 2);
        a.record_delivery(&tag(0, 0), NodeId(1), SimTime::from_secs_f64(0.010));
        a.record_control_tx(100);
        a.record_data_tx(512);
        let mut b = Trace::new(window);
        b.record_delivery(&tag(0, 0), NodeId(2), SimTime::from_secs_f64(0.020));
        b.record_delivery(&tag(0, 0), NodeId(2), SimTime::from_secs_f64(0.030)); // dup
        a.absorb(&b);
        let merged = a.finish("p", SimDuration::from_secs(2), 0.5, 0.25, 3, 512, 0.95);
        let direct = whole.finish("p", SimDuration::from_secs(2), 0.5, 0.25, 3, 512, 0.95);
        assert_eq!(merged, direct);
    }

    /// Drive one exact and one streaming trace through the same event sequence.
    fn mirrored_traces() -> (Trace, Trace) {
        let window = SimDuration::from_secs(1);
        let mut exact = Trace::new(window);
        let mut streaming = Trace::with_config(window, &MetricsConfig::streaming());
        for tr in [&mut exact, &mut streaming] {
            tr.record_generated(0, SimTime::ZERO, 2);
            tr.record_generated(1, SimTime::from_secs_f64(0.5), 2);
            tr.record_delivery(&tag(0, 0), NodeId(1), SimTime::from_secs_f64(0.010));
            tr.record_delivery(&tag(0, 0), NodeId(2), SimTime::from_secs_f64(0.030));
            tr.record_delivery(&tag(0, 0), NodeId(2), SimTime::from_secs_f64(0.040)); // dup
            tr.record_delivery(&tag(1, 500), NodeId(1), SimTime::from_secs_f64(0.520));
            tr.record_control_tx(100);
            tr.record_data_tx(512);
        }
        (exact, streaming)
    }

    #[test]
    fn streaming_trace_matches_exact_scalars_and_attaches_block() {
        let (exact, streaming) = mirrored_traces();
        assert!(!exact.is_streaming());
        assert!(streaming.is_streaming());
        let re = exact.finish("p", SimDuration::from_secs(1), 0.5, 0.1, 2, 512, 0.95);
        let rs = streaming.finish("p", SimDuration::from_secs(1), 0.5, 0.1, 2, 512, 0.95);
        // Every scalar the exact mode reports is bit-equal (the streaming block is the
        // only difference).
        assert_eq!(re.generated, rs.generated);
        assert_eq!(re.expected_deliveries, rs.expected_deliveries);
        assert_eq!(re.delivered, rs.delivered);
        assert_eq!(re.duplicate_deliveries, rs.duplicate_deliveries);
        assert_eq!(re.pdr.to_bits(), rs.pdr.to_bits());
        assert_eq!(re.avg_delay_ms.to_bits(), rs.avg_delay_ms.to_bits());
        assert_eq!(re.unavailability_ratio.to_bits(), rs.unavailability_ratio.to_bits());
        assert_eq!(re.control_bytes, rs.control_bytes);
        assert!(re.streaming.is_none());
        let block = rs.streaming.expect("streaming run attaches the block");
        // Exact delays: 10, 30, 20 ms → p50 within one 2 ms bin of 20 ms; max exact.
        assert!((block.latency_p50_ms - 20.0).abs() <= block.latency_bin_width_ms);
        assert!((block.latency_max_ms - 30.0).abs() < 1e-9);
        assert_eq!(block.latency_overflow, 0);
        assert!(block.report_bytes > 0);
    }

    #[test]
    fn streaming_absorb_merges_disjoint_pieces_exactly() {
        let window = SimDuration::from_secs(1);
        let cfg = MetricsConfig::streaming();
        let mut whole = Trace::with_config(window, &cfg);
        let mut a = Trace::with_config(window, &cfg);
        let mut b = Trace::with_config(window, &cfg);
        whole.record_generated(0, SimTime::ZERO, 2);
        a.record_generated(0, SimTime::ZERO, 2);
        for (piece, rx, ms) in [(0usize, 1u32, 10u64), (1, 2, 20), (1, 2, 25)] {
            let target = if piece == 0 { &mut a } else { &mut b };
            whole.record_delivery(&tag(0, 0), NodeId(rx), SimTime::from_secs_f64(ms as f64 / 1e3));
            target.record_delivery(&tag(0, 0), NodeId(rx), SimTime::from_secs_f64(ms as f64 / 1e3));
        }
        a.absorb(&b);
        let merged = a.finish("p", SimDuration::from_secs(1), 0.5, 0.25, 0, 512, 0.95);
        let direct = whole.finish("p", SimDuration::from_secs(1), 0.5, 0.25, 0, 512, 0.95);
        assert_eq!(merged, direct);
    }

    #[test]
    fn serialization_omits_streaming_when_absent_and_renders_it_when_present() {
        let (exact, streaming) = mirrored_traces();
        let plain_report = exact.finish("p", SimDuration::from_secs(1), 0.0, 0.0, 0, 512, 0.95);
        let mut plain = String::new();
        plain_report.serialize_json(&mut plain);
        assert!(!plain.contains("\"streaming\""), "no streaming key in exact mode: {plain}");
        let streaming_report =
            streaming.finish("p", SimDuration::from_secs(1), 0.0, 0.0, 0, 512, 0.95);
        let mut tagged = String::new();
        streaming_report.serialize_json(&mut tagged);
        assert!(
            tagged.contains("\"streaming\":{\"latency_bin_width_ms\":2,"),
            "streaming block renders: {tagged}"
        );
        assert!(tagged.ends_with('}'));
    }
}
