//! Raw simulation traces and the per-run report derived from them.

use crate::node::NodeId;
use crate::packet::DataTag;
use serde::{Deserialize, Serialize};
use ssmcast_dessim::{SimDuration, SimTime};
use ssmcast_metrics::ConvergenceStats;
use std::collections::{HashMap, HashSet};

/// Raw counters accumulated while a simulation runs.
#[derive(Debug, Clone)]
pub struct Trace {
    window: SimDuration,
    n_receivers: u64,
    generated: HashMap<u64, SimTime>,
    delivered: HashSet<(u64, u16)>,
    delay_sum: SimDuration,
    delivered_count: u64,
    duplicate_deliveries: u64,
    control_packets: u64,
    control_bytes: u64,
    data_packets_tx: u64,
    data_bytes_tx: u64,
    expected_per_window: HashMap<u64, u64>,
    delivered_per_window: HashMap<u64, u64>,
}

impl Trace {
    /// Create a trace. `n_receivers` is the number of group members expected to receive
    /// each data packet (members excluding the source); `window` is the bucket used for
    /// the unavailability ratio.
    pub fn new(n_receivers: u64, window: SimDuration) -> Self {
        Trace {
            window,
            n_receivers,
            generated: HashMap::new(),
            delivered: HashSet::new(),
            delay_sum: SimDuration::ZERO,
            delivered_count: 0,
            duplicate_deliveries: 0,
            control_packets: 0,
            control_bytes: 0,
            data_packets_tx: 0,
            data_bytes_tx: 0,
            expected_per_window: HashMap::new(),
            delivered_per_window: HashMap::new(),
        }
    }

    fn window_of(&self, t: SimTime) -> u64 {
        let w = self.window.as_nanos().max(1);
        t.as_nanos() / w
    }

    /// Record that the application generated data packet `seq` at time `t`.
    pub fn record_generated(&mut self, seq: u64, t: SimTime) {
        self.generated.insert(seq, t);
        *self.expected_per_window.entry(self.window_of(t)).or_insert(0) += self.n_receivers;
    }

    /// Record that `tag` reached the application at node `rx` at time `now`.
    /// Duplicate receptions of the same packet at the same node are counted once.
    pub fn record_delivery(&mut self, tag: &DataTag, rx: NodeId, now: SimTime) {
        if !self.delivered.insert((tag.seq, rx.0)) {
            self.duplicate_deliveries += 1;
            return;
        }
        self.delivered_count += 1;
        self.delay_sum += now.saturating_since(tag.created_at);
        let gen_window = self.window_of(tag.created_at);
        *self.delivered_per_window.entry(gen_window).or_insert(0) += 1;
    }

    /// Record a transmitted control packet of `bytes`.
    pub fn record_control_tx(&mut self, bytes: u32) {
        self.control_packets += 1;
        self.control_bytes += u64::from(bytes);
    }

    /// Record a transmitted data packet of `bytes` (including forwarded copies).
    pub fn record_data_tx(&mut self, bytes: u32) {
        self.data_packets_tx += 1;
        self.data_bytes_tx += u64::from(bytes);
    }

    /// Number of data packets generated so far.
    pub fn generated_count(&self) -> u64 {
        self.generated.len() as u64
    }

    /// Number of unique (packet, member) deliveries.
    pub fn delivered_count(&self) -> u64 {
        self.delivered_count
    }

    /// Control packets transmitted so far (running total, for mid-run probes).
    pub fn control_packets(&self) -> u64 {
        self.control_packets
    }

    /// Data packet transmissions so far (running total, for mid-run probes).
    pub fn data_packets_tx(&self) -> u64 {
        self.data_packets_tx
    }

    /// Finish the trace into a [`SimReport`].
    #[allow(clippy::too_many_arguments)]
    pub fn finish(
        &self,
        protocol: &str,
        duration: SimDuration,
        total_energy_j: f64,
        overhear_energy_j: f64,
        collisions: u64,
        data_packet_size: u32,
        availability_threshold: f64,
    ) -> SimReport {
        let expected = self.generated.len() as u64 * self.n_receivers;
        let pdr = if expected > 0 { self.delivered_count as f64 / expected as f64 } else { 0.0 };
        let avg_delay_ms = if self.delivered_count > 0 {
            self.delay_sum.as_millis_f64() / self.delivered_count as f64
        } else {
            0.0
        };
        let energy_per_delivered_mj = if self.delivered_count > 0 {
            total_energy_j * 1_000.0 / self.delivered_count as f64
        } else {
            0.0
        };
        let data_bytes_delivered = self.delivered_count * u64::from(data_packet_size);
        let control_overhead = if data_bytes_delivered > 0 {
            self.control_bytes as f64 / data_bytes_delivered as f64
        } else {
            0.0
        };
        // Unavailability: fraction of traffic windows whose per-window delivery ratio fell
        // below the availability threshold. (The paper does not define the metric formally;
        // see EXPERIMENTS.md.)
        let mut unavailable = 0u64;
        let mut windows = 0u64;
        for (w, &exp) in &self.expected_per_window {
            if exp == 0 {
                continue;
            }
            windows += 1;
            let del = self.delivered_per_window.get(w).copied().unwrap_or(0);
            if (del as f64) < availability_threshold * exp as f64 {
                unavailable += 1;
            }
        }
        let unavailability = if windows > 0 { unavailable as f64 / windows as f64 } else { 1.0 };

        SimReport {
            protocol: protocol.to_string(),
            duration_s: duration.as_secs_f64(),
            generated: self.generated.len() as u64,
            expected_deliveries: expected,
            delivered: self.delivered_count,
            duplicate_deliveries: self.duplicate_deliveries,
            pdr,
            avg_delay_ms,
            total_energy_j,
            overhear_energy_j,
            energy_per_delivered_mj,
            control_packets: self.control_packets,
            control_bytes: self.control_bytes,
            data_packets_tx: self.data_packets_tx,
            data_bytes_tx: self.data_bytes_tx,
            control_bytes_per_data_byte: control_overhead,
            unavailability_ratio: unavailability,
            collisions,
            convergence: None,
        }
    }
}

/// Summary of one simulation run: everything needed to reproduce the paper's y-axes.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct SimReport {
    /// Protocol label.
    pub protocol: String,
    /// Simulated duration in seconds.
    pub duration_s: f64,
    /// Data packets generated by the source.
    pub generated: u64,
    /// `generated × receivers`: deliveries that should have happened.
    pub expected_deliveries: u64,
    /// Unique (packet, member) deliveries that did happen.
    pub delivered: u64,
    /// Redundant deliveries suppressed by the dedup check (mesh protocols produce many).
    pub duplicate_deliveries: u64,
    /// Packet delivery ratio (Figure 7/10/12/14).
    pub pdr: f64,
    /// Average end-to-end delay of delivered packets, ms (Figure 15).
    pub avg_delay_ms: f64,
    /// Total energy consumed by all nodes, joules.
    pub total_energy_j: f64,
    /// Energy wasted on overheard/discarded receptions, joules.
    pub overhear_energy_j: f64,
    /// Energy per delivered packet, millijoules (Figure 9/11/16).
    pub energy_per_delivered_mj: f64,
    /// Control packets transmitted.
    pub control_packets: u64,
    /// Control bytes transmitted.
    pub control_bytes: u64,
    /// Data packet transmissions (including forwarding).
    pub data_packets_tx: u64,
    /// Data bytes transmitted.
    pub data_bytes_tx: u64,
    /// Control bytes per delivered data byte (Figure 13).
    pub control_bytes_per_data_byte: f64,
    /// Fraction of traffic windows in which the multicast service was unavailable (Figure 8).
    pub unavailability_ratio: f64,
    /// Collided receptions.
    pub collisions: u64,
    /// Convergence measurements from the stabilization probe, when the run injected
    /// faults (see the `faults` module and `ssmcast-core`'s `StabilizationProbe`).
    /// `None` for fault-free runs, keeping them byte-identical to pre-fault builds.
    pub convergence: Option<ConvergenceStats>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::GroupId;

    fn tag(seq: u64, created_ms: u64) -> DataTag {
        DataTag {
            group: GroupId(0),
            origin: NodeId(0),
            seq,
            created_at: SimTime::ZERO + SimDuration::from_millis(created_ms),
        }
    }

    #[test]
    fn pdr_and_delay() {
        let mut tr = Trace::new(2, SimDuration::from_secs(1));
        tr.record_generated(0, SimTime::ZERO);
        tr.record_generated(1, SimTime::from_secs_f64(0.5));
        // Packet 0 reaches both members, packet 1 reaches one of two.
        tr.record_delivery(&tag(0, 0), NodeId(1), SimTime::from_secs_f64(0.010));
        tr.record_delivery(&tag(0, 0), NodeId(2), SimTime::from_secs_f64(0.030));
        tr.record_delivery(&tag(1, 500), NodeId(1), SimTime::from_secs_f64(0.520));
        let r = tr.finish("test", SimDuration::from_secs(1), 0.004, 0.001, 0, 512, 0.95);
        assert_eq!(r.expected_deliveries, 4);
        assert_eq!(r.delivered, 3);
        assert!((r.pdr - 0.75).abs() < 1e-12);
        assert!((r.avg_delay_ms - 20.0).abs() < 1e-9);
        // 4 mJ over 3 deliveries.
        assert!((r.energy_per_delivered_mj - 4.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn duplicates_count_once() {
        let mut tr = Trace::new(1, SimDuration::from_secs(1));
        tr.record_generated(0, SimTime::ZERO);
        tr.record_delivery(&tag(0, 0), NodeId(1), SimTime::from_secs_f64(0.010));
        tr.record_delivery(&tag(0, 0), NodeId(1), SimTime::from_secs_f64(0.020));
        let r = tr.finish("test", SimDuration::from_secs(1), 0.0, 0.0, 0, 512, 0.95);
        assert_eq!(r.delivered, 1);
        assert_eq!(r.duplicate_deliveries, 1);
        assert_eq!(r.pdr, 1.0);
    }

    #[test]
    fn control_overhead_ratio() {
        let mut tr = Trace::new(1, SimDuration::from_secs(1));
        tr.record_generated(0, SimTime::ZERO);
        tr.record_delivery(&tag(0, 0), NodeId(1), SimTime::from_secs_f64(0.010));
        tr.record_control_tx(256);
        tr.record_control_tx(256);
        tr.record_data_tx(512);
        let r = tr.finish("test", SimDuration::from_secs(1), 0.0, 0.0, 0, 512, 0.95);
        assert_eq!(r.control_bytes, 512);
        assert!((r.control_bytes_per_data_byte - 1.0).abs() < 1e-12);
        assert_eq!(r.data_packets_tx, 1);
    }

    #[test]
    fn unavailability_counts_bad_windows() {
        let mut tr = Trace::new(1, SimDuration::from_secs(1));
        // Window 0: delivered. Window 1: lost. Window 2: delivered.
        for (seq, secs) in [(0u64, 0.1), (1, 1.1), (2, 2.1)] {
            tr.record_generated(seq, SimTime::from_secs_f64(secs));
        }
        tr.record_delivery(&tag(0, 100), NodeId(1), SimTime::from_secs_f64(0.2));
        tr.record_delivery(&tag(2, 2100), NodeId(1), SimTime::from_secs_f64(2.2));
        let r = tr.finish("test", SimDuration::from_secs(3), 0.0, 0.0, 0, 512, 0.95);
        assert!((r.unavailability_ratio - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_run_reports_zero_pdr_and_full_unavailability() {
        let tr = Trace::new(3, SimDuration::from_secs(1));
        let r = tr.finish("test", SimDuration::from_secs(10), 0.0, 0.0, 0, 512, 0.95);
        assert_eq!(r.pdr, 0.0);
        assert_eq!(r.unavailability_ratio, 1.0);
        assert_eq!(r.energy_per_delivered_mj, 0.0);
    }
}
