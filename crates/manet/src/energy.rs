//! Radio energy model and radio configuration.
//!
//! The paper assumes nodes with power control: the transmission energy for a packet
//! depends on the distance (range) the transmitter must cover, while reception energy is
//! constant per bit. We use the standard first-order radio model,
//!
//! ```text
//! E_tx(d, b) = (e_elec + e_amp * d^alpha) * b      # b bits, d metres
//! E_rx(b)    = e_elec * b
//! ```
//!
//! Overhearing ("discard energy" in the paper) is a full reception: a non-group neighbour
//! inside the transmission range pays `E_rx(b)` and throws the packet away.

use serde::{Deserialize, Serialize};
use ssmcast_dessim::SimDuration;

/// First-order radio energy model parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Electronics energy per bit, joules/bit (applies to both transmit and receive).
    pub e_elec_per_bit: f64,
    /// Amplifier energy per bit per metre^alpha, joules/bit/m^alpha.
    pub e_amp_per_bit: f64,
    /// Path-loss exponent (2 for free space, up to 4 for lossy environments).
    pub alpha: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        // 0.5 µJ/bit electronics, 100 pJ/bit/m² amplifier, free-space exponent. The
        // electronics term is deliberately larger than the sensor-network textbook value
        // (50 nJ/bit): MANET-class 802.11 radios of the paper's era burn on the order of a
        // watt in the RF front end regardless of range, and with these constants the
        // energy-optimal relay distance is ≈ √(2·e_elec/e_amp) ≈ 140 m — comparable to the
        // node spacing in the paper's 750 m × 750 m, 50-node scenario, so energy-aware
        // trees are deeper than hop trees but not degenerate chains.
        EnergyModel { e_elec_per_bit: 0.5e-6, e_amp_per_bit: 100e-12, alpha: 2.0 }
    }
}

impl EnergyModel {
    /// Transmission energy in joules for `bytes` sent with enough power to cover
    /// `range_m` metres.
    pub fn tx_energy(&self, range_m: f64, bytes: u32) -> f64 {
        let bits = f64::from(bytes) * 8.0;
        let d = range_m.max(0.0);
        (self.e_elec_per_bit + self.e_amp_per_bit * d.powf(self.alpha)) * bits
    }

    /// Reception energy in joules for `bytes`.
    pub fn rx_energy(&self, bytes: u32) -> f64 {
        self.e_elec_per_bit * f64::from(bytes) * 8.0
    }

    /// Reception energy per packet of `bytes`, the constant the SS-SPST-F/E metrics call
    /// `E_rcv`.
    pub fn rx_energy_per_packet(&self, bytes: u32) -> f64 {
        self.rx_energy(bytes)
    }
}

/// Static radio / link-layer configuration shared by every node.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RadioConfig {
    /// Maximum transmission range in metres (beacons and control floods use this range).
    pub max_range_m: f64,
    /// Channel bit rate in bits per second.
    pub bitrate_bps: f64,
    /// Fixed per-packet propagation plus processing latency.
    pub fixed_delay: SimDuration,
    /// Upper bound of the uniformly random channel-access backoff the default
    /// [`crate::mac::MacKind::RandomJitter`] policy applies to every transmission
    /// (desynchronises flood relays). The CSMA and TDMA policies in [`crate::mac`]
    /// ignore this knob and use their own timing parameters.
    pub mac_backoff_max: SimDuration,
    /// Independent per-reception loss probability (fading, interference noise).
    pub loss_probability: f64,
    /// If true, two receptions overlapping in time at the same receiver collide and the
    /// later one is lost (capture effect).
    pub collisions_enabled: bool,
    /// Energy model.
    pub energy: EnergyModel,
}

impl Default for RadioConfig {
    fn default() -> Self {
        RadioConfig {
            max_range_m: 250.0,
            bitrate_bps: 2_000_000.0,
            fixed_delay: SimDuration::from_micros(50),
            mac_backoff_max: SimDuration::from_millis(8),
            loss_probability: 0.02,
            collisions_enabled: true,
            energy: EnergyModel::default(),
        }
    }
}

impl RadioConfig {
    /// Time on air for a packet of `bytes`.
    pub fn tx_duration(&self, bytes: u32) -> SimDuration {
        let secs = f64::from(bytes) * 8.0 / self.bitrate_bps;
        SimDuration::from_secs_f64(secs)
    }

    /// Total latency from start of transmission to delivery at a receiver.
    pub fn delivery_delay(&self, bytes: u32) -> SimDuration {
        self.tx_duration(bytes) + self.fixed_delay
    }

    /// Clamp a requested transmission range to the hardware maximum.
    pub fn clamp_range(&self, range_m: f64) -> f64 {
        range_m.clamp(0.0, self.max_range_m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_energy_grows_with_range_and_size() {
        let m = EnergyModel::default();
        assert!(m.tx_energy(200.0, 512) > m.tx_energy(100.0, 512));
        assert!(m.tx_energy(100.0, 1024) > m.tx_energy(100.0, 512));
        assert!(m.tx_energy(0.0, 512) > 0.0, "electronics cost applies even at zero range");
    }

    #[test]
    fn rx_energy_independent_of_range() {
        let m = EnergyModel::default();
        assert_eq!(m.rx_energy(512), m.rx_energy_per_packet(512));
        assert!((m.rx_energy(512) - 0.5e-6 * 4096.0).abs() < 1e-12);
    }

    #[test]
    fn default_energy_magnitudes_are_sensible() {
        let m = EnergyModel::default();
        // A 512-byte packet at 250 m should cost on the order of tens of millijoules,
        // matching the paper's reported 5–55 mJ/packet scale once forwarding is counted.
        let e = m.tx_energy(250.0, 512);
        assert!(e > 1e-3 && e < 0.1, "tx energy at max range = {e} J");
    }

    #[test]
    fn higher_alpha_penalises_long_links_more() {
        let free = EnergyModel { alpha: 2.0, ..EnergyModel::default() };
        let lossy = EnergyModel { alpha: 4.0, ..EnergyModel::default() };
        let ratio_free = free.tx_energy(200.0, 512) / free.tx_energy(100.0, 512);
        let ratio_lossy = lossy.tx_energy(200.0, 512) / lossy.tx_energy(100.0, 512);
        assert!(ratio_lossy > ratio_free);
    }

    #[test]
    fn tx_duration_matches_bitrate() {
        let r = RadioConfig::default();
        let d = r.tx_duration(512);
        // 4096 bits at 2 Mbps = 2.048 ms.
        assert!((d.as_millis_f64() - 2.048).abs() < 1e-9);
        assert!(r.delivery_delay(512) > d);
    }

    #[test]
    fn range_is_clamped() {
        let r = RadioConfig::default();
        assert_eq!(r.clamp_range(400.0), 250.0);
        assert_eq!(r.clamp_range(-5.0), 0.0);
        assert_eq!(r.clamp_range(120.0), 120.0);
    }
}
