//! Per-node energy accounting.

use serde::{Deserialize, Serialize};

/// Why energy was consumed, used to break down the energy budget in reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EnergyUse {
    /// Transmitting a control packet (beacon, join query, route request, ...).
    TxControl,
    /// Transmitting a data packet.
    TxData,
    /// Receiving a control packet addressed to (or useful to) this node.
    RxControl,
    /// Receiving a data packet this node wanted (group member or tree forwarder).
    RxData,
    /// Receiving a packet only to discard it — the paper's overhearing / discard energy.
    Overhear,
    /// Continuous drain while the radio is powered and listening with no frame on the
    /// air (see [`crate::lifecycle::LifecycleConfig::idle_listen_w`]).
    IdleListen,
    /// Continuous drain while the radio sleeps per its duty-cycle schedule.
    Sleep,
}

/// A node battery: tracks consumption by category and optionally enforces a capacity.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Battery {
    capacity_j: f64,
    consumed_j: f64,
    harvested_j: f64,
    tx_control_j: f64,
    tx_data_j: f64,
    rx_control_j: f64,
    rx_data_j: f64,
    overhear_j: f64,
    idle_j: f64,
    sleep_j: f64,
    drained_j: f64,
}

impl Battery {
    /// A battery with effectively unlimited capacity (the paper's experiments do not model
    /// depletion).
    pub fn unlimited() -> Self {
        Self::with_capacity(f64::INFINITY)
    }

    /// A battery holding `capacity_j` joules.
    pub fn with_capacity(capacity_j: f64) -> Self {
        Battery {
            capacity_j,
            consumed_j: 0.0,
            harvested_j: 0.0,
            tx_control_j: 0.0,
            tx_data_j: 0.0,
            rx_control_j: 0.0,
            rx_data_j: 0.0,
            overhear_j: 0.0,
            idle_j: 0.0,
            sleep_j: 0.0,
            drained_j: 0.0,
        }
    }

    /// Consume `joules` for the given purpose. Returns `false` if the battery is
    /// depleted afterwards (or was already); the consumption is recorded up to the
    /// capacity — a battery never books more energy than it ever held.
    pub fn consume(&mut self, joules: f64, usage: EnergyUse) -> bool {
        self.accept(joules, usage);
        !self.is_depleted()
    }

    /// Consume up to `joules` for the given purpose and return the amount actually
    /// recorded: `joules` clamped to the remaining capacity, `0.0` once depleted. The
    /// runtime attributes exactly this amount to the owning session, so per-session
    /// energy sums conserve the batteries' totals even across depletion.
    pub fn accept(&mut self, joules: f64, usage: EnergyUse) -> f64 {
        if self.is_depleted() {
            return 0.0;
        }
        let j = joules.max(0.0).min(self.remaining());
        self.consumed_j += j;
        match usage {
            EnergyUse::TxControl => self.tx_control_j += j,
            EnergyUse::TxData => self.tx_data_j += j,
            EnergyUse::RxControl => self.rx_control_j += j,
            EnergyUse::RxData => self.rx_data_j += j,
            EnergyUse::Overhear => self.overhear_j += j,
            EnergyUse::IdleListen => self.idle_j += j,
            EnergyUse::Sleep => self.sleep_j += j,
        }
        j
    }

    /// Remove `joules` at once without attributing them to a radio activity — the
    /// fault layer's battery-drain spike (a co-located application, a sensor burst).
    /// Not counted in [`Self::breakdown`]; see [`Self::drained`]. Clamped to the
    /// remaining capacity like [`Self::consume`]. Returns `false` if the battery was
    /// already depleted.
    pub fn drain(&mut self, joules: f64) -> bool {
        if self.is_depleted() {
            return false;
        }
        let j = joules.max(0.0).min(self.remaining());
        self.consumed_j += j;
        self.drained_j += j;
        !self.is_depleted()
    }

    /// Restore up to `joules` of charge (energy harvesting). Consumption stays gross —
    /// `consumed()` and the per-category breakdown are lifetime totals untouched by
    /// recharge, so energy-conservation identities over consumption keep holding.
    /// Clamped so the stored charge never exceeds the capacity; a physical no-op for
    /// unlimited batteries. Returns the amount actually banked.
    pub fn recharge(&mut self, joules: f64) -> f64 {
        if self.is_unlimited() {
            return 0.0;
        }
        let allowed = joules.max(0.0).min((self.consumed_j - self.harvested_j).max(0.0));
        self.harvested_j += allowed;
        allowed
    }

    /// Total energy banked by [`Self::recharge`] over the battery's lifetime, joules.
    pub fn harvested(&self) -> f64 {
        self.harvested_j
    }

    /// Energy removed by drain spikes, joules.
    pub fn drained(&self) -> f64 {
        self.drained_j
    }

    /// Total energy consumed so far, joules.
    pub fn consumed(&self) -> f64 {
        self.consumed_j
    }

    /// Remaining energy, joules (infinite for unlimited batteries).
    pub fn remaining(&self) -> f64 {
        (self.capacity_j + self.harvested_j - self.consumed_j).max(0.0)
    }

    /// The battery's capacity, joules (infinite for unlimited batteries).
    pub fn capacity(&self) -> f64 {
        self.capacity_j
    }

    /// True once consumption has reached capacity plus everything harvested since.
    pub fn is_depleted(&self) -> bool {
        self.consumed_j >= self.capacity_j + self.harvested_j
    }

    /// True for batteries with unlimited capacity (the paper's default), which can
    /// never deplete — a drain spike against one is a physical no-op.
    pub fn is_unlimited(&self) -> bool {
        self.capacity_j.is_infinite()
    }

    /// Energy spent transmitting (control + data), joules.
    pub fn tx_total(&self) -> f64 {
        self.tx_control_j + self.tx_data_j
    }

    /// Energy spent receiving usefully (control + data), joules.
    pub fn rx_total(&self) -> f64 {
        self.rx_control_j + self.rx_data_j
    }

    /// Energy wasted overhearing packets that were discarded, joules.
    pub fn overheard(&self) -> f64 {
        self.overhear_j
    }

    /// Energy drained by idle listening (radio powered, no frame on the air), joules.
    pub fn idle_listened(&self) -> f64 {
        self.idle_j
    }

    /// Energy drained while the radio slept per its duty-cycle schedule, joules.
    pub fn slept(&self) -> f64 {
        self.sleep_j
    }

    /// Breakdown `(tx_control, tx_data, rx_control, rx_data, overhear)` in joules —
    /// the per-packet radio activity only; idle/sleep drain and fault-injected spikes
    /// are reported by [`Self::idle_listened`], [`Self::slept`] and [`Self::drained`].
    pub fn breakdown(&self) -> (f64, f64, f64, f64, f64) {
        (self.tx_control_j, self.tx_data_j, self.rx_control_j, self.rx_data_j, self.overhear_j)
    }
}

impl Default for Battery {
    fn default() -> Self {
        Self::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_by_category() {
        let mut b = Battery::unlimited();
        b.consume(1.0, EnergyUse::TxControl);
        b.consume(2.0, EnergyUse::TxData);
        b.consume(0.5, EnergyUse::RxControl);
        b.consume(0.25, EnergyUse::RxData);
        b.consume(0.125, EnergyUse::Overhear);
        assert_eq!(b.consumed(), 3.875);
        assert_eq!(b.tx_total(), 3.0);
        assert_eq!(b.rx_total(), 0.75);
        assert_eq!(b.overheard(), 0.125);
        assert!(!b.is_depleted());
    }

    #[test]
    fn capacity_enforced() {
        let mut b = Battery::with_capacity(1.0);
        assert!(b.consume(0.6, EnergyUse::TxData));
        assert!(!b.consume(0.6, EnergyUse::TxData), "crossing capacity reports depletion");
        assert!(b.is_depleted());
        assert!(!b.consume(0.1, EnergyUse::RxData), "depleted batteries accept no more work");
        assert_eq!(b.remaining(), 0.0);
    }

    #[test]
    fn consumption_is_recorded_only_up_to_the_capacity() {
        // Pins the documented clamp: a 1 J battery asked for 0.6 + 0.6 J books exactly
        // 1 J in total, and the crossing consumption's category gets only the 0.4 J the
        // battery still held.
        let mut b = Battery::with_capacity(1.0);
        assert_eq!(b.accept(0.6, EnergyUse::TxData), 0.6);
        assert_eq!(b.accept(0.6, EnergyUse::RxData), 0.4, "only the remaining energy books");
        assert_eq!(b.consumed(), 1.0, "consumption never exceeds the capacity");
        let (_, td, _, rd, _) = b.breakdown();
        assert_eq!(td, 0.6);
        assert_eq!(rd, 0.4);
        assert_eq!(b.accept(0.5, EnergyUse::Overhear), 0.0, "a dead battery accepts nothing");
        assert_eq!(b.consumed(), 1.0);
        // The same clamp applies to unattributed drain spikes.
        let mut b = Battery::with_capacity(2.0);
        b.drain(5.0);
        assert_eq!(b.consumed(), 2.0);
        assert_eq!(b.drained(), 2.0);
    }

    #[test]
    fn drain_spikes_deplete_without_touching_the_radio_breakdown() {
        let mut b = Battery::with_capacity(2.0);
        b.consume(0.5, EnergyUse::TxData);
        assert!(b.drain(1.0), "still above capacity after the spike");
        assert_eq!(b.consumed(), 1.5);
        assert_eq!(b.drained(), 1.0);
        let (tc, td, rc, rd, oh) = b.breakdown();
        assert_eq!(tc + td + rc + rd + oh, 0.5, "drain is not a radio activity");
        assert!(!b.drain(1.0), "this spike crosses capacity");
        assert!(b.is_depleted());
        assert!(!b.drain(0.1), "depleted batteries absorb nothing further");
        assert_eq!(b.drained(), 1.5, "the crossing spike books only the remaining 0.5 J");
        assert_eq!(b.consumed(), 2.0);
    }

    #[test]
    fn idle_and_sleep_drain_have_their_own_categories() {
        let mut b = Battery::unlimited();
        b.consume(0.25, EnergyUse::IdleListen);
        b.consume(0.0625, EnergyUse::Sleep);
        b.consume(1.0, EnergyUse::TxData);
        assert_eq!(b.idle_listened(), 0.25);
        assert_eq!(b.slept(), 0.0625);
        assert_eq!(b.consumed(), 1.3125);
        let (tc, td, rc, rd, oh) = b.breakdown();
        assert_eq!(tc + td + rc + rd + oh, 1.0, "continuous drain is not per-packet radio work");
        // Conservation identity used by the lifecycle proptests.
        assert_eq!(tc + td + rc + rd + oh + b.idle_listened() + b.slept() + b.drained(), 1.3125);
    }

    #[test]
    fn recharge_revives_a_depleted_battery_without_rewriting_history() {
        let mut b = Battery::with_capacity(1.0);
        b.consume(1.0, EnergyUse::TxData);
        assert!(b.is_depleted());
        assert_eq!(b.recharge(0.25), 0.25);
        assert!(!b.is_depleted(), "harvested charge revives the node");
        assert_eq!(b.remaining(), 0.25);
        assert_eq!(b.consumed(), 1.0, "recharge never rewrites consumption history");
        assert_eq!(b.harvested(), 0.25);
        // Spend the bank and recharge past full: the clamp stops at capacity.
        b.consume(0.25, EnergyUse::RxData);
        assert_eq!(b.consumed(), 1.25);
        assert_eq!(b.recharge(10.0), 1.0, "stored charge can never exceed capacity");
        assert_eq!(b.remaining(), 1.0);
    }

    #[test]
    fn recharge_is_a_no_op_for_unlimited_batteries() {
        let mut b = Battery::unlimited();
        b.consume(2.0, EnergyUse::TxData);
        assert_eq!(b.recharge(5.0), 0.0);
        assert_eq!(b.harvested(), 0.0);
        assert!(b.remaining().is_infinite());
    }

    #[test]
    fn negative_consumption_is_ignored() {
        let mut b = Battery::unlimited();
        b.consume(-5.0, EnergyUse::TxData);
        assert_eq!(b.consumed(), 0.0);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let mut b = Battery::unlimited();
        for (i, u) in [
            EnergyUse::TxControl,
            EnergyUse::TxData,
            EnergyUse::RxControl,
            EnergyUse::RxData,
            EnergyUse::Overhear,
        ]
        .into_iter()
        .enumerate()
        {
            b.consume((i + 1) as f64, u);
        }
        let (a, c, d, e, f) = b.breakdown();
        assert_eq!(a + c + d + e + f, b.consumed());
    }
}
