//! Instantaneous topology snapshots.
//!
//! A snapshot freezes node positions at one instant and exposes the induced
//! unit-disc connectivity graph (two nodes are neighbours iff their distance is at most
//! the transmission range). The synchronous SS-SPST model in `ssmcast-core` runs directly
//! on snapshots; the event-driven runtime uses them for connectivity statistics.
//!
//! Neighbour queries run on the same uniform-grid [`SpatialIndex`] the event-driven
//! [`crate::medium::RadioMedium`] uses, so the synchronous model and the runtime share a
//! single neighbour-query path (and its exactness guarantees).

use crate::geometry::Vec2;
use crate::node::NodeId;
use crate::spatial::SpatialIndex;

/// A frozen view of node positions and the resulting neighbour graph.
#[derive(Clone, Debug)]
pub struct TopologySnapshot {
    positions: Vec<Vec2>,
    range_m: f64,
    index: SpatialIndex,
}

impl TopologySnapshot {
    /// Build a snapshot from node positions (indexed by [`NodeId::index`]) and a common
    /// transmission range.
    pub fn new(positions: Vec<Vec2>, range_m: f64) -> Self {
        let index = SpatialIndex::build(&positions, range_m);
        TopologySnapshot { positions, range_m, index }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True if the snapshot has no nodes.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The common transmission range.
    pub fn range(&self) -> f64 {
        self.range_m
    }

    /// Position of a node.
    pub fn position(&self, n: NodeId) -> Vec2 {
        self.positions[n.index()]
    }

    /// Distance between two nodes.
    pub fn distance(&self, a: NodeId, b: NodeId) -> f64 {
        self.positions[a.index()].distance(&self.positions[b.index()])
    }

    /// True if `a` and `b` are within range of each other (and distinct).
    pub fn are_neighbors(&self, a: NodeId, b: NodeId) -> bool {
        a != b
            && self.positions[a.index()].distance_sq(&self.positions[b.index()])
                <= self.range_m * self.range_m
    }

    /// All neighbours of `n`, in node-id order (grid-indexed range query).
    pub fn neighbors(&self, n: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.index.query_disc(self.positions[n.index()], self.range_m, &self.positions, &mut out);
        out.retain(|&m| m != n);
        out
    }

    /// Degree of node `n`.
    pub fn degree(&self, n: NodeId) -> usize {
        self.neighbors(n).len()
    }

    /// Iterate over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.positions.len() as u32).map(NodeId)
    }

    /// True if the whole graph is connected (trivially true for 0 or 1 nodes).
    pub fn is_connected(&self) -> bool {
        let n = self.positions.len();
        if n <= 1 {
            return true;
        }
        self.reachable_from(NodeId(0)).len() == n
    }

    /// Breadth-first set of nodes reachable from `start` (including `start`).
    pub fn reachable_from(&self, start: NodeId) -> Vec<NodeId> {
        let n = self.positions.len();
        if start.index() >= n {
            return Vec::new();
        }
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        seen[start.index()] = true;
        queue.push_back(start);
        let mut out = Vec::new();
        while let Some(u) = queue.pop_front() {
            out.push(u);
            for v in self.neighbors(u) {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    queue.push_back(v);
                }
            }
        }
        out
    }

    /// Minimum hop count from `start` to every node (`None` if unreachable).
    pub fn hop_distances(&self, start: NodeId) -> Vec<Option<u32>> {
        let n = self.positions.len();
        let mut dist = vec![None; n];
        if start.index() >= n {
            return dist;
        }
        let mut queue = std::collections::VecDeque::new();
        dist[start.index()] = Some(0);
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            let du = dist[u.index()].unwrap();
            for v in self.neighbors(u) {
                if dist[v.index()].is_none() {
                    dist[v.index()] = Some(du + 1);
                    queue.push_back(v);
                }
            }
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Four nodes on a line, 100 m apart, with a 150 m range: a path graph.
    fn line() -> TopologySnapshot {
        let pos = (0..4).map(|i| Vec2::new(i as f64 * 100.0, 0.0)).collect();
        TopologySnapshot::new(pos, 150.0)
    }

    #[test]
    fn neighbors_follow_range() {
        let t = line();
        assert!(t.are_neighbors(NodeId(0), NodeId(1)));
        assert!(!t.are_neighbors(NodeId(0), NodeId(2)));
        assert!(!t.are_neighbors(NodeId(1), NodeId(1)), "a node is not its own neighbour");
        assert_eq!(t.neighbors(NodeId(1)), vec![NodeId(0), NodeId(2)]);
        assert_eq!(t.degree(NodeId(0)), 1);
    }

    #[test]
    fn connectivity_and_hops() {
        let t = line();
        assert!(t.is_connected());
        let d = t.hop_distances(NodeId(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3)]);
    }

    #[test]
    fn disconnected_graph_detected() {
        let pos = vec![Vec2::new(0.0, 0.0), Vec2::new(1000.0, 0.0)];
        let t = TopologySnapshot::new(pos, 100.0);
        assert!(!t.is_connected());
        assert_eq!(t.hop_distances(NodeId(0))[1], None);
        assert_eq!(t.reachable_from(NodeId(0)), vec![NodeId(0)]);
    }

    #[test]
    fn empty_and_singleton_are_connected() {
        assert!(TopologySnapshot::new(vec![], 100.0).is_connected());
        assert!(TopologySnapshot::new(vec![Vec2::ZERO], 100.0).is_connected());
    }

    #[test]
    fn indexed_neighbors_match_pairwise_predicate() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let positions: Vec<Vec2> = (0..60)
            .map(|_| Vec2::new(rng.gen_range(0.0..750.0), rng.gen_range(0.0..750.0)))
            .collect();
        let t = TopologySnapshot::new(positions, 250.0);
        for n in t.nodes() {
            let brute: Vec<NodeId> = t.nodes().filter(|&m| t.are_neighbors(n, m)).collect();
            assert_eq!(t.neighbors(n), brute, "node {n:?}");
        }
    }
}
