//! Energy lifecycle: radio duty-cycling schedules, continuous idle/sleep drain, and
//! distance-based TX power control.
//!
//! The paper's energy model stops at per-packet TX/RX/overhear tallies on an effectively
//! unlimited battery. Duty-cycle-aware and minimum-energy multicast work (Han et al.)
//! shows the levers that actually differentiate energy-aware protocols are elsewhere:
//! idle listening drains a radio continuously whether or not packets flow, sleep
//! schedules trade delivery opportunities for lifetime, transmission power should cover
//! the farthest *intended* receiver rather than the nominal maximum, and a drained
//! battery is a permanent node death. This module holds the configuration and the
//! per-node radio schedule; the runtime wires them into liveness and the
//! [`ssmcast_metrics::LifetimeStats`] report block.
//!
//! # The radio state machine
//!
//! At any instant a node's radio is in one of three states:
//!
//! * **awake** — actively transmitting or receiving a frame (the per-packet energies of
//!   [`crate::energy::EnergyModel`] apply);
//! * **idle-listen** — powered and listening but with no frame on the air; drains
//!   [`LifecycleConfig::idle_listen_w`] watts continuously;
//! * **sleep** — powered down per the duty-cycle schedule; drains only
//!   [`LifecycleConfig::sleep_w`] watts, and **misses every delivery** that arrives
//!   while it lasts (no reception, no reception energy).
//!
//! The duty-cycle schedule is periodic and seeded per node: node `i` is scheduled awake
//! for the first `awake_fraction` of every `period`, shifted by a seeded per-node phase
//! so the network does not sleep in lock-step. The node's *processor* keeps running
//! while the radio sleeps — timers still fire, and a transmission wakes the radio for
//! its own duration (sender-initiated wakeup, as in duty-cycled MAC protocols) — only
//! inbound frames are lost.
//!
//! Everything here defaults **off**: with [`LifecycleConfig::default`] the schedule is
//! always-awake, continuous drain is zero, TX power is priced by the requested range,
//! and runs are byte-identical to builds that predate this module.

use crate::node::NodeId;
use serde::{Deserialize, Serialize};
use ssmcast_dessim::{SeedSequence, SimDuration, SimTime};

/// A periodic radio duty-cycle schedule shared by every node (phases differ per node).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DutyCycleConfig {
    /// Schedule period. Each period starts with the awake window.
    pub period: SimDuration,
    /// Fraction of each period the radio is awake, in `(0, 1]`. `1.0` disables the
    /// schedule (the radio never sleeps).
    pub awake_fraction: f64,
}

impl DutyCycleConfig {
    /// An always-awake radio — the paper's model, and the default.
    pub fn off() -> Self {
        DutyCycleConfig { period: SimDuration::from_secs(1), awake_fraction: 1.0 }
    }

    /// A schedule awake for `awake_fraction` of every `period` (fraction clamped into
    /// `(0, 1]` — a radio that never wakes could not even be scheduled to transmit).
    pub fn new(period: SimDuration, awake_fraction: f64) -> Self {
        DutyCycleConfig { period, awake_fraction: awake_fraction.clamp(0.01, 1.0) }
    }

    /// True when the schedule actually puts radios to sleep.
    pub fn is_on(&self) -> bool {
        self.awake_fraction < 1.0 && !self.period.is_zero()
    }

    /// Awake window length in nanoseconds.
    fn awake_ns(&self) -> u64 {
        let p = self.period.as_nanos() as f64;
        (p * self.awake_fraction.clamp(0.0, 1.0)).round() as u64
    }
}

impl Default for DutyCycleConfig {
    fn default() -> Self {
        Self::off()
    }
}

/// Energy-lifecycle knobs for one run. The default is the paper's model: no duty
/// cycling, no continuous drain, TX priced by the requested range.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LifecycleConfig {
    /// Radio duty-cycle schedule (off by default).
    pub duty_cycle: DutyCycleConfig,
    /// Continuous drain while the radio is scheduled awake but idle, watts.
    pub idle_listen_w: f64,
    /// Continuous drain while the radio sleeps, watts (typically orders of magnitude
    /// below [`Self::idle_listen_w`]).
    pub sleep_w: f64,
    /// Distance-based TX power control: when true, every transmission is priced by the
    /// distance to the *farthest receiver it actually covers* (never below the
    /// zero-range electronics floor of [`crate::energy::EnergyModel::tx_energy`])
    /// instead of the requested range. Protocols whose trees use short links — the
    /// energy-aware SS-SPST-E in particular — gain a real energy edge from opting in.
    /// Receiver sets, delays and loss draws are unchanged; only the energy differs.
    pub tx_power_control: bool,
    /// Duty-aware TX pricing refinement: when true *and* [`Self::tx_power_control`] is
    /// on *and* a duty-cycle schedule is active, receivers that are provably asleep at
    /// the delivery instant (the schedule is seeded, hence knowable by the sender) are
    /// excluded from the pricing set — a broadcast whose only awake receiver is nearby
    /// is priced at that receiver, not at the farthest sleeper that would have dropped
    /// the frame anyway. Off by default: default runs price exactly as before, byte for
    /// byte. Receiver sets, delays and loss draws are never affected; only the energy.
    pub duty_aware_pricing: bool,
    /// Cadence at which the runtime samples the lifetime curves (alive nodes,
    /// cumulative delivery ratio) while lifetime tracking is active. Zero falls back to
    /// one second.
    pub sample_epoch: SimDuration,
}

impl LifecycleConfig {
    /// Everything off — byte-identical to builds without the lifecycle subsystem.
    pub fn off() -> Self {
        LifecycleConfig {
            duty_cycle: DutyCycleConfig::off(),
            idle_listen_w: 0.0,
            sleep_w: 0.0,
            tx_power_control: false,
            duty_aware_pricing: false,
            sample_epoch: SimDuration::from_secs(1),
        }
    }

    /// The same configuration with a duty-cycle schedule.
    pub fn with_duty_cycle(mut self, period: SimDuration, awake_fraction: f64) -> Self {
        self.duty_cycle = DutyCycleConfig::new(period, awake_fraction);
        self
    }

    /// The same configuration with continuous idle-listen and sleep drains.
    pub fn with_idle_power(mut self, idle_listen_w: f64, sleep_w: f64) -> Self {
        self.idle_listen_w = idle_listen_w.max(0.0);
        self.sleep_w = sleep_w.max(0.0);
        self
    }

    /// The same configuration with distance-based TX power control switched on or off.
    pub fn with_tx_power_control(mut self, enabled: bool) -> Self {
        self.tx_power_control = enabled;
        self
    }

    /// The same configuration with duty-aware TX pricing switched on or off (only
    /// effective when TX power control and a duty-cycle schedule are both active).
    pub fn with_duty_aware_pricing(mut self, enabled: bool) -> Self {
        self.duty_aware_pricing = enabled;
        self
    }

    /// True when batteries drain between packets (idle listening, or sleeping with a
    /// non-zero sleep current).
    pub fn has_continuous_drain(&self) -> bool {
        self.idle_listen_w > 0.0 || self.sleep_w > 0.0
    }

    /// True when any lifecycle mechanism is engaged (duty cycling, continuous drain or
    /// TX power control) — the knob that decides whether a run can possibly diverge
    /// from the pre-lifecycle build.
    pub fn is_active(&self) -> bool {
        self.duty_cycle.is_on() || self.has_continuous_drain() || self.tx_power_control
    }
}

impl Default for LifecycleConfig {
    fn default() -> Self {
        Self::off()
    }
}

/// The materialised per-node duty-cycle schedule for one run: a shared period and awake
/// window plus one seeded phase offset per node. Fully determined by
/// `(config, n_nodes, seeds)` — two runs with the same scenario seed sleep and wake at
/// exactly the same instants.
#[derive(Clone, Debug)]
pub struct DutySchedule {
    period_ns: u64,
    awake_ns: u64,
    /// Per-node phase shift in nanoseconds, each in `[0, period)`. Empty when the
    /// schedule is off (every node always awake).
    phases: Vec<u64>,
}

impl DutySchedule {
    /// A schedule that never sleeps (duty cycling off).
    pub fn always_awake() -> Self {
        DutySchedule { period_ns: 1, awake_ns: 1, phases: Vec::new() }
    }

    /// Materialise `config` for `n` nodes, drawing each node's phase from the dedicated
    /// `"duty-cycle"` seed stream.
    pub fn from_seeds(config: &DutyCycleConfig, n: usize, seeds: &SeedSequence) -> Self {
        if !config.is_on() {
            return Self::always_awake();
        }
        use rand::Rng;
        let period_ns = config.period.as_nanos().max(1);
        let awake_ns = config.awake_ns().clamp(1, period_ns);
        let mut rng = seeds.stream("duty-cycle");
        let phases =
            (0..n).map(|_| ((rng.gen::<f64>() * period_ns as f64) as u64) % period_ns).collect();
        DutySchedule { period_ns, awake_ns, phases }
    }

    /// True when the schedule actually sleeps (phases were materialised).
    pub fn is_on(&self) -> bool {
        !self.phases.is_empty()
    }

    /// A schedule with explicit per-node phases — for tests that need a hand-built
    /// geometry of wake windows rather than seeded phases. `period_ns` is clamped to
    /// ≥ 1 and `awake_ns` into `[1, period_ns]`; phases are reduced mod the period.
    pub fn with_phases(period_ns: u64, awake_ns: u64, phases: Vec<u64>) -> Self {
        let period_ns = period_ns.max(1);
        let awake_ns = awake_ns.clamp(1, period_ns);
        let phases = phases.into_iter().map(|p| p % period_ns).collect();
        DutySchedule { period_ns, awake_ns, phases }
    }

    /// Length of every node's awake window within one period.
    pub fn awake_len(&self) -> SimDuration {
        SimDuration::from_nanos(self.awake_ns)
    }

    /// The shared schedule period (1 ns for an always-awake schedule).
    pub fn period(&self) -> SimDuration {
        SimDuration::from_nanos(self.period_ns)
    }

    /// True while node `n`'s radio is scheduled awake at `t`.
    pub fn is_awake(&self, n: NodeId, t: SimTime) -> bool {
        if self.phases.is_empty() {
            return true;
        }
        let phase = self.phases[n.index()];
        ((t.as_nanos() as u128 + phase as u128) % self.period_ns as u128) < self.awake_ns as u128
    }

    /// The earliest instant `>= t` at which node `n`'s radio is scheduled awake: `t`
    /// itself when the node is already awake, otherwise the start of its next awake
    /// window. The returned instant always satisfies [`Self::is_awake`], and no awake
    /// instant exists strictly between `t` and it — the query duty-cycle-aware
    /// forwarding uses to defer a transmission into a receiver's wake window instead
    /// of losing the frame to sleep.
    pub fn next_awake_at(&self, n: NodeId, t: SimTime) -> SimTime {
        if self.phases.is_empty() {
            return t;
        }
        let phase = self.phases[n.index()];
        let pos = ((t.as_nanos() as u128 + phase as u128) % self.period_ns as u128) as u64;
        if pos < self.awake_ns {
            return t;
        }
        t + SimDuration::from_nanos(self.period_ns - pos)
    }

    /// Total scheduled-awake nanoseconds in `[0, t)` for a given phase.
    fn awake_ns_up_to(&self, phase: u64, t: u64) -> u128 {
        let period = self.period_ns as u128;
        let awake = self.awake_ns as u128;
        let shifted = t as u128 + phase as u128;
        let at = |s: u128| (s / period) * awake + (s % period).min(awake);
        at(shifted) - at(phase as u128)
    }

    /// Time node `n`'s radio is scheduled awake within `[from, to)` (the whole span
    /// when the schedule is off; zero when `to <= from`).
    pub fn awake_between(&self, n: NodeId, from: SimTime, to: SimTime) -> SimDuration {
        if to <= from {
            return SimDuration::ZERO;
        }
        if self.phases.is_empty() {
            return to.saturating_since(from);
        }
        let phase = self.phases[n.index()];
        let ns =
            self.awake_ns_up_to(phase, to.as_nanos()) - self.awake_ns_up_to(phase, from.as_nanos());
        SimDuration::from_nanos(ns as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_fully_off() {
        let lc = LifecycleConfig::default();
        assert!(!lc.duty_cycle.is_on());
        assert!(!lc.has_continuous_drain());
        assert!(!lc.is_active());
        assert_eq!(lc, LifecycleConfig::off());
    }

    #[test]
    fn builders_engage_each_mechanism() {
        let lc = LifecycleConfig::off().with_duty_cycle(SimDuration::from_secs(1), 0.5);
        assert!(lc.duty_cycle.is_on() && lc.is_active());
        let lc = LifecycleConfig::off().with_idle_power(0.01, 0.001);
        assert!(lc.has_continuous_drain() && lc.is_active());
        let lc = LifecycleConfig::off().with_tx_power_control(true);
        assert!(lc.is_active() && !lc.has_continuous_drain());
        // Negative powers clamp to zero, fraction clamps into (0, 1].
        let lc = LifecycleConfig::off().with_idle_power(-1.0, -2.0);
        assert!(!lc.has_continuous_drain());
        assert_eq!(DutyCycleConfig::new(SimDuration::from_secs(1), 5.0).awake_fraction, 1.0);
        assert!(DutyCycleConfig::new(SimDuration::from_secs(1), -0.3).awake_fraction > 0.0);
    }

    #[test]
    fn always_awake_schedule_never_sleeps() {
        let sched = DutySchedule::always_awake();
        assert!(!sched.is_on());
        for secs in [0u64, 1, 17, 3600] {
            assert!(sched.is_awake(NodeId(0), SimTime::from_secs(secs)));
        }
        let d = sched.awake_between(NodeId(0), SimTime::from_secs(3), SimTime::from_secs(10));
        assert_eq!(d, SimDuration::from_secs(7));
    }

    #[test]
    fn off_config_materialises_to_always_awake() {
        let sched = DutySchedule::from_seeds(&DutyCycleConfig::off(), 8, &SeedSequence::new(1));
        assert!(!sched.is_on());
    }

    #[test]
    fn awake_fraction_matches_over_long_windows() {
        let cfg = DutyCycleConfig::new(SimDuration::from_millis(500), 0.25);
        let sched = DutySchedule::from_seeds(&cfg, 4, &SeedSequence::new(9));
        assert!(sched.is_on());
        for i in 0..4u32 {
            let awake = sched
                .awake_between(NodeId(i), SimTime::ZERO, SimTime::from_secs(100))
                .as_secs_f64();
            assert!((awake - 25.0).abs() < 0.5 + 1e-9, "node {i}: awake {awake}s of 100s");
        }
    }

    #[test]
    fn awake_between_integrates_the_indicator() {
        let cfg = DutyCycleConfig::new(SimDuration::from_millis(200), 0.4);
        let sched = DutySchedule::from_seeds(&cfg, 3, &SeedSequence::new(4));
        // Numerically integrate is_awake at 1 ms resolution and compare.
        for i in 0..3u32 {
            let n = NodeId(i);
            let from = SimTime::ZERO + SimDuration::from_millis(137);
            let to = SimTime::ZERO + SimDuration::from_millis(2_951);
            let mut acc = 0u64;
            let mut t = from;
            while t < to {
                if sched.is_awake(n, t) {
                    acc += 1;
                }
                t += SimDuration::from_millis(1);
            }
            let integral = sched.awake_between(n, from, to).as_millis_f64();
            assert!(
                (integral - acc as f64).abs() <= 1.0,
                "node {i}: integral {integral} ms vs sampled {acc} ms"
            );
        }
    }

    #[test]
    fn phases_desynchronise_nodes_but_share_the_pattern_shape() {
        let cfg = DutyCycleConfig::new(SimDuration::from_secs(1), 0.5);
        let sched = DutySchedule::from_seeds(&cfg, 16, &SeedSequence::new(7));
        // With 16 seeded phases over a half-duty schedule, some instant separates nodes.
        let t = SimTime::ZERO + SimDuration::from_millis(250);
        let awake = (0..16u32).filter(|&i| sched.is_awake(NodeId(i), t)).count();
        assert!(awake > 0 && awake < 16, "phases must desynchronise the fleet: {awake}/16");
    }

    #[test]
    fn duty_aware_pricing_defaults_off_and_composes() {
        let lc = LifecycleConfig::off();
        assert!(!lc.duty_aware_pricing);
        let lc = lc.with_tx_power_control(true).with_duty_aware_pricing(true);
        assert!(lc.duty_aware_pricing && lc.tx_power_control);
    }

    #[test]
    fn next_awake_at_is_identity_for_always_awake() {
        let sched = DutySchedule::always_awake();
        let t = SimTime::ZERO + SimDuration::from_millis(1234);
        assert_eq!(sched.next_awake_at(NodeId(0), t), t);
    }

    #[test]
    fn next_awake_at_defers_into_the_next_window() {
        // Period 100 ms, awake first 40 ms, zero phase: asleep in [40, 100) ms.
        let sched = DutySchedule::with_phases(100_000_000, 40_000_000, vec![0]);
        let n = NodeId(0);
        let at = |ms: u64| SimTime::ZERO + SimDuration::from_millis(ms);
        assert_eq!(sched.next_awake_at(n, at(10)), at(10), "already awake");
        assert_eq!(sched.next_awake_at(n, at(40)), at(100), "just fell asleep");
        assert_eq!(sched.next_awake_at(n, at(99)), at(100));
        assert_eq!(sched.next_awake_at(n, at(100)), at(100), "window boundary is awake");
    }

    #[test]
    fn next_awake_at_agrees_with_is_awake_scanning() {
        let cfg = DutyCycleConfig::new(SimDuration::from_millis(300), 0.35);
        let sched = DutySchedule::from_seeds(&cfg, 5, &SeedSequence::new(11));
        for i in 0..5u32 {
            let n = NodeId(i);
            for k in 0..40u64 {
                let t = SimTime::ZERO + SimDuration::from_millis(k * 37 + 5);
                let wake = sched.next_awake_at(n, t);
                assert!(wake >= t);
                assert!(sched.is_awake(n, wake), "node {i}: result must be awake");
                // Scan at 1 ms resolution: no awake instant strictly before `wake`.
                let mut s = t;
                while s < wake {
                    assert!(!sched.is_awake(n, s), "node {i}: awake instant before result");
                    s += SimDuration::from_millis(1);
                }
            }
        }
    }

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let cfg = DutyCycleConfig::new(SimDuration::from_millis(700), 0.3);
        let a = DutySchedule::from_seeds(&cfg, 10, &SeedSequence::new(42));
        let b = DutySchedule::from_seeds(&cfg, 10, &SeedSequence::new(42));
        let c = DutySchedule::from_seeds(&cfg, 10, &SeedSequence::new(43));
        let mut diverged = false;
        for i in 0..10u32 {
            for k in 0..50u64 {
                let t = SimTime::ZERO + SimDuration::from_millis(k * 97);
                assert_eq!(a.is_awake(NodeId(i), t), b.is_awake(NodeId(i), t));
                diverged |= a.is_awake(NodeId(i), t) != c.is_awake(NodeId(i), t);
            }
        }
        assert!(diverged, "a different seed draws different phases");
    }
}
