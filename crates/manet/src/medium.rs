//! The radio medium: epoch-cached node positions plus indexed neighbour queries.
//!
//! Before this layer existed, every broadcast in the runtime linearly scanned all `n`
//! nodes and re-queried each node's mobility model per position read — O(n²) work per
//! flooded packet. [`RadioMedium`] centralises both concerns:
//!
//! * a **position cache** that evaluates each mobility model at most once per
//!   *position epoch* (a configurable quantum; [`SimDuration::ZERO`] means exact
//!   per-event positions), and
//! * a uniform-grid [`SpatialIndex`] (cell side = maximum radio range) answering
//!   "who is within `r` of this point?" by inspecting only the overlapping cells.
//!
//! **Determinism guarantee.** The grid and brute-force query modes share the cached
//! position buffer and the `distance² ≤ r²` predicate, and both return receivers in
//! ascending [`NodeId`] order, so per-receiver randomness (channel loss draws) is
//! byte-identical across modes: for the same seeds, a run with
//! [`NeighborQuery::Grid`] produces exactly the same [`crate::SimReport`] as one with
//! [`NeighborQuery::BruteForce`]. The position epoch *does* change physics (positions
//! quantise to epoch starts), so it is a fidelity/performance knob, not a free
//! optimisation — but any two runs with the same epoch agree regardless of query mode.

use crate::geometry::Vec2;
use crate::mobility::BoxedMobility;
use crate::node::NodeId;
use crate::snapshot::TopologySnapshot;
use crate::spatial::SpatialIndex;
use serde::{Deserialize, Serialize};
use ssmcast_dessim::{SimDuration, SimTime};

/// Which implementation answers range queries on the medium.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, Serialize, Deserialize)]
pub enum NeighborQuery {
    /// Uniform-grid spatial index: O(k) candidates per query (the default).
    ///
    /// The index pays off when one build serves many queries, i.e. when positions are
    /// cached per epoch. With a [`SimDuration::ZERO`] epoch every distinct event
    /// timestamp would rebuild the grid for (typically) a single broadcast, which costs
    /// more than the scan it replaces — so the medium silently answers zero-epoch
    /// queries with the linear scan. Results are identical either way.
    Grid,
    /// Linear scan over all nodes: O(n) per query. Kept as the reference
    /// implementation; results are byte-identical to [`NeighborQuery::Grid`].
    BruteForce,
}

/// Configuration of the radio medium layer.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct MediumConfig {
    /// Position-cache quantum: all mobility models are advanced once per epoch and
    /// every position read inside an epoch sees the epoch-start positions.
    /// [`SimDuration::ZERO`] (the default) re-evaluates positions at every distinct
    /// event timestamp — exact physics, identical to querying the mobility models
    /// directly.
    pub position_epoch: SimDuration,
    /// Range-query implementation.
    pub neighbor_query: NeighborQuery,
}

impl Default for MediumConfig {
    fn default() -> Self {
        MediumConfig { position_epoch: SimDuration::ZERO, neighbor_query: NeighborQuery::Grid }
    }
}

impl MediumConfig {
    /// Exact positions, grid-indexed queries (the default).
    pub fn grid() -> Self {
        Self::default()
    }

    /// Exact positions, brute-force queries (the pre-refactor behaviour).
    pub fn brute_force() -> Self {
        MediumConfig { neighbor_query: NeighborQuery::BruteForce, ..Self::default() }
    }

    /// Same configuration with positions cached per `epoch`.
    pub fn with_epoch(mut self, epoch: SimDuration) -> Self {
        self.position_epoch = epoch;
        self
    }
}

/// Epoch-cached positions plus a spatial index over them.
///
/// Owns the per-node mobility models. All position reads in the runtime flow through
/// this type, so a timestamp's positions are computed once and shared by the protocol
/// context, broadcast propagation and topology snapshots.
pub struct RadioMedium {
    mobility: Vec<BoxedMobility>,
    config: MediumConfig,
    /// Grid cell side: the maximum radio range, so any clamped transmission disc
    /// overlaps at most a 3×3 block of cells.
    cell_size: f64,
    positions: Vec<Vec2>,
    /// Epoch start each node's cached position was computed at.
    fresh_at: Vec<SimTime>,
    /// Epoch start of the last full refresh, if any.
    all_fresh_at: Option<SimTime>,
    index: SpatialIndex,
    index_at: Option<SimTime>,
    /// Per-node link-blackout horizon: until this instant the node neither delivers nor
    /// receives anything ([`SimTime::ZERO`] = no blackout). Driven by the fault layer.
    blackout_until: Vec<SimTime>,
}

impl RadioMedium {
    /// Build a medium over one mobility process per node. `cell_size` is normally the
    /// maximum radio range. All positions are primed at time zero.
    pub fn new(mut mobility: Vec<BoxedMobility>, config: MediumConfig, cell_size: f64) -> Self {
        let positions: Vec<Vec2> =
            mobility.iter_mut().map(|m| m.position_at(SimTime::ZERO)).collect();
        let fresh_at = vec![SimTime::ZERO; mobility.len()];
        let blackout_until = vec![SimTime::ZERO; mobility.len()];
        RadioMedium {
            mobility,
            config,
            cell_size,
            positions,
            fresh_at,
            all_fresh_at: Some(SimTime::ZERO),
            index: SpatialIndex::default(),
            index_at: None,
            blackout_until,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.mobility.len()
    }

    /// True if the medium has no nodes.
    pub fn is_empty(&self) -> bool {
        self.mobility.is_empty()
    }

    /// The active configuration.
    pub fn config(&self) -> MediumConfig {
        self.config
    }

    /// Snap a timestamp to the start of its position epoch.
    fn epoch_start(&self, t: SimTime) -> SimTime {
        match t.as_nanos().checked_div(self.config.position_epoch.as_nanos()) {
            Some(epochs) => SimTime::from_nanos(epochs * self.config.position_epoch.as_nanos()),
            None => t,
        }
    }

    /// Position of one node at (the epoch of) `t`. Lazy: only this node's mobility
    /// model is advanced.
    pub fn position_of(&mut self, n: NodeId, t: SimTime) -> Vec2 {
        let te = self.epoch_start(t);
        let i = n.index();
        if self.fresh_at[i] != te {
            self.positions[i] = self.mobility[i].position_at(te);
            self.fresh_at[i] = te;
        }
        self.positions[i]
    }

    /// Refresh every node's cached position to the epoch of `t` and return the buffer.
    pub fn positions(&mut self, t: SimTime) -> &[Vec2] {
        let te = self.epoch_start(t);
        self.refresh_all(te);
        &self.positions
    }

    fn refresh_all(&mut self, te: SimTime) {
        if self.all_fresh_at == Some(te) {
            return;
        }
        for i in 0..self.mobility.len() {
            if self.fresh_at[i] != te {
                self.positions[i] = self.mobility[i].position_at(te);
                self.fresh_at[i] = te;
            }
        }
        self.all_fresh_at = Some(te);
    }

    fn ensure_index(&mut self, te: SimTime) {
        if self.index_at != Some(te) {
            self.index.rebuild(&self.positions, self.cell_size);
            self.index_at = Some(te);
        }
    }

    /// Black out node `n`'s links until `until`: while the blackout lasts the node is
    /// removed from every receiver set and [`Self::is_blacked_out`] reports true (the
    /// runtime uses that to suppress its transmissions too). Extending an existing
    /// blackout keeps the later horizon.
    pub fn set_blackout(&mut self, n: NodeId, until: SimTime) {
        let slot = &mut self.blackout_until[n.index()];
        *slot = (*slot).max(until);
    }

    /// True while node `n`'s links are blacked out at time `t`.
    pub fn is_blacked_out(&self, n: NodeId, t: SimTime) -> bool {
        t < self.blackout_until[n.index()]
    }

    /// Every node other than `sender` within `range` metres of `center`, in ascending
    /// node-id order. Nodes in a link blackout at `t` are excluded. `center` must be
    /// `sender`'s position at `t` (threaded through from the caller rather than
    /// re-queried).
    pub fn receivers_within(
        &mut self,
        sender: NodeId,
        center: Vec2,
        range: f64,
        t: SimTime,
        out: &mut Vec<NodeId>,
    ) {
        let te = self.epoch_start(t);
        self.refresh_all(te);
        // A zero-epoch grid would rebuild the index per timestamp for a single query;
        // the scan is cheaper and (by construction) returns the identical set.
        let use_index = self.config.neighbor_query == NeighborQuery::Grid
            && !self.config.position_epoch.is_zero();
        if use_index {
            self.ensure_index(te);
            self.index.query_disc(center, range, &self.positions, out);
            out.retain(|&id| id != sender && !self.is_blacked_out(id, t));
        } else {
            out.clear();
            let r2 = range * range;
            for i in 0..self.positions.len() {
                let id = NodeId(i as u32);
                if id != sender
                    && !self.is_blacked_out(id, t)
                    && self.positions[i].distance_sq(&center) <= r2
                {
                    out.push(id);
                }
            }
        }
    }

    /// Greatest distance from `center` to any node in `ids` at (the epoch of) `t` —
    /// the minimum power-control range that covers them all (0 for an empty set). Used
    /// by distance-based TX power control to price a broadcast by its farthest actual
    /// receiver instead of the requested range.
    pub fn farthest_distance(&mut self, center: Vec2, ids: &[NodeId], t: SimTime) -> f64 {
        ids.iter().map(|&id| self.position_of(id, t).distance(&center)).fold(0.0, f64::max)
    }

    /// Freeze the medium at (the epoch of) `t` into a [`TopologySnapshot`] with the given
    /// neighbour range.
    pub fn snapshot(&mut self, t: SimTime, range_m: f64) -> TopologySnapshot {
        let positions = self.positions(t).to_vec();
        TopologySnapshot::new(positions, range_m)
    }
}

impl std::fmt::Debug for RadioMedium {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RadioMedium")
            .field("nodes", &self.mobility.len())
            .field("config", &self.config)
            .field("cell_size", &self.cell_size)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mobility::{RandomWaypoint, Stationary, WaypointConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn waypoint_fleet(n: u64) -> Vec<BoxedMobility> {
        (0..n)
            .map(|i| {
                Box::new(RandomWaypoint::with_random_start(
                    WaypointConfig::paper_default(10.0),
                    StdRng::seed_from_u64(100 + i),
                )) as BoxedMobility
            })
            .collect()
    }

    /// Reference positions for the same seeds, queried directly.
    fn direct_positions(n: u64, t: SimTime) -> Vec<Vec2> {
        waypoint_fleet(n).iter_mut().map(|m| m.position_at(t)).collect()
    }

    #[test]
    fn zero_epoch_positions_are_exact() {
        let mut medium = RadioMedium::new(waypoint_fleet(8), MediumConfig::default(), 250.0);
        for secs in [0u64, 3, 17, 18, 90] {
            let t = SimTime::from_secs(secs);
            assert_eq!(medium.positions(t), direct_positions(8, t).as_slice(), "t={secs}");
        }
    }

    #[test]
    fn epoch_quantises_positions_to_epoch_starts() {
        let cfg = MediumConfig::default().with_epoch(SimDuration::from_secs(10));
        let mut medium = RadioMedium::new(waypoint_fleet(5), cfg, 250.0);
        let in_epoch = medium.positions(SimTime::from_secs_f64(17.3)).to_vec();
        assert_eq!(in_epoch, direct_positions(5, SimTime::from_secs(10)), "snap to epoch start");
        // Any read inside the same epoch sees identical positions.
        assert_eq!(medium.positions(SimTime::from_secs_f64(19.9)), in_epoch.as_slice());
        // The next epoch advances.
        assert_eq!(
            medium.positions(SimTime::from_secs(20)),
            direct_positions(5, SimTime::from_secs(20)).as_slice()
        );
    }

    #[test]
    fn lazy_and_bulk_reads_agree() {
        let cfg = MediumConfig::default().with_epoch(SimDuration::from_millis(500));
        let mut a = RadioMedium::new(waypoint_fleet(6), cfg, 250.0);
        let mut b = RadioMedium::new(waypoint_fleet(6), cfg, 250.0);
        let t = SimTime::from_secs_f64(42.42);
        // `a` reads one node lazily first, then the full buffer; `b` goes straight to
        // the full buffer. Both must agree.
        let single = a.position_of(NodeId(3), t);
        assert_eq!(a.positions(t)[3], single);
        assert_eq!(a.positions(t), b.positions(t));
    }

    #[test]
    fn grid_and_brute_force_receivers_are_identical() {
        // A non-zero epoch so the grid path actually engages the spatial index (at
        // epoch zero both modes share the scan path by design); ZERO is covered too.
        for epoch in [SimDuration::ZERO, SimDuration::from_millis(500)] {
            let grid_cfg = MediumConfig::grid().with_epoch(epoch);
            let brute_cfg = MediumConfig::brute_force().with_epoch(epoch);
            let mut grid = RadioMedium::new(waypoint_fleet(40), grid_cfg, 250.0);
            let mut brute = RadioMedium::new(waypoint_fleet(40), brute_cfg, 250.0);
            let mut out_g = Vec::new();
            let mut out_b = Vec::new();
            for secs in [0u64, 5, 31, 60] {
                let t = SimTime::from_secs(secs);
                for sender in [NodeId(0), NodeId(7), NodeId(39)] {
                    let center = grid.position_of(sender, t);
                    assert_eq!(center, brute.position_of(sender, t));
                    for range in [50.0, 150.0, 250.0] {
                        grid.receivers_within(sender, center, range, t, &mut out_g);
                        brute.receivers_within(sender, center, range, t, &mut out_b);
                        assert_eq!(out_g, out_b, "t={secs} sender={sender:?} range={range}");
                        assert!(!out_g.contains(&sender), "sender excluded");
                        assert!(out_g.windows(2).all(|w| w[0] < w[1]), "sorted by node id");
                    }
                }
            }
        }
    }

    #[test]
    fn snapshot_reflects_cached_positions() {
        let mobility: Vec<BoxedMobility> = vec![
            Box::new(Stationary::new(Vec2::new(0.0, 0.0))),
            Box::new(Stationary::new(Vec2::new(100.0, 0.0))),
            Box::new(Stationary::new(Vec2::new(400.0, 0.0))),
        ];
        let mut medium = RadioMedium::new(mobility, MediumConfig::default(), 150.0);
        let snap = medium.snapshot(SimTime::from_secs(1), 150.0);
        assert!(snap.are_neighbors(NodeId(0), NodeId(1)));
        assert!(!snap.are_neighbors(NodeId(0), NodeId(2)));
        assert_eq!(snap.position(NodeId(2)), Vec2::new(400.0, 0.0));
    }
}
