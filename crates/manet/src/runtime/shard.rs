//! The region-sharded parallel engine.
//!
//! Nodes are partitioned into `k` spatial stripes (sorted by initial x-position);
//! each stripe owns a [`KeyedQueue`] drained by a worker thread. Shards advance in
//! **conservative synchronization windows**: with `m` the earliest pending event
//! anywhere and `δ` the radio's fixed propagation delay, every event in `[m, b]`
//! with `b ≤ m + δ − 1 ns` can only spawn *cross-shard* arrivals at `≥ m + δ > b`,
//! so a round that drains all events `≤ b` never misses a remote event. The only
//! cross-shard event class is packet delivery (timers, MAC retries and application
//! sends are node-local; faults and churn are seeded up front), which is what makes
//! the bound `δ = fixed_delay` valid.
//!
//! **Determinism.** Every event carries a canonical key and queues pop in
//! `(time, key)` order, so each node's event sequence is a pure function of the
//! global event set — *invariant of the shard count*. The same setup produces
//! byte-identical reports at 1, 2 or 8 shards. The sharded engine is, however, a
//! different (documented) discretisation than the sequential loop: positions
//! quantise to sync-window refresh points, channel-loss draws come from per-sender
//! `"shard-loss"` streams, and a few guard orderings differ — see `EXPERIMENTS.md`
//! for the full list. Floating-point accumulation is made order-independent by
//! keeping per-`(session, node)` energy accumulators and reducing them in ascending
//! global node order.

use super::{NetworkSim, SimSetup};
use crate::agent::{Action, Disposition, NodeCtx, ProtocolAgent};
use crate::battery::{Battery, EnergyUse};
use crate::channel::Channel;
use crate::faults::{FaultKind, ProbeContext, SessionProbe, StabilizationObserver};
use crate::geometry::Vec2;
use crate::harvest::HarvestPlan;
use crate::lifecycle::DutySchedule;
use crate::mac::{MacDecision, MacFrame, MacPolicy};
use crate::node::{GroupRole, NodeId};
use crate::packet::{DataTag, Packet, PacketClass};
use crate::report::{GroupAccounting, SimReport, Trace};
use crate::session::MembershipChange;
use crate::snapshot::TopologySnapshot;
use crate::spatial::SpatialIndex;
use rand::rngs::StdRng;
use rand::Rng;
use ssmcast_dessim::{EventId, KeyedQueue, SimDuration, SimTime};
use ssmcast_metrics::{CurveRing, EngineStats, MacStats};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard};

/// Canonical event key: `(rank, a, b, c, d)`. Ranks order same-time events the way the
/// sequential engine's insertion order did for the seeded classes (faults before churn
/// before application sends); the remaining fields make every key unique so pop order
/// is a pure function of the event, not of which worker pushed it first.
type Key = (u8, u64, u64, u64, u64);

const RANK_FAULT: u8 = 0;
const RANK_MEMBERSHIP: u8 = 1;
const RANK_APPSEND: u8 = 2;
const RANK_TIMER: u8 = 3;
const RANK_DELIVER: u8 = 4;
const RANK_MACRETRY: u8 = 5;
const RANK_HARVEST: u8 = 6;

/// A packet copy travelling to one receiver; the cross-shard event class.
struct DeliverIntent<P> {
    session: u16,
    sender: NodeId,
    rx: NodeId,
    class: PacketClass,
    size_bytes: u32,
    data: Option<DataTag>,
    payload: P,
    /// Transmission start (drives carrier capture and TDMA slot learning).
    tx_start: SimTime,
    /// Transmission end (drives carrier capture).
    tx_end: SimTime,
    /// Lost to noise — drawn from the *sender's* loss stream at send time so the draw
    /// order is partition-independent.
    lost: bool,
    /// MAC state snapshotted on the sender's shard at transmit time
    /// ([`MacPolicy::piggyback_row`]) — TDMA's 2-hop claim table, shipped across the
    /// shard boundary so the receiver's per-shard MAC replica reads the same claims a
    /// global instance would.
    piggyback: Option<Arc<[u16]>>,
}

/// Events flowing through one shard's queue.
enum ShardEvent<P> {
    /// A seeded fault (never `Blackout` — those apply on the coordinator; in probed
    /// runs *every* seeded fault applies on the coordinator and only crash-scheduled
    /// rejoins travel through shard queues). The `u64` is the fault's plan index,
    /// which keys crash-scheduled rejoins.
    Fault(FaultKind, u64),
    /// A depleted, energy-harvesting node banked its wake threshold: recharge and
    /// revive it. Node-local, so it queues on the owning shard (see
    /// [`crate::harvest`]).
    HarvestWake {
        node: NodeId,
    },
    Membership {
        session: u16,
        node: NodeId,
        change: MembershipChange,
    },
    AppSend {
        session: u16,
        seq: u64,
    },
    Timer {
        session: u16,
        node: NodeId,
        kind: u64,
        key: u64,
    },
    Deliver(DeliverIntent<P>),
    MacRetry {
        session: u16,
        sender: NodeId,
        class: PacketClass,
        size_bytes: u32,
        range_m: f64,
        data: Option<DataTag>,
        payload: P,
        attempt: u32,
        requested_at: SimTime,
    },
}

/// Positions, spatial index and blackout horizons frozen between coordinator
/// refreshes. Workers take one read lock per round; the coordinator write-locks only
/// while every worker waits at the round barrier.
struct Frozen {
    positions: Vec<Vec2>,
    index: SpatialIndex,
    blackout_until: Vec<SimTime>,
    /// Per-session recovery flag for the steady-vs-recovery control-byte split,
    /// refreshed by the coordinator after every observer notification (all-false — and
    /// the shard counters unused — when beacon suppression is off).
    recovering: Vec<bool>,
}

impl Frozen {
    fn is_blacked_out(&self, n: NodeId, t: SimTime) -> bool {
        t < self.blackout_until[n.index()]
    }

    /// Every node other than `sender` within `range` of `center`, ascending node id,
    /// blacked-out nodes excluded — the frozen mirror of
    /// [`crate::medium::RadioMedium::receivers_within`].
    fn receivers_within(
        &self,
        sender: NodeId,
        center: Vec2,
        range: f64,
        t: SimTime,
        out: &mut Vec<NodeId>,
    ) {
        self.index.query_disc(center, range, &self.positions, out);
        out.retain(|&id| id != sender && !self.is_blacked_out(id, t));
    }

    fn farthest_distance(&self, center: Vec2, ids: &[NodeId]) -> f64 {
        ids.iter().map(|&id| self.positions[id.index()].distance(&center)).fold(0.0, f64::max)
    }
}

/// Everything one worker owns: its stripe's queue, agents, per-node state, and its own
/// replicas of the network-global tables (memberships, channel, MAC) that every shard
/// must agree on.
struct ShardState<A: ProtocolAgent> {
    /// Owned node ids, ascending.
    owned: Vec<u32>,
    queue: KeyedQueue<Key, ShardEvent<A::Payload>>,
    /// `agents[session * owned.len() + local]`.
    agents: Vec<A>,
    /// Per-local protocol RNG (same `"protocol"` stream as the sequential engine).
    rngs: Vec<StdRng>,
    /// Per-local channel-loss RNG (`"shard-loss"` stream, indexed by global node id).
    loss_rngs: Vec<StdRng>,
    batteries: Vec<Battery>,
    crashed: Vec<bool>,
    accrued_until: Vec<SimTime>,
    death_at: Vec<Option<SimTime>>,
    /// Per-local transmission counter — makes every delivery key unique per sender.
    tx_seq: Vec<u64>,
    /// Per-local MAC-retry counter — makes every retry key unique per sender.
    mac_seq: Vec<u64>,
    /// Per-local harvest-wake counter — makes every wake key unique per node.
    harvest_seq: Vec<u64>,
    /// Earliest depletion among owned nodes — harvest wakes may later clear
    /// `death_at`, so the surviving entries alone would under-report.
    first_depletion: Option<SimTime>,
    /// Full `n × sessions` membership replica (every shard applies every churn event,
    /// so roles and receiver counts agree everywhere without synchronization).
    memberships: Vec<GroupRole>,
    receiver_counts: Vec<u64>,
    joins: Vec<u64>,
    leaves: Vec<u64>,
    traces: Vec<Trace>,
    /// `energy[session * owned.len() + local]` — reduced in global node order at the
    /// end so the floating-point sum is partition-independent.
    energy_acc: Vec<f64>,
    overhear_acc: Vec<f64>,
    /// Full-width channel replica; only the owned receivers' slots are ever touched.
    channel: Channel,
    /// Full-width MAC replica (prepared for sharding; only owned nodes' state is read).
    mac: Box<dyn MacPolicy>,
    duty: DutySchedule,
    mac_requested: u64,
    mac_sent: u64,
    mac_drops: u64,
    mac_deferrals: u64,
    mac_access_delay: SimDuration,
    mac_airtime: SimDuration,
    /// Pending timers keyed by `(node, session, kind, key)`.
    timers: HashMap<(u32, u16, u64, u64), EventId>,
    scratch_actions: Vec<Action<A::Payload>>,
    scratch_receivers: Vec<NodeId>,
    /// Per-session (packets, bytes) of control traffic this shard's nodes sent while
    /// steady / recovering (only filled when beacon suppression is on).
    silence_steady: Vec<(u64, u64)>,
    silence_recovery: Vec<(u64, u64)>,
    /// Earliest cross-shard push made this round, nanos (`u64::MAX` when none). Folded
    /// into the published minimum so the coordinator's window bound covers events
    /// sitting in lanes that their destination has not drained yet.
    round_lane_min: u64,
    events_processed: u64,
    peak_depth: u64,
}

/// One cross-shard mailbox: timestamped, canonically-keyed events from a single
/// source shard, drained by the destination at the start of its next round.
type Lane<P> = Mutex<Vec<(SimTime, Key, ShardEvent<P>)>>;

/// State shared between the coordinator and the workers.
struct Shared<A: ProtocolAgent> {
    shards: Vec<Mutex<ShardState<A>>>,
    /// `lanes[dst][src]`: cross-shard deliveries from `src` to `dst`.
    lanes: Vec<Vec<Lane<A::Payload>>>,
    frozen: RwLock<Frozen>,
    /// Per-shard published minimum (nanos), `u64::MAX` when idle.
    mins: Vec<AtomicU64>,
    /// Current window end in nanos; `u64::MAX` tells workers to exit.
    window_end: AtomicU64,
    barrier: Barrier,
    panicked: AtomicBool,
}

const DONE: u64 = u64::MAX;

/// Poison-tolerant mutex lock: a worker that panicked has already set the shared
/// `panicked` flag, and the coordinator still needs the data for its own panic path.
fn plock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn pread<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

/// Immutable context every worker shares.
struct Ctx<'a> {
    setup: &'a SimSetup,
    /// Materialised per-node harvest rates (inert when harvesting is off).
    harvest: &'a HarvestPlan,
    /// Global node id → shard.
    shard_of: &'a [u32],
    /// Global node id → index in its shard's `owned`.
    local_of: &'a [u32],
}

impl<A: ProtocolAgent> ShardState<A> {
    fn eidx(&self, session: usize, local: usize) -> usize {
        session * self.owned.len() + local
    }

    /// Record a local node's death the first time its battery is observed depleted —
    /// the sharded mirror of `NetworkSim::note_death`. With harvesting enabled, also
    /// schedule the node's harvest-until-threshold wake on this shard's own queue
    /// (wakes are node-local, so they never cross a shard boundary); `death_at[local]`
    /// guards re-entry, exactly once per depletion episode.
    fn note_death(&mut self, cx: &Ctx<'_>, local: usize, t: SimTime) {
        if self.death_at[local].is_none() && self.batteries[local].is_depleted() {
            self.death_at[local] = Some(t);
            self.first_depletion = Some(self.first_depletion.map_or(t, |f| f.min(t)));
            let node = NodeId(self.owned[local]);
            if let Some(delay) = cx.harvest.wake_delay(node) {
                if let Some(at) = t.checked_add(delay) {
                    let seq = self.harvest_seq[local];
                    self.harvest_seq[local] += 1;
                    let k: Key = (RANK_HARVEST, node.0 as u64, seq, 0, 0);
                    self.queue.push(at, k, ShardEvent::HarvestWake { node });
                }
            }
        }
    }

    /// The sharded mirror of `NetworkSim::accrue_idle`.
    fn accrue_idle(&mut self, cx: &Ctx<'_>, local: usize, node: NodeId, t: SimTime) {
        if !cx.setup.lifecycle.has_continuous_drain() {
            return;
        }
        let from = self.accrued_until[local];
        if t <= from {
            return;
        }
        self.accrued_until[local] = t;
        if self.batteries[local].is_depleted() {
            return;
        }
        let awake = self.duty.awake_between(node, from, t);
        let asleep = t.saturating_since(from) - awake;
        let lc = cx.setup.lifecycle;
        if lc.idle_listen_w > 0.0 {
            self.batteries[local]
                .accept(lc.idle_listen_w * awake.as_secs_f64(), EnergyUse::IdleListen);
        }
        if lc.sleep_w > 0.0 {
            self.batteries[local].accept(lc.sleep_w * asleep.as_secs_f64(), EnergyUse::Sleep);
        }
        self.note_death(cx, local, t);
    }

    fn accrue_all(&mut self, cx: &Ctx<'_>, t: SimTime) {
        if !cx.setup.lifecycle.has_continuous_drain() {
            return;
        }
        for li in 0..self.owned.len() {
            let node = NodeId(self.owned[li]);
            self.accrue_idle(cx, li, node, t);
        }
    }

    /// Bucket one control transmission into the steady or recovery phase — the sharded
    /// mirror of `NetworkSim::record_silence_control`. `recovering` comes from the
    /// frozen state, where the coordinator refreshes it at observer instants.
    fn record_silence_control(
        &mut self,
        enabled: bool,
        recovering: &[bool],
        session: usize,
        size_bytes: u32,
    ) {
        if !enabled {
            return;
        }
        let bucket = if recovering[session] {
            &mut self.silence_recovery[session]
        } else {
            &mut self.silence_steady[session]
        };
        bucket.0 += 1;
        bucket.1 += u64::from(size_bytes);
    }

    /// Apply one churn event to this shard's full membership replica (the sharded
    /// mirror of `NetworkSim::apply_membership`).
    fn apply_membership(
        &mut self,
        n_nodes: usize,
        session: usize,
        node: NodeId,
        change: MembershipChange,
    ) {
        let idx = session * n_nodes + node.index();
        match (change, self.memberships[idx]) {
            (MembershipChange::Join, GroupRole::NonMember) => {
                self.memberships[idx] = GroupRole::Member;
                self.receiver_counts[session] += 1;
                self.joins[session] += 1;
            }
            (MembershipChange::Leave, GroupRole::Member) => {
                self.memberships[idx] = GroupRole::NonMember;
                self.receiver_counts[session] -= 1;
                self.leaves[session] += 1;
            }
            _ => {}
        }
    }
}

/// Build the spatial partition: nodes sorted by initial `(x, y, id)` and cut into `k`
/// contiguous stripes; each stripe's owned list is then re-sorted ascending by id.
/// Returns `(owned_per_shard, shard_of, local_of)`.
fn partition(positions: &[Vec2], k: usize) -> (Vec<Vec<u32>>, Vec<u32>, Vec<u32>) {
    let n = positions.len();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by(|&a, &b| {
        let (pa, pb) = (positions[a as usize], positions[b as usize]);
        pa.x.total_cmp(&pb.x).then(pa.y.total_cmp(&pb.y)).then(a.cmp(&b))
    });
    let mut owned: Vec<Vec<u32>> = Vec::with_capacity(k);
    for w in 0..k {
        let start = w * n / k;
        let end = (w + 1) * n / k;
        let mut ids: Vec<u32> = order[start..end].to_vec();
        ids.sort_unstable();
        owned.push(ids);
    }
    let mut shard_of = vec![0u32; n];
    let mut local_of = vec![0u32; n];
    for (w, ids) in owned.iter().enumerate() {
        for (li, &gi) in ids.iter().enumerate() {
            shard_of[gi as usize] = w as u32;
            local_of[gi as usize] = li as u32;
        }
    }
    (owned, shard_of, local_of)
}

/// Push a cross-shard delivery into the destination's lane and fold its time into this
/// shard's published minimum for the round.
fn push_remote<A: ProtocolAgent>(
    shared: &Shared<A>,
    st: &mut ShardState<A>,
    src: usize,
    dst: usize,
    at: SimTime,
    key: Key,
    ev: ShardEvent<A::Payload>,
) {
    plock(&shared.lanes[dst][src]).push((at, key, ev));
    st.round_lane_min = st.round_lane_min.min(at.as_nanos());
}

/// Run one agent callback and apply the actions it queued — the sharded mirror of
/// `NetworkSim::make_ctx_and_call`.
#[allow(clippy::too_many_arguments)]
fn with_agent<A: ProtocolAgent, F>(
    st: &mut ShardState<A>,
    fz: &Frozen,
    cx: &Ctx<'_>,
    shared: &Shared<A>,
    w: usize,
    session: usize,
    node: NodeId,
    t: SimTime,
    f: F,
) where
    F: FnOnce(&mut A, &mut NodeCtx<'_, A::Payload>),
{
    let li = cx.local_of[node.index()] as usize;
    let pos = fz.positions[node.index()];
    let role = st.memberships[session * cx.setup.n_nodes + node.index()];
    let ai = st.eidx(session, li);
    let mut actions = std::mem::take(&mut st.scratch_actions);
    actions.clear();
    {
        let mut ctx = NodeCtx::new(
            t,
            node,
            pos,
            role,
            cx.setup.n_nodes,
            &cx.setup.radio,
            &mut st.rngs[li],
            &mut actions,
        );
        f(&mut st.agents[ai], &mut ctx);
    }
    apply_actions(st, fz, cx, shared, w, session, node, t, &mut actions);
    st.scratch_actions = actions;
}

#[allow(clippy::too_many_arguments)]
fn apply_actions<A: ProtocolAgent>(
    st: &mut ShardState<A>,
    fz: &Frozen,
    cx: &Ctx<'_>,
    shared: &Shared<A>,
    w: usize,
    session: usize,
    node: NodeId,
    t: SimTime,
    actions: &mut Vec<Action<A::Payload>>,
) {
    for action in actions.drain(..) {
        match action {
            Action::Broadcast { class, size_bytes, range_m, data, payload } => {
                try_send(
                    st, fz, cx, shared, w, session, node, t, class, size_bytes, range_m, data,
                    payload, 0, t,
                );
            }
            Action::SetTimer { delay, kind, key } => {
                let at = t + delay;
                let k: Key = (RANK_TIMER, node.0 as u64, session as u64, kind, key);
                let ev = ShardEvent::Timer { session: session as u16, node, kind, key };
                let id = st.queue.push(at, k, ev);
                if let Some(old) = st.timers.insert((node.0, session as u16, kind, key), id) {
                    st.queue.cancel(old);
                }
            }
            Action::CancelTimer { kind, key } => {
                if let Some(id) = st.timers.remove(&(node.0, session as u16, kind, key)) {
                    st.queue.cancel(id);
                }
            }
            Action::DeliverData { tag } => {
                let idx = session * cx.setup.n_nodes + node.index();
                if matches!(st.memberships[idx], GroupRole::Member) {
                    st.traces[session].record_delivery(&tag, node, t);
                }
            }
        }
    }
}

/// One MAC-mediated transmission attempt — the sharded mirror of
/// `NetworkSim::try_send`. Deliveries to owned receivers go straight into this shard's
/// queue; the rest travel through lanes.
#[allow(clippy::too_many_arguments)]
fn try_send<A: ProtocolAgent>(
    st: &mut ShardState<A>,
    fz: &Frozen,
    cx: &Ctx<'_>,
    shared: &Shared<A>,
    w: usize,
    session: usize,
    sender: NodeId,
    t: SimTime,
    class: PacketClass,
    size_bytes: u32,
    range_m: f64,
    data: Option<DataTag>,
    payload: A::Payload,
    attempt: u32,
    requested_at: SimTime,
) {
    let li = cx.local_of[sender.index()] as usize;
    st.accrue_idle(cx, li, sender, t);
    if st.batteries[li].is_depleted() || st.crashed[li] {
        return;
    }
    let radio = cx.setup.radio;
    let range = radio.clamp_range(range_m);
    let usage = match class {
        PacketClass::Control => EnergyUse::TxControl,
        PacketClass::Data => EnergyUse::TxData,
    };
    // A blacked-out sender pays for the transmission but nobody hears it (and the MAC
    // never sees the frame) — same rule as the sequential engine.
    if fz.is_blacked_out(sender, t) {
        let accepted = st.batteries[li].accept(radio.energy.tx_energy(range, size_bytes), usage);
        st.note_death(cx, li, t);
        let ei = st.eidx(session, li);
        st.energy_acc[ei] += accepted;
        match class {
            PacketClass::Control => {
                st.traces[session].record_control_tx(size_bytes);
                st.record_silence_control(
                    cx.setup.silence.enabled,
                    &fz.recovering,
                    session,
                    size_bytes,
                );
            }
            PacketClass::Data => st.traces[session].record_data_tx(size_bytes),
        }
        return;
    }
    if attempt == 0 {
        st.mac_requested += 1;
    }
    let frame = MacFrame { sender, class, size_bytes, attempt };
    let decision = st.mac.access(&frame, t, &radio, &st.channel, &mut st.loss_rngs[li]);
    let tx_start = match decision {
        MacDecision::Drop => {
            st.mac_drops += 1;
            return;
        }
        MacDecision::Defer { until } => {
            st.mac_deferrals += 1;
            let seq = st.mac_seq[li];
            st.mac_seq[li] += 1;
            let k: Key = (RANK_MACRETRY, sender.0 as u64, seq, 0, 0);
            let ev = ShardEvent::MacRetry {
                session: session as u16,
                sender,
                class,
                size_bytes,
                range_m: range,
                data,
                payload,
                attempt: attempt + 1,
                requested_at,
            };
            st.queue.push(until.max(t), k, ev);
            return;
        }
        MacDecision::Transmit { at } => at.max(t),
    };
    st.mac_sent += 1;
    st.mac_access_delay += tx_start.saturating_since(requested_at);
    st.mac_airtime += radio.tx_duration(size_bytes);
    let sender_pos = fz.positions[sender.index()];
    let mut receivers = std::mem::take(&mut st.scratch_receivers);
    fz.receivers_within(sender, sender_pos, range, t, &mut receivers);
    let tx_end = tx_start + radio.tx_duration(size_bytes);
    let delivery_at = tx_start + radio.delivery_delay(size_bytes);
    let lc = cx.setup.lifecycle;
    let tx_range = if lc.tx_power_control {
        // Duty-aware pricing (opt-in): receivers provably asleep at the delivery
        // instant leave the pricing set — the sharded mirror of
        // `NetworkSim::try_send`'s rule.
        if lc.duty_aware_pricing && st.duty.is_on() {
            let priced: Vec<NodeId> =
                receivers.iter().copied().filter(|&rx| st.duty.is_awake(rx, delivery_at)).collect();
            fz.farthest_distance(sender_pos, &priced).min(range)
        } else {
            fz.farthest_distance(sender_pos, &receivers).min(range)
        }
    } else {
        range
    };
    let accepted = st.batteries[li].accept(radio.energy.tx_energy(tx_range, size_bytes), usage);
    st.note_death(cx, li, t);
    let ei = st.eidx(session, li);
    st.energy_acc[ei] += accepted;
    match class {
        PacketClass::Control => {
            st.traces[session].record_control_tx(size_bytes);
            st.record_silence_control(
                cx.setup.silence.enabled,
                &fz.recovering,
                session,
                size_bytes,
            );
        }
        PacketClass::Data => st.traces[session].record_data_tx(size_bytes),
    }
    let txs = st.tx_seq[li];
    st.tx_seq[li] += 1;
    // MAC state rides the frame across shard boundaries: snapshotted once on the
    // sender's shard (whose replica owns the sender's rows) and shared by every copy.
    let piggyback: Option<Arc<[u16]>> = st.mac.piggyback_row(sender, class).map(Arc::from);
    // Loss is drawn from the sender's stream for every receiver in ascending order
    // (including depleted ones — their liveness is checked on their own shard at
    // delivery time), so the draw sequence is a pure function of the frozen topology.
    for &rx in &receivers {
        let lost = st.loss_rngs[li].gen::<f64>() < radio.loss_probability;
        let k: Key = (RANK_DELIVER, sender.0 as u64, txs, rx.0 as u64, 0);
        let intent = DeliverIntent {
            session: session as u16,
            sender,
            rx,
            class,
            size_bytes,
            data,
            payload: payload.clone(),
            tx_start,
            tx_end,
            lost,
            piggyback: piggyback.clone(),
        };
        let dst = cx.shard_of[rx.index()] as usize;
        if dst == w {
            st.queue.push(delivery_at, k, ShardEvent::Deliver(intent));
        } else {
            push_remote(shared, st, w, dst, delivery_at, k, ShardEvent::Deliver(intent));
        }
    }
    st.scratch_receivers = receivers;
}

/// Apply one worker-side fault (`Blackout` never reaches here). Mirrors
/// `NetworkSim::apply_fault`; returns whether the fault actually changed anything.
#[allow(clippy::too_many_arguments)]
fn apply_fault_sharded<A: ProtocolAgent>(
    st: &mut ShardState<A>,
    fz: &Frozen,
    cx: &Ctx<'_>,
    shared: &Shared<A>,
    w: usize,
    t: SimTime,
    kind: FaultKind,
    plan_idx: u64,
) -> bool {
    let node = kind.node();
    let li = cx.local_of[node.index()] as usize;
    st.accrue_idle(cx, li, node, t);
    match kind {
        FaultKind::Corrupt { node } => {
            let up = !st.crashed[li] && !st.batteries[li].is_depleted();
            if up {
                for session in 0..cx.setup.n_sessions() {
                    let ai = st.eidx(session, li);
                    // Split borrow: agents and rngs are disjoint fields.
                    let ShardState { agents, rngs, .. } = st;
                    agents[ai].corrupt_state(&mut rngs[li]);
                }
                // Mirror the sequential engine's second pass: suppressed agents re-arm
                // their beacon timers at the base cadence.
                for session in 0..cx.setup.n_sessions() {
                    with_agent(st, fz, cx, shared, w, session, node, t, |agent, ctx| {
                        agent.on_corrupted(ctx)
                    });
                }
                st.mac.corrupt(node);
            }
            up
        }
        FaultKind::Crash { node: _, down_for } => {
            if st.crashed[li] || st.batteries[li].is_depleted() {
                return false;
            }
            st.crashed[li] = true;
            if down_for != SimDuration::MAX {
                if let Some(at) = t.checked_add(down_for) {
                    let k: Key = (RANK_FAULT, plan_idx, 1, 0, 0);
                    st.queue.push(at, k, ShardEvent::Fault(FaultKind::Rejoin { node }, plan_idx));
                }
            }
            true
        }
        FaultKind::Rejoin { node } => {
            let was_down = st.crashed[li];
            if was_down {
                st.crashed[li] = false;
                for session in 0..cx.setup.n_sessions() {
                    with_agent(st, fz, cx, shared, w, session, node, t, |agent, ctx| {
                        agent.start(ctx)
                    });
                }
            }
            was_down
        }
        FaultKind::Drain { node: _, joules } => {
            if st.batteries[li].is_unlimited() || st.batteries[li].is_depleted() {
                return false;
            }
            st.batteries[li].drain(joules);
            st.note_death(cx, li, t);
            true
        }
        FaultKind::Blackout { .. } => unreachable!("blackouts apply on the coordinator"),
    }
}

/// Process one popped event — the sharded mirror of `NetworkSim::dispatch`.
fn dispatch_event<A: ProtocolAgent>(
    st: &mut ShardState<A>,
    fz: &Frozen,
    cx: &Ctx<'_>,
    shared: &Shared<A>,
    w: usize,
    t: SimTime,
    ev: ShardEvent<A::Payload>,
) {
    match ev {
        ShardEvent::Deliver(intent) => {
            let rx = intent.rx;
            let li = cx.local_of[rx.index()] as usize;
            let session = intent.session as usize;
            st.accrue_idle(cx, li, rx, t);
            if st.batteries[li].is_depleted() {
                return;
            }
            // Carrier capture is evaluated before the crash/blackout/sleep guards:
            // a frame occupies a crashed receiver's air regardless (same as the
            // sequential engine, which marks the channel at send time).
            let clean = if cx.setup.radio.collisions_enabled {
                st.channel.try_receive(intent.session, rx, intent.tx_start, intent.tx_end)
            } else {
                true
            };
            if st.crashed[li] {
                return;
            }
            if fz.is_blacked_out(rx, t) {
                return;
            }
            if !st.duty.is_awake(rx, t) {
                return;
            }
            let rx_energy = cx.setup.radio.energy.rx_energy(intent.size_bytes);
            let corrupted = !clean || intent.lost;
            if corrupted {
                let accepted = st.batteries[li].accept(rx_energy, EnergyUse::Overhear);
                st.note_death(cx, li, t);
                let ei = st.eidx(session, li);
                st.energy_acc[ei] += accepted;
                st.overhear_acc[ei] += accepted;
                return;
            }
            // A clean reception teaches the MAC (TDMA slot learning). The sender's
            // claim-table row arrives piggybacked on the frame, so the receiver's
            // per-shard replica reads exactly what a global instance would.
            st.mac.on_overheard(
                rx,
                intent.sender,
                intent.class,
                intent.tx_start,
                intent.piggyback.as_deref(),
            );
            let packet = Packet {
                sender: intent.sender,
                class: intent.class,
                size_bytes: intent.size_bytes,
                data: intent.data,
                payload: intent.payload,
            };
            let mut disposition = Disposition::Discarded;
            with_agent(st, fz, cx, shared, w, session, rx, t, |agent, ctx| {
                disposition = agent.on_packet(ctx, &packet);
            });
            let usage = match (disposition, packet.class) {
                (Disposition::Discarded, _) => EnergyUse::Overhear,
                (Disposition::Consumed, PacketClass::Control) => EnergyUse::RxControl,
                (Disposition::Consumed, PacketClass::Data) => EnergyUse::RxData,
            };
            let accepted = st.batteries[li].accept(rx_energy, usage);
            st.note_death(cx, li, t);
            let ei = st.eidx(session, li);
            st.energy_acc[ei] += accepted;
            if usage == EnergyUse::Overhear {
                st.overhear_acc[ei] += accepted;
            }
        }
        ShardEvent::Timer { session, node, kind, key } => {
            st.timers.remove(&(node.0, session, kind, key));
            let li = cx.local_of[node.index()] as usize;
            st.accrue_idle(cx, li, node, t);
            if st.batteries[li].is_depleted() || st.crashed[li] {
                return;
            }
            with_agent(st, fz, cx, shared, w, session as usize, node, t, |agent, ctx| {
                agent.on_timer(ctx, kind, key);
            });
        }
        ShardEvent::AppSend { session, seq } => {
            let s = session as usize;
            let traffic = cx.setup.sessions[s].traffic;
            if t >= traffic.stop {
                return;
            }
            let source = traffic.source;
            let li = cx.local_of[source.index()] as usize;
            st.accrue_idle(cx, li, source, t);
            let tag = DataTag { group: traffic.group, origin: source, seq, created_at: t };
            let receivers = st.receiver_counts[s];
            st.traces[s].record_generated(seq, t, receivers);
            if !st.batteries[li].is_depleted() && !st.crashed[li] {
                with_agent(st, fz, cx, shared, w, s, source, t, |agent, ctx| {
                    agent.on_app_data(ctx, tag, traffic.packet_size_bytes);
                });
            }
            let next = t + traffic.interval();
            if next < traffic.stop {
                let k: Key = (RANK_APPSEND, s as u64, seq + 1, 0, 0);
                st.queue.push(next, k, ShardEvent::AppSend { session, seq: seq + 1 });
            }
        }
        ShardEvent::Membership { session, node, change } => {
            st.apply_membership(cx.setup.n_nodes, session as usize, node, change);
        }
        ShardEvent::Fault(kind, plan_idx) => {
            // Worker-side faults are crash-scheduled rejoins plus, in unprobed runs,
            // the seeded node-local faults. Probed runs apply every seeded fault on
            // the coordinator so the observer sees them serially (rejoins are never
            // observed, so they stay queue-borne either way).
            let _ = apply_fault_sharded(st, fz, cx, shared, w, t, kind, plan_idx);
        }
        ShardEvent::HarvestWake { node } => {
            let li = cx.local_of[node.index()] as usize;
            // Book the dark period first: `accrue_idle` advances the accrual horizon
            // but charges nothing while the battery reads depleted.
            st.accrue_idle(cx, li, node, t);
            let restored = st.batteries[li].recharge(cx.harvest.wake_energy_j());
            if restored <= 0.0 || st.batteries[li].is_depleted() {
                return; // nothing banked (or still short): stay dark forever
            }
            st.death_at[li] = None;
            if !st.crashed[li] {
                // Timers died with the node; restarting the agents re-arms them —
                // the same arbitrary-state restart as a fault-layer rejoin.
                for session in 0..cx.setup.n_sessions() {
                    with_agent(st, fz, cx, shared, w, session, node, t, |agent, ctx| {
                        agent.start(ctx)
                    });
                }
            }
        }
        ShardEvent::MacRetry {
            session,
            sender,
            class,
            size_bytes,
            range_m,
            data,
            payload,
            attempt,
            requested_at,
        } => {
            try_send(
                st,
                fz,
                cx,
                shared,
                w,
                session as usize,
                sender,
                t,
                class,
                size_bytes,
                range_m,
                data,
                payload,
                attempt,
                requested_at,
            );
        }
    }
}

/// One worker round: drain incoming lanes, process every event `≤ end`, publish the
/// new minimum.
fn run_window<A: ProtocolAgent>(w: usize, shared: &Shared<A>, cx: &Ctx<'_>, end: SimTime) {
    let mut guard = plock(&shared.shards[w]);
    let st = &mut *guard;
    for src in 0..shared.shards.len() {
        let mut lane = plock(&shared.lanes[w][src]);
        for (at, key, ev) in lane.drain(..) {
            st.queue.push(at, key, ev);
        }
    }
    st.round_lane_min = u64::MAX;
    let fz = pread(&shared.frozen);
    loop {
        match st.queue.peek_time() {
            Some(t) if t <= end => {
                st.peak_depth = st.peak_depth.max(st.queue.len() as u64);
                let (t, _key, ev) = st.queue.pop().expect("peeked event must pop");
                st.events_processed += 1;
                dispatch_event(st, &fz, cx, shared, w, t, ev);
            }
            _ => break,
        }
    }
    let qmin = st.queue.peek_time().map_or(u64::MAX, SimTime::as_nanos);
    let m = qmin.min(st.round_lane_min);
    drop(fz);
    shared.mins[w].store(m, Ordering::Release);
}

/// Worker thread body: march through coordinator-published windows until told to exit.
/// A panicking round sets the shared flag and keeps honouring the barrier protocol so
/// nobody deadlocks; the coordinator re-raises the panic.
fn worker_loop<A: ProtocolAgent>(w: usize, shared: &Shared<A>, cx: &Ctx<'_>) {
    loop {
        shared.barrier.wait();
        let end = shared.window_end.load(Ordering::Acquire);
        if end == DONE {
            break;
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            run_window(w, shared, cx, SimTime::from_nanos(end));
        }));
        if outcome.is_err() {
            shared.panicked.store(true, Ordering::Release);
            shared.mins[w].store(u64::MAX, Ordering::Release);
        }
        shared.barrier.wait();
    }
}

/// Lock every shard, bring continuous drain up to `t`, assemble a [`ProbeContext`]
/// over the frozen topology and hand it to `f`. Session energies and the network
/// total are reduced in ascending global node order so the floating-point sums are
/// partition-independent.
fn observe_sharded<A: ProtocolAgent, F>(
    shared: &Shared<A>,
    cx: &Ctx<'_>,
    t: SimTime,
    cache: &mut Option<(u64, TopologySnapshot)>,
    f: F,
) where
    F: FnOnce(&ProbeContext<'_>),
{
    let n = cx.setup.n_nodes;
    let n_sessions = cx.setup.n_sessions();
    let mut guards: Vec<MutexGuard<'_, ShardState<A>>> = shared.shards.iter().map(plock).collect();
    for (i, g) in guards.iter_mut().enumerate() {
        g.accrue_all(cx, t);
        // Accrual may have scheduled a harvest wake: re-fold the queue minimum into
        // the published window bound, since the worker's value predates the push.
        let qmin = g.queue.peek_time().map_or(u64::MAX, SimTime::as_nanos);
        if qmin < shared.mins[i].load(Ordering::Acquire) {
            shared.mins[i].store(qmin, Ordering::Release);
        }
    }
    let fz = pread(&shared.frozen);
    if !matches!(cache, Some((ts, _)) if *ts == t.as_nanos()) {
        let snap = TopologySnapshot::new(fz.positions.clone(), cx.setup.radio.max_range_m);
        *cache = Some((t.as_nanos(), snap));
    }
    let snapshot = &cache.as_ref().expect("primed above").1;
    let mut parents: Vec<Option<NodeId>> = vec![None; n * n_sessions];
    let mut alive = vec![false; n];
    let mut blacked_out = vec![false; n];
    for (gi, slot) in blacked_out.iter_mut().enumerate() {
        *slot = fz.is_blacked_out(NodeId(gi as u32), t);
    }
    for g in guards.iter() {
        for (li, &gi) in g.owned.iter().enumerate() {
            let gi = gi as usize;
            alive[gi] = !g.crashed[li] && !g.batteries[li].is_depleted();
            for s in 0..n_sessions {
                parents[s * n + gi] = g.agents[g.eidx(s, li)].tree_parent();
            }
        }
    }
    let mut session_energy = vec![0.0f64; n_sessions];
    for (s, acc) in session_energy.iter_mut().enumerate() {
        for gi in 0..n {
            let g = &guards[cx.shard_of[gi] as usize];
            *acc += g.energy_acc[g.eidx(s, cx.local_of[gi] as usize)];
        }
    }
    let mut session_control = vec![0u64; n_sessions];
    let mut session_data = vec![0u64; n_sessions];
    for g in guards.iter() {
        for s in 0..n_sessions {
            session_control[s] += g.traces[s].control_packets();
            session_data[s] += g.traces[s].data_packets_tx();
        }
    }
    let mut energy_total = 0.0f64;
    for gi in 0..n {
        let g = &guards[cx.shard_of[gi] as usize];
        energy_total += g.batteries[cx.local_of[gi] as usize].consumed();
    }
    let sessions: Vec<SessionProbe<'_>> = (0..n_sessions)
        .map(|s| SessionProbe {
            parents: &parents[s * n..(s + 1) * n],
            roles: &guards[0].memberships[s * n..(s + 1) * n],
            control_packets: session_control[s],
            data_packets: session_data[s],
            energy_j: session_energy[s],
        })
        .collect();
    let ctx = ProbeContext {
        now: t,
        snapshot,
        sessions: &sessions,
        alive: &alive,
        blacked_out: &blacked_out,
        control_packets: session_control.iter().sum(),
        data_packets: session_data.iter().sum(),
        energy_j: energy_total,
    };
    f(&ctx);
}

/// Merge the per-shard MAC counters and channel statistics into one [`MacStats`]
/// block, mirroring `NetworkSim::mac_stats`.
fn sharded_mac_stats<A: ProtocolAgent>(
    states: &[ShardState<A>],
    duration: SimDuration,
) -> MacStats {
    let label = states.first().map(|s| s.mac.label()).unwrap_or("mac");
    let mut mac = MacStats::empty(label);
    let mut access_delay = SimDuration::ZERO;
    let mut airtime = SimDuration::ZERO;
    for st in states {
        mac.frames_requested += st.mac_requested;
        mac.frames_sent += st.mac_sent;
        mac.mac_drops += st.mac_drops;
        mac.deferrals += st.mac_deferrals;
        access_delay += st.mac_access_delay;
        airtime += st.mac_airtime;
        mac.receptions += st.channel.receptions();
        mac.collisions += st.channel.collisions();
        let mut per = MacStats::empty(label);
        st.mac.fill_stats(&mut per);
        mac.slot_conflicts += per.slot_conflicts;
        mac.slot_redraws += per.slot_redraws;
        mac.slot_last_redraw_s = match (mac.slot_last_redraw_s, per.slot_last_redraw_s) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
    mac.mean_access_delay_ms = if mac.frames_sent > 0 {
        access_delay.as_millis_f64() / mac.frames_sent as f64
    } else {
        0.0
    };
    mac.airtime_utilization =
        if duration.is_zero() { 0.0 } else { airtime.as_secs_f64() / duration.as_secs_f64() };
    mac.collision_rate =
        if mac.receptions > 0 { mac.collisions as f64 / mac.receptions as f64 } else { 0.0 };
    mac
}

/// Run `sim` on the sharded engine and produce its report. Called by
/// `NetworkSim::run_inner` when the setup selects a positive shard count.
pub(super) fn run_sharded<A: ProtocolAgent>(
    sim: &mut NetworkSim<A>,
    duration: SimDuration,
    mut probe: Option<&mut dyn StabilizationObserver>,
) -> SimReport {
    let wall = std::time::Instant::now();
    let horizon = SimTime::ZERO + duration;
    let horizon_ns = horizon.as_nanos();
    let k = sim.setup.engine.worker_count();
    let n = sim.setup.n_nodes;
    let n_sessions = sim.setup.n_sessions();
    let delta = sim.setup.radio.fixed_delay;
    assert!(
        k <= 1 || !delta.is_zero(),
        "the sharded engine needs a positive radio fixed_delay to bound its windows \
         (with {k} shards and zero delay, cross-shard deliveries would be instantaneous)"
    );
    let delta_minus_1 = delta.as_nanos().saturating_sub(1);
    let cell_size = sim.setup.radio.max_range_m;

    // --- Partition and frozen topology -------------------------------------------
    let init_positions: Vec<Vec2> = sim.medium.positions(SimTime::ZERO).to_vec();
    let (owned, shard_of, local_of) = partition(&init_positions, k);
    let mut fz = Frozen {
        positions: init_positions,
        index: SpatialIndex::default(),
        blackout_until: vec![SimTime::ZERO; n],
        recovering: vec![false; n_sessions],
    };
    fz.index.rebuild(&fz.positions, cell_size);

    // --- Build the shard states ---------------------------------------------------
    let all_agents = std::mem::take(&mut sim.agents);
    let mut per_shard_agents: Vec<Vec<A>> = (0..k).map(|_| Vec::new()).collect();
    for (pos, agent) in all_agents.into_iter().enumerate() {
        // Session-major iteration keeps each shard's vector in `[session][local]`
        // layout: within a session, global ids arrive ascending, exactly the order of
        // the shard's ascending `owned` list.
        let gi = pos % n;
        per_shard_agents[shard_of[gi] as usize].push(agent);
    }
    let probed = probe.is_some();
    let mut states: Vec<ShardState<A>> = Vec::with_capacity(k);
    for (w, ids) in owned.iter().enumerate() {
        let cnt = ids.len();
        let mac = sim.setup.mac.build(n, &sim.setup.seeds);
        states.push(ShardState {
            owned: ids.clone(),
            queue: KeyedQueue::with_capacity(256),
            agents: std::mem::take(&mut per_shard_agents[w]),
            rngs: ids.iter().map(|&gi| sim.rngs[gi as usize].clone()).collect(),
            loss_rngs: ids
                .iter()
                .map(|&gi| sim.setup.seeds.indexed_stream("shard-loss", gi as u64))
                .collect(),
            batteries: ids.iter().map(|&gi| sim.batteries[gi as usize].clone()).collect(),
            crashed: ids.iter().map(|&gi| sim.crashed[gi as usize]).collect(),
            accrued_until: ids.iter().map(|&gi| sim.accrued_until[gi as usize]).collect(),
            death_at: ids.iter().map(|&gi| sim.death_at[gi as usize]).collect(),
            tx_seq: vec![0; cnt],
            mac_seq: vec![0; cnt],
            harvest_seq: vec![0; cnt],
            first_depletion: ids.iter().filter_map(|&gi| sim.death_at[gi as usize]).min(),
            memberships: sim.memberships.clone(),
            receiver_counts: sim.receiver_counts.clone(),
            joins: vec![0; n_sessions],
            leaves: vec![0; n_sessions],
            traces: (0..n_sessions)
                .map(|_| Trace::with_config(sim.setup.unavailability_window, &sim.setup.metrics))
                .collect(),
            energy_acc: vec![0.0; n_sessions * cnt],
            overhear_acc: vec![0.0; n_sessions * cnt],
            channel: Channel::new(n, n_sessions),
            mac,
            duty: sim.duty.clone(),
            mac_requested: 0,
            mac_sent: 0,
            mac_drops: 0,
            mac_deferrals: 0,
            mac_access_delay: SimDuration::ZERO,
            mac_airtime: SimDuration::ZERO,
            timers: HashMap::new(),
            scratch_actions: Vec::with_capacity(16),
            scratch_receivers: Vec::with_capacity(16),
            silence_steady: vec![(0, 0); n_sessions],
            silence_recovery: vec![(0, 0); n_sessions],
            round_lane_min: u64::MAX,
            events_processed: 0,
            peak_depth: 0,
        });
    }

    // --- Seed the event population ------------------------------------------------
    // Blackouts darken *links* (frozen state shared by all shards), so they always
    // apply on the coordinator at a synchronization point. Probed runs additionally
    // route *every* seeded fault through the coordinator: the sequential engine
    // notifies the observer after each applied fault with the state as of that fault,
    // so same-instant bursts must apply-and-observe serially, never batched. Unprobed
    // runs keep node-local faults on their owner's shard queue.
    let mut coord_faults: Vec<(u64, u64, FaultKind)> = Vec::new();
    for (plan_idx, fe) in sim.setup.faults.events().to_vec().into_iter().enumerate() {
        if fe.at > horizon {
            continue;
        }
        match fe.kind {
            FaultKind::Blackout { .. } => {
                coord_faults.push((fe.at.as_nanos(), plan_idx as u64, fe.kind));
            }
            kind if probed => {
                coord_faults.push((fe.at.as_nanos(), plan_idx as u64, kind));
            }
            kind => {
                let w = shard_of[kind.node().index()] as usize;
                let key: Key = (RANK_FAULT, plan_idx as u64, 0, 0, 0);
                states[w].queue.push(fe.at, key, ShardEvent::Fault(kind, plan_idx as u64));
            }
        }
    }
    coord_faults.sort_by_key(|&(ns, pi, _)| (ns, pi));
    // Every shard replays every churn event against its own full membership replica:
    // the tables stay in lockstep without any cross-shard coordination.
    let mut flat = 0u64;
    for (s, sess) in sim.setup.sessions.iter().enumerate() {
        for ev in &sess.churn {
            if ev.at <= horizon {
                for st in &mut states {
                    st.queue.push(
                        ev.at,
                        (RANK_MEMBERSHIP, flat, 0, 0, 0),
                        ShardEvent::Membership {
                            session: s as u16,
                            node: ev.node,
                            change: ev.change,
                        },
                    );
                }
            }
            flat += 1;
        }
    }
    for (s, sess) in sim.setup.sessions.iter().enumerate() {
        if sess.traffic.start < horizon {
            let w = shard_of[sess.traffic.source.index()] as usize;
            states[w].queue.push(
                sess.traffic.start,
                (RANK_APPSEND, s as u64, 0, 0, 0),
                ShardEvent::AppSend { session: s as u16, seq: 0 },
            );
        }
    }

    let shared = Shared {
        shards: states.into_iter().map(Mutex::new).collect(),
        lanes: (0..k).map(|_| (0..k).map(|_| Mutex::new(Vec::new())).collect()).collect(),
        frozen: RwLock::new(fz),
        mins: (0..k).map(|_| AtomicU64::new(u64::MAX)).collect(),
        window_end: AtomicU64::new(0),
        barrier: Barrier::new(k + 1),
        panicked: AtomicBool::new(false),
    };
    let cx =
        Ctx { setup: &sim.setup, harvest: &sim.harvest, shard_of: &shard_of, local_of: &local_of };

    // --- Round zero: start every agent at time zero (coordinator-side) -------------
    {
        let fzg = pread(&shared.frozen);
        for w in 0..k {
            let mut guard = plock(&shared.shards[w]);
            let st = &mut *guard;
            for session in 0..n_sessions {
                for li in 0..st.owned.len() {
                    let node = NodeId(st.owned[li]);
                    with_agent(st, &fzg, &cx, &shared, w, session, node, SimTime::ZERO, |a, c| {
                        a.start(c)
                    });
                }
            }
        }
        for w in 0..k {
            let mut guard = plock(&shared.shards[w]);
            let st = &mut *guard;
            let qmin = st.queue.peek_time().map_or(u64::MAX, SimTime::as_nanos);
            shared.mins[w].store(qmin.min(st.round_lane_min), Ordering::Release);
            st.round_lane_min = u64::MAX;
        }
    }

    // --- Coordinator state ----------------------------------------------------------
    let sync_window_ns = sim.setup.engine.sync_window.as_nanos().max(1);
    let mut next_refresh = if sync_window_ns <= horizon_ns { Some(sync_window_ns) } else { None };
    let probe_epoch_ns = probe.as_ref().map(|o| {
        let e = o.probe_epoch();
        if e.is_zero() {
            SimDuration::from_secs(1).as_nanos()
        } else {
            e.as_nanos()
        }
    });
    let mut next_probe = probe_epoch_ns.filter(|&e| e <= horizon_ns);
    let lifetime_tracking =
        sim.setup.battery_capacity_j.is_finite() || sim.setup.lifecycle.has_continuous_drain();
    let sample_epoch_ns = {
        let e = sim.setup.lifecycle.sample_epoch;
        if e.is_zero() {
            SimDuration::from_secs(1).as_nanos()
        } else {
            e.as_nanos()
        }
    };
    let mut next_sample = if lifetime_tracking && sample_epoch_ns <= horizon_ns {
        Some(sample_epoch_ns)
    } else {
        None
    };
    let mut fault_ptr = 0usize;
    let curve_budget = if sim.setup.metrics.is_streaming() {
        sim.setup.metrics.streaming.curve_budget as usize
    } else {
        usize::MAX
    };
    let mut alive_curve: CurveRing<u64> = CurveRing::with_budget(curve_budget);
    let mut delivery_curve: CurveRing<f64> = CurveRing::with_budget(curve_budget);
    let mut snapshot_cache: Option<(u64, TopologySnapshot)> = None;
    let mut sync_rounds: u64 = 0;

    // --- Main loop: workers march through windows, coordinator owns special instants
    let medium = &mut sim.medium;
    std::thread::scope(|scope| {
        for w in 0..k {
            let sh = &shared;
            let cxr = &cx;
            scope.spawn(move || worker_loop(w, sh, cxr));
        }
        loop {
            if shared.panicked.load(Ordering::Acquire) {
                break;
            }
            let m = shared.mins.iter().map(|a| a.load(Ordering::Acquire)).min().unwrap_or(u64::MAX);
            let next_fault = coord_faults.get(fault_ptr).map(|f| f.0);
            let mut next_special: Option<u64> = None;
            for cand in [next_refresh, next_probe, next_sample] {
                next_special = match (next_special, cand) {
                    (Some(a), Some(c)) => Some(a.min(c)),
                    (a, c) => a.or(c),
                };
            }
            // Coordinator faults mirror the sequential queue's fault-first rank: they
            // take effect once everything *strictly earlier* has drained — BEFORE any
            // same-instant packet/timer event, which the window bound below never
            // lets a worker touch first. In probed runs the observer is notified
            // after each applied fault with the fleet exactly as that fault left it,
            // so a same-instant burst observes per-fault — the sequential engine's
            // ordering, not a batched approximation of it.
            if let Some(ft) = next_fault {
                if m >= ft && next_special.is_none_or(|sp| ft <= sp) {
                    let t = SimTime::from_nanos(ft);
                    while coord_faults.get(fault_ptr).is_some_and(|f| f.0 == ft) {
                        let (_, plan_idx, kind) = coord_faults[fault_ptr];
                        fault_ptr += 1;
                        let applied = match kind {
                            FaultKind::Blackout { node, duration } => {
                                let applied = {
                                    let wsh = shard_of[node.index()] as usize;
                                    let li = local_of[node.index()] as usize;
                                    let mut st = plock(&shared.shards[wsh]);
                                    st.accrue_idle(&cx, li, node, t);
                                    // Accrual may have scheduled a harvest wake:
                                    // re-fold the queue minimum the worker published
                                    // before the push.
                                    let qmin =
                                        st.queue.peek_time().map_or(u64::MAX, SimTime::as_nanos);
                                    if qmin < shared.mins[wsh].load(Ordering::Acquire) {
                                        shared.mins[wsh].store(qmin, Ordering::Release);
                                    }
                                    !st.crashed[li] && !st.batteries[li].is_depleted()
                                };
                                let mut fzw =
                                    shared.frozen.write().unwrap_or_else(PoisonError::into_inner);
                                let until = t.checked_add(duration).unwrap_or(SimTime::MAX);
                                let slot = &mut fzw.blackout_until[node.index()];
                                *slot = (*slot).max(until);
                                applied
                            }
                            kind => {
                                // Probed runs only: node-local faults apply serially
                                // here so each notification sees exactly this fault's
                                // effects. Crash-scheduled rejoins still queue on the
                                // owner's shard (they are never observed).
                                let wsh = shard_of[kind.node().index()] as usize;
                                let fzg = pread(&shared.frozen);
                                let mut st = plock(&shared.shards[wsh]);
                                let applied = apply_fault_sharded(
                                    &mut st, &fzg, &cx, &shared, wsh, t, kind, plan_idx,
                                );
                                // The fault may have queued rejoins, timers, packets
                                // or harvest wakes: re-fold this shard's minimum.
                                let m2 = st
                                    .queue
                                    .peek_time()
                                    .map_or(u64::MAX, SimTime::as_nanos)
                                    .min(st.round_lane_min);
                                if m2 < shared.mins[wsh].load(Ordering::Acquire) {
                                    shared.mins[wsh].store(m2, Ordering::Release);
                                }
                                applied
                            }
                        };
                        if applied && !matches!(kind, FaultKind::Rejoin { .. }) {
                            if let Some(observer) = probe.as_deref_mut() {
                                observe_sharded(&shared, &cx, t, &mut snapshot_cache, |ctx| {
                                    observer.on_fault(&kind, ctx)
                                });
                                if cx.setup.silence.enabled {
                                    let mut fzw = shared
                                        .frozen
                                        .write()
                                        .unwrap_or_else(PoisonError::into_inner);
                                    for s in 0..n_sessions {
                                        fzw.recovering[s] = observer.session_recovering(s);
                                    }
                                }
                            }
                        }
                    }
                    continue;
                }
            }
            if let Some(sp) = next_special {
                // All events ≤ sp are drained (m > sp covers lanes too, via the
                // published round minima): the special instant is now observable.
                if m > sp {
                    let t = SimTime::from_nanos(sp);
                    if next_refresh == Some(sp) {
                        let positions = medium.positions(t);
                        let mut fzw = shared.frozen.write().unwrap_or_else(PoisonError::into_inner);
                        let Frozen { positions: fp, index, .. } = &mut *fzw;
                        fp.clear();
                        fp.extend_from_slice(positions);
                        index.rebuild(fp, cell_size);
                        drop(fzw);
                        let nr = sp.saturating_add(sync_window_ns);
                        next_refresh = (nr <= horizon_ns).then_some(nr);
                    }
                    if next_probe == Some(sp) {
                        let observer =
                            probe.as_deref_mut().expect("probe epochs exist only when probed");
                        observe_sharded(&shared, &cx, t, &mut snapshot_cache, |ctx| {
                            observer.on_epoch(ctx)
                        });
                        if cx.setup.silence.enabled {
                            let mut fzw =
                                shared.frozen.write().unwrap_or_else(PoisonError::into_inner);
                            for s in 0..n_sessions {
                                fzw.recovering[s] = observer.session_recovering(s);
                            }
                        }
                        let np =
                            sp.saturating_add(probe_epoch_ns.expect("epoch set with the probe"));
                        next_probe = (np <= horizon_ns).then_some(np);
                    }
                    if next_sample == Some(sp) {
                        let mut alive = 0u64;
                        let mut delivered = 0u64;
                        let mut expected = 0u64;
                        for (i, sm) in shared.shards.iter().enumerate() {
                            let mut st = plock(sm);
                            st.accrue_all(&cx, t);
                            // Accrual may have scheduled a harvest wake: re-fold the
                            // queue minimum the worker published before the push.
                            let qmin = st.queue.peek_time().map_or(u64::MAX, SimTime::as_nanos);
                            if qmin < shared.mins[i].load(Ordering::Acquire) {
                                shared.mins[i].store(qmin, Ordering::Release);
                            }
                            alive +=
                                st.batteries.iter().filter(|b| !b.is_depleted()).count() as u64;
                            delivered += st.traces.iter().map(Trace::delivered_count).sum::<u64>();
                            expected +=
                                st.traces.iter().map(Trace::expected_deliveries).sum::<u64>();
                        }
                        alive_curve.push(alive);
                        delivery_curve.push(if expected > 0 {
                            delivered as f64 / expected as f64
                        } else {
                            0.0
                        });
                        let ns2 = sp.saturating_add(sample_epoch_ns);
                        next_sample = (ns2 <= horizon_ns).then_some(ns2);
                    }
                    continue;
                }
            }
            if m > horizon_ns {
                break;
            }
            let mut b = m.saturating_add(delta_minus_1);
            if let Some(sp) = next_special {
                b = b.min(sp);
            }
            // Stop the window one tick short of the next coordinator fault so no
            // worker can process an event *at* the fault instant before it lands.
            if let Some(ft) = next_fault {
                b = b.min(ft.saturating_sub(1));
            }
            b = b.min(horizon_ns);
            shared.window_end.store(b, Ordering::Release);
            sync_rounds += 1;
            shared.barrier.wait();
            shared.barrier.wait();
        }
        shared.window_end.store(DONE, Ordering::Release);
        shared.barrier.wait();
    });
    if shared.panicked.load(Ordering::Acquire) {
        panic!("sharded engine: a worker thread panicked");
    }

    // --- Tear down: accrue to the horizon, restore state, assemble the report ------
    for sm in &shared.shards {
        plock(sm).accrue_all(&cx, horizon);
    }
    let Shared { shards, frozen, .. } = shared;
    let mut states: Vec<ShardState<A>> = shards
        .into_iter()
        .map(|m| m.into_inner().unwrap_or_else(PoisonError::into_inner))
        .collect();
    let fz = frozen.into_inner().unwrap_or_else(PoisonError::into_inner);
    for (i, &until) in fz.blackout_until.iter().enumerate() {
        if until > SimTime::ZERO {
            sim.medium.set_blackout(NodeId(i as u32), until);
        }
    }
    sim.memberships = std::mem::take(&mut states[0].memberships);
    sim.receiver_counts = std::mem::take(&mut states[0].receiver_counts);
    sim.joins = std::mem::take(&mut states[0].joins);
    sim.leaves = std::mem::take(&mut states[0].leaves);
    let mut slots: Vec<Option<A>> = (0..n * n_sessions).map(|_| None).collect();
    for st in &mut states {
        let cnt = st.owned.len();
        for (ai, agent) in st.agents.drain(..).enumerate() {
            let (s, li) = (ai / cnt, ai % cnt);
            slots[s * n + st.owned[li] as usize] = Some(agent);
        }
        for (li, &gi) in st.owned.iter().enumerate() {
            let gi = gi as usize;
            sim.batteries[gi] = st.batteries[li].clone();
            sim.crashed[gi] = st.crashed[li];
            sim.rngs[gi] = st.rngs[li].clone();
            sim.accrued_until[gi] = st.accrued_until[li];
            sim.death_at[gi] = st.death_at[li];
        }
    }
    sim.agents = slots.into_iter().map(|a| a.expect("every agent restored")).collect();
    let mut traces: Vec<Trace> = (0..n_sessions)
        .map(|_| Trace::with_config(sim.setup.unavailability_window, &sim.setup.metrics))
        .collect();
    for st in &states {
        for (s, tr) in st.traces.iter().enumerate() {
            traces[s].absorb(tr);
        }
    }
    sim.traces = traces;
    // The earliest depletion is min-folded per shard as deaths land: harvest wakes
    // may have cleared `death_at` entries again, so the surviving entries alone
    // would under-report `first_death_s`.
    sim.first_depletion =
        states.iter().filter_map(|s| s.first_depletion).chain(sim.first_depletion).min();
    let mut session_energy = vec![0.0f64; n_sessions];
    let mut session_overhear = vec![0.0f64; n_sessions];
    for s in 0..n_sessions {
        for gi in 0..n {
            let st = &states[shard_of[gi] as usize];
            let ei = st.eidx(s, local_of[gi] as usize);
            session_energy[s] += st.energy_acc[ei];
            session_overhear[s] += st.overhear_acc[ei];
        }
    }
    sim.session_energy_j = session_energy;
    sim.session_overhear_j = session_overhear;
    sim.mac_requested = states.iter().map(|s| s.mac_requested).sum();
    sim.mac_sent = states.iter().map(|s| s.mac_sent).sum();
    sim.mac_drops = states.iter().map(|s| s.mac_drops).sum();
    sim.mac_deferrals = states.iter().map(|s| s.mac_deferrals).sum();
    sim.mac_access_delay = SimDuration::ZERO;
    sim.mac_airtime = SimDuration::ZERO;
    for st in &states {
        sim.mac_access_delay += st.mac_access_delay;
        sim.mac_airtime += st.mac_airtime;
    }
    sim.alive_curve = alive_curve;
    sim.delivery_curve = delivery_curve;

    // The report is assembled here (not via `NetworkSim::report`) because the merged
    // collision counts live in the per-shard channels, whose counters are private to
    // the channel module.
    let total_energy: f64 = sim.batteries.iter().map(Battery::consumed).sum();
    let overhear: f64 = sim.batteries.iter().map(Battery::overheard).sum();
    let label = sim.agents.first().map(|a| a.label()).unwrap_or("protocol");
    let pairs: Vec<(&Trace, u32)> = sim
        .traces
        .iter()
        .zip(&sim.setup.sessions)
        .map(|(trace, session)| (trace, session.traffic.packet_size_bytes))
        .collect();
    let collisions_total: u64 = states.iter().map(|s| s.channel.collisions()).sum();
    let mut report = Trace::finish_aggregate(
        &pairs,
        label,
        duration,
        total_energy,
        overhear,
        collisions_total,
        sim.setup.availability_threshold,
    );
    if sim.setup.has_group_dynamics() {
        let groups = sim
            .setup
            .sessions
            .iter()
            .enumerate()
            .map(|(s, session)| {
                sim.traces[s].group_stats(&GroupAccounting {
                    group: session.traffic.group.0,
                    source: session.traffic.source.0,
                    members_initial: session.initial_receivers(),
                    members_final: sim.receiver_counts[s],
                    joins: sim.joins[s],
                    leaves: sim.leaves[s],
                    energy_j: sim.session_energy_j[s],
                    overhear_energy_j: sim.session_overhear_j[s],
                    collisions: states.iter().map(|st| st.channel.collisions_for(s)).sum(),
                    availability_threshold: sim.setup.availability_threshold,
                })
            })
            .collect();
        report.groups = Some(groups);
    }
    report.lifetime = sim.lifetime_stats();
    for s in 0..n_sessions {
        let mut steady = (0u64, 0u64);
        let mut recovery = (0u64, 0u64);
        for st in &states {
            steady.0 += st.silence_steady[s].0;
            steady.1 += st.silence_steady[s].1;
            recovery.0 += st.silence_recovery[s].0;
            recovery.1 += st.silence_recovery[s].1;
        }
        sim.silence_steady[s] = steady;
        sim.silence_recovery[s] = recovery;
    }
    report.silence = sim.silence_stats();
    if sim.setup.mac.reports_stats() {
        report.mac = Some(sharded_mac_stats(&states, duration));
    }
    if sim.setup.engine.stats {
        let counts: Vec<u64> = states.iter().map(|s| s.events_processed).collect();
        let peak = states.iter().map(|s| s.peak_depth).max().unwrap_or(0);
        report.engine = Some(EngineStats::from_counts(
            k as u32,
            counts,
            peak,
            sync_rounds,
            wall.elapsed().as_secs_f64(),
        ));
    }
    if let Some(observer) = probe {
        report.convergence = observer.finish(horizon);
        if let Some(groups) = report.groups.as_mut() {
            let per_session = observer.session_stats();
            for (group, stats) in groups.iter_mut().zip(per_session) {
                group.convergence = Some(stats);
            }
        }
    }
    report
}
