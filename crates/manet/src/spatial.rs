//! Uniform-grid spatial index over node positions.
//!
//! Broadcast propagation and snapshot neighbour queries are range queries: "which nodes
//! lie within `r` metres of this point?". The brute-force answer scans all `n` nodes per
//! query; [`SpatialIndex`] buckets nodes into a uniform grid whose cell side is the
//! maximum radio range, so a query only inspects the O(1) cells overlapping the query
//! disc and touches O(k) candidates.
//!
//! Exactness: candidates from the overlapping cells are filtered with the same
//! `distance² ≤ r²` predicate a brute-force scan uses, and results are returned in
//! ascending [`NodeId`] order, so callers that consume randomness per neighbour (the
//! channel loss draws in the runtime) see *byte-identical* sequences regardless of which
//! query path produced the set. The property tests at the bottom of this file assert the
//! set equality against the brute-force scan across random and boundary-straddling
//! placements.

use crate::geometry::Vec2;
use crate::node::NodeId;

/// Hard cap on the number of grid cells: pathological inputs (a huge position spread with
/// a tiny cell size) coarsen the grid instead of exhausting memory. Queries stay exact —
/// coarser cells only mean more candidates per cell. The effective cap also scales with
/// the node count (see [`SpatialIndex::rebuild`]) so the per-rebuild CSR work stays O(n)
/// for sparse wide-area inputs.
const MAX_CELLS: usize = 1 << 18;

/// A uniform bucket grid over a fixed set of positions.
///
/// The index stores node ids only; positions are passed back in at query time, so the
/// caller (normally [`crate::medium::RadioMedium`]) remains the single owner of the
/// position buffer. Rebuilds reuse the internal allocations.
#[derive(Clone, Debug, Default)]
pub struct SpatialIndex {
    origin: Vec2,
    cell_w: f64,
    cell_h: f64,
    cols: usize,
    rows: usize,
    /// CSR layout: `starts[c]..starts[c + 1]` indexes `items` for cell `c` (row-major).
    starts: Vec<u32>,
    /// Node ids grouped by cell, ascending within each cell.
    items: Vec<u32>,
    /// Scratch cursor reused across rebuilds.
    cursor: Vec<u32>,
}

impl SpatialIndex {
    /// Build an index over `positions` with the given nominal cell size (normally the
    /// maximum radio range, so any clamped transmission disc overlaps at most 3×3 cells).
    pub fn build(positions: &[Vec2], cell_size: f64) -> Self {
        let mut index = SpatialIndex::default();
        index.rebuild(positions, cell_size);
        index
    }

    /// Rebuild in place over a new position buffer, reusing allocations.
    pub fn rebuild(&mut self, positions: &[Vec2], cell_size: f64) {
        let n = positions.len();
        if n == 0 {
            self.cols = 0;
            self.rows = 0;
            self.starts.clear();
            self.items.clear();
            return;
        }
        let cell = if cell_size.is_finite() && cell_size > 0.0 { cell_size } else { f64::MAX };
        let (mut min, mut max) = (positions[0], positions[0]);
        for p in &positions[1..] {
            min = Vec2::new(min.x.min(p.x), min.y.min(p.y));
            max = Vec2::new(max.x.max(p.x), max.y.max(p.y));
        }
        let span_w = (max.x - min.x).max(0.0);
        let span_h = (max.y - min.y).max(0.0);
        // Never allocate far more cells than there are nodes: rebuilds zero and
        // prefix-sum the whole `starts` vector, so the cell count must stay O(n).
        let cap = MAX_CELLS.min(4 * n + 64);
        let mut cols = ((span_w / cell).ceil() as usize).clamp(1, cap);
        let mut rows = ((span_h / cell).ceil() as usize).clamp(1, cap);
        while cols * rows > cap {
            if cols >= rows {
                cols = cols.div_ceil(2);
            } else {
                rows = rows.div_ceil(2);
            }
        }
        self.origin = min;
        self.cols = cols;
        self.rows = rows;
        // Effective cell extents: dividing the observed span keeps the point→cell map
        // total even when the cap coarsened the grid. Degenerate spans fall back to the
        // nominal cell so the map stays finite.
        self.cell_w = if span_w > 0.0 { span_w / cols as f64 } else { cell.min(1.0) };
        self.cell_h = if span_h > 0.0 { span_h / rows as f64 } else { cell.min(1.0) };

        let n_cells = cols * rows;
        self.starts.clear();
        self.starts.resize(n_cells + 1, 0);
        for p in positions {
            let c = self.cell_of(p);
            self.starts[c + 1] += 1;
        }
        for c in 0..n_cells {
            self.starts[c + 1] += self.starts[c];
        }
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.starts[..n_cells]);
        self.items.clear();
        self.items.resize(n, 0);
        // Placing ids in ascending order keeps each cell's slice id-sorted (stable
        // counting sort).
        for (i, p) in positions.iter().enumerate() {
            let c = self.cell_of(p);
            self.items[self.cursor[c] as usize] = i as u32;
            self.cursor[c] += 1;
        }
    }

    /// Row-major cell index of a position (clamped onto the grid).
    fn cell_of(&self, p: &Vec2) -> usize {
        let cx = (((p.x - self.origin.x) / self.cell_w) as usize).min(self.cols - 1);
        let cy = (((p.y - self.origin.y) / self.cell_h) as usize).min(self.rows - 1);
        cy * self.cols + cx
    }

    /// Number of grid cells (for tests and diagnostics).
    pub fn cell_count(&self) -> usize {
        self.cols * self.rows
    }

    /// Collect every node within `radius` of `center` (including a node located exactly
    /// at `center`, if any) into `out`, ascending by node id.
    ///
    /// `positions` must be the buffer the index was built over.
    pub fn query_disc(&self, center: Vec2, radius: f64, positions: &[Vec2], out: &mut Vec<NodeId>) {
        out.clear();
        if self.cols == 0 || radius < 0.0 {
            return;
        }
        debug_assert_eq!(positions.len(), self.items.len(), "index built over other positions");
        let r2 = radius * radius;
        let lo_x = ((center.x - radius - self.origin.x) / self.cell_w).floor();
        let hi_x = ((center.x + radius - self.origin.x) / self.cell_w).floor();
        let lo_y = ((center.y - radius - self.origin.y) / self.cell_h).floor();
        let hi_y = ((center.y + radius - self.origin.y) / self.cell_h).floor();
        let (cx0, cx1) = clamp_cell_range(lo_x, hi_x, self.cols);
        let (cy0, cy1) = clamp_cell_range(lo_y, hi_y, self.rows);
        for cy in cy0..=cy1 {
            for cx in cx0..=cx1 {
                let c = cy * self.cols + cx;
                let (s, e) = (self.starts[c] as usize, self.starts[c + 1] as usize);
                for &id in &self.items[s..e] {
                    if positions[id as usize].distance_sq(&center) <= r2 {
                        out.push(NodeId(id));
                    }
                }
            }
        }
        // Cells are visited row-major, so ids are sorted within but not across cells.
        out.sort_unstable();
    }
}

/// Clamp a floating cell span onto `[0, n)`; an empty range means the disc misses the
/// grid entirely. Returns an empty-by-construction `(1, 0)` range in that case.
///
/// Points on the grid's max boundary have cell ratio exactly `n` but are stored in cell
/// `n - 1` (the point→cell map clamps), so a span starting at exactly `n` must still
/// inspect the last cell — only `lo > n` is truly off-grid.
fn clamp_cell_range(lo: f64, hi: f64, n: usize) -> (usize, usize) {
    if hi < 0.0 || lo > n as f64 || hi < lo {
        return (1, 0);
    }
    let lo = if lo <= 0.0 { 0 } else { (lo as usize).min(n - 1) };
    let hi = if hi >= (n - 1) as f64 { n - 1 } else { hi as usize };
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The reference implementation the index must match exactly.
    fn brute_force(center: Vec2, radius: f64, positions: &[Vec2]) -> Vec<NodeId> {
        let r2 = radius * radius;
        (0..positions.len() as u32)
            .map(NodeId)
            .filter(|id| positions[id.index()].distance_sq(&center) <= r2)
            .collect()
    }

    fn assert_matches_brute_force(positions: &[Vec2], cell: f64, center: Vec2, radius: f64) {
        let index = SpatialIndex::build(positions, cell);
        let mut got = Vec::new();
        index.query_disc(center, radius, positions, &mut got);
        let want = brute_force(center, radius, positions);
        assert_eq!(
            got,
            want,
            "disc({center:?}, r={radius}) over {} nodes, cell={cell}",
            positions.len()
        );
    }

    #[test]
    fn empty_and_singleton() {
        let index = SpatialIndex::build(&[], 100.0);
        let mut out = vec![NodeId(9)];
        index.query_disc(Vec2::ZERO, 50.0, &[], &mut out);
        assert!(out.is_empty());

        let pos = [Vec2::new(10.0, 10.0)];
        let index = SpatialIndex::build(&pos, 100.0);
        index.query_disc(Vec2::ZERO, 50.0, &pos, &mut out);
        assert_eq!(out, vec![NodeId(0)]);
        index.query_disc(Vec2::ZERO, 5.0, &pos, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn results_are_sorted_and_exact_on_a_grid_layout() {
        // 10×10 lattice with 100 m spacing, cell size 250 m: queries straddle cells.
        let positions: Vec<Vec2> =
            (0..100).map(|i| Vec2::new((i % 10) as f64 * 100.0, (i / 10) as f64 * 100.0)).collect();
        for r in [0.0, 99.9, 100.0, 141.5, 250.0, 2_000.0] {
            assert_matches_brute_force(&positions, 250.0, Vec2::new(450.0, 450.0), r);
        }
        // Query centred far off the grid.
        assert_matches_brute_force(&positions, 250.0, Vec2::new(-500.0, 2_000.0), 600.0);
        assert_matches_brute_force(&positions, 250.0, Vec2::new(5_000.0, 5_000.0), 10.0);
    }

    #[test]
    fn degenerate_cell_sizes_fall_back_to_one_cell() {
        let positions: Vec<Vec2> = (0..20).map(|i| Vec2::new(i as f64 * 10.0, 0.0)).collect();
        for cell in [0.0, -5.0, f64::NAN, f64::INFINITY] {
            let index = SpatialIndex::build(&positions, cell);
            assert_eq!(index.cell_count(), 1, "cell={cell}");
            let mut out = Vec::new();
            index.query_disc(Vec2::new(45.0, 0.0), 25.0, &positions, &mut out);
            assert_eq!(out, brute_force(Vec2::new(45.0, 0.0), 25.0, &positions));
        }
    }

    #[test]
    fn coincident_points_and_zero_radius() {
        let positions = vec![Vec2::new(5.0, 5.0); 4];
        assert_matches_brute_force(&positions, 10.0, Vec2::new(5.0, 5.0), 0.0);
        let index = SpatialIndex::build(&positions, 10.0);
        let mut out = Vec::new();
        index.query_disc(Vec2::new(5.0, 5.0), 0.0, &positions, &mut out);
        assert_eq!(out, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn all_nodes_in_one_cell_matches_brute_force() {
        // 30 nodes clustered inside a fraction of a single 250 m cell: the index
        // degenerates to one populated bucket and must still answer every disc exactly.
        let mut rng = StdRng::seed_from_u64(17);
        let positions: Vec<Vec2> = (0..30)
            .map(|_| Vec2::new(rng.gen_range(10.0..60.0), rng.gen_range(10.0..60.0)))
            .collect();
        let index = SpatialIndex::build(&positions, 250.0);
        assert_eq!(index.cell_count(), 1, "a 50 m cloud fits one 250 m cell");
        for r in [0.0, 5.0, 25.0, 70.0] {
            assert_matches_brute_force(&positions, 250.0, positions[7], r);
            // A centre outside the populated cell must see in, too.
            assert_matches_brute_force(&positions, 250.0, Vec2::new(300.0, 300.0), r + 260.0);
        }
    }

    #[test]
    fn positions_exactly_on_cell_boundaries_are_never_lost() {
        // Deterministic companion to the boundary proptest: every point sits exactly on
        // a multiple of the cell size (the worst case for the point→cell floor), and a
        // radius equal to the lattice pitch must pick up the full cross every time.
        let cell = 100.0;
        let positions: Vec<Vec2> =
            (0..25).map(|i| Vec2::new((i % 5) as f64 * cell, (i / 5) as f64 * cell)).collect();
        for centre in [Vec2::new(200.0, 200.0), Vec2::new(0.0, 0.0), Vec2::new(400.0, 200.0)] {
            for r in [0.0, cell, cell * (2.0f64).sqrt(), 2.0 * cell] {
                assert_matches_brute_force(&positions, cell, centre, r);
            }
        }
        let index = SpatialIndex::build(&positions, cell);
        let mut out = Vec::new();
        index.query_disc(Vec2::new(200.0, 200.0), cell, &positions, &mut out);
        assert_eq!(out.len(), 5, "centre + the 4-neighbour cross, nothing dropped");
    }

    #[test]
    fn capped_cell_count_still_matches_brute_force_for_dense_queries() {
        // Enough spread that the uncapped grid would want thousands of cells per node;
        // the cap must coarsen the grid without losing a single candidate.
        let mut rng = StdRng::seed_from_u64(23);
        let positions: Vec<Vec2> = (0..50)
            .map(|_| Vec2::new(rng.gen_range(0.0..1.0e6), rng.gen_range(0.0..1.0e6)))
            .collect();
        let index = SpatialIndex::build(&positions, 10.0);
        assert!(index.cell_count() <= 4 * positions.len() + 64, "cap must engage");
        for i in [0usize, 13, 49] {
            for r in [0.0, 1_000.0, 250_000.0, 2.0e6] {
                assert_matches_brute_force(&positions, 10.0, positions[i], r);
            }
        }
    }

    #[test]
    fn huge_spread_is_capped_but_exact() {
        // A tiny cell over a vast spread would want ~10^12 cells; the cap coarsens it
        // down to O(n) cells so rebuild work tracks the node count, not the area.
        let positions =
            vec![Vec2::ZERO, Vec2::new(1.0e6, 1.0e6), Vec2::new(5.0e5, 5.0e5), Vec2::new(3.0, 4.0)];
        let index = SpatialIndex::build(&positions, 1.0);
        assert!(index.cell_count() <= 4 * positions.len() + 64);
        let mut out = Vec::new();
        index.query_disc(Vec2::ZERO, 6.0, &positions, &mut out);
        assert_eq!(out, vec![NodeId(0), NodeId(3)]);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        /// Random clouds: the index must return exactly the brute-force neighbour set for
        /// arbitrary centres, radii and cell sizes.
        #[test]
        fn random_clouds_match_brute_force(
            seed in 0u64..1_000,
            n in 1usize..80,
            cell in 10.0f64..400.0,
            radius in 0.0f64..900.0,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let positions: Vec<Vec2> = (0..n)
                .map(|_| Vec2::new(rng.gen_range(0.0..750.0), rng.gen_range(0.0..750.0)))
                .collect();
            let center =
                Vec2::new(rng.gen_range(-200.0..950.0), rng.gen_range(-200.0..950.0));
            assert_matches_brute_force(&positions, cell, center, radius);
        }

        /// Positions snapped onto cell corners and edges: the adversarial case for an
        /// off-by-one in the point→cell map or the query's cell-range arithmetic.
        #[test]
        fn boundary_straddling_points_match_brute_force(
            seed in 0u64..1_000,
            n in 1usize..60,
            radius in 0.0f64..600.0,
        ) {
            let cell = 250.0;
            let mut rng = StdRng::seed_from_u64(seed);
            let positions: Vec<Vec2> = (0..n)
                .map(|_| {
                    // Multiples of half a cell land exactly on cell boundaries.
                    let snap = |v: f64| (v / (cell / 2.0)).round() * (cell / 2.0);
                    Vec2::new(snap(rng.gen_range(0.0..1_000.0)), snap(rng.gen_range(0.0..1_000.0)))
                })
                .collect();
            let center = positions[0];
            assert_matches_brute_force(&positions, cell, center, radius);
            // Also query from exactly one cell-width away.
            assert_matches_brute_force(
                &positions,
                cell,
                Vec2::new(center.x + cell, center.y),
                radius,
            );
        }
    }
}
