//! Multicast sessions: per-group membership tables and seeded membership churn.
//!
//! The paper's evaluation runs exactly one multicast group with a static membership.
//! Real MANET multicast workloads — and the paper's own join-overhead accounting — are
//! about group *dynamics*: several concurrent sessions share the same radio medium, and
//! nodes join and leave groups while data flows. A [`SessionSetup`] describes one such
//! session (its CBR flow, its initial per-node roles, and a pre-materialised schedule of
//! [`MembershipEvent`]s); [`crate::runtime::SimSetup`] carries one per concurrent group.
//!
//! Churn schedules are data, not randomness: the scenario layer draws them from its seed
//! sequence up front, so a `(seed, scenario)` pair fully determines every join and leave
//! — multi-session runs are exactly as reproducible as single-session ones.

use crate::node::{GroupRole, NodeId};
use crate::traffic::TrafficConfig;
use serde::{Deserialize, Serialize};
use ssmcast_dessim::SimTime;

/// A membership change applied to one node of one session.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum MembershipChange {
    /// The node becomes a receiving member of the group.
    Join,
    /// The node leaves the group (it keeps relaying as a non-member).
    Leave,
}

/// One scheduled membership change. Sources never churn: a [`MembershipChange`]
/// targeting the session's source is ignored by the runtime.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct MembershipEvent {
    /// When the change takes effect.
    pub at: SimTime,
    /// The node joining or leaving.
    pub node: NodeId,
    /// Join or leave.
    pub change: MembershipChange,
}

/// One multicast session: a CBR flow, the initial membership table, and the churn
/// schedule that perturbs it.
#[derive(Clone, Debug)]
pub struct SessionSetup {
    /// The session's constant-bit-rate flow (its `group` id tags the session).
    pub traffic: TrafficConfig,
    /// Initial per-node role in this session, indexed by node id. Exactly one entry
    /// must be [`GroupRole::Source`], matching `traffic.source`.
    pub roles: Vec<GroupRole>,
    /// Scheduled joins/leaves, ascending by time (the runtime sorts defensively).
    pub churn: Vec<MembershipEvent>,
}

impl SessionSetup {
    /// A churn-free session.
    pub fn new(traffic: TrafficConfig, roles: Vec<GroupRole>) -> Self {
        SessionSetup { traffic, roles, churn: Vec::new() }
    }

    /// The same session with a churn schedule attached.
    pub fn with_churn(mut self, churn: Vec<MembershipEvent>) -> Self {
        self.churn = churn;
        self
    }

    /// Receivers (members excluding the source) in the *initial* membership table.
    pub fn initial_receivers(&self) -> u64 {
        self.roles.iter().filter(|r| matches!(r, GroupRole::Member)).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::GroupId;

    fn traffic() -> TrafficConfig {
        TrafficConfig {
            group: GroupId(0),
            source: NodeId(0),
            data_rate_bps: 64_000.0,
            packet_size_bytes: 512,
            start: SimTime::from_secs(1),
            stop: SimTime::from_secs(10),
        }
    }

    #[test]
    fn initial_receivers_count_members_only() {
        let s = SessionSetup::new(
            traffic(),
            vec![GroupRole::Source, GroupRole::Member, GroupRole::NonMember, GroupRole::Member],
        );
        assert_eq!(s.initial_receivers(), 2);
        assert!(s.churn.is_empty());
    }

    #[test]
    fn churn_attaches_fluently() {
        let ev = MembershipEvent {
            at: SimTime::from_secs(5),
            node: NodeId(2),
            change: MembershipChange::Join,
        };
        let s = SessionSetup::new(traffic(), vec![GroupRole::Source]).with_churn(vec![ev]);
        assert_eq!(s.churn, vec![ev]);
    }
}
