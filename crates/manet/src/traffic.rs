//! Application-layer traffic generation.
//!
//! The paper uses one constant-bit-rate (CBR) multicast source sending at 64 kbps.

use crate::node::{GroupId, NodeId};
use serde::{Deserialize, Serialize};
use ssmcast_dessim::{SimDuration, SimTime};

/// A constant-bit-rate multicast flow.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TrafficConfig {
    /// Multicast group the flow is addressed to.
    pub group: GroupId,
    /// Source node.
    pub source: NodeId,
    /// Application data rate in bits per second.
    pub data_rate_bps: f64,
    /// Application packet size in bytes.
    pub packet_size_bytes: u32,
    /// When the flow starts.
    pub start: SimTime,
    /// When the flow stops (no packets are generated at or after this time).
    pub stop: SimTime,
}

impl TrafficConfig {
    /// The paper's workload: 64 kbps CBR, 512-byte packets, starting after a short
    /// warm-up and running until `stop`.
    pub fn paper_default(source: NodeId, stop: SimTime) -> Self {
        TrafficConfig {
            group: GroupId(0),
            source,
            data_rate_bps: 64_000.0,
            packet_size_bytes: 512,
            start: SimTime::from_secs(10),
            stop,
        }
    }

    /// Inter-packet interval implied by the rate and packet size.
    pub fn interval(&self) -> SimDuration {
        let secs = f64::from(self.packet_size_bytes) * 8.0 / self.data_rate_bps.max(1.0);
        SimDuration::from_secs_f64(secs)
    }

    /// Number of packets the source will generate in `[start, stop)`.
    pub fn expected_packet_count(&self) -> u64 {
        if self.stop <= self.start {
            return 0;
        }
        let window = (self.stop - self.start).as_secs_f64();
        let interval = self.interval().as_secs_f64();
        if interval <= 0.0 {
            return 0;
        }
        (window / interval).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_interval_is_64ms() {
        let t = TrafficConfig::paper_default(NodeId(0), SimTime::from_secs(1800));
        // 512 bytes = 4096 bits at 64 kbps -> one packet every 64 ms.
        assert!((t.interval().as_millis_f64() - 64.0).abs() < 1e-9);
    }

    #[test]
    fn expected_count_matches_window() {
        let t = TrafficConfig {
            group: GroupId(0),
            source: NodeId(0),
            data_rate_bps: 64_000.0,
            packet_size_bytes: 512,
            start: SimTime::from_secs(0),
            stop: SimTime::from_secs(64),
        };
        assert_eq!(t.expected_packet_count(), 1000);
    }

    #[test]
    fn degenerate_flows_generate_nothing() {
        let mut t = TrafficConfig::paper_default(NodeId(0), SimTime::from_secs(5));
        t.start = SimTime::from_secs(10);
        assert_eq!(t.expected_packet_count(), 0);
    }
}
