//! Pluggable medium-access control: when does a pending broadcast actually hit the air?
//!
//! The runtime historically applied a blind uniform jitter (`mac_backoff_max`) to every
//! transmission and hoped relays would miss each other. This module makes channel access
//! an explicit, swappable policy beneath all multicast protocols:
//!
//! * [`RandomJitter`] — the historical behaviour, extracted verbatim. It is the default
//!   and consumes the channel-loss RNG in exactly the legacy order, so existing seeded
//!   reports stay byte-identical.
//! * [`Csma`] — carrier sensing via [`Channel::is_busy`] plus bounded exponential
//!   backoff: a frame that keeps finding the channel busy is retried with a growing
//!   contention window and dropped once the retry cap is exceeded.
//! * [`SsTdma`] — self-stabilizing TDMA in the style of Leone & Schiller: each node
//!   holds a seeded-random slot in a fixed-length frame, learns neighbours' slots from
//!   overheard transmissions, reads 2-hop claims piggybacked on overheard control
//!   beacons, and re-draws a fresh random slot whenever a conflict is detected — so the
//!   schedule converges to collision-freedom from *any* state, including one scrambled
//!   by the fault-injection machinery.
//!
//! The policy decides only *when* a frame transmits (or that it never does); propagation,
//! loss, capture-effect collisions and energy remain the runtime's business.

use crate::channel::Channel;
use crate::energy::RadioConfig;
use crate::node::NodeId;
use crate::packet::PacketClass;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use ssmcast_dessim::{SeedSequence, SimDuration, SimTime};
use ssmcast_metrics::MacStats;

/// Which MAC policy a run uses (see the module docs for the three behaviours).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MacKind {
    /// Uniform random jitter before every transmission — the legacy default.
    RandomJitter,
    /// Carrier sensing with bounded exponential backoff and a retry cap.
    Csma,
    /// Self-stabilizing TDMA slot assignment (Leone & Schiller style).
    SsTdma,
}

/// Knobs for the [`Csma`] policy.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CsmaConfig {
    /// Backoff slot duration (the contention-window unit).
    pub slot: SimDuration,
    /// Initial contention window, in slots.
    pub cw_min: u32,
    /// Contention-window cap, in slots.
    pub cw_max: u32,
    /// Carrier-sense attempts before the frame is dropped.
    pub max_attempts: u32,
}

impl Default for CsmaConfig {
    fn default() -> Self {
        // A 0.5 ms slot and cw_min = 8 give an initial dispersion comparable to the
        // legacy 8 ms jitter; seven sense attempts with the window doubling up to 256
        // slots ride out bursts without holding frames forever.
        CsmaConfig { slot: SimDuration::from_micros(500), cw_min: 8, cw_max: 256, max_attempts: 7 }
    }
}

/// Knobs for the [`SsTdma`] policy.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TdmaConfig {
    /// Slots per TDMA frame (the schedule length nodes draw from).
    pub slots_per_frame: u16,
    /// Duration of one slot. A transmission longer than a slot starts at the slot
    /// boundary and overruns; shorter ones must fit before the slot ends.
    pub slot: SimDuration,
}

impl Default for TdmaConfig {
    fn default() -> Self {
        // 3 ms fits the 2.048 ms airtime of the paper's 512-byte data packet with room
        // for the propagation/processing delay; 32 slots keep the frame (96 ms) close to
        // the 64 kbps source's packet interval so TDMA delay stays bounded.
        TdmaConfig { slots_per_frame: 32, slot: SimDuration::from_millis(3) }
    }
}

/// MAC-layer configuration carried by `SimSetup` (and `Scenario` one level up).
///
/// The default — [`MacKind::RandomJitter`] with `emit_stats` off — reproduces the
/// pre-MAC-layer runtime byte for byte, report included.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MacConfig {
    /// The policy to run.
    pub kind: MacKind,
    /// Attach a [`MacStats`] block to the report even for the default policy (the
    /// non-default policies always report).
    pub emit_stats: bool,
    /// CSMA knobs (ignored by the other policies).
    pub csma: CsmaConfig,
    /// TDMA knobs (ignored by the other policies).
    pub tdma: TdmaConfig,
}

impl Default for MacConfig {
    fn default() -> Self {
        MacConfig {
            kind: MacKind::RandomJitter,
            emit_stats: false,
            csma: CsmaConfig::default(),
            tdma: TdmaConfig::default(),
        }
    }
}

impl MacConfig {
    /// CSMA with default knobs (stats on).
    pub fn csma() -> Self {
        MacConfig { kind: MacKind::Csma, emit_stats: true, ..MacConfig::default() }
    }

    /// Self-stabilizing TDMA with default knobs (stats on).
    pub fn ss_tdma() -> Self {
        MacConfig { kind: MacKind::SsTdma, emit_stats: true, ..MacConfig::default() }
    }

    /// The same configuration with stats reporting forced on. With the default policy
    /// this attaches the [`MacStats`] block while leaving the simulated physics — and
    /// every other report field — untouched.
    pub fn with_stats(mut self) -> Self {
        self.emit_stats = true;
        self
    }

    /// True when the run's report should carry a [`MacStats`] block. Always true for
    /// the non-default policies; the default jitter only reports when asked, so legacy
    /// reports stay byte-identical.
    pub fn reports_stats(&self) -> bool {
        self.emit_stats || self.kind != MacKind::RandomJitter
    }

    /// Instantiate the configured policy for an `n_nodes` network. Contention RNGs are
    /// derived from dedicated `"mac"` streams of `seeds`, so adding a MAC never perturbs
    /// the protocol or channel-loss streams.
    pub fn build(&self, n_nodes: usize, seeds: &SeedSequence) -> Box<dyn MacPolicy> {
        match self.kind {
            MacKind::RandomJitter => Box::new(RandomJitter),
            MacKind::Csma => Box::new(Csma::new(self.csma, n_nodes, seeds)),
            MacKind::SsTdma => Box::new(SsTdma::new(self.tdma, n_nodes, seeds)),
        }
    }
}

/// One pending broadcast as the MAC sees it.
#[derive(Clone, Copy, Debug)]
pub struct MacFrame {
    /// Transmitting node.
    pub sender: NodeId,
    /// Control or data.
    pub class: PacketClass,
    /// Size on the wire, bytes.
    pub size_bytes: u32,
    /// 0 on the first access attempt; incremented on every MAC-scheduled retry.
    pub attempt: u32,
}

/// What the policy decided for a pending frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MacDecision {
    /// Transmit, starting at `at` (`at >= now`; the runtime schedules deliveries from
    /// this instant).
    Transmit {
        /// Transmission start.
        at: SimTime,
    },
    /// Not yet: ask again at `until` with the attempt counter incremented.
    Defer {
        /// When to retry channel access.
        until: SimTime,
    },
    /// Give up on this frame entirely (counted as a MAC drop; it never hits the air).
    Drop,
}

/// A medium-access policy: decides, per pending broadcast, when the frame transmits.
///
/// Implementations must be deterministic functions of their seeded state — the runtime
/// calls them from a single thread in event order, and reports are expected to be
/// byte-identical across repeat runs.
pub trait MacPolicy: Send {
    /// Decide what happens to `frame` at `now`. `channel` exposes receiver busy state
    /// for carrier sensing; `loss_rng` is the runtime's channel-loss stream and exists
    /// *only* so [`RandomJitter`] can reproduce the legacy draw order — new policies
    /// must use their own seeded RNGs instead.
    fn access(
        &mut self,
        frame: &MacFrame,
        now: SimTime,
        radio: &RadioConfig,
        channel: &Channel,
        loss_rng: &mut StdRng,
    ) -> MacDecision;

    /// State the frame carries on behalf of the MAC itself, captured at transmit time.
    /// TDMA piggybacks the sender's claim-table row on control frames; the runtime
    /// snapshots it here and hands it back to every receiver's [`Self::on_overheard`] —
    /// including receivers on *other shards*, which is what keeps the two-hop read
    /// partition-independent. The default carries nothing.
    fn piggyback_row(&self, sender: NodeId, class: PacketClass) -> Option<Vec<u16>> {
        let _ = (sender, class);
        None
    }

    /// `rx` cleanly receives a frame that `sender` started transmitting at `tx_start`.
    /// This is the policy's only learning channel: TDMA reads the sender's slot from
    /// the transmission timing and, on control frames, the sender's claim table from
    /// `piggyback` (the [`Self::piggyback_row`] snapshot taken when the frame left the
    /// sender, possibly on another shard).
    fn on_overheard(
        &mut self,
        rx: NodeId,
        sender: NodeId,
        class: PacketClass,
        tx_start: SimTime,
        piggyback: Option<&[u16]>,
    ) {
        let _ = (rx, sender, class, tx_start, piggyback);
    }

    /// Scramble `node`'s MAC state (fault injection): afterwards the schedule must
    /// re-converge through [`Self::on_overheard`] alone.
    fn corrupt(&mut self, node: NodeId) {
        let _ = node;
    }

    /// Add policy-specific counters (TDMA conflicts/re-draws) to a stats block.
    fn fill_stats(&self, stats: &mut MacStats) {
        let _ = stats;
    }

    /// Short policy name for reports.
    fn label(&self) -> &'static str;
}

/// The legacy behaviour: a uniform random backoff in `[0, mac_backoff_max)` before
/// every transmission, drawn from the channel-loss stream (exactly one draw per frame,
/// zero when the knob is zero — the pre-MAC-layer runtime byte for byte).
pub struct RandomJitter;

impl MacPolicy for RandomJitter {
    fn access(
        &mut self,
        _frame: &MacFrame,
        now: SimTime,
        radio: &RadioConfig,
        _channel: &Channel,
        loss_rng: &mut StdRng,
    ) -> MacDecision {
        let backoff = if radio.mac_backoff_max.is_zero() {
            SimDuration::ZERO
        } else {
            radio.mac_backoff_max.mul_f64(loss_rng.gen::<f64>())
        };
        MacDecision::Transmit { at: now + backoff }
    }

    fn label(&self) -> &'static str {
        "random-jitter"
    }
}

/// Carrier-sense multiple access with bounded exponential backoff.
///
/// Every frame first disperses by a random backoff in the initial contention window
/// (without it, relays of one flood would all sense an idle channel at the same instant
/// and transmit in lockstep). Each subsequent attempt senses the channel — the node's
/// own receive busy-state plus its own ongoing transmission — and either transmits
/// immediately or backs off again with the window doubled, up to the retry cap.
pub struct Csma {
    cfg: CsmaConfig,
    rngs: Vec<StdRng>,
    /// End of each node's own ongoing transmission (a half-duplex radio cannot sense
    /// the channel idle while it is itself transmitting).
    own_busy_until: Vec<SimTime>,
}

impl Csma {
    /// Build a CSMA policy for `n_nodes`, with per-node contention RNGs from `seeds`.
    pub fn new(cfg: CsmaConfig, n_nodes: usize, seeds: &SeedSequence) -> Self {
        let rngs = (0..n_nodes as u64).map(|i| seeds.indexed_stream("mac", i)).collect();
        Csma { cfg, rngs, own_busy_until: vec![SimTime::ZERO; n_nodes] }
    }

    fn backoff(&mut self, node: usize, cw: u32) -> SimDuration {
        let slots = self.rngs[node].gen_range(0..cw.max(1)) as u64;
        self.cfg.slot.saturating_mul(slots)
    }
}

impl MacPolicy for Csma {
    fn access(
        &mut self,
        frame: &MacFrame,
        now: SimTime,
        radio: &RadioConfig,
        channel: &Channel,
        _loss_rng: &mut StdRng,
    ) -> MacDecision {
        let i = frame.sender.index();
        if frame.attempt == 0 {
            // Dispersion backoff before the first carrier sense.
            let wait = self.backoff(i, self.cfg.cw_min);
            return MacDecision::Defer { until: now + wait };
        }
        let busy = channel.is_busy(frame.sender, now) || self.own_busy_until[i] > now;
        if !busy {
            self.own_busy_until[i] = now + radio.tx_duration(frame.size_bytes);
            return MacDecision::Transmit { at: now };
        }
        if frame.attempt > self.cfg.max_attempts {
            return MacDecision::Drop;
        }
        // Exponential backoff: the window doubles per failed sense, capped at cw_max;
        // at least one slot so a zero draw cannot re-sense at the same instant forever.
        let exp = frame.attempt.saturating_sub(1).min(16);
        let cw = self.cfg.cw_min.saturating_mul(1 << exp).min(self.cfg.cw_max);
        let wait = self.backoff(i, cw) + self.cfg.slot;
        MacDecision::Defer { until: now + wait }
    }

    fn label(&self) -> &'static str {
        "csma"
    }
}

/// Sentinel for "no slot claim observed" in [`SsTdma`]'s claim tables.
const NO_CLAIM: u16 = u16::MAX;

/// Self-stabilizing TDMA (Leone & Schiller style).
///
/// Slots are globally synchronized (anchored at simulated time zero — the paper's
/// companion algorithms assume a converged clock-sync layer below). Each node starts
/// from a seeded random slot; whenever a node cleanly overhears a transmission it
/// records the sender's slot in its claim table, and on control frames it additionally
/// reads the sender's *own* claim table — the piggybacked 2-hop information. A node that
/// observes its slot claimed by a 1-hop neighbour, or by a 2-hop neighbour through a
/// piggybacked table, re-draws a seeded random slot among those it believes free. From
/// any initial or corrupted state this converges to a schedule where no two nodes
/// within interference range share a slot — and, since every transmission then fits
/// inside its owner's slot, to collision-freedom.
pub struct SsTdma {
    cfg: TdmaConfig,
    n: usize,
    rngs: Vec<StdRng>,
    /// Current slot claimed by each node.
    slots: Vec<u16>,
    /// Flattened n×n claim tables: `claims[i * n + j]` is the slot node `i` last
    /// observed node `j` transmit in ([`NO_CLAIM`] when never observed).
    claims: Vec<u16>,
    /// End of each node's own ongoing transmission (serializes a node's frames within
    /// its slot).
    own_busy_until: Vec<SimTime>,
    conflicts: u64,
    redraws: u64,
    last_redraw: Option<SimTime>,
}

impl SsTdma {
    /// Build a TDMA policy for `n_nodes` with seeded random initial slots.
    pub fn new(cfg: TdmaConfig, n_nodes: usize, seeds: &SeedSequence) -> Self {
        let mut rngs: Vec<StdRng> =
            (0..n_nodes as u64).map(|i| seeds.indexed_stream("mac", i)).collect();
        let s = cfg.slots_per_frame.max(1);
        let slots = rngs.iter_mut().map(|rng| rng.gen_range(0..s)).collect();
        SsTdma {
            cfg,
            n: n_nodes,
            rngs,
            slots,
            claims: vec![NO_CLAIM; n_nodes * n_nodes],
            own_busy_until: vec![SimTime::ZERO; n_nodes],
            conflicts: 0,
            redraws: 0,
            last_redraw: None,
        }
    }

    fn slot_nanos(&self) -> u64 {
        self.cfg.slot.as_nanos()
    }

    fn frame_nanos(&self) -> u64 {
        self.slot_nanos() * u64::from(self.cfg.slots_per_frame.max(1))
    }

    /// The slot index the instant `t` falls into.
    fn slot_index(&self, t: SimTime) -> u16 {
        ((t.as_nanos() / self.slot_nanos()) % u64::from(self.cfg.slots_per_frame.max(1))) as u16
    }

    /// Earliest instant `>= from` at which `slot`'s owner can start a transmission of
    /// `tx_nanos` and have it fit before the slot ends. A transmission longer than a
    /// whole slot is allowed to start exactly at a slot boundary (and overrun).
    fn next_tx_instant(&self, slot: u16, from: SimTime, tx_nanos: u64) -> SimTime {
        let slot_ns = self.slot_nanos();
        let frame_ns = self.frame_nanos();
        let need = tx_nanos.min(slot_ns);
        let from_ns = from.as_nanos();
        let base = (from_ns / frame_ns) * frame_ns + u64::from(slot) * slot_ns;
        // The owned slot in the current frame (if still usable), else in the next one.
        for start in [base, base + frame_ns] {
            let end = start + slot_ns;
            let begin = start.max(from_ns);
            if begin < end && begin + need <= end {
                return SimTime::from_nanos(begin);
            }
        }
        // Unreachable for need <= slot_ns, but stay safe: the next frame's slot start.
        SimTime::from_nanos(base + frame_ns)
    }

    /// Re-draw node `i`'s slot among those its claim table says are free.
    fn redraw(&mut self, i: usize, t: SimTime) {
        let s = usize::from(self.cfg.slots_per_frame.max(1));
        let mut taken = vec![false; s];
        for j in 0..self.n {
            let c = self.claims[i * self.n + j];
            if usize::from(c) < s {
                taken[usize::from(c)] = true;
            }
        }
        let free = taken.iter().filter(|&&b| !b).count();
        self.slots[i] = if free > 0 {
            let pick = self.rngs[i].gen_range(0..free);
            taken
                .iter()
                .enumerate()
                .filter(|(_, &b)| !b)
                .nth(pick)
                .map(|(idx, _)| idx as u16)
                .expect("free slot counted above")
        } else {
            // Saturated neighbourhood: fall back to a uniform draw over all slots.
            self.rngs[i].gen_range(0..s as u16)
        };
        self.redraws += 1;
        self.last_redraw = Some(t);
    }
}

impl MacPolicy for SsTdma {
    fn access(
        &mut self,
        frame: &MacFrame,
        now: SimTime,
        radio: &RadioConfig,
        _channel: &Channel,
        _loss_rng: &mut StdRng,
    ) -> MacDecision {
        let i = frame.sender.index();
        if self.cfg.slot.is_zero() {
            // Degenerate config: slotting disabled, transmit immediately.
            return MacDecision::Transmit { at: now };
        }
        let tx = radio.tx_duration(frame.size_bytes);
        // Serialize behind the node's own ongoing transmission, then wait for the
        // owned slot.
        let earliest = now.max(self.own_busy_until[i]);
        let at = self.next_tx_instant(self.slots[i], earliest, tx.as_nanos());
        if at == now {
            self.own_busy_until[i] = now + tx;
            MacDecision::Transmit { at: now }
        } else {
            MacDecision::Defer { until: at }
        }
    }

    fn piggyback_row(&self, sender: NodeId, class: PacketClass) -> Option<Vec<u16>> {
        if self.cfg.slot.is_zero() || class != PacketClass::Control {
            return None;
        }
        let s = sender.index();
        Some(self.claims[s * self.n..(s + 1) * self.n].to_vec())
    }

    fn on_overheard(
        &mut self,
        rx: NodeId,
        sender: NodeId,
        class: PacketClass,
        tx_start: SimTime,
        piggyback: Option<&[u16]>,
    ) {
        if self.cfg.slot.is_zero() || rx == sender {
            return;
        }
        let (r, s) = (rx.index(), sender.index());
        let s_slot = self.slot_index(tx_start);
        self.claims[r * self.n + s] = s_slot;
        // 1-hop conflict: a neighbour transmits in my slot.
        let my = self.slots[r];
        let mut conflict = s_slot == my;
        // 2-hop conflict: the sender's piggybacked claim table (carried on control
        // beacons, snapshotted at transmit time — `piggyback` when the frame crossed a
        // shard boundary, this instance's own copy of the sender's row otherwise) says
        // some third node uses my slot.
        if !conflict && class == PacketClass::Control {
            let table = piggyback.unwrap_or(&self.claims[s * self.n..(s + 1) * self.n]);
            conflict = table.iter().enumerate().any(|(j, &claim)| j != r && claim == my);
        }
        if conflict {
            self.conflicts += 1;
            self.redraw(r, tx_start);
        }
    }

    fn corrupt(&mut self, node: NodeId) {
        // Adversarial state: a fresh arbitrary slot and a wiped claim table. Recovery
        // must come entirely from overhearing.
        let i = node.index();
        let s = self.cfg.slots_per_frame.max(1);
        self.slots[i] = self.rngs[i].gen_range(0..s);
        for j in 0..self.n {
            self.claims[i * self.n + j] = NO_CLAIM;
        }
    }

    fn fill_stats(&self, stats: &mut MacStats) {
        stats.slot_conflicts = self.conflicts;
        stats.slot_redraws = self.redraws;
        stats.slot_last_redraw_s = self.last_redraw.map(|t| t.as_secs_f64());
    }

    fn label(&self) -> &'static str {
        "ss-tdma"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn frame(sender: u32, attempt: u32) -> MacFrame {
        MacFrame { sender: NodeId(sender), class: PacketClass::Data, size_bytes: 512, attempt }
    }

    fn at_ms(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn default_config_is_the_legacy_jitter_with_stats_off() {
        let cfg = MacConfig::default();
        assert_eq!(cfg.kind, MacKind::RandomJitter);
        assert!(!cfg.emit_stats);
        assert!(!cfg.reports_stats());
        assert!(MacConfig { emit_stats: true, ..cfg }.reports_stats());
        assert!(MacConfig::csma().reports_stats());
        assert!(MacConfig::ss_tdma().reports_stats());
    }

    #[test]
    fn random_jitter_reproduces_the_legacy_backoff_draw() {
        let radio = RadioConfig::default();
        let channel = Channel::new(4, 1);
        let mut policy = RandomJitter;
        let mut rng = StdRng::seed_from_u64(99);
        let decision = policy.access(&frame(0, 0), at_ms(10), &radio, &channel, &mut rng);
        let mut reference = StdRng::seed_from_u64(99);
        let expected = at_ms(10) + radio.mac_backoff_max.mul_f64(reference.gen::<f64>());
        assert_eq!(decision, MacDecision::Transmit { at: expected });
    }

    #[test]
    fn random_jitter_makes_no_draw_when_the_knob_is_zero() {
        let radio = RadioConfig { mac_backoff_max: SimDuration::ZERO, ..RadioConfig::default() };
        let channel = Channel::new(4, 1);
        let mut rng = StdRng::seed_from_u64(99);
        let decision = RandomJitter.access(&frame(0, 0), at_ms(10), &radio, &channel, &mut rng);
        assert_eq!(decision, MacDecision::Transmit { at: at_ms(10) });
        // The stream was not consumed: the next draw equals a fresh stream's first.
        assert_eq!(rng.gen::<u64>(), StdRng::seed_from_u64(99).gen::<u64>());
    }

    #[test]
    fn csma_disperses_then_transmits_on_an_idle_channel() {
        let radio = RadioConfig::default();
        let channel = Channel::new(4, 1);
        let mut policy = Csma::new(CsmaConfig::default(), 4, &SeedSequence::new(1));
        let mut rng = StdRng::seed_from_u64(0);
        // Attempt 0 always defers (dispersion backoff).
        let first = policy.access(&frame(0, 0), at_ms(10), &radio, &channel, &mut rng);
        let MacDecision::Defer { until } = first else { panic!("expected dispersion defer") };
        assert!(until >= at_ms(10));
        // At the retry the channel is idle: transmit immediately.
        let second = policy.access(&frame(0, 1), until, &radio, &channel, &mut rng);
        assert_eq!(second, MacDecision::Transmit { at: until });
    }

    #[test]
    fn csma_backs_off_while_busy_and_drops_at_the_retry_cap() {
        let radio = RadioConfig::default();
        let mut channel = Channel::new(2, 1);
        // Keep node 0's receiver busy for a long time.
        channel.try_receive(0, NodeId(0), SimTime::ZERO, at_ms(10_000));
        let cfg = CsmaConfig::default();
        let mut policy = Csma::new(cfg, 2, &SeedSequence::new(1));
        let mut rng = StdRng::seed_from_u64(0);
        let mut t = at_ms(1);
        let mut attempt = 1u32;
        let mut deferrals = 0;
        loop {
            match policy.access(&frame(0, attempt), t, &radio, &channel, &mut rng) {
                MacDecision::Defer { until } => {
                    assert!(until > t, "busy backoff must move time forward");
                    deferrals += 1;
                    t = until;
                    attempt += 1;
                }
                MacDecision::Drop => break,
                MacDecision::Transmit { .. } => panic!("channel is busy for the whole test"),
            }
            assert!(attempt < 100, "must drop at the cap");
        }
        assert_eq!(deferrals, cfg.max_attempts, "one busy deferral per allowed attempt");
    }

    #[test]
    fn csma_own_transmission_blocks_the_next_sense() {
        let radio = RadioConfig::default();
        let channel = Channel::new(2, 1);
        let mut policy = Csma::new(CsmaConfig::default(), 2, &SeedSequence::new(1));
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            policy.access(&frame(0, 1), at_ms(5), &radio, &channel, &mut rng),
            MacDecision::Transmit { at: at_ms(5) }
        );
        // Half-duplex: while the first frame is on the air the node cannot sense idle.
        let next = policy.access(&frame(0, 1), at_ms(5), &radio, &channel, &mut rng);
        assert!(matches!(next, MacDecision::Defer { .. }), "got {next:?}");
    }

    #[test]
    fn tdma_transmits_only_inside_the_owned_slot() {
        let radio = RadioConfig::default();
        let channel = Channel::new(4, 1);
        let cfg = TdmaConfig::default();
        let mut policy = SsTdma::new(cfg, 4, &SeedSequence::new(3));
        let mut rng = StdRng::seed_from_u64(0);
        let my_slot = policy.slots[0];
        // At the exact start of the owned slot the frame fits and goes out at once.
        let slot_start = SimTime::ZERO + cfg.slot.saturating_mul(u64::from(my_slot));
        let d = policy.access(&frame(0, 0), slot_start, &radio, &channel, &mut rng);
        assert_eq!(d, MacDecision::Transmit { at: slot_start });
        // From a foreign slot, the decision is a defer to an instant inside the owned
        // slot of a later frame.
        let foreign = SimTime::ZERO
            + cfg.slot.saturating_mul(u64::from((my_slot + 1) % cfg.slots_per_frame))
            + SimDuration::from_micros(10);
        match policy.access(&frame(0, 0), foreign, &radio, &channel, &mut rng) {
            MacDecision::Defer { until } => {
                assert!(until > foreign);
                assert_eq!(policy.slot_index(until), my_slot);
            }
            other => panic!("expected a defer to the owned slot, got {other:?}"),
        }
    }

    #[test]
    fn tdma_defers_when_the_frame_no_longer_fits_in_the_slot() {
        let radio = RadioConfig::default();
        let channel = Channel::new(2, 1);
        let cfg = TdmaConfig { slots_per_frame: 8, slot: SimDuration::from_millis(3) };
        let mut policy = SsTdma::new(cfg, 2, &SeedSequence::new(3));
        let mut rng = StdRng::seed_from_u64(0);
        let my_slot = policy.slots[0];
        // 2.5 ms into the 3 ms slot a 2.048 ms frame cannot fit any more.
        let late = SimTime::ZERO
            + cfg.slot.saturating_mul(u64::from(my_slot))
            + SimDuration::from_micros(2_500);
        match policy.access(&frame(0, 0), late, &radio, &channel, &mut rng) {
            MacDecision::Defer { until } => {
                assert_eq!(policy.slot_index(until), my_slot, "defers to the next owned slot");
                assert!(until.as_nanos() >= late.as_nanos() + cfg.slot.as_nanos());
            }
            other => panic!("expected defer, got {other:?}"),
        }
    }

    #[test]
    fn tdma_redraws_on_a_one_hop_conflict() {
        let cfg = TdmaConfig::default();
        let mut policy = SsTdma::new(cfg, 4, &SeedSequence::new(3));
        let before = policy.slots[1];
        // Node 0 transmits inside node 1's slot: node 1 must detect and re-draw.
        let tx_start = SimTime::ZERO + cfg.slot.saturating_mul(u64::from(before));
        policy.on_overheard(NodeId(1), NodeId(0), PacketClass::Data, tx_start, None);
        assert_eq!(policy.conflicts, 1);
        assert_eq!(policy.redraws, 1);
        assert_ne!(policy.slots[1], before, "the observed claim rules the old slot out");
        assert_eq!(policy.last_redraw, Some(tx_start));
        let mut stats = MacStats::empty("ss-tdma");
        policy.fill_stats(&mut stats);
        assert_eq!(stats.slot_redraws, 1);
        assert_eq!(stats.slot_last_redraw_s, Some(tx_start.as_secs_f64()));
    }

    #[test]
    fn tdma_reads_two_hop_claims_from_control_frames_only() {
        let cfg = TdmaConfig::default();
        let mut policy = SsTdma::new(cfg, 4, &SeedSequence::new(3));
        let my = policy.slots[2];
        // Node 1 has observed node 0 claim node 2's slot (in some other slot's
        // transmission — use a non-conflicting instant for node 1 itself).
        let idx = self_idx(&policy, 1, 0);
        policy.claims[idx] = my;
        // A *data* frame from node 1 in a harmless slot teaches node 2 nothing 2-hop.
        let harmless = (my + 1) % cfg.slots_per_frame;
        let tx = SimTime::ZERO + cfg.slot.saturating_mul(u64::from(harmless));
        // Make sure the harmless slot is not node 2's own.
        assert_ne!(harmless, my);
        policy.on_overheard(NodeId(2), NodeId(1), PacketClass::Data, tx, None);
        assert_eq!(policy.redraws, 0, "data frames carry no claim table");
        // The same overhearing on a control frame exposes the 2-hop conflict.
        policy.on_overheard(NodeId(2), NodeId(1), PacketClass::Control, tx, None);
        assert_eq!(policy.conflicts, 1);
        assert_ne!(policy.slots[2], my);
    }

    #[test]
    fn tdma_piggyback_row_carries_two_hop_claims_across_instances() {
        // Sender-side instance (one shard) has observed node 0 claim node 2's slot;
        // the receiver-side instance (another shard) has an empty table. The snapshot
        // taken by `piggyback_row` must expose the 2-hop conflict to the receiver.
        let cfg = TdmaConfig::default();
        let mut sender_side = SsTdma::new(cfg, 4, &SeedSequence::new(3));
        let mut rx_side = SsTdma::new(cfg, 4, &SeedSequence::new(3));
        let my = rx_side.slots[2];
        let idx = self_idx(&sender_side, 1, 0);
        sender_side.claims[idx] = my;
        let row = sender_side
            .piggyback_row(NodeId(1), PacketClass::Control)
            .expect("control frames carry the claim table");
        assert_eq!(row[0], my);
        assert_eq!(sender_side.piggyback_row(NodeId(1), PacketClass::Data), None);
        let harmless = (my + 1) % cfg.slots_per_frame;
        let tx = SimTime::ZERO + cfg.slot.saturating_mul(u64::from(harmless));
        assert_ne!(harmless, my);
        // Without the piggybacked row the receiver-side instance sees no conflict…
        rx_side.on_overheard(NodeId(2), NodeId(1), PacketClass::Control, tx, None);
        assert_eq!(rx_side.conflicts, 0, "the local replica of node 1's row is empty");
        // …with it, the cross-shard 2-hop read works exactly like the sequential one.
        rx_side.on_overheard(NodeId(2), NodeId(1), PacketClass::Control, tx, Some(&row));
        assert_eq!(rx_side.conflicts, 1);
        assert_ne!(rx_side.slots[2], my);
    }

    fn self_idx(p: &SsTdma, i: usize, j: usize) -> usize {
        i * p.n + j
    }

    #[test]
    fn tdma_corruption_scrambles_state_without_counting_as_recovery() {
        let cfg = TdmaConfig::default();
        let mut policy = SsTdma::new(cfg, 3, &SeedSequence::new(3));
        policy.claims[1] = 5;
        policy.corrupt(NodeId(0));
        assert!(policy.claims[..3].iter().all(|&c| c == NO_CLAIM), "claim table wiped");
        assert_eq!(policy.redraws, 0, "corruption is the fault, not a re-draw");
    }

    #[test]
    fn tdma_redraw_avoids_every_claimed_slot() {
        let cfg = TdmaConfig { slots_per_frame: 4, slot: SimDuration::from_millis(3) };
        let mut policy = SsTdma::new(cfg, 5, &SeedSequence::new(3));
        // Indices 1..=4 are node 0's row of the 5-wide claim table. Node 0 has seen
        // slots 0, 1, 3 claimed; a re-draw must land on 2.
        policy.claims[1] = 0;
        policy.claims[2] = 1;
        policy.claims[3] = 3;
        policy.redraw(0, SimTime::ZERO);
        assert_eq!(policy.slots[0], 2);
        // With every slot claimed the fallback still terminates with a valid slot.
        policy.claims[4] = 2;
        policy.redraw(0, SimTime::ZERO);
        assert!(policy.slots[0] < 4);
    }
}
