//! 2-D geometry used by mobility and radio models.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::ops::{Add, Mul, Sub};

/// A point / vector in the 2-D simulation plane, in metres.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Vec2 {
    /// x coordinate in metres.
    pub x: f64,
    /// y coordinate in metres.
    pub y: f64,
}

impl Vec2 {
    /// The origin.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Construct a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: &Vec2) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance (cheaper when only comparing).
    pub fn distance_sq(&self, other: &Vec2) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Vector length.
    pub fn norm(&self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Unit vector in the same direction (zero vector maps to zero).
    pub fn normalized(&self) -> Vec2 {
        let n = self.norm();
        if n == 0.0 {
            Vec2::ZERO
        } else {
            Vec2::new(self.x / n, self.y / n)
        }
    }

    /// Linear interpolation: `self + t * (other - self)` with `t` clamped to [0, 1].
    pub fn lerp(&self, other: &Vec2, t: f64) -> Vec2 {
        let t = t.clamp(0.0, 1.0);
        Vec2::new(self.x + (other.x - self.x) * t, self.y + (other.y - self.y) * t)
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

/// An axis-aligned rectangular deployment area, anchored at the origin.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Area {
    /// Width in metres.
    pub width: f64,
    /// Height in metres.
    pub height: f64,
}

impl Area {
    /// A square area of the given side length.
    pub const fn square(side: f64) -> Self {
        Area { width: side, height: side }
    }

    /// Construct an area.
    pub const fn new(width: f64, height: f64) -> Self {
        Area { width, height }
    }

    /// True if `p` lies inside (or on the boundary of) the area.
    pub fn contains(&self, p: &Vec2) -> bool {
        p.x >= 0.0 && p.y >= 0.0 && p.x <= self.width && p.y <= self.height
    }

    /// Clamp a point to the area.
    pub fn clamp(&self, p: &Vec2) -> Vec2 {
        Vec2::new(p.x.clamp(0.0, self.width), p.y.clamp(0.0, self.height))
    }

    /// Draw a uniformly random point inside the area.
    pub fn random_point<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec2 {
        Vec2::new(rng.gen_range(0.0..=self.width), rng.gen_range(0.0..=self.height))
    }

    /// Length of the diagonal (an upper bound on any pairwise distance).
    pub fn diagonal(&self) -> f64 {
        (self.width * self.width + self.height * self.height).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(4.0, 6.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(b.distance(&a), 5.0);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(10.0, 20.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.lerp(&b, 0.5), Vec2::new(5.0, 10.0));
        // Clamped outside [0,1].
        assert_eq!(a.lerp(&b, 2.0), b);
        assert_eq!(a.lerp(&b, -1.0), a);
    }

    #[test]
    fn normalized_has_unit_length() {
        let v = Vec2::new(3.0, 4.0).normalized();
        assert!((v.norm() - 1.0).abs() < 1e-12);
        assert_eq!(Vec2::ZERO.normalized(), Vec2::ZERO);
    }

    #[test]
    fn area_contains_and_clamps() {
        let a = Area::square(100.0);
        assert!(a.contains(&Vec2::new(50.0, 50.0)));
        assert!(!a.contains(&Vec2::new(150.0, 50.0)));
        assert_eq!(a.clamp(&Vec2::new(150.0, -5.0)), Vec2::new(100.0, 0.0));
        assert!((a.diagonal() - 141.421356).abs() < 1e-3);
    }

    #[test]
    fn random_points_fall_inside_area() {
        let a = Area::new(750.0, 750.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let p = a.random_point(&mut rng);
            assert!(a.contains(&p));
        }
    }
}
